"""Tests for repro.broadcast.pbc: one-step plain broadcast."""

import pytest

from repro.broadcast.messages import BlockVal
from repro.broadcast.pbc import PbcManager
from repro.dag.block import TxBatch, genesis_block, make_block

from ..conftest import FakeNet


def sample_block(author=0, round_=1, j=0):
    return make_block(round_, author, [genesis_block(a).digest for a in range(4)],
                      repropose_index=j)


@pytest.fixture
def setup():
    net = FakeNet(node_id=0, n=4)
    delivered = []
    manager = PbcManager(net, on_deliver=delivered.append)
    return net, manager, delivered


class TestBroadcast:
    def test_sends_to_everyone_including_self(self, setup):
        net, manager, _ = setup
        block = sample_block()
        manager.broadcast(block)
        assert len(net.sent) == 4
        assert {dst for dst, _ in net.sent} == {0, 1, 2, 3}
        assert all(isinstance(m, BlockVal) and m.block is block for _, m in net.sent)

    def test_equivocate_sends_distinct_blocks(self, setup):
        net, manager, _ = setup
        a, b = sample_block(j=0), sample_block(j=1)
        manager.equivocate({0: a, 1: a, 2: b, 3: b})
        got = {dst: msg.block for dst, msg in net.sent}
        assert got[0] is a and got[3] is b


class TestDelivery:
    def test_no_delivery_before_ready(self, setup):
        _, manager, delivered = setup
        block = sample_block()
        manager.on_val(1, block)
        assert delivered == []

    def test_delivery_on_ready(self, setup):
        _, manager, delivered = setup
        block = sample_block()
        manager.on_val(1, block)
        assert manager.mark_ready(block.digest)
        assert delivered == [block]
        assert manager.is_delivered(block.digest)

    def test_no_delivery_without_body(self, setup):
        _, manager, delivered = setup
        block = sample_block()
        assert not manager.mark_ready(block.digest)
        assert delivered == []
        # body arrives later — needs a new ready signal (protocol re-drives)
        manager.on_val(2, block)
        assert manager.mark_ready(block.digest)
        assert delivered == [block]

    def test_single_delivery(self, setup):
        _, manager, delivered = setup
        block = sample_block()
        manager.on_val(1, block)
        manager.mark_ready(block.digest)
        manager.mark_ready(block.digest)
        manager.on_val(2, block)
        assert delivered == [block]

    def test_equivocated_slot_both_deliverable(self, setup):
        """PBC has no consistency: two blocks of one slot both deliver."""
        _, manager, delivered = setup
        a, b = sample_block(j=0), sample_block(j=1)
        manager.on_val(1, a)
        manager.on_val(1, b)
        manager.mark_ready(a.digest)
        manager.mark_ready(b.digest)
        assert delivered == [a, b]

    def test_body_of(self, setup):
        _, manager, _ = setup
        block = sample_block()
        assert manager.body_of(block.digest) is None
        manager.on_val(1, block)
        assert manager.body_of(block.digest) is block
