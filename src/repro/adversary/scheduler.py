"""Random message-scheduling adversary.

The asynchronous model gives the adversary full control of message timing
(§III-A).  This adversary exercises that power *unstructuredly*: every
message gets an independent extra delay drawn from ``[0, max_delay]``,
with an optional heavy tail.  It cannot break a correct protocol — which
is precisely why the property-based safety tests run under it: any ledger
divergence it provokes is a protocol bug, not an adversary feature.
"""

from __future__ import annotations

from typing import Optional

from ..net.interfaces import Message
from .base import Adversary


class RandomSchedulingAdversary(Adversary):
    """Independent random extra delay per message.

    Parameters
    ----------
    max_delay:
        Upper bound of the uniform component (seconds).
    tail_probability / tail_delay:
        With probability ``tail_probability`` a message additionally waits
        ``tail_delay`` — modeling the adversary singling out a few
        messages for long (but finite) postponement.
    """

    def __init__(
        self,
        max_delay: float = 0.2,
        tail_probability: float = 0.0,
        tail_delay: float = 2.0,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        self.max_delay = max_delay
        self.tail_probability = tail_probability
        self.tail_delay = tail_delay

    def on_send(self, src: int, dst: int, msg: Message, now: float) -> Optional[float]:
        delay = self.rng.uniform(0.0, self.max_delay)
        if self.tail_probability and self.rng.random() < self.tail_probability:
            delay += self.tail_delay
        return delay
