"""Tests for repro.workload.clients: arrivals, mixes, populations."""

import math
import random

import pytest

from repro.config import ProtocolConfig, SystemConfig
from repro.errors import ConfigError
from repro.smr.kv import KvStateMachine
from repro.smr.replica import SmrCluster
from repro.workload.admission import AdmissionConfig
from repro.workload.clients import (
    BurstyArrivals,
    ClientPopulation,
    DiurnalArrivals,
    OpMix,
    PoissonArrivals,
    WorkloadSpec,
    ZipfKeys,
    make_arrivals,
)


class TestArrivals:
    def test_poisson_mean_rate(self):
        rng = random.Random(7)
        arrivals = PoissonArrivals(100.0)
        gaps = [arrivals.next_gap(rng, 0.0) for _ in range(5000)]
        assert sum(gaps) / len(gaps) == pytest.approx(1 / 100.0, rel=0.1)

    def test_bursty_mean_rate_matches_nominal(self):
        """Thinning preserves the mean: N arrivals over T ≈ rate*T."""
        rng = random.Random(1)
        arrivals = BurstyArrivals(200.0, period=1.0, duty=0.25)
        t, count = 0.0, 0
        while t < 50.0:
            t += arrivals.next_gap(rng, t)
            count += 1
        assert count == pytest.approx(200.0 * 50.0, rel=0.1)

    def test_bursty_concentrates_in_on_phase(self):
        rng = random.Random(2)
        arrivals = BurstyArrivals(100.0, period=1.0, duty=0.25)
        t, in_burst = 0.0, 0
        points = []
        while t < 50.0:
            t += arrivals.next_gap(rng, t)
            points.append(t)
        for p in points:
            if math.fmod(p, 1.0) < 0.25:
                in_burst += 1
        assert in_burst / len(points) > 0.95

    def test_diurnal_rate_oscillates_around_mean(self):
        arrivals = DiurnalArrivals(100.0, period=20.0, amplitude=0.5)
        assert arrivals.rate_at(5.0) == pytest.approx(150.0)   # peak
        assert arrivals.rate_at(15.0) == pytest.approx(50.0)   # trough
        assert arrivals.rate_at(0.0) == pytest.approx(100.0)

    def test_make_arrivals_names(self):
        assert isinstance(make_arrivals("poisson", 10.0), PoissonArrivals)
        assert isinstance(make_arrivals("bursty", 10.0), BurstyArrivals)
        assert isinstance(make_arrivals("diurnal", 10.0), DiurnalArrivals)
        with pytest.raises(ConfigError):
            make_arrivals("constant", 10.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(0.0)
        with pytest.raises(ConfigError):
            BurstyArrivals(10.0, duty=0.0)
        with pytest.raises(ConfigError):
            DiurnalArrivals(10.0, amplitude=1.0)


class TestZipfKeys:
    def test_skew_concentrates_on_head(self):
        rng = random.Random(3)
        keys = ZipfKeys(1000, skew=0.99)
        draws = [keys.sample(rng) for _ in range(5000)]
        head_share = sum(1 for d in draws if d < 10) / len(draws)
        assert head_share > 0.3  # top-1% of keys absorb a large share

    def test_zero_skew_is_uniform(self):
        rng = random.Random(4)
        keys = ZipfKeys(100, skew=0.0)
        draws = [keys.sample(rng) for _ in range(10_000)]
        head_share = sum(1 for d in draws if d < 10) / len(draws)
        assert head_share == pytest.approx(0.1, abs=0.03)

    def test_samples_in_range(self):
        rng = random.Random(5)
        keys = ZipfKeys(7, skew=1.2)
        assert all(0 <= keys.sample(rng) < 7 for _ in range(1000))


class TestOpMix:
    def test_weights_respected(self):
        rng = random.Random(6)
        mix = OpMix(ZipfKeys(10), weights=(0.0, 1.0, 0.0, 0.0))
        assert all(mix.next_verb(rng) == "GET" for _ in range(100))

    def test_private_keys_scoped_to_client(self):
        rng = random.Random(7)
        mix = OpMix(ZipfKeys(10), private=True)
        assert mix.key_for(3, rng).startswith("c3.k")
        shared = OpMix(ZipfKeys(10), private=False)
        assert shared.key_for(3, rng).startswith("k")

    def test_value_size(self):
        rng = random.Random(8)
        mix = OpMix(ZipfKeys(10), value_size=24)
        assert len(mix.value(rng)) == 24

    def test_bad_weights(self):
        with pytest.raises(ConfigError):
            OpMix(ZipfKeys(10), weights=(0, 0, 0, 0))


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(clients=0)
        with pytest.raises(ConfigError):
            WorkloadSpec(mode="batch")
        with pytest.raises(ConfigError):
            WorkloadSpec(mode="open", rate=0.0)
        with pytest.raises(ConfigError):
            WorkloadSpec(outstanding=0)
        with pytest.raises(ConfigError):
            WorkloadSpec(arrival="steady")

    def test_arrivals_factory(self):
        assert isinstance(WorkloadSpec(arrival="bursty").arrivals(), BurstyArrivals)
        assert isinstance(WorkloadSpec().arrivals(), PoissonArrivals)


def _cluster(seed=1, admission=None, batch=16):
    return SmrCluster.build(
        SystemConfig(n=4, crypto="hmac", seed=seed),
        machine_factory=KvStateMachine,
        protocol=ProtocolConfig(batch_size=batch),
        seed=seed,
        admission=admission,
    )


def _run(spec, duration=5.0, warmup=1.0, seed=1, admission=None):
    cluster = _cluster(seed=seed, admission=admission)
    population = ClientPopulation(spec, cluster, duration=duration, warmup=warmup)
    population.install()
    cluster.run(until=duration)
    cluster.verify_convergence()
    return population


class TestClientPopulation:
    def test_closed_loop_completes_and_verifies(self):
        spec = WorkloadSpec(clients=10, mode="closed", seed=3)
        population = _run(spec)
        stats = population.stats
        assert stats.completed > 0
        assert stats.verified > 0
        assert stats.verify_failures == 0
        assert stats.quantile(0.5) > 0

    def test_open_loop_tracks_offered_rate(self):
        spec = WorkloadSpec(clients=20, mode="open", rate=200.0, seed=4)
        population = _run(spec, duration=6.0, warmup=2.0)
        # Well under capacity: completion rate ≈ offered rate.
        assert population.stats.e2e_tps() == pytest.approx(200.0, rel=0.25)

    def test_deterministic_replay(self):
        spec = WorkloadSpec(clients=10, mode="closed", seed=5)
        a = _run(spec).stats
        b = _run(spec).stats
        assert a.summary() == b.summary()
        assert a.latencies == b.latencies

    def test_closed_loop_survives_rejection_via_retry(self):
        """A tiny admission queue pushes back; clients must retry the same
        command and eventually complete (no deadlock, no duplication)."""
        spec = WorkloadSpec(clients=8, mode="closed", seed=6,
                            retry_backoff_s=0.02)
        admission = AdmissionConfig(max_pending=2, policy="reject")
        population = _run(spec, duration=6.0, admission=admission)
        stats = population.stats
        assert stats.completed > 0
        assert stats.verify_failures == 0
        # each client applied exactly its completed ops — duplicates would
        # break the read-your-writes model and show up as verify failures
        if stats.rejected:
            assert stats.retries > 0

    def test_shed_oldest_policy_keeps_cluster_live(self):
        spec = WorkloadSpec(clients=8, mode="closed", seed=7,
                            retry_backoff_s=0.02)
        admission = AdmissionConfig(max_pending=2, policy="shed-oldest")
        population = _run(spec, duration=6.0, admission=admission)
        assert population.stats.completed > 0
        assert population.stats.verify_failures == 0

    def test_e2e_latency_at_least_consensus_latency(self):
        from repro.workload.metrics import MetricsCollector

        collector = MetricsCollector(warmup=1.0, measure_until=5.0)
        cluster = SmrCluster.build(
            SystemConfig(n=4, crypto="hmac", seed=8),
            machine_factory=KvStateMachine,
            protocol=ProtocolConfig(batch_size=16),
            seed=8,
            collector=collector,
        )
        spec = WorkloadSpec(clients=10, mode="closed", seed=8)
        population = ClientPopulation(spec, cluster, duration=5.0, warmup=1.0)
        population.install()
        cluster.run(until=5.0)
        e2e = population.stats.mean_latency()
        consensus = collector.mean_latency()
        assert math.isfinite(e2e) and math.isfinite(consensus)
        # Client latency includes queueing ahead of the proposal the
        # collector stamps, so it can never be smaller.
        assert e2e >= consensus - 1e-9
