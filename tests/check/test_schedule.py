"""Fault-schedule grammar, validation, driver, and generator tests."""

import pytest

from repro.adversary.schedule import (
    FaultPhase,
    FaultSchedule,
    ScheduleAdversary,
    parse_phase,
    random_schedule,
)
from repro.config import SystemConfig
from repro.errors import ConfigError


class _Msg:
    def wire_size(self):
        return 100


class TestGrammar:
    def test_phase_round_trip(self):
        spec = "delay@0.5+2.25:max=0.3,tailp=0.1,taild=1.5"
        phase = parse_phase(spec)
        assert phase.kind == "delay"
        assert phase.start == 0.5
        assert phase.duration == 2.25
        assert phase.param("max") == 0.3
        assert phase.to_spec() == spec

    def test_replica_list_round_trip(self):
        phase = parse_phase("partition@1+2:group=0|3")
        assert phase.replicas() == (0, 3)
        assert phase.to_spec() == "partition@1+2:group=0|3"

    def test_single_replica_as_int(self):
        phase = parse_phase("crash@2+0:victims=3")
        assert phase.replicas() == (3,)

    def test_string_param(self):
        phase = parse_phase("withhold@0+0:replicas=3,mode=garbage")
        assert phase.param("mode") == "garbage"

    def test_schedule_round_trip(self):
        spec = "delay@0+6:max=0.25;crash@2+0:victims=3"
        schedule = FaultSchedule.from_spec(spec)
        assert len(schedule.phases) == 2
        assert schedule.to_spec() == spec

    def test_empty_spec(self):
        assert FaultSchedule.from_spec("").phases == ()

    @pytest.mark.parametrize("bad", [
        "delay",                 # no window
        "delay@x+1",             # non-numeric start
        "warp@0+1",              # unknown kind
        "delay@0+1:max",         # parameter without value
        "delay@-1+1",            # negative start
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ConfigError):
            parse_phase(bad)


class TestValidation:
    def system(self, n=4):
        return SystemConfig(n=n, crypto="hmac", seed=0)

    def test_budget_enforced(self):
        schedule = FaultSchedule.from_spec(
            "crash@0+0:victims=2;withhold@0+0:replicas=3"
        )
        with pytest.raises(ConfigError, match="tolerates only f=1"):
            schedule.validate(self.system(), "lightdag1")

    def test_overlapping_faulty_replicas_count_once(self):
        schedule = FaultSchedule.from_spec(
            "crash@1+0:victims=3;withhold@0+0:replicas=3"
        )
        schedule.validate(self.system(), "lightdag1")

    def test_replica_out_of_range(self):
        schedule = FaultSchedule.from_spec("crash@0+0:victims=9")
        with pytest.raises(ConfigError, match="outside"):
            schedule.validate(self.system(), "lightdag1")

    def test_equivocate_lightdag2_only(self):
        schedule = FaultSchedule.from_spec("equivocate@0+0:replicas=3,wave=1")
        schedule.validate(self.system(), "lightdag2")
        with pytest.raises(ConfigError, match="lightdag2"):
            schedule.validate(self.system(), "tusk")

    def test_partition_group_checked(self):
        schedule = FaultSchedule.from_spec("partition@0+1:group=0|7")
        with pytest.raises(ConfigError):
            schedule.validate(self.system(), "lightdag1")


class TestScheduleAdversary:
    def test_partition_drops_only_cross_cut_in_window(self):
        phases = FaultSchedule.from_spec("partition@1+2:group=0|1").phases
        adv = ScheduleAdversary(phases, seed=0)
        assert adv.on_send(0, 2, _Msg(), now=1.5) is None  # crosses the cut
        assert adv.on_send(0, 1, _Msg(), now=1.5) == 0.0   # same side
        assert adv.on_send(0, 2, _Msg(), now=0.5) == 0.0   # before window
        assert adv.on_send(0, 2, _Msg(), now=3.5) == 0.0   # healed
        assert adv.dropped == 1

    def test_delay_only_in_window(self):
        phases = FaultSchedule.from_spec("delay@1+2:max=0.5").phases
        adv = ScheduleAdversary(phases, seed=3)
        assert adv.on_send(0, 1, _Msg(), now=0.5) == 0.0
        inside = adv.on_send(0, 1, _Msg(), now=2.0)
        assert 0.0 <= inside <= 0.5

    def test_active_delays_accumulate(self):
        phases = FaultSchedule.from_spec(
            "delay@0+4:max=0,tailp=1,taild=1;delay@0+4:max=0,tailp=1,taild=2"
        ).phases
        adv = ScheduleAdversary(phases, seed=0)
        assert adv.on_send(0, 1, _Msg(), now=1.0) == pytest.approx(3.0)

    def test_no_message_phases_yields_no_adversary(self):
        schedule = FaultSchedule.from_spec("withhold@0+0:replicas=3")
        assert schedule.adversary(seed=0) is None
        assert FaultSchedule.from_spec("delay@0+1:max=0.1").adversary(0) is not None


class TestGenerator:
    def test_deterministic_in_seed(self):
        system = SystemConfig(n=4, crypto="hmac", seed=0)
        a = random_schedule(7, system, "lightdag2", 6.0)
        b = random_schedule(7, system, "lightdag2", 6.0)
        assert a.to_spec() == b.to_spec()

    def test_different_seeds_differ(self):
        system = SystemConfig(n=4, crypto="hmac", seed=0)
        specs = {random_schedule(s, system, "lightdag1", 6.0).to_spec()
                 for s in range(20)}
        assert len(specs) > 5

    def test_generated_schedules_valid(self):
        for n in (4, 7):
            system = SystemConfig(n=n, crypto="hmac", seed=0)
            for seed in range(30):
                schedule = random_schedule(seed, system, "lightdag2", 6.0)
                schedule.validate(system, "lightdag2")  # must not raise
                assert schedule.phases

    def test_no_equivocation_outside_lightdag2(self):
        system = SystemConfig(n=4, crypto="hmac", seed=0)
        for seed in range(40):
            schedule = random_schedule(seed, system, "tusk", 6.0)
            assert all(p.kind != "equivocate" for p in schedule.phases)

    def test_round_trips_through_spec(self):
        system = SystemConfig(n=7, crypto="hmac", seed=0)
        for seed in range(20):
            schedule = random_schedule(seed, system, "lightdag2", 8.0)
            spec = schedule.to_spec()
            assert FaultSchedule.from_spec(spec).to_spec() == spec
