"""Result analysis: repetition statistics, export, DAG visualization.

* :mod:`repro.analysis.stats` — multi-seed repetition (§VI-A: "each group
  of experiments is repeated five times to reduce experimental errors")
  with mean/stdev/CI aggregation.
* :mod:`repro.analysis.export` — JSON and CSV persistence of experiment
  results, for plotting outside this repository.
* :mod:`repro.analysis.dagviz` — render a replica's DAG as ASCII art or
  Graphviz DOT (committed blocks, leaders, equivocations highlighted).
* :mod:`repro.analysis.trace` — commit-pipeline breakdown: how much of
  the latency is broadcast dissemination vs wave ordering.
* :mod:`repro.analysis.obs_export` — exporters for instrumented runs:
  JSONL journal dump, Prometheus text snapshot, Chrome ``trace_event``
  JSON (opens in Perfetto / ``about:tracing``).
"""

from .dagviz import dag_to_ascii, dag_to_dot
from .export import results_to_csv, results_to_json
from .loadreport import (
    format_load_summary,
    format_sweep_table,
    loadtest_results_to_json,
    render_saturation_figure,
)
from .obs_export import (
    journal_to_chrome_trace,
    journal_to_jsonl,
    load_journal_jsonl,
    registry_summary_rows,
    registry_to_prometheus,
)
from .stats import Aggregate, RepeatedResult, percentile, repeat_experiment
from .trace import PipelineTrace

__all__ = [
    "Aggregate",
    "PipelineTrace",
    "RepeatedResult",
    "dag_to_ascii",
    "dag_to_dot",
    "format_load_summary",
    "format_sweep_table",
    "journal_to_chrome_trace",
    "journal_to_jsonl",
    "load_journal_jsonl",
    "loadtest_results_to_json",
    "percentile",
    "render_saturation_figure",
    "registry_summary_rows",
    "registry_to_prometheus",
    "repeat_experiment",
    "results_to_csv",
    "results_to_json",
]
