"""Tests for repro.crypto.keys: the trusted dealer (ADKG stand-in)."""

import pytest

from repro.config import SystemConfig
from repro.crypto.keys import TrustedDealer
from repro.crypto.shamir import recover_secret
from repro.errors import ThresholdError


class TestDealing:
    def test_one_chain_per_replica(self):
        system = SystemConfig(n=7)
        chains = TrustedDealer(system).deal()
        assert [c.replica_id for c in chains] == list(range(7))

    def test_public_keys_shared_and_complete(self):
        chains = TrustedDealer(SystemConfig(n=4)).deal()
        for chain in chains:
            assert set(chain.public_keys) == {0, 1, 2, 3}
            assert chain.public_keys == chains[0].public_keys

    def test_deterministic_per_seed(self):
        a = TrustedDealer(SystemConfig(n=4, seed=5)).deal()
        b = TrustedDealer(SystemConfig(n=4, seed=5)).deal()
        assert a[0].keypair == b[0].keypair
        assert a[2].coin_share == b[2].coin_share

    def test_different_seeds_differ(self):
        a = TrustedDealer(SystemConfig(n=4, seed=1)).deal()
        b = TrustedDealer(SystemConfig(n=4, seed=2)).deal()
        assert a[0].keypair != b[0].keypair

    def test_distinct_signing_keys(self):
        chains = TrustedDealer(SystemConfig(n=7)).deal()
        assert len({c.keypair.sk for c in chains}) == 7

    def test_default_coin_threshold_is_2f_plus_1(self):
        system = SystemConfig(n=7)  # f = 2
        chains = TrustedDealer(system).deal()
        assert chains[0].coin_threshold == 5

    def test_explicit_coin_threshold(self):
        chains = TrustedDealer(SystemConfig(n=4), coin_threshold=2).deal()
        assert all(c.coin_threshold == 2 for c in chains)

    def test_invalid_coin_threshold(self):
        with pytest.raises(ThresholdError):
            TrustedDealer(SystemConfig(n=4), coin_threshold=5)
        with pytest.raises(ThresholdError):
            TrustedDealer(SystemConfig(n=4), coin_threshold=0)

    def test_coin_shares_reconstruct_consistently(self):
        system = SystemConfig(n=4)
        dealer = TrustedDealer(system, coin_threshold=3)
        chains = dealer.deal()
        group = chains[0].group
        s1 = recover_secret([c.coin_share for c in chains[:3]], group.q)
        s2 = recover_secret([c.coin_share for c in chains[1:]], group.q)
        assert s1 == s2

    def test_verification_keys_match_shares(self):
        chains = TrustedDealer(SystemConfig(n=4)).deal()
        group = chains[0].group
        for chain in chains:
            expected = group.exp(group.g, chain.coin_share.y)
            assert chain.coin_verification_keys[chain.replica_id] == expected


class TestObserver:
    def test_observer_has_no_share(self):
        observer = TrustedDealer(SystemConfig(n=4)).observer_chain()
        assert observer.coin_share is None
        assert observer.replica_id == -1

    def test_observer_sees_same_public_material(self):
        dealer = TrustedDealer(SystemConfig(n=4))
        chains = dealer.deal()
        observer = dealer.observer_chain()
        assert observer.public_keys == chains[0].public_keys
        assert observer.coin_verification_keys == chains[0].coin_verification_keys

    def test_public_key_lookup_error(self):
        chain = TrustedDealer(SystemConfig(n=4)).deal()[0]
        assert chain.public_key_of(2) == chain.public_keys[2]
        with pytest.raises(ThresholdError):
            chain.public_key_of(9)
