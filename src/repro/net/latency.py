"""Propagation-latency models.

The simulator separates *propagation* (distance, modeled here) from
*serialization* (bandwidth, modeled by the egress queue in the simulator).
Four models cover every experiment:

* :class:`FixedLatency` — identical delay on every link.  Used by the
  Table I step-count experiments, where one "communication step" must take
  exactly one time unit.
* :class:`UniformLatency` — i.i.d. uniform delay per message; handy for
  property tests that need schedule diversity.
* :class:`WanLatency` — the paper's deployment: replicas spread round-robin
  across four continental regions with realistic one-way delays and
  multiplicative jitter.
* :class:`TopologyLatency` — the scale-out generalization: any number of
  geo clusters with a deterministically generated delay matrix,
  per-link heterogeneity, per-node bandwidth scaling, packet loss, and
  node-churn windows.  This is the model the n=100–1000 sweeps run on.

All models draw from the ``random.Random`` instance the simulator passes
in, keeping runs fully deterministic per seed.

Models are constructed through :func:`make_latency_model`, which accepts
either a registered name (``"wan4"``) or a *spec string* carrying inline
keyword arguments (``"topology:clusters=8,loss=0.01"``).  Spec strings are
plain picklable ``str`` values, so they travel through
``ExperimentConfig.latency_model`` and the ``--jobs`` process pool
unchanged.  New models register via :func:`register_latency_model`.
"""

from __future__ import annotations

import hashlib
import inspect
import random
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigError

#: One-way propagation delays between the four modeled regions, in seconds.
#: Regions: 0 = North America, 1 = Europe, 2 = Asia, 3 = South America.
#: Values approximate public inter-continent RTT/2 measurements.
WAN_REGION_DELAYS = (
    (0.001, 0.045, 0.075, 0.065),
    (0.045, 0.001, 0.100, 0.095),
    (0.075, 0.100, 0.001, 0.135),
    (0.065, 0.095, 0.135, 0.001),
)


class LatencyModel(ABC):
    """Maps a (src, dst) pair to a per-message propagation delay."""

    #: True when delivery is *conditional*: :meth:`sample` may return
    #: ``None`` (link ate the packet, endpoint down).  The simulator only
    #: consults :meth:`sample` for lossy models, so the common reliable
    #: path never pays the extra branch.
    lossy = False

    #: Declared distribution symmetry: ``mean_delay(a, b) == mean_delay(b, a)``.
    #: Property tests assert it where claimed; per-*message* draws need not
    #: be symmetric (jitter is per direction).
    symmetric = True

    @abstractmethod
    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        """One-way propagation delay in seconds for this message."""

    def sample(
        self, src: int, dst: int, rng: random.Random, now: float
    ) -> Optional[float]:
        """Delay for one message, or ``None`` if the link eats it.

        Only consulted when :attr:`lossy` is true.  The drop decision is
        made at *send* time: messages already in flight when a churn
        window opens still arrive (the wire does not recall photons).
        """
        return self.delay(src, dst, rng)

    def mean_delay(self, src: int, dst: int) -> float:
        """Expected delay (used by analytic step-latency conversions).

        The generic fallback runs a 64-draw Monte-Carlo probe with a fixed
        seed; the result is memoized per ``(src, dst)`` so repeated calls
        (the step-latency tables query every pair) cost a dict hit, not a
        fresh probe.  Models with a closed form override this exactly.
        """
        cache = self.__dict__.get("_mean_delay_cache")
        if cache is None:
            cache = self.__dict__["_mean_delay_cache"] = {}
        key = (src, dst)
        mean = cache.get(key)
        if mean is None:
            probe = random.Random(0)
            mean = sum(self.delay(src, dst, probe) for _ in range(64)) / 64
            cache[key] = mean
        return mean


class FactoredLatency(LatencyModel):
    """Base for models whose delay factors as ``base × (1 + jitter)``.

    The contract: per-message delay is exactly

    ``base_delay(src, dst) * (1.0 + rng.uniform(-jitter_frac, +jitter_frac))``

    with **no RNG draw at all** when the base is zero (self-sends) or the
    jitter fraction is zero.  The simulator exploits this shape on the
    broadcast fan-out: it precomputes a per-source row of base delays once
    and inlines the jitter draw per copy — bit-identical to calling
    :meth:`delay`, draw-for-draw, but without the method-call tower.
    ``mean_delay`` is exact (symmetric jitter): the base itself.
    """

    jitter_frac = 0.0

    @abstractmethod
    def base_delay(self, src: int, dst: int) -> float:
        """Deterministic pre-jitter delay for the link (0.0 for self)."""

    def base_row(self, src: int, n: int) -> List[float]:
        """Base delays from ``src`` to every destination ``0..n-1``."""
        return [self.base_delay(src, dst) for dst in range(n)]

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        base = self.base_delay(src, dst)
        jitter = self.jitter_frac
        if base == 0.0 or jitter == 0.0:
            return base
        return base * (1.0 + rng.uniform(-jitter, jitter))

    def mean_delay(self, src: int, dst: int) -> float:
        return self.base_delay(src, dst)


class FixedLatency(FactoredLatency):
    """Every message takes exactly ``delay_s`` seconds (self-sends 0)."""

    def __init__(self, delay_s: float = 0.05) -> None:
        if delay_s < 0:
            raise ConfigError("latency cannot be negative")
        self.delay_s = delay_s

    def base_delay(self, src: int, dst: int) -> float:
        return 0.0 if src == dst else self.delay_s

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        return 0.0 if src == dst else self.delay_s


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]`` per message.

    Additive form, so it does not factor into base × jitter — the
    simulator uses the generic per-copy path for it.
    """

    def __init__(self, low: float = 0.01, high: float = 0.1) -> None:
        if not 0 <= low <= high:
            raise ConfigError(f"invalid uniform latency range [{low}, {high}]")
        self.low = low
        self.high = high

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        return 0.0 if src == dst else rng.uniform(self.low, self.high)

    def mean_delay(self, src: int, dst: int) -> float:
        return 0.0 if src == dst else (self.low + self.high) / 2


class WanLatency(FactoredLatency):
    """Four-region WAN matrix with multiplicative jitter.

    Replica ``i`` lives in region ``i % 4`` (round-robin placement, the
    natural reading of "deployed on four continents").  Per-message delay is
    the matrix entry scaled by ``1 + jitter`` with jitter drawn uniformly
    from ``[-jitter_frac, +jitter_frac]`` (no draw when the fraction is 0).
    """

    def __init__(self, jitter_frac: float = 0.1, num_regions: int = 4) -> None:
        if not 0 <= jitter_frac < 1:
            raise ConfigError("jitter fraction must be in [0, 1)")
        if not 1 <= num_regions <= len(WAN_REGION_DELAYS):
            raise ConfigError(
                f"num_regions must be in 1..{len(WAN_REGION_DELAYS)}"
            )
        self.jitter_frac = jitter_frac
        self.num_regions = num_regions

    def region_of(self, replica: int) -> int:
        return replica % self.num_regions

    def base_delay(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        return WAN_REGION_DELAYS[self.region_of(src)][self.region_of(dst)]


def _unit(*parts) -> float:
    """Deterministic uniform-in-[0,1) value from a tuple of keys.

    Hash-based (not ``random``-based) so per-link draws are independent of
    call order and identical across processes and Python hash seeds.
    """
    blob = repr(parts).encode("ascii")
    h = hashlib.blake2b(blob, digest_size=8).digest()
    return int.from_bytes(h, "big") / 2.0**64


def _parse_churn(churn) -> Tuple[Tuple[int, float, float], ...]:
    """Normalize churn windows to ``((replica, start, stop), ...)``.

    Accepts an iterable of 3-tuples or the spec-string mini-format
    ``"5@10-20+7@30-40"`` (replica 5 down in [10, 20), replica 7 in
    [30, 40)) so churn is expressible on the CLI.
    """
    if isinstance(churn, str):
        windows = []
        for piece in churn.split("+"):
            piece = piece.strip()
            if not piece:
                continue
            try:
                replica_part, _, span = piece.partition("@")
                start_part, _, stop_part = span.partition("-")
                windows.append(
                    (int(replica_part), float(start_part), float(stop_part))
                )
            except ValueError:
                raise ConfigError(
                    f"bad churn window {piece!r} (want 'replica@start-stop')"
                ) from None
        churn = windows
    normalized = []
    for window in churn:
        try:
            replica, start, stop = window
        except (TypeError, ValueError):
            raise ConfigError(
                f"churn window {window!r} is not (replica, start, stop)"
            ) from None
        replica, start, stop = int(replica), float(start), float(stop)
        if replica < 0:
            raise ConfigError(f"churn replica must be >= 0, got {replica}")
        if not 0 <= start < stop:
            raise ConfigError(
                f"churn window [{start}, {stop}) must satisfy 0 <= start < stop"
            )
        normalized.append((replica, start, stop))
    return tuple(sorted(normalized))


class TopologyLatency(FactoredLatency):
    """Configurable geo-cluster topology for large-n sweeps.

    Generalizes :class:`WanLatency`'s hardcoded 4-region matrix:

    * ``clusters`` geo clusters; replica ``i`` lives in cluster
      ``i % clusters`` (round-robin, like the WAN model).
    * Inter-cluster propagation delays are drawn once, deterministically,
      from ``topo_seed`` — symmetric, uniform in ``[inter_min, inter_max]``;
      intra-cluster links take ``intra_delay``.
    * ``link_spread`` adds per-link heterogeneity: each (src, dst) pair
      gets a symmetric multiplier in ``1 ± link_spread`` (hash-derived,
      order- and process-independent).
    * ``bandwidth_spread`` declares per-node NIC heterogeneity: the
      harness multiplies the configured bandwidth by
      :meth:`node_bandwidth_scale` (in ``1 ± bandwidth_spread``).
    * ``loss`` / ``intra_loss`` drop each inter-/intra-cluster message
      independently with the given probability; a lost VAL or echo is
      recovered through the §IV-A retrieval path, exactly like an
      adversarial drop.
    * ``churn`` takes deterministic outage windows
      ``(replica, start, stop)``: while down, every message to or *from*
      that replica is lost at send time (the replica itself keeps
      running — this models an unreachable node, not a crash).

    ``mean_delay`` is exact: the base delay (jitter is symmetric; for
    lossy links it is the mean *conditional on delivery*, which is what
    the step-latency conversions want).
    """

    def __init__(
        self,
        clusters: int = 4,
        intra_delay: float = 0.001,
        inter_min: float = 0.03,
        inter_max: float = 0.15,
        jitter_frac: float = 0.1,
        link_spread: float = 0.0,
        loss: float = 0.0,
        intra_loss: float = 0.0,
        bandwidth_spread: float = 0.0,
        churn=(),
        topo_seed: int = 0,
    ) -> None:
        if clusters < 1:
            raise ConfigError(f"clusters must be >= 1, got {clusters}")
        if intra_delay < 0:
            raise ConfigError("intra_delay cannot be negative")
        if not 0 <= inter_min <= inter_max:
            raise ConfigError(
                f"invalid inter-cluster delay range [{inter_min}, {inter_max}]"
            )
        if not 0 <= jitter_frac < 1:
            raise ConfigError("jitter fraction must be in [0, 1)")
        if not 0 <= link_spread < 1:
            raise ConfigError("link_spread must be in [0, 1)")
        if not 0 <= bandwidth_spread < 1:
            raise ConfigError("bandwidth_spread must be in [0, 1)")
        for name, p in (("loss", loss), ("intra_loss", intra_loss)):
            if not 0 <= p < 1:
                raise ConfigError(f"{name} probability must be in [0, 1)")
        self.clusters = clusters
        self.intra_delay = intra_delay
        self.jitter_frac = jitter_frac
        self.link_spread = link_spread
        self.loss = loss
        self.intra_loss = intra_loss
        self.bandwidth_spread = bandwidth_spread
        self.churn = _parse_churn(churn)
        self.topo_seed = topo_seed
        # The cluster delay matrix: one deterministic draw per unordered
        # cluster pair, so the same topo_seed is the same planet every run.
        gen = random.Random(f"topo:{topo_seed}")
        matrix = [[intra_delay] * clusters for _ in range(clusters)]
        for a in range(clusters):
            for b in range(a + 1, clusters):
                d = gen.uniform(inter_min, inter_max)
                matrix[a][b] = matrix[b][a] = d
        self._matrix = tuple(tuple(row) for row in matrix)
        self._link_cache: Dict[Tuple[int, int], float] = {}
        self._down: Dict[int, Tuple[Tuple[float, float], ...]] = {}
        for replica, start, stop in self.churn:
            self._down.setdefault(replica, ())
            self._down[replica] = self._down[replica] + ((start, stop),)

    @property
    def lossy(self) -> bool:  # type: ignore[override]
        return bool(self.loss or self.intra_loss or self.churn)

    def cluster_of(self, replica: int) -> int:
        return replica % self.clusters

    def _link_factor(self, src: int, dst: int) -> float:
        """Symmetric per-link heterogeneity multiplier in ``1 ± link_spread``."""
        spread = self.link_spread
        if spread == 0.0:
            return 1.0
        key = (src, dst) if src <= dst else (dst, src)
        factor = self._link_cache.get(key)
        if factor is None:
            u = _unit("link", self.topo_seed, key[0], key[1])
            factor = 1.0 + spread * (2.0 * u - 1.0)
            self._link_cache[key] = factor
        return factor

    def base_delay(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        base = self._matrix[self.cluster_of(src)][self.cluster_of(dst)]
        if self.link_spread:
            base *= self._link_factor(src, dst)
        return base

    def node_bandwidth_scale(self, replica: int) -> float:
        """NIC-rate multiplier for one replica, in ``1 ± bandwidth_spread``."""
        spread = self.bandwidth_spread
        if spread == 0.0:
            return 1.0
        u = _unit("bw", self.topo_seed, replica)
        return 1.0 + spread * (2.0 * u - 1.0)

    def down_at(self, replica: int, now: float) -> bool:
        """True while ``replica`` is inside one of its churn windows."""
        for start, stop in self._down.get(replica, ()):
            if start <= now < stop:
                return True
        return False

    def sample(
        self, src: int, dst: int, rng: random.Random, now: float
    ) -> Optional[float]:
        if src == dst:
            return 0.0
        if self._down and (self.down_at(src, now) or self.down_at(dst, now)):
            return None
        p = (
            self.intra_loss
            if self.cluster_of(src) == self.cluster_of(dst)
            else self.loss
        )
        if p and rng.random() < p:
            return None
        return self.delay(src, dst, rng)


# ------------------------------------------------------------------ factory

#: Registered model name -> factory.  :func:`register_latency_model` adds
#: entries; :func:`make_latency_model` resolves and validates against the
#: factory's signature so a typo'd knob fails at config time, not deep
#: inside a sweep worker.
LATENCY_MODELS: Dict[str, Callable[..., LatencyModel]] = {}


def register_latency_model(
    name: str, factory: Optional[Callable[..., LatencyModel]] = None
):
    """Register ``factory`` under ``name``; usable as a decorator."""

    def _register(f: Callable[..., LatencyModel]):
        if name in LATENCY_MODELS:
            raise ConfigError(f"latency model {name!r} already registered")
        LATENCY_MODELS[name] = f
        return f

    return _register(factory) if factory is not None else _register


def _coerce(text: str):
    low = text.lower()
    if low == "true":
        return True
    if low == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_latency_spec(spec: str) -> Tuple[str, Dict[str, object]]:
    """Split ``"name"`` or ``"name:k=v,k=v"`` into (name, kwargs).

    Values are coerced to bool/int/float when they parse as one, else kept
    as strings (the churn mini-format rides through as a string).
    """
    name, _, tail = spec.partition(":")
    name = name.strip()
    if not name:
        raise ConfigError(f"empty latency model name in spec {spec!r}")
    kwargs: Dict[str, object] = {}
    if tail:
        for part in tail.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep or not key.strip():
                raise ConfigError(
                    f"bad latency spec fragment {part!r} in {spec!r} "
                    "(want key=value)"
                )
            kwargs[key.strip()] = _coerce(value.strip())
    return name, kwargs


def _check_kwargs(name: str, factory: Callable, kwargs: Dict[str, object]) -> None:
    try:
        params = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return
    if any(p.kind == p.VAR_KEYWORD for p in params.values()):
        return
    accepted = [p for p in params if p != "self"]
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        raise ConfigError(
            f"latency model {name!r} does not accept {unknown}; "
            f"accepted knobs: {accepted}"
        )


def make_latency_model(name: str, **kwargs) -> LatencyModel:
    """Factory matching :attr:`ExperimentConfig.latency_model` specs.

    ``name`` is either a registered model name (``"fixed"``, ``"uniform"``,
    ``"wan4"``, ``"lan"``, ``"topology"``) or a spec string with inline
    keyword arguments, e.g. ``"topology:clusters=8,loss=0.01"``.  Explicit
    ``**kwargs`` override inline ones.  Unknown names and unknown knobs
    raise :class:`ConfigError` eagerly.
    """
    base, inline = parse_latency_spec(name)
    factory = LATENCY_MODELS.get(base)
    if factory is None:
        raise ConfigError(
            f"unknown latency model {base!r} (known: {sorted(LATENCY_MODELS)})"
        )
    merged = {**inline, **kwargs}
    _check_kwargs(base, factory, merged)
    return factory(**merged)


register_latency_model("fixed", FixedLatency)
register_latency_model("uniform", UniformLatency)
register_latency_model("wan4", WanLatency)
register_latency_model("topology", TopologyLatency)


@register_latency_model("lan")
def _lan(delay_s: float = 0.001) -> FixedLatency:
    """Fixed 1 ms — the LAN deployment of the paper's Table I runs."""
    return FixedLatency(delay_s=delay_s)
