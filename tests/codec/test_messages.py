"""Tests for repro.codec.blocks / .messages: full message round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.broadcast.messages import (
    BlockEcho,
    BlockReady,
    BlockVal,
    ByzantineProofMsg,
    CoinShareMsg,
    ContradictionNotice,
    RetrievalRequest,
    RetrievalResponse,
)
from repro.codec.blocks import block_from_bytes, block_to_bytes
from repro.codec.messages import decode_message, encode_message
from repro.codec.primitives import CodecError
from repro.config import SystemConfig
from repro.core.proofs import ByzantineProof
from repro.crypto.backend import HmacBackend, SchnorrBackend
from repro.crypto.coin import CoinShare, SeededCoin, ThresholdCoin
from repro.crypto.keys import TrustedDealer
from repro.dag.block import TxBatch, genesis_block, make_block

SYSTEM = SystemConfig(n=4, crypto="hmac", seed=0)
CHAINS = TrustedDealer(SYSTEM).deal()


def sample_block(author=0, round_=1, j=0, txs=3, items=(), signer="hmac"):
    backend = (
        HmacBackend(author, SYSTEM) if signer == "hmac"
        else SchnorrBackend(CHAINS[author]) if signer == "schnorr"
        else None
    )
    payload = TxBatch(
        count=txs, tx_size=128, submit_time_sum=txs * 1.25,
        sample=(1.25,), items=items,
    )
    return make_block(
        round_, author, [genesis_block(a).digest for a in range(4)],
        payload=payload, repropose_index=j, signer=backend,
    )


def proof_pair():
    a = sample_block(author=2, j=0)
    b = sample_block(author=2, j=1)
    return ByzantineProof(culprit=2, block_a=a, block_b=b)


class TestBlockCodec:
    def test_roundtrip_preserves_identity(self):
        block = sample_block()
        decoded = block_from_bytes(block_to_bytes(block))
        assert decoded == block
        assert decoded.digest == block.digest

    def test_roundtrip_with_items(self):
        block = sample_block(items=(b"SET a 1", b"SET b 2"))
        assert block_from_bytes(block_to_bytes(block)).payload.items == (
            b"SET a 1", b"SET b 2",
        )

    def test_roundtrip_schnorr_signature(self):
        block = sample_block(signer="schnorr")
        decoded = block_from_bytes(block_to_bytes(block))
        assert decoded.signature == block.signature
        assert SchnorrBackend(CHAINS[1]).verify(0, decoded.digest, decoded.signature)

    def test_roundtrip_unsigned(self):
        block = sample_block(signer=None)
        assert block_from_bytes(block_to_bytes(block)).signature is None

    def test_roundtrip_with_proofs_and_determinations(self):
        proof = proof_pair()
        block = make_block(
            4, 1, [genesis_block(a).digest for a in range(4)],
            byz_proofs=(proof,),
            determinations=((3, 2, b"\x11" * 32),),
            signer=HmacBackend(1, SYSTEM),
        )
        decoded = block_from_bytes(block_to_bytes(block))
        assert decoded == block
        assert decoded.byz_proofs[0].verify(HmacBackend(0, SYSTEM))

    def test_digest_recomputed_not_trusted(self):
        """The wire format carries no digest — it is recomputed, so content
        and identity can never disagree."""
        block = sample_block()
        raw = bytearray(block_to_bytes(block))
        # Flip a payload byte (the tx count varint near the parents).
        decoded = block_from_bytes(bytes(raw))
        assert decoded.digest == block.digest  # sanity on unmodified

    def test_truncated_block_rejected(self):
        raw = block_to_bytes(sample_block())
        with pytest.raises(CodecError):
            block_from_bytes(raw[:-3])

    def test_trailing_bytes_rejected(self):
        raw = block_to_bytes(sample_block())
        with pytest.raises(CodecError):
            block_from_bytes(raw + b"\x00")


class TestMessageCodec:
    def roundtrip(self, msg):
        decoded = decode_message(encode_message(msg))
        assert decoded == msg
        return decoded

    def test_block_val(self):
        self.roundtrip(BlockVal(sample_block()))

    def test_block_echo(self):
        self.roundtrip(BlockEcho(round=5, author=2, digest=b"\x22" * 32))

    def test_block_ready(self):
        self.roundtrip(BlockReady(round=5, author=2, digest=b"\x22" * 32))

    def test_retrieval_request(self):
        self.roundtrip(RetrievalRequest((b"\x01" * 32, b"\x02" * 32)))
        self.roundtrip(RetrievalRequest(()))

    def test_retrieval_response(self):
        self.roundtrip(RetrievalResponse((sample_block(), sample_block(author=1))))

    def test_coin_share_token(self):
        coin = SeededCoin(n=4, threshold=3, seed=0, replica_id=1)
        self.roundtrip(CoinShareMsg(coin.make_share(7)))

    def test_coin_share_partial(self):
        chains = TrustedDealer(SystemConfig(n=4, crypto="schnorr")).deal()
        coin = ThresholdCoin(chains[1])
        msg = CoinShareMsg(coin.make_share(7))
        decoded = self.roundtrip(msg)
        # The decoded partial must still verify.
        assert ThresholdCoin(chains[0]).verify_share(decoded.share)

    def test_contradiction_notice(self):
        self.roundtrip(
            ContradictionNotice(objected=b"\x33" * 32, conflicting_block=sample_block())
        )

    def test_byzantine_proof_msg(self):
        proof = proof_pair()
        self.roundtrip(
            ByzantineProofMsg(
                culprit=2, block_a=proof.block_a, block_b=proof.block_b,
                objected=b"\x44" * 32,
            )
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(CodecError, match="kind"):
            decode_message(b"\x63")

    def test_empty_input_rejected(self):
        with pytest.raises(CodecError):
            decode_message(b"")

    def test_trailing_bytes_rejected(self):
        raw = encode_message(BlockEcho(1, 0, b"\x01" * 32))
        with pytest.raises(CodecError, match="trailing"):
            decode_message(raw + b"!")


@settings(max_examples=50)
@given(
    round_=st.integers(min_value=1, max_value=1000),
    author=st.integers(min_value=0, max_value=3),
    txs=st.integers(min_value=0, max_value=50),
    j=st.integers(min_value=0, max_value=3),
    ts=st.floats(min_value=0, max_value=1e6, allow_nan=False),
)
def test_property_block_roundtrip(round_, author, txs, j, ts):
    payload = TxBatch(count=txs, tx_size=128, submit_time_sum=ts, sample=(ts,))
    block = make_block(
        round_, author, [genesis_block(a).digest for a in range(4)],
        payload=payload, repropose_index=j,
        signer=HmacBackend(author, SYSTEM),
    )
    decoded = block_from_bytes(block_to_bytes(block))
    assert decoded == block


@settings(max_examples=50)
@given(data=st.binary(min_size=0, max_size=200))
def test_property_decoder_never_crashes_unsafely(data):
    """Arbitrary bytes either decode to a message or raise CodecError —
    never any other exception (a malicious peer cannot crash the node)."""
    try:
        decode_message(data)
    except CodecError:
        pass
