"""The block retrieval mechanism (§IV-A).

CBC and PBC lack totality, so a replica can receive a block ``B`` whose
ancestors it never delivered.  Retrieval patches the hole:

    "when a replica p_i receives a block B through the VAL step of CBC from
    another replica p_j, p_i checks whether it has already delivered all
    parent blocks of B.  If not, p_i sends a request to retrieve the
    missing blocks by including their hashes in the request. [...]  This
    block retrieval process continues until p_i has delivered all the
    ancestors of B.  Then, p_i participates in the CBC process of B."

This manager tracks *pending* blocks (received, parents missing), issues
requests, answers peers' requests from the local store, and — because the
first-choice responder may be faulty — retries against other candidates on
a timer.  The owning node funnels every received block body through
:meth:`note_pending` / :meth:`satisfied_by` and re-enters its accept path
for whatever becomes complete.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..crypto.hashing import Digest
from ..dag.block import Block
from ..dag.store import DagStore
from ..net.interfaces import NetworkAPI
from ..obs import NULL_OBS, Observability
from ..broadcast.messages import RetrievalRequest, RetrievalResponse

#: Timer tag used for retrieval retries (owned by the node's timer space).
RETRY_TAG = "retrieval-retry"

#: Seconds before re-requesting a still-missing block from someone else.
DEFAULT_RETRY_DELAY = 0.5


@dataclass
class _Pending:
    """A received-but-incomplete block and who could supply its parents."""

    block: Block
    src: int
    missing: Set[Digest] = field(default_factory=set)
    #: whether this block itself arrived through retrieval (digest-pinned)
    retrieved: bool = False


class RetrievalManager:
    """Per-replica retrieval state machine."""

    def __init__(
        self,
        net: NetworkAPI,
        store: DagStore,
        seed: int = 0,
        retry_delay: float = DEFAULT_RETRY_DELAY,
        enabled: bool = True,
        obs: Optional[Observability] = None,
    ) -> None:
        self.net = net
        self.store = store
        self.retry_delay = retry_delay
        self.enabled = enabled
        self.obs = obs if obs is not None else NULL_OBS
        metrics = self.obs.metrics
        self._ctr_requests = metrics.counter("retrieval.requests")
        self._ctr_retries = metrics.counter("retrieval.retries")
        self._ctr_responses = metrics.counter("retrieval.responses")
        self._ctr_served = metrics.counter("retrieval.blocks_served")
        self.rng = random.Random(f"retrieval:{net.node_id}:{seed}")
        #: blocks waiting for parents, keyed by their digest
        self._pending: Dict[Digest, _Pending] = {}
        #: reverse index: missing parent digest -> dependent block digests
        self._dependents: Dict[Digest, Set[Digest]] = {}
        #: digests with an in-flight request (avoid duplicate asks)
        self._inflight: Dict[Digest, int] = {}
        #: every digest we ever requested — responses are only honored for
        #: these (an unsolicited "gift" block is not digest-authenticated)
        self._requested: Set[Digest] = set()
        #: statistics for the ablation bench
        self.requests_sent = 0
        self.responses_sent = 0
        self.blocks_served = 0

    # -- registering incomplete blocks -----------------------------------------

    def note_pending(
        self, block: Block, src: int, missing: List[Digest], retrieved: bool = False
    ) -> None:
        """Register ``block`` as waiting for ``missing`` parents and request
        them from ``src`` (the replica that sent us the block — if it is
        non-faulty it holds every ancestor, §IV-A)."""
        if block.digest in self._pending:
            return
        entry = _Pending(block=block, src=src, missing=set(missing), retrieved=retrieved)
        self._pending[block.digest] = entry
        for parent in entry.missing:
            self._dependents.setdefault(parent, set()).add(block.digest)
        self._request(list(entry.missing), src)

    def is_pending(self, digest: Digest) -> bool:
        return digest in self._pending

    def pending_count(self) -> int:
        return len(self._pending)

    def _request(self, digests: List[Digest], dst: int, retry: bool = False) -> None:
        if not self.enabled:
            return
        to_ask = [d for d in digests if d not in self._inflight and d not in self.store]
        if not to_ask:
            return
        for d in to_ask:
            self._inflight[d] = dst
            self._requested.add(d)
        self.requests_sent += 1
        self._ctr_requests.inc()
        if retry:
            self._ctr_retries.inc()
        if self.obs.enabled:
            self.obs.journal.emit(
                self.net.now(), "retrieval.request", self.net.node_id,
                dst=dst, blocks=len(to_ask), retry=retry,
            )
        self.net.send(dst, RetrievalRequest(digests=tuple(to_ask)))
        for d in to_ask:
            self.net.set_timer(self.retry_delay, RETRY_TAG, d)

    # -- responder side ----------------------------------------------------------

    def on_request(self, src: int, request: RetrievalRequest) -> None:
        """Answer with every requested block we have delivered."""
        blocks = tuple(
            self.store.get(d) for d in request.digests if d in self.store
        )
        if blocks:
            self.responses_sent += 1
            self.blocks_served += len(blocks)
            self._ctr_responses.inc()
            self._ctr_served.inc(len(blocks))
            self.net.send(src, RetrievalResponse(blocks=blocks))

    # -- requester side -----------------------------------------------------------

    def on_response(self, src: int, response: RetrievalResponse) -> List[Tuple[Block, int]]:
        """Hand back the retrieved bodies for the node's accept path.

        The accept path itself decides what a retrieved block means for its
        own broadcast instance (a CBC block still needs its echo quorum; a
        PBC block can complete immediately).
        """
        out: List[Tuple[Block, int]] = []
        for block in response.blocks:
            if block.digest not in self._requested:
                continue  # unsolicited block: not digest-pinned, ignore
            self._inflight.pop(block.digest, None)
            out.append((block, src))
        return out

    def on_retry_timer(self, digest: Digest, candidates: Set[int]) -> None:
        """Retry a still-missing block against a different replica.

        ``candidates`` are replicas known to hold the block (echoers); if
        empty, any replica other than the previous responder is tried —
        an honest one that delivered the dependent's ancestry will answer.
        """
        if digest in self.store or digest not in self._inflight:
            return
        previous = self._inflight.pop(digest)
        pool = [c for c in candidates if c != previous and c != self.net.node_id]
        if not pool:
            pool = [
                i
                for i in range(self.net.n)
                if i not in (previous, self.net.node_id)
            ]
        if not pool:
            pool = [previous]
        self._request([digest], self.rng.choice(pool), retry=True)

    # -- progress on deliveries ------------------------------------------------

    def satisfied_by(self, delivered: Digest) -> List[Tuple[Block, int, bool]]:
        """Called when any block is delivered; returns ``(block, src,
        retrieved)`` triples whose parent sets just became complete (ready
        for re-acceptance)."""
        self._inflight.pop(delivered, None)
        ready: List[Tuple[Block, int, bool]] = []
        for dep_digest in self._dependents.pop(delivered, ()):  # noqa: B020
            entry = self._pending.get(dep_digest)
            if entry is None:
                continue
            entry.missing.discard(delivered)
            if not entry.missing:
                del self._pending[dep_digest]
                ready.append((entry.block, entry.src, entry.retrieved))
        return ready

    def drop_pending(self, digest: Digest) -> None:
        """Forget a pending block (it was delivered through another path or
        proved invalid)."""
        entry = self._pending.pop(digest, None)
        if entry is None:
            return
        for parent in entry.missing:
            deps = self._dependents.get(parent)
            if deps is not None:
                deps.discard(digest)
                if not deps:
                    del self._dependents[parent]
