"""Tests for repro.crypto.primes: primality testing and embedded constants."""

import pytest

from repro.crypto.primes import (
    SAFE_PRIME_256,
    SAFE_PRIME_512,
    SAFE_PRIMES,
    find_safe_prime,
    is_probable_prime,
    is_safe_prime,
)


class TestMillerRabin:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101, 7919):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for c in (1, 4, 6, 9, 15, 21, 25, 91, 100, 7917):
            assert not is_probable_prime(c)

    def test_zero_and_negatives(self):
        assert not is_probable_prime(0)
        assert not is_probable_prime(-7)

    def test_carmichael_numbers_rejected(self):
        # Fermat pseudoprimes that fool a^(n-1) tests must not fool MR.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not is_probable_prime(carmichael)

    def test_large_known_prime(self):
        assert is_probable_prime(2**127 - 1)  # Mersenne prime

    def test_large_known_composite(self):
        assert not is_probable_prime(2**128 + 1)


class TestEmbeddedSafePrimes:
    @pytest.mark.parametrize("sp", [SAFE_PRIME_256, SAFE_PRIME_512])
    def test_relation_p_equals_2q_plus_1(self, sp):
        assert sp.p == 2 * sp.q + 1

    @pytest.mark.parametrize("sp", [SAFE_PRIME_256, SAFE_PRIME_512])
    def test_both_components_prime(self, sp):
        assert is_probable_prime(sp.p)
        assert is_probable_prime(sp.q)

    @pytest.mark.parametrize("sp", [SAFE_PRIME_256, SAFE_PRIME_512])
    def test_is_safe_prime_agrees(self, sp):
        assert is_safe_prime(sp.p)

    @pytest.mark.parametrize("sp", [SAFE_PRIME_256, SAFE_PRIME_512])
    def test_advertised_bit_length(self, sp):
        assert sp.p.bit_length() == sp.bits

    @pytest.mark.parametrize("sp", [SAFE_PRIME_256, SAFE_PRIME_512])
    def test_generator_has_order_q(self, sp):
        assert pow(sp.g, sp.q, sp.p) == 1
        assert sp.g != 1

    def test_registry_contents(self):
        assert set(SAFE_PRIMES) == {256, 512}


class TestFindSafePrime:
    def test_finds_small_safe_prime(self):
        sp = find_safe_prime(bits=24, seed=3)
        assert is_safe_prime(sp.p)
        assert sp.p == 2 * sp.q + 1

    def test_deterministic_per_seed(self):
        assert find_safe_prime(24, seed=5).p == find_safe_prime(24, seed=5).p
