"""Embedded safe primes and primality testing.

Safe primes ``p = 2q + 1`` (with ``q`` prime) define the Schnorr groups used
by the signature scheme and the threshold coin.  Generating safe primes is
slow, so two are precomputed (found by a seeded search and verified by
Miller-Rabin at import time in the test suite):

* :data:`SAFE_PRIME_256` — default; fast enough for simulations with tens of
  thousands of signatures.  **Not** cryptographically strong.
* :data:`SAFE_PRIME_512` — for users who want a bigger margin while staying
  pure Python.

Both moduli use ``g = 4`` as generator of the order-``q`` quadratic-residue
subgroup (4 is a QR for every safe prime ``p > 5`` since ``4 = 2²``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)


def is_probable_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test.

    With ``rounds=40`` the error probability is below ``4**-40``, far beyond
    anything a simulation can observe.  A seeded ``rng`` makes the test
    deterministic for reproducible test runs.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = rng or random.Random(0xC0FFEE ^ (n & 0xFFFFFFFF))
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def is_safe_prime(p: int, rounds: int = 40) -> bool:
    """True if both ``p`` and ``(p - 1) / 2`` are (probable) primes."""
    return p % 2 == 1 and is_probable_prime(p, rounds) and is_probable_prime((p - 1) // 2, rounds)


@dataclass(frozen=True)
class SafePrime:
    """A safe prime ``p = 2q + 1`` with subgroup generator ``g``."""

    bits: int
    p: int
    q: int
    g: int = 4

    def __post_init__(self) -> None:
        assert self.p == 2 * self.q + 1, "p must equal 2q + 1"


#: 256-bit safe prime (default group modulus).
SAFE_PRIME_256 = SafePrime(
    bits=256,
    p=0xDB941A957233C6D83BDEEE21ED58BDD86094993D0723E29D86108588ECE550DB,
    q=0x6DCA0D4AB919E36C1DEF7710F6AC5EEC304A4C9E8391F14EC30842C47672A86D,
)

#: 512-bit safe prime (higher-margin alternative).
SAFE_PRIME_512 = SafePrime(
    bits=512,
    p=0xC210A48F50891FED9617465470D8AC3F0835FE784A6E5329DF7D29F31CE226C4498982DEC94B469BFBAE9EA3FEC374B998430283A5D9E8CCDD8AF1A8DC335B67,
    q=0x61085247A8448FF6CB0BA32A386C561F841AFF3C25372994EFBE94F98E71136224C4C16F64A5A34DFDD74F51FF61BA5CCC218141D2ECF4666EC578D46E19ADB3,
)

SAFE_PRIMES = {256: SAFE_PRIME_256, 512: SAFE_PRIME_512}


def find_safe_prime(bits: int, seed: int = 0) -> SafePrime:
    """Search for a fresh safe prime of the given size (slow; test helper).

    Used by tests to cross-check the embedded constants and by users who
    want a modulus not published in this source tree.
    """
    rng = random.Random(seed)
    while True:
        q = rng.getrandbits(bits - 1) | (1 << (bits - 2)) | 1
        if is_probable_prime(q, rounds=20, rng=rng) and is_probable_prime(
            2 * q + 1, rounds=20, rng=rng
        ):
            return SafePrime(bits=bits, p=2 * q + 1, q=q)
