"""Tests for repro.net.latency: the propagation models."""

import random

import pytest

from repro.errors import ConfigError
from repro.net.latency import (
    WAN_REGION_DELAYS,
    FixedLatency,
    UniformLatency,
    WanLatency,
    make_latency_model,
)


@pytest.fixture
def rng():
    return random.Random(0)


class TestFixed:
    def test_constant(self, rng):
        model = FixedLatency(0.07)
        assert model.delay(0, 1, rng) == 0.07
        assert model.delay(3, 2, rng) == 0.07

    def test_self_send_free(self, rng):
        assert FixedLatency(0.07).delay(2, 2, rng) == 0.0

    def test_mean(self):
        assert FixedLatency(0.05).mean_delay(0, 1) == 0.05

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            FixedLatency(-1)


class TestUniform:
    def test_range(self, rng):
        model = UniformLatency(0.01, 0.05)
        for _ in range(200):
            d = model.delay(0, 1, rng)
            assert 0.01 <= d <= 0.05

    def test_self_send_free(self, rng):
        assert UniformLatency(0.01, 0.05).delay(1, 1, rng) == 0.0

    def test_mean(self):
        assert UniformLatency(0.02, 0.04).mean_delay(0, 1) == pytest.approx(0.03)

    def test_invalid_range(self):
        with pytest.raises(ConfigError):
            UniformLatency(0.05, 0.01)
        with pytest.raises(ConfigError):
            UniformLatency(-0.1, 0.1)

    def test_deterministic_per_seed(self):
        model = UniformLatency(0.0, 1.0)
        a = [model.delay(0, 1, random.Random(9)) for _ in range(5)]
        b = [model.delay(0, 1, random.Random(9)) for _ in range(5)]
        assert a == b


class TestWan:
    def test_matrix_symmetric(self):
        for i in range(4):
            for j in range(4):
                assert WAN_REGION_DELAYS[i][j] == WAN_REGION_DELAYS[j][i]

    def test_region_placement_round_robin(self):
        model = WanLatency()
        assert model.region_of(0) == 0
        assert model.region_of(5) == 1
        assert model.region_of(11) == 3

    def test_intra_region_cheap(self, rng):
        model = WanLatency(jitter_frac=0.0)
        # replicas 0 and 4 are both region 0
        assert model.delay(0, 4, rng) == pytest.approx(0.001)

    def test_inter_region_uses_matrix(self, rng):
        model = WanLatency(jitter_frac=0.0)
        assert model.delay(0, 1, rng) == pytest.approx(WAN_REGION_DELAYS[0][1])

    def test_jitter_bounds(self, rng):
        model = WanLatency(jitter_frac=0.1)
        base = WAN_REGION_DELAYS[0][2]
        for _ in range(200):
            d = model.delay(0, 2, rng)
            assert base * 0.9 <= d <= base * 1.1

    def test_self_send_free(self, rng):
        assert WanLatency().delay(3, 3, rng) == 0.0

    def test_mean_ignores_jitter(self):
        model = WanLatency(jitter_frac=0.1)
        assert model.mean_delay(0, 1) == WAN_REGION_DELAYS[0][1]

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            WanLatency(jitter_frac=1.5)
        with pytest.raises(ConfigError):
            WanLatency(num_regions=9)


class TestFactory:
    def test_names(self):
        assert isinstance(make_latency_model("fixed"), FixedLatency)
        assert isinstance(make_latency_model("uniform"), UniformLatency)
        assert isinstance(make_latency_model("wan4"), WanLatency)
        lan = make_latency_model("lan")
        assert isinstance(lan, FixedLatency)
        assert lan.delay_s == 0.001

    def test_kwargs_forwarded(self):
        model = make_latency_model("fixed", delay_s=0.25)
        assert model.delay_s == 0.25

    def test_unknown(self):
        with pytest.raises(ConfigError):
            make_latency_model("carrier-pigeon")
