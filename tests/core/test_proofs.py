"""Tests for repro.core.proofs: Byzantine-proof verification."""

import pytest

from repro.config import SystemConfig
from repro.core.proofs import ByzantineProof, proof_from_blocks
from repro.crypto.backend import HmacBackend, NullBackend
from repro.dag.block import genesis_block, make_block


@pytest.fixture
def system():
    return SystemConfig(n=4, crypto="hmac")


@pytest.fixture
def backend(system):
    return HmacBackend(0, system)


def equivocation_pair(system, author=2, round_=1):
    signer = HmacBackend(author, system)
    parents = [genesis_block(a).digest for a in range(4)]
    a = make_block(round_, author, parents, repropose_index=0, signer=signer)
    b = make_block(round_, author, parents, repropose_index=1, signer=signer)
    return a, b


class TestVerification:
    def test_genuine_proof_verifies(self, system, backend):
        a, b = equivocation_pair(system)
        assert proof_from_blocks(a, b).verify(backend)

    def test_same_block_twice_rejected(self, system, backend):
        a, _ = equivocation_pair(system)
        assert not ByzantineProof(culprit=2, block_a=a, block_b=a).verify(backend)

    def test_different_slots_rejected(self, system, backend):
        a, _ = equivocation_pair(system, round_=1)
        c, _ = equivocation_pair(system, round_=2)
        assert not ByzantineProof(culprit=2, block_a=a, block_b=c).verify(backend)

    def test_different_authors_rejected(self, system, backend):
        a, _ = equivocation_pair(system, author=1)
        c, _ = equivocation_pair(system, author=2)
        assert not ByzantineProof(culprit=1, block_a=a, block_b=c).verify(backend)

    def test_culprit_mismatch_rejected(self, system, backend):
        a, b = equivocation_pair(system, author=2)
        assert not ByzantineProof(culprit=1, block_a=a, block_b=b).verify(backend)

    def test_forged_signature_rejected(self, system, backend):
        """Framing an honest replica must fail: blocks signed by someone
        else claiming the victim's authorship don't verify."""
        framer = HmacBackend(3, system)
        parents = [genesis_block(x).digest for x in range(4)]
        a = make_block(1, 2, parents, repropose_index=0, signer=framer)
        b = make_block(1, 2, parents, repropose_index=1, signer=framer)
        assert not ByzantineProof(culprit=2, block_a=a, block_b=b).verify(backend)

    def test_null_backend_accepts_structurally_valid(self, system):
        a, b = equivocation_pair(system)
        assert proof_from_blocks(a, b).verify(NullBackend())


class TestIdentity:
    def test_digest_order_normalized(self, system):
        a, b = equivocation_pair(system)
        assert (
            ByzantineProof(2, a, b).digest == ByzantineProof(2, b, a).digest
        )

    def test_digest_distinct_per_pair(self, system):
        a, b = equivocation_pair(system, round_=1)
        c, d = equivocation_pair(system, round_=4)
        assert ByzantineProof(2, a, b).digest != ByzantineProof(2, c, d).digest

    def test_proof_from_blocks_takes_author(self, system):
        a, b = equivocation_pair(system, author=3)
        assert proof_from_blocks(a, b).culprit == 3
