"""Tests for repro.analysis.latency: stage decomposition + critical path.

The load-bearing acceptance check lives in ``TestEndToEnd``: on a real
traced n=4 run, every committed block's stage widths must sum *exactly*
to its end-to-end commit latency (the reconciliation guarantee), and the
human-readable ``repro explain`` rendering must reflect that.
"""

import pytest

from repro.analysis.latency import (
    STAGES,
    BlockTimeline,
    build_timelines,
    critical_path,
    explain_report,
    format_report,
    slowest_committed,
    stage_breakdown,
    write_report,
)
from repro.config import ExperimentConfig, ProtocolConfig, SystemConfig
from repro.harness.runner import run_experiment
from repro.obs import EventJournal, MetricsRegistry, Observability, Tracer


def traced_run(protocol="lightdag2", seed=1, n=4, duration=4.0, health=False):
    cfg = ExperimentConfig(
        system=SystemConfig(n=n, crypto="hmac", seed=seed),
        protocol=ProtocolConfig(batch_size=20),
        protocol_name=protocol,
        duration=duration,
        warmup=1.0,
        seed=seed,
    )
    journal = EventJournal()
    obs = Observability(MetricsRegistry(), journal, trace=Tracer(journal))
    return run_experiment(cfg, obs=obs, health=health), obs


class TestStageReconciliation:
    def test_full_timeline_telescopes(self):
        tl = BlockTimeline(
            node=0, digest="d", created=1.0, body=1.1, quorum=1.3,
            delivered=1.35, coin=1.8, committed=2.0,
        )
        stages = tl.stages()
        assert all(width >= 0 for width in stages.values())
        assert sum(stages.values()) == pytest.approx(1.0, abs=1e-12)
        assert stages["broadcast"] == pytest.approx(0.1)
        assert stages["coin"] == pytest.approx(0.45)

    def test_missing_milestones_are_zero_width(self):
        tl = BlockTimeline(node=0, digest="d", created=1.0, committed=3.0)
        stages = tl.stages()
        assert sum(stages.values()) == pytest.approx(2.0)
        # Nothing in between: the whole latency lands in 'ordering'.
        assert stages["ordering"] == pytest.approx(2.0)

    def test_out_of_range_milestone_cannot_break_sum(self):
        # A quorum recorded *after* the commit (possible when the quorum
        # crossed late at this replica) is clamped, not propagated.
        tl = BlockTimeline(
            node=0, digest="d", created=1.0, body=1.2, quorum=5.0,
            committed=2.0,
        )
        stages = tl.stages()
        assert all(width >= 0 for width in stages.values())
        assert sum(stages.values()) == pytest.approx(1.0)

    def test_unordered_milestones_stay_monotonic(self):
        # delivered < quorum (retrieval path) must not produce negatives.
        tl = BlockTimeline(
            node=0, digest="d", created=0.0, body=0.5, quorum=0.9,
            delivered=0.6, coin=1.0, committed=1.5,
        )
        stages = tl.stages()
        assert all(width >= 0 for width in stages.values())
        assert sum(stages.values()) == pytest.approx(1.5)

    def test_incomplete_timeline_has_no_stages(self):
        assert BlockTimeline(node=0, digest="d", created=1.0).stages() is None
        assert BlockTimeline(node=0, digest="d", committed=1.0).stages() is None


class TestBuildTimelines:
    def events(self):
        return [
            {"t": 0.0, "node": 0, "type": "block.propose",
             "digest": "aa", "round": 1, "author": 0},
            {"t": 0.1, "node": 1, "type": "trace.body",
             "digest": "aa", "round": 1, "author": 0, "parents": ["pp"]},
            {"t": 0.2, "node": 1, "type": "trace.quorum", "digest": "aa"},
            {"t": 0.25, "node": 1, "type": "block.deliver",
             "digest": "aa", "round": 1, "author": 0},
            {"t": 0.5, "node": 1, "type": "coin.reveal", "wave": 1},
            {"t": 0.6, "node": 1, "type": "block.commit",
             "digest": "aa", "round": 1, "author": 0, "wave": 1},
        ]

    def test_milestones_joined_across_events(self):
        timelines = build_timelines(self.events())
        tl = timelines[(1, "aa")]
        assert tl.created == 0.0
        assert tl.body == 0.1
        assert tl.quorum == 0.2
        assert tl.delivered == 0.25
        assert tl.coin == 0.5
        assert tl.committed == 0.6
        assert tl.parents == ("pp",)
        assert tl.end_to_end == pytest.approx(0.6)

    def test_accepts_event_namedtuples(self):
        journal = EventJournal()
        for row in self.events():
            data = {k: v for k, v in row.items()
                    if k not in ("t", "node", "type")}
            journal.emit(row["t"], row["type"], row["node"], **data)
        timelines = build_timelines(journal.events)
        assert timelines[(1, "aa")].committed == 0.6

    def test_breakdown_shares_sum_to_one(self):
        report = stage_breakdown(build_timelines(self.events()))
        assert report["blocks"] == 1
        shares = sum(row["share"] for row in report["stages"].values())
        assert shares == pytest.approx(1.0)
        assert report["reconciliation_max_abs_error"] < 1e-12


class TestCriticalPath:
    def test_walks_latest_delivered_parent(self):
        timelines = {
            (0, "c"): BlockTimeline(node=0, digest="c", delivered=3.0,
                                    parents=("a", "b")),
            (0, "a"): BlockTimeline(node=0, digest="a", delivered=1.0),
            (0, "b"): BlockTimeline(node=0, digest="b", delivered=2.0,
                                    parents=("a",)),
        }
        path = critical_path(timelines, 0, "c")
        assert [hop["digest"] for hop in path] == ["a", "b", "c"]
        assert path[-1]["waited_for_parent"] == pytest.approx(1.0)

    def test_cycle_guard_terminates(self):
        timelines = {
            (0, "x"): BlockTimeline(node=0, digest="x", delivered=1.0,
                                    parents=("y",)),
            (0, "y"): BlockTimeline(node=0, digest="y", delivered=0.5,
                                    parents=("x",)),
        }
        path = critical_path(timelines, 0, "x")
        assert [hop["digest"] for hop in path] == ["y", "x"]

    def test_missing_block_is_empty(self):
        assert critical_path({}, 0, "nope") == []


class TestEndToEnd:
    """Acceptance: stage sums reconcile with measured commit latency."""

    def test_stage_sums_equal_end_to_end_per_block(self):
        _, obs = traced_run()
        timelines = build_timelines(obs.journal.events)
        decomposed = 0
        for tl in timelines.values():
            stages = tl.stages()
            if stages is None:
                continue
            decomposed += 1
            assert sum(stages.values()) == pytest.approx(
                tl.end_to_end, abs=1e-9
            )
        assert decomposed > 0

    def test_report_attached_to_result_and_reconciles(self):
        result, obs = traced_run(health=True)
        report = result.latency_report
        assert report is not None
        assert report["blocks"] > 0
        assert report["reconciliation_max_abs_error"] < 1e-9
        mean_sum = sum(row["mean"] for row in report["stages"].values())
        assert mean_sum == pytest.approx(report["end_to_end"]["mean"],
                                         abs=1e-9)
        assert set(report["stages"]) == set(STAGES)
        assert report["health"]["verdict"] in (
            "healthy", "degraded", "stalled", "no-progress"
        )
        assert result.health is not None

    def test_critical_path_of_slowest_block_nonempty(self):
        _, obs = traced_run()
        timelines = build_timelines(obs.journal.events)
        worst = slowest_committed(timelines)
        assert worst is not None
        path = critical_path(timelines, worst.node, worst.digest)
        assert path
        assert path[-1]["digest"] == worst.digest

    def test_format_report_renders(self):
        result, _ = traced_run(health=True)
        text = format_report(result.latency_report)
        for stage in STAGES:
            assert stage in text
        assert "reconciles with end-to-end mean" in text
        assert "health:" in text

    def test_write_report_is_json(self, tmp_path):
        import json

        _, obs = traced_run()
        report = explain_report(obs.journal.events, protocol="lightdag2", n=4)
        path = tmp_path / "report.json"
        write_report(report, path)
        loaded = json.loads(path.read_text())
        assert loaded["blocks"] == report["blocks"]

    def test_untraced_run_attaches_no_report(self):
        cfg = ExperimentConfig(
            system=SystemConfig(n=4, crypto="hmac", seed=1),
            protocol=ProtocolConfig(batch_size=20),
            protocol_name="lightdag2",
            duration=2.0,
            warmup=0.5,
            seed=1,
        )
        obs = Observability(MetricsRegistry(), EventJournal())
        result = run_experiment(cfg, obs=obs)
        assert result.latency_report is None


class TestTraceDeterminism:
    def test_same_seed_identical_trace_timeline(self):
        _, obs_a = traced_run(seed=3, duration=3.0)
        _, obs_b = traced_run(seed=3, duration=3.0)
        trace_a = [e for e in obs_a.journal if e.type.startswith("trace.")]
        trace_b = [e for e in obs_b.journal if e.type.startswith("trace.")]
        assert trace_a and trace_a == trace_b

    def test_tracing_does_not_perturb_results(self):
        # Tracing observes the run; it must not change what the run does.
        cfg = ExperimentConfig(
            system=SystemConfig(n=4, crypto="hmac", seed=5),
            protocol=ProtocolConfig(batch_size=20),
            protocol_name="lightdag2",
            duration=3.0,
            warmup=1.0,
            seed=5,
        )
        plain = run_experiment(cfg)
        journal = EventJournal()
        obs = Observability(MetricsRegistry(), journal, trace=Tracer(journal))
        traced = run_experiment(cfg, obs=obs, health=True)
        assert traced.committed_txs == plain.committed_txs
        assert traced.rounds_reached == plain.rounds_reached
        assert traced.mean_latency == pytest.approx(plain.mean_latency)
