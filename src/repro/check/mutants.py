"""Deliberately broken protocol variants for oracle self-tests.

An oracle that never fires is indistinguishable from one that cannot
fire.  These mutants each break exactly one commit-rule ingredient the
paper's safety argument depends on; the fuzzer run against them (tests
and the ``--mutants`` CLI flag) must catch and shrink a violation, which
is the evidence the oracles have teeth.

They are kept out of :data:`~repro.harness.runner.PROTOCOL_REGISTRY` —
callers opt in by passing a merged registry to
:func:`~repro.harness.runner.run_experiment` or
:func:`~repro.check.fuzzer.fuzz`.
"""

from __future__ import annotations

from typing import Optional

from ..core.lightdag1 import LightDag1Node


class UnsafeSupportLightDag1Node(LightDag1Node):
    """Commits a wave leader on a single supporting block instead of f+1.

    With support 1 two replicas can directly commit different leader
    subsets whose cascades disagree — the committed-leader-sequence and
    digest-prefix oracles must flag the divergence (Theorem 2 is exactly
    the claim that f+1 support makes this impossible).
    """

    def _commit_threshold_value(self) -> int:
        return 1


class NoCascadeLightDag1Node(LightDag1Node):
    """Never commits skipped leaders indirectly (Algorithm 1 disabled).

    A replica that directly commits wave v while another replica first
    cascades v-1's leader in produces ledgers that disagree at the first
    skipped position — caught by the position/commit-metadata agreement
    oracles.
    """

    def _cascade_candidate(self, w: int, leader_v) -> Optional[object]:
        return None


#: name → node class, same shape as PROTOCOL_REGISTRY, for merging.
MUTANT_REGISTRY = {
    "lightdag1-unsafe-support": UnsafeSupportLightDag1Node,
    "lightdag1-no-cascade": NoCascadeLightDag1Node,
}
