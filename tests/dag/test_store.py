"""Tests for repro.dag.store: slot indexing, strict/permissive policies."""

import pytest

from repro.dag.block import genesis_block, make_block
from repro.dag.store import DagStore
from repro.errors import EquivocationDetected, UnknownBlockError

from .helpers import build_round, grow_chain


@pytest.fixture
def store():
    return DagStore(n=4, strict=True)


@pytest.fixture
def loose_store():
    return DagStore(n=4, strict=False)


class TestGenesisBootstrap:
    def test_genesis_preinserted(self, store):
        assert store.round_author_count(0) == 4
        for author in range(4):
            assert store.block_in_slot(0, author) is not None

    def test_len_counts_genesis(self, store):
        assert len(store) == 4


class TestInsertion:
    def test_add_and_get(self, store):
        block = build_round(store, 1, [0])[0]
        assert block.digest in store
        assert store.get(block.digest) is block

    def test_duplicate_add_returns_false(self, store):
        block = build_round(store, 1, [0])[0]
        assert store.add(block) is False

    def test_strict_rejects_second_block_in_slot(self, store):
        build_round(store, 1, [0])
        parents = [genesis_block(a).digest for a in range(4)]
        twin = make_block(1, 0, parents, repropose_index=1)
        with pytest.raises(EquivocationDetected):
            store.add(twin)

    def test_permissive_keeps_both(self, loose_store):
        build_round(loose_store, 1, [0])
        parents = [genesis_block(a).digest for a in range(4)]
        twin = make_block(1, 0, parents, repropose_index=1)
        assert loose_store.add(twin)
        assert len(loose_store.blocks_in_slot(1, 0)) == 2
        assert loose_store.slot_is_equivocated(1, 0)

    def test_first_block_wins_block_in_slot(self, loose_store):
        first = build_round(loose_store, 1, [0])[0]
        parents = [genesis_block(a).digest for a in range(4)]
        loose_store.add(make_block(1, 0, parents, repropose_index=1))
        assert loose_store.block_in_slot(1, 0) is first


class TestLookups:
    def test_get_unknown_raises(self, store):
        with pytest.raises(UnknownBlockError):
            store.get(b"\x00" * 32)

    def test_get_optional_none(self, store):
        assert store.get_optional(b"\x00" * 32) is None

    def test_missing_filters(self, store):
        block = build_round(store, 1, [0])[0]
        unknown = b"\x11" * 32
        assert store.missing([block.digest, unknown]) == [unknown]

    def test_blocks_in_round_sorted_by_author(self, store):
        build_round(store, 1, [2, 0, 3, 1])
        authors = [b.author for b in store.blocks_in_round(1)]
        assert authors == [0, 1, 2, 3]

    def test_round_author_count(self, store):
        build_round(store, 1, [0, 2])
        assert store.round_author_count(1) == 2
        assert store.authors_in_round(1) == {0, 2}

    def test_highest_round(self, store):
        assert store.highest_round() == 0
        grow_chain(store, rounds=3, n=4)
        assert store.highest_round() == 3

    def test_empty_round_queries(self, store):
        assert store.blocks_in_round(9) == []
        assert store.round_author_count(9) == 0
        assert store.block_in_slot(9, 0) is None


class TestReferenceQueries:
    def test_parents_of(self, store):
        blocks = build_round(store, 1, [0, 1, 2, 3])
        parents = store.parents_of(blocks[0])
        assert {p.author for p in parents} == {0, 1, 2, 3}
        assert all(p.round == 0 for p in parents)

    def test_parents_of_missing_raises(self, store):
        orphan = make_block(2, 0, [b"\x22" * 32])
        with pytest.raises(UnknownBlockError):
            store.parents_of(orphan)

    def test_direct_reference_count(self, store):
        r1 = build_round(store, 1, [0, 1, 2, 3])
        # round 2 blocks reference only authors 0..2 of round 1
        subset = [b.digest for b in r1[:3]]
        build_round(store, 2, [0, 1, 2, 3], parents_per_author={a: subset for a in range(4)})
        assert store.direct_reference_count(r1[0].digest, 2) == 4
        assert store.direct_reference_count(r1[3].digest, 2) == 0
