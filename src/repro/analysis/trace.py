"""Commit-pipeline tracing: where does the latency go?

A committed transaction's end-to-end latency decomposes into

* **dissemination** — block proposal → local delivery at the observer
  (the broadcast primitive's cost: 1 step PBC, 2 CBC, 3 RBC, plus
  queueing), and
* **ordering** — local delivery → commitment (waiting for the wave's coin
  reveal and the leader's support, plus indirect-commit delay for skipped
  waves).

The paper's whole argument is about shrinking *both* terms (lighter
broadcast shrinks dissemination; shorter waves shrink ordering), so the
split is the single most informative diagnostic when a configuration
underperforms.  :class:`PipelineTrace` hooks one replica's delivery and
commit paths and reports the distribution of each stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..crypto.hashing import Digest
from ..dag.ledger import CommitRecord
from .stats import Aggregate


@dataclass
class StageSample:
    """One block's timeline at the observing replica."""

    proposed_at: float
    delivered_at: float
    committed_at: float

    @property
    def dissemination(self) -> float:
        return self.delivered_at - self.proposed_at

    @property
    def ordering(self) -> float:
        return self.committed_at - self.delivered_at

    @property
    def total(self) -> float:
        return self.committed_at - self.proposed_at


@dataclass
class PipelineTrace:
    """Collects per-block stage timings at one replica.

    Wire it into a node via the ``on_deliver`` and ``on_commit`` hooks:

    >>> trace = PipelineTrace()
    >>> node = LightDag1Node(..., on_commit=trace.on_commit,
    ...                      on_deliver=trace.on_deliver)

    Block proposal times come from the payload's stamped submit times
    (saturating mempools stamp at proposal), so no protocol change is
    needed to observe them.
    """

    delivered_at: Dict[Digest, float] = field(default_factory=dict)
    samples: List[StageSample] = field(default_factory=list)

    def on_deliver(self, block, now: float) -> None:
        self.delivered_at.setdefault(block.digest, now)

    def on_commit(self, record: CommitRecord) -> None:
        payload = record.block.payload
        if payload.count == 0:
            return
        delivered = self.delivered_at.get(record.block.digest)
        if delivered is None:
            return
        self.samples.append(
            StageSample(
                proposed_at=payload.mean_submit_time(),
                delivered_at=delivered,
                committed_at=record.commit_time,
            )
        )

    # -- reporting ----------------------------------------------------------------

    def dissemination_stats(self) -> Aggregate:
        return Aggregate.of([s.dissemination for s in self.samples])

    def ordering_stats(self) -> Aggregate:
        return Aggregate.of([s.ordering for s in self.samples])

    def total_stats(self) -> Aggregate:
        return Aggregate.of([s.total for s in self.samples])

    def summary(self) -> Dict[str, float]:
        if not self.samples:
            return {"blocks": 0}
        return {
            "blocks": len(self.samples),
            "dissemination_mean_s": self.dissemination_stats().mean,
            "ordering_mean_s": self.ordering_stats().mean,
            "total_mean_s": self.total_stats().mean,
            "ordering_share": (
                self.ordering_stats().mean / self.total_stats().mean
            ),
        }
