"""Plain Broadcast (PBC) — one communication step, no guarantees.

    "PBC represents the simplest broadcast process, where the broadcaster
    transmits data to each replica, and each replica delivers the data once
    receiving it."  (§I)

PBC provides validity only: no consistency (a Byzantine broadcaster can
send different blocks to different replicas — the equivocation LightDAG2's
Rules 1–4 exist to contain) and no totality (a receiver the broadcaster
skips never hears the block except through retrieval).

Delivery is still gated on the protocol's ``mark_ready`` signal so that the
§IV-A invariant — a block is delivered only after all its ancestors — holds
uniformly across broadcast kinds.
"""

from __future__ import annotations

from typing import Optional

from ..crypto.hashing import Digest
from ..dag.block import Block
from ..net.interfaces import NetworkAPI
from ..obs import NULL_OBS, Observability
from .base import DeliverCallback, InstanceTracker
from .messages import BlockVal


class PbcManager:
    """All PBC instances of one replica."""

    #: Communication steps a PBC takes (for the step-latency model).
    STEPS = 1

    def __init__(
        self,
        net: NetworkAPI,
        on_deliver: DeliverCallback,
        obs: Optional[Observability] = None,
    ) -> None:
        self.net = net
        obs = obs or NULL_OBS
        metrics = obs.metrics
        metrics.gauge("broadcast.steps", primitive="pbc").set(self.STEPS)
        self._vals_ctr = metrics.counter("broadcast.vals_sent", primitive="pbc")
        self._equiv_ctr = metrics.counter("broadcast.equivocations", primitive="pbc")
        self._retrieved_ctr = metrics.counter(
            "broadcast.retrieved_deliveries", primitive="pbc"
        )
        self.tracker = InstanceTracker(on_deliver, obs=obs, primitive="pbc")

    # -- proposer side ---------------------------------------------------------

    def broadcast(self, block: Block) -> None:
        """Send the block to everyone (including ourselves, so the proposer
        runs the same delivery path as every other replica)."""
        self._vals_ctr.inc()
        self.net.broadcast(BlockVal(block))

    def equivocate(self, assignments: dict) -> None:
        """Byzantine helper: send a *different* block per destination.

        ``assignments`` maps destination replica id to the block it should
        receive.  Only adversarial node implementations call this.
        """
        self._equiv_ctr.inc()
        for dst, block in assignments.items():
            self.net.send(dst, BlockVal(block))

    # -- receiver side ---------------------------------------------------------

    def on_val(self, src: int, block: Block) -> None:
        """Record an arriving body.  The protocol validates and later calls
        :meth:`mark_ready`, which completes delivery."""
        self.tracker.record_body(block)

    def mark_ready(self, digest: Digest) -> bool:
        """Protocol signal; PBC's delivery predicate is just body-present."""
        inst = self.tracker.mark_ready(digest)
        return self.tracker.try_deliver(inst, predicate_met=True)

    def refresh_vote(self, block: Block) -> None:
        """PBC has no votes; nothing to refresh."""

    def deliver_retrieved(self, digest: Digest) -> bool:
        """§IV-A direct delivery of a digest-pinned retrieved block (for
        PBC this coincides with mark_ready — no quorum to bypass)."""
        delivered = self.mark_ready(digest)
        if delivered:
            self._retrieved_ctr.inc()
        return delivered

    def gc_below(self, horizon: int) -> int:
        """Drop per-instance state for rounds below ``horizon``."""
        return self.tracker.gc_below(horizon)

    def is_delivered(self, digest: Digest) -> bool:
        return self.tracker.is_delivered(digest)

    def body_of(self, digest: Digest):
        inst = self.tracker.peek(digest)
        return inst.body if inst else None
