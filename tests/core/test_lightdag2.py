"""LightDAG2 protocol tests (§V): Rules 1-4, proofs, reproposals, exclusion.

Two layers: FakeNet-driven unit tests that pin each rule's mechanics on a
single node, and simulator-driven tests covering whole-system behaviour
under equivocation.
"""

import pytest

from repro.broadcast.messages import (
    BlockEcho,
    BlockVal,
    ByzantineProofMsg,
    ContradictionNotice,
)
from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag2 import LightDag2Node
from repro.core.proofs import proof_from_blocks
from repro.crypto.backend import HmacBackend
from repro.crypto.keys import TrustedDealer
from repro.dag.block import genesis_block, make_block

from ..conftest import FakeNet


@pytest.fixture
def system():
    return SystemConfig(n=4, crypto="hmac", seed=0)


@pytest.fixture
def chains(system):
    return TrustedDealer(system).deal()


def make_node(system, chains, node_id=0):
    node = LightDag2Node(
        FakeNet(node_id=node_id, n=4), system, ProtocolConfig(batch_size=5), chains[node_id]
    )
    node.on_start()
    return node


def pump(node):
    """Fire queued zero-delay advance timers (FakeNet doesn't).

    Only the advance tick is replayed: the periodic coin-sync timer
    re-arms itself on every fire and would loop forever here.
    """
    from repro.core.base import ADVANCE_TAG

    pending = [t for t in node.net.timers if t[1] == ADVANCE_TAG]
    node.net.timers.clear()
    while pending:
        _, tag, data = pending.pop(0)
        node.on_timer(tag, data)
        pending.extend(
            t for t in node.net.timers if t[1] == ADVANCE_TAG
        )
        node.net.timers.clear()


def signed(system, author, round_, parents, j=0):
    return make_block(
        round_, author, parents, repropose_index=j, signer=HmacBackend(author, system)
    )


def genesis_parents():
    return [genesis_block(a).digest for a in range(4)]


def feed_round1(node, system, equivocator=None):
    """Deliver round-1 PBC blocks from replicas 1-3; if ``equivocator`` is
    set, that author's slot receives TWO contradictory blocks.  Returns the
    blocks by (author, j)."""
    blocks = {}
    for author in (1, 2, 3):
        block = signed(system, author, 1, genesis_parents())
        node.on_message(author, BlockVal(block))
        blocks[(author, 0)] = block
    if equivocator is not None:
        twin = signed(system, equivocator, 1, genesis_parents(), j=1)
        node.on_message(equivocator, BlockVal(twin))
        blocks[(equivocator, 1)] = twin
    return blocks


class TestRoundShape:
    def test_round_kinds(self):
        assert [LightDag2Node.round_kind(r) for r in (1, 2, 3, 4, 5, 6)] == [1, 2, 3, 1, 2, 3]

    def test_wave_of(self):
        assert [LightDag2Node.wave_of(r) for r in (1, 3, 4, 6, 7)] == [1, 1, 2, 2, 3]

    def test_manager_selection(self, system, chains):
        node = make_node(system, chains)
        assert node._manager_for_round(1) is node.pbc
        assert node._manager_for_round(2) is node.cbc
        assert node._manager_for_round(3) is node.pbc

    def test_commit_threshold_is_n_minus_f(self, system, chains):
        assert make_node(system, chains)._commit_support == 3


class TestPbcDelivery:
    def test_round1_blocks_deliver_without_votes(self, system, chains):
        node = make_node(system, chains)
        feed_round1(node, system)
        for author in (1, 2, 3):
            assert node.store.block_in_slot(1, author) is not None
        assert not any(isinstance(m, BlockEcho) for _, m in node.net.sent)

    def test_equivocated_slot_holds_both(self, system, chains):
        node = make_node(system, chains)
        feed_round1(node, system, equivocator=3)
        assert node.store.slot_is_equivocated(1, 3)
        assert len(node.store.blocks_in_slot(1, 3)) == 2


class TestRule2Voting:
    def test_consistent_cbc_block_gets_vote(self, system, chains):
        node = make_node(system, chains)
        blocks = feed_round1(node, system)
        cbc_block = signed(system, 1, 2, [blocks[(a, 0)].digest for a in (1, 2, 3)])
        node.on_message(1, BlockVal(cbc_block))
        assert node.cbc.votes_in_slot((2, 1)) == [cbc_block.digest]

    def test_vote_binds_endorsements(self, system, chains):
        node = make_node(system, chains)
        blocks = feed_round1(node, system)
        cbc_block = signed(system, 1, 2, [blocks[(a, 0)].digest for a in (1, 2, 3)])
        node.on_message(1, BlockVal(cbc_block))
        assert node.voted_refs[(1, 2)] == blocks[(2, 0)].digest

    def test_contradictory_reference_refused_with_notice(self, system, chains):
        node = make_node(system, chains)
        blocks = feed_round1(node, system, equivocator=3)
        b3a, b3b = blocks[(3, 0)], blocks[(3, 1)]
        d1 = signed(system, 1, 2, [blocks[(1, 0)].digest, blocks[(2, 0)].digest, b3a.digest])
        node.on_message(1, BlockVal(d1))
        assert node.cbc.votes_in_slot((2, 1)) == [d1.digest]
        node.net.clear()
        d2 = signed(system, 2, 2, [blocks[(1, 0)].digest, blocks[(2, 0)].digest, b3b.digest])
        node.on_message(2, BlockVal(d2))
        assert node.cbc.votes_in_slot((2, 2)) == []  # refused
        notices = [(dst, m) for dst, m in node.net.sent if isinstance(m, ContradictionNotice)]
        assert len(notices) == 1
        dst, notice = notices[0]
        assert dst == 2  # sent to D's proposer
        assert notice.objected == d2.digest
        assert notice.conflicting_block.digest == b3a.digest

    def test_wave_monotonicity_rule3_first_bullet(self, system, chains):
        node = make_node(system, chains)
        blocks = feed_round1(node, system)
        node._max_cbc_wave = 5  # pretend we voted in wave 5 already
        stale = signed(system, 1, 2, [blocks[(a, 0)].digest for a in (1, 2, 3)])
        node.on_message(1, BlockVal(stale))
        assert node.cbc.votes_in_slot((2, 1)) == []  # silently refused


class TestProposerSideReproposal:
    def prepare_proposed_cbc(self, system, chains):
        """Drive node 0 to propose its round-2 CBC block referencing the
        equivocator's first copy."""
        node = make_node(system, chains)
        blocks = feed_round1(node, system, equivocator=3)
        pump(node)  # fires the advance timer -> proposes round 2
        my_cbc = [
            m.block
            for _, m in node.net.sent
            if isinstance(m, BlockVal) and m.block.round == 2 and m.block.author == 0
        ]
        assert my_cbc, "node should have proposed its CBC block"
        return node, blocks, my_cbc[0]

    def test_contradiction_notice_triggers_proof_and_blacklist(self, system, chains):
        node, blocks, d0 = self.prepare_proposed_cbc(system, chains)
        referenced = blocks[(3, 0)] if blocks[(3, 0)].digest in d0.parents else blocks[(3, 1)]
        other = blocks[(3, 1)] if referenced is blocks[(3, 0)] else blocks[(3, 0)]
        node.net.clear()
        node.on_message(1, ContradictionNotice(objected=d0.digest, conflicting_block=other))
        assert 3 in node.blacklist
        assert 3 in node.proofs

    def test_reproposal_excludes_culprit_and_carries_proof(self, system, chains):
        node, blocks, d0 = self.prepare_proposed_cbc(system, chains)
        other = blocks[(3, 1)] if blocks[(3, 0)].digest in d0.parents else blocks[(3, 0)]
        # Give the node its own round-1 block so a clean quorum exists.
        own_r1 = [
            m.block for _, m in node.net.sent
            if isinstance(m, BlockVal) and m.block.round == 1 and m.block.author == 0
        ][0]
        node.on_message(0, BlockVal(own_r1))
        node.net.clear()
        node.on_message(1, ContradictionNotice(objected=d0.digest, conflicting_block=other))
        reproposals = [
            m.block for _, m in node.net.sent
            if isinstance(m, BlockVal) and m.block.round == 2 and m.block.author == 0
            and m.block.repropose_index == 1
        ]
        assert node.reproposals == 1
        new_block = reproposals[0]
        assert all(node.store.get(p).author != 3 for p in new_block.parents)
        assert len(new_block.byz_proofs) == 1
        assert new_block.byz_proofs[0].culprit == 3

    def test_reproposal_deferred_until_clean_quorum(self, system, chains):
        node, blocks, d0 = self.prepare_proposed_cbc(system, chains)
        other = blocks[(3, 1)] if blocks[(3, 0)].digest in d0.parents else blocks[(3, 0)]
        node.net.clear()
        # Only blocks 1,2 are clean (quorum is 3) -> reproposal must wait.
        node.on_message(1, ContradictionNotice(objected=d0.digest, conflicting_block=other))
        assert node.reproposals == 0
        assert node._pending_repropose
        # Our own round-1 block arrives -> clean quorum -> reproposal fires.
        own_r1 = [
            m.block for _, m in node.net.sent
            if isinstance(m, BlockVal) and m.block.round == 1 and m.block.author == 0
        ]
        # net was cleared; recover our round-1 block from the original sim start
        node2_block = signed(system, 0, 1, genesis_parents())
        node.on_message(0, BlockVal(node2_block))
        assert node.reproposals == 1

    def test_bogus_notice_ignored(self, system, chains):
        node, blocks, d0 = self.prepare_proposed_cbc(system, chains)
        # Notice whose conflicting block sits in a slot d0 never referenced
        # (the node's own slot — its round-1 block was never delivered here).
        unrelated = signed(system, 0, 1, genesis_parents(), j=1)
        node.net.clear()
        node.on_message(1, ContradictionNotice(objected=d0.digest, conflicting_block=unrelated))
        assert node.blacklist == set()
        assert node.reproposals == 0

    def test_notice_for_unknown_block_ignored(self, system, chains):
        node, blocks, _ = self.prepare_proposed_cbc(system, chains)
        node.net.clear()
        node.on_message(
            1,
            ContradictionNotice(objected=b"\x01" * 32, conflicting_block=blocks[(3, 0)]),
        )
        assert node.blacklist == set()


class TestRule3Exclusion:
    def test_blacklisted_parents_refused_with_proof_forward(self, system, chains):
        node = make_node(system, chains)
        blocks = feed_round1(node, system, equivocator=3)
        proof = proof_from_blocks(blocks[(3, 0)], blocks[(3, 1)])
        assert node._register_proof(proof)
        node.net.clear()
        d1 = signed(
            system, 1, 2,
            [blocks[(1, 0)].digest, blocks[(2, 0)].digest, blocks[(3, 0)].digest],
        )
        node.on_message(1, BlockVal(d1))
        assert node.cbc.votes_in_slot((2, 1)) == []
        forwards = [(dst, m) for dst, m in node.net.sent if isinstance(m, ByzantineProofMsg)]
        assert len(forwards) == 1
        assert forwards[0][0] == 1
        assert forwards[0][1].culprit == 3

    def test_blacklisted_author_never_chosen_as_parent(self, system, chains):
        node = make_node(system, chains)
        blocks = feed_round1(node, system, equivocator=3)
        proof = proof_from_blocks(blocks[(3, 0)], blocks[(3, 1)])
        node._register_proof(proof)
        for author in (1, 2, 3):
            assert node._parent_allowed(blocks[(author, 0)]) == (author != 3)

    def test_invalid_proof_rejected(self, system, chains):
        node = make_node(system, chains)
        blocks = feed_round1(node, system)
        bogus = proof_from_blocks(blocks[(1, 0)], blocks[(2, 0)])  # different authors
        assert not node._register_proof(bogus)
        assert node.blacklist == set()

    def test_embedded_proofs_harvested_from_bodies(self, system, chains):
        node = make_node(system, chains)
        blocks = feed_round1(node, system, equivocator=3)
        proof = proof_from_blocks(blocks[(3, 0)], blocks[(3, 1)])
        carrier = make_block(
            1, 2, genesis_parents(), repropose_index=1, byz_proofs=(proof,),
            signer=HmacBackend(2, system),
        )
        node.on_message(2, BlockVal(carrier))
        assert 3 in node.blacklist


class TestReproposeRetry:
    """A parked reproposal (not enough clean parents) must survive further
    blacklist growth and fire exactly once when a clean quorum appears."""

    def setup_n7(self):
        system = SystemConfig(n=7, crypto="hmac", seed=0)
        chains = TrustedDealer(system).deal()
        node = LightDag2Node(
            FakeNet(node_id=0, n=7), system, ProtocolConfig(batch_size=5),
            chains[0],
        )
        node.on_start()
        return system, node

    @staticmethod
    def g7():
        return [genesis_block(a).digest for a in range(7)]

    def test_blacklist_grows_while_parked_then_retry_fires_once(self):
        system, node = self.setup_n7()
        quorum = 5  # n - f with n=7
        for author in (1, 2, 3, 5, 6):
            node.on_message(author, BlockVal(signed(system, author, 1, self.g7())))
        own_r1 = [
            m.block for _, m in node.net.sent
            if isinstance(m, BlockVal) and m.block.round == 1 and m.block.author == 0
        ][0]
        pump(node)  # quorum of round-1 blocks -> proposes round-2 CBC block D
        d0 = [
            m.block for _, m in node.net.sent
            if isinstance(m, BlockVal) and m.block.round == 2 and m.block.author == 0
        ][0]
        node.net.clear()

        # Proof against author 6: reproposal wants a clean quorum but only
        # authors {1,2,3,5} remain -> parks.
        node.on_message(1, ByzantineProofMsg(
            culprit=6,
            block_a=signed(system, 6, 1, self.g7()),
            block_b=signed(system, 6, 1, self.g7(), j=1),
            objected=d0.digest,
        ))
        assert node.reproposals == 0
        assert d0.digest in node._pending_repropose

        # A second culprit is exposed while parked: the blacklist grows,
        # the reproposal stays parked (still 4 clean parents).
        node.on_message(2, ByzantineProofMsg(
            culprit=4,
            block_a=signed(system, 4, 1, self.g7()),
            block_b=signed(system, 4, 1, self.g7(), j=1),
            objected=d0.digest,
        ))
        assert node.blacklist == {4, 6}
        assert node.reproposals == 0
        assert d0.digest in node._pending_repropose

        # Our own round-1 block arrives -> 5 clean parents -> retry fires.
        node.on_message(0, BlockVal(own_r1))
        assert node.reproposals == 1
        assert node._pending_repropose == {}
        new_block = [
            m.block for _, m in node.net.sent
            if isinstance(m, BlockVal) and m.block.round == 2
            and m.block.author == 0 and m.block.repropose_index == 1
        ][0]
        assert len(new_block.parents) >= quorum
        assert all(
            node.store.get(p).author not in (4, 6) for p in new_block.parents
        )
        assert {p.culprit for p in new_block.byz_proofs} == {4, 6}

        # Re-delivering more blocks must not repropose again for the same
        # (original, blacklist) state.
        node.on_message(0, BlockVal(own_r1))
        assert node.reproposals == 1


class TestRule4Determinations:
    def test_first_round_block_records_equivocated_parents(self, system, chains):
        node = make_node(system, chains)
        # No equivocations: determinations may contain only the anchor (none
        # yet, since no coin revealed) — i.e. empty.
        blocks = feed_round1(node, system)
        dets = node._rule4_determinations([blocks[(a, 0)].digest for a in (1, 2, 3)])
        assert dets == ()

    def test_equivocated_parent_slot_determined(self, system, chains):
        node = make_node(system, chains)
        blocks = feed_round1(node, system, equivocator=3)
        chosen = blocks[(3, 0)]
        dets = node._rule4_determinations(
            [blocks[(1, 0)].digest, blocks[(2, 0)].digest, chosen.digest]
        )
        assert (1, 3, chosen.digest) in dets
