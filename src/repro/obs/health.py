"""Liveness/health watchdog: online detectors over the event journal.

The consensus layer's own checks (:mod:`repro.check`) catch *safety*
violations; this module watches for *liveness and performance* pathology
while the run is still going:

* **commit-progress stall** — no replica has committed anything for
  ``stall_after`` simulated seconds (after the first commit ever);
* **retrieval storm** — one replica issued more than ``storm_threshold``
  §IV-A retrieval requests inside a sliding ``storm_window``;
* **quorum-wait inflation** — a block's body→quorum wait exceeded
  ``inflation_factor``× the running mean wait (after a warm-up count),
  i.e. votes/echoes suddenly take far longer than they used to;
* **per-node commit lag** — at summary time, a replica's committed-block
  count is under ``lag_ratio``× the median replica's.

The monitor is a journal *listener* (:meth:`~repro.obs.journal.
EventJournal.add_listener`): it sees every event as it is emitted and
emits its own structured ``health.*`` events back into the same journal
(rate-limited per detector+node so a sustained stall yields one alert
per window, not one per event).  Install it **before** constructing
nodes — they pre-bind ``journal.emit``, and the listener hook swaps that
method.

:meth:`HealthMonitor.summary` is the run-end verdict the harness
attaches to results and the fuzzer attaches to shrunk counterexamples.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from .journal import Event, EventJournal


class HealthMonitor:
    """Online liveness/health detectors over one run's journal."""

    def __init__(
        self,
        n: int,
        stall_after: float = 5.0,
        storm_window: float = 2.0,
        storm_threshold: int = 25,
        inflation_factor: float = 4.0,
        inflation_min_samples: int = 20,
        lag_ratio: float = 0.5,
    ) -> None:
        self.n = n
        self.stall_after = stall_after
        self.storm_window = storm_window
        self.storm_threshold = storm_threshold
        self.inflation_factor = inflation_factor
        self.inflation_min_samples = inflation_min_samples
        self.lag_ratio = lag_ratio

        self._journal: Optional[EventJournal] = None
        self.now = 0.0
        self.alerts: Dict[str, int] = {}
        self.commits_by_node: Dict[int, int] = {i: 0 for i in range(n)}
        self.last_commit_by_node: Dict[int, float] = {}
        self._last_commit_any: Optional[float] = None
        self._first_commit: Optional[float] = None
        self._last_stall_alert = -1e18
        self._retrievals: Dict[int, Deque[float]] = {}
        self._last_storm_alert: Dict[int, float] = {}
        self._body_at: Dict[tuple, float] = {}
        self._quorum_wait_sum = 0.0
        self._quorum_wait_count = 0
        self._last_inflation_alert = -1e18

    # -- wiring ---------------------------------------------------------------

    def install(self, journal: EventJournal) -> None:
        """Subscribe to a journal; must run before nodes bind ``emit``."""
        self._journal = journal
        journal.add_listener(self.on_event)

    def _alert(self, t: float, type_: str, node: int, **data: object) -> None:
        self.alerts[type_] = self.alerts.get(type_, 0) + 1
        if self._journal is not None:
            # Re-entrant emit: on_event ignores health.* events, so the
            # recursion terminates after one level.
            self._journal.emit(t, type_, node, **data)

    # -- the listener ---------------------------------------------------------

    def on_event(self, event: Event) -> None:
        type_ = event.type
        if type_.startswith("health."):
            return
        t = event.t
        if t > self.now:
            self.now = t
        if type_ == "block.commit":
            self.commits_by_node[event.node] = (
                self.commits_by_node.get(event.node, 0) + 1
            )
            self.last_commit_by_node[event.node] = t
            self._last_commit_any = t
            if self._first_commit is None:
                self._first_commit = t
            return
        if type_ == "retrieval.request":
            window = self._retrievals.setdefault(event.node, deque())
            window.append(t)
            floor = t - self.storm_window
            while window and window[0] < floor:
                window.popleft()
            if len(window) > self.storm_threshold:
                last = self._last_storm_alert.get(event.node, -1e18)
                if t - last >= self.storm_window:
                    self._last_storm_alert[event.node] = t
                    self._alert(
                        t, "health.retrieval_storm", event.node,
                        requests=len(window), window=self.storm_window,
                    )
            return
        if type_ == "trace.body":
            self._body_at[(event.node, event.data.get("digest"))] = t
            return
        if type_ == "trace.quorum":
            start = self._body_at.pop(
                (event.node, event.data.get("digest")), None
            )
            if start is None:
                return
            wait = t - start
            if (
                self._quorum_wait_count >= self.inflation_min_samples
                and self._quorum_wait_count > 0
            ):
                mean = self._quorum_wait_sum / self._quorum_wait_count
                if mean > 0 and wait > self.inflation_factor * mean:
                    if t - self._last_inflation_alert >= self.storm_window:
                        self._last_inflation_alert = t
                        self._alert(
                            t, "health.quorum_inflation", event.node,
                            wait=wait, baseline_mean=mean,
                            digest=event.data.get("digest"),
                        )
            self._quorum_wait_sum += wait
            self._quorum_wait_count += 1
            return
        # Any other event advances the clock; check the global commit stall
        # (the check is O(1): one subtraction against the last commit).
        if self._first_commit is not None and self._last_commit_any is not None:
            silent = t - self._last_commit_any
            if (
                silent > self.stall_after
                and t - self._last_stall_alert >= self.stall_after
            ):
                self._last_stall_alert = t
                self._alert(
                    t, "health.commit_stall", -1,
                    silent_for=silent, last_commit=self._last_commit_any,
                )

    # -- run-end verdict ------------------------------------------------------

    def laggards(self) -> List[int]:
        """Replicas whose commit count trails the median by ``lag_ratio``."""
        counts = sorted(self.commits_by_node.values())
        if not counts or counts[-1] == 0:
            return []
        median = counts[len(counts) // 2]
        if median == 0:
            return []
        return sorted(
            node
            for node, count in self.commits_by_node.items()
            if count < self.lag_ratio * median
        )

    def summary(self, now: Optional[float] = None) -> Dict[str, object]:
        """The run-end health verdict (JSON-able)."""
        at = now if now is not None else self.now
        lagging = self.laggards()
        alerts = dict(self.alerts)
        if lagging:
            # Summary-time detector; folded into the (copied) alert map so
            # calling summary() twice never double-counts.
            alerts["health.node_lag"] = len(lagging)
        stalled_now = (
            self._first_commit is not None
            and self._last_commit_any is not None
            and at - self._last_commit_any > self.stall_after
        ) or self._first_commit is None
        if stalled_now and self._first_commit is None:
            verdict = "no-progress"
        elif stalled_now:
            verdict = "stalled"
        elif alerts:
            verdict = "degraded"
        else:
            verdict = "healthy"
        return {
            "verdict": verdict,
            "alerts": dict(sorted(alerts.items())),
            "commits_by_node": dict(sorted(self.commits_by_node.items())),
            "laggards": lagging,
            "first_commit": self._first_commit,
            "last_commit": self._last_commit_any,
            "observed_until": at,
        }
