"""Network partition adversary.

Strictly speaking a *partition* (silently dropping traffic across a cut)
exceeds the paper's asynchronous adversary, who may only delay finitely.
A partition with a *healing time* is equivalent to a finite delay plus
message loss that retransmission-free protocols must survive through the
retrieval mechanism — which is exactly what this adversary exercises: can
a replica isolated for a while catch back up through §IV-A retrieval and
keep its ledger a consistent prefix?
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from ..net.interfaces import Message
from .base import Adversary


class PartitionAdversary(Adversary):
    """Drop all traffic between two replica groups during a time window.

    Parameters
    ----------
    group_a:
        One side of the cut (the other side is everyone else).
    start / end:
        The partition window in simulated seconds.
    """

    def __init__(
        self,
        group_a: Sequence[int],
        start: float = 0.0,
        end: float = 5.0,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if end <= start:
            raise ValueError("partition must end after it starts")
        self.group_a: Set[int] = set(group_a)
        self.start = start
        self.end = end
        self.dropped = 0

    def _crosses_cut(self, src: int, dst: int) -> bool:
        return (src in self.group_a) != (dst in self.group_a)

    def on_send(self, src: int, dst: int, msg: Message, now: float) -> Optional[float]:
        if self.start <= now < self.end and self._crosses_cut(src, dst):
            self.dropped += 1
            return None
        return 0.0
