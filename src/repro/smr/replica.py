"""The replication glue: protocol node + state machine + clients.

:class:`SmrReplica` owns one consensus node and one state machine.  Client
commands enter through :meth:`submit` / :meth:`submit_command`; the replica
batches them into block payloads (the node's ``payload_source`` hook), and
the node's ``on_commit`` hook feeds committed blocks back in ledger order,
where commands are applied **exactly once** (dedup by command id —
consensus may commit the same payload twice through a LightDAG2
reproposal, and clients may retry).

The client-facing surface is completion-based: a submission may register a
*waiter* that fires exactly once with the committed result and commit
time.  Retries (same ``command_id``) are idempotent at every stage: a
command already queued is not queued twice, and a command already applied
resolves the new waiter immediately from the result cache.

Backpressure lives here too: an optional
:class:`~repro.workload.admission.AdmissionController` bounds the pending
queue (reject or shed-oldest under overload, per-client fairness caps),
so a replica facing more offered load than the cluster commits degrades
by refusing work instead of by growing without bound.

:class:`SmrCluster` assembles a full replicated service over any runtime
(simulator or asyncio) and exposes the cross-replica invariant checks the
tests rely on: identical applied sequences and identical state digests.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Type

from ..codec.primitives import CodecError
from ..config import ProtocolConfig, SystemConfig
from ..crypto.hashing import Digest
from ..crypto.keys import TrustedDealer
from ..dag.block import TxBatch
from ..dag.ledger import CommitRecord, check_prefix_consistency
from ..errors import ProtocolError
from .machine import Command, StateMachine

#: Completion callback: ``waiter(command, result, commit_time)``.  ``result``
#: is None when the command was shed by admission control before ordering.
Waiter = Callable[[Command, Optional[bytes], Optional[float]], None]


class SmrReplica:
    """One application replica.

    Parameters
    ----------
    replica_id:
        This replica's index in the cluster.
    machine:
        The deterministic state machine commands apply to.
    max_batch:
        Commands drained per block proposal; 0 = drain everything pending
        (the historical behaviour).  A bounded drain is what gives the
        cluster a measurable capacity — and overload a visible queue.
    admission:
        Optional :class:`~repro.workload.admission.AdmissionController`;
        absent means every submission is admitted (unbounded queue).
    """

    def __init__(
        self,
        replica_id: int,
        machine: StateMachine,
        max_batch: int = 0,
        admission=None,
    ) -> None:
        self.replica_id = replica_id
        self.machine = machine
        self.max_batch = max_batch
        self.admission = admission
        self._pending: Deque[Command] = deque()
        self._pending_ids: Set[Digest] = set()
        self._applied_ids: set = set()
        self.applied_order: List[Digest] = []
        self.results: Dict[Digest, bytes] = {}
        self._nonce = itertools.count()
        self._result_listeners: List[Callable[[Command, bytes], None]] = []
        self._waiters: Dict[Digest, List[Waiter]] = {}
        self._trace = None

    def bind_trace(self, trace) -> None:
        """Attach a tracer so applies emit ``trace.execute`` spans — the
        committed → executed milestone of the lifecycle."""
        self._trace = trace

    # -- client side -------------------------------------------------------------

    def submit(self, payload: bytes, client: str = "local") -> Digest:
        """Queue a command for ordering; returns its id for result lookup."""
        command = Command.create(client=client, payload=payload, nonce=next(self._nonce))
        self.submit_command(command)
        return command.command_id

    def submit_command(
        self,
        command: Command,
        now: Optional[float] = None,
        waiter: Optional[Waiter] = None,
    ) -> bool:
        """Queue a pre-built command; returns True if it was admitted.

        Idempotent under retries (clients re-submit the same
        ``command_id``): a command already applied resolves ``waiter``
        immediately from the result cache; one already pending only
        registers the extra waiter.  Either way every registered waiter
        fires exactly once.

        With admission control the submission may be refused (returns
        False, ``waiter`` is dropped unfired) or may shed the oldest
        queued command (whose waiters fire with ``result=None``).
        """
        cid = command.command_id
        if cid in self._applied_ids:
            if waiter is not None:
                waiter(command, self.results.get(cid), now)
            return True
        if cid in self._pending_ids:
            if waiter is not None:
                self._waiters.setdefault(cid, []).append(waiter)
            return True
        if self.admission is not None:
            from ..workload.admission import ADMIT, SHED

            verdict = self.admission.decide(command.client)
            if verdict == SHED:
                self._shed_oldest(now)
            elif verdict != ADMIT:
                return False
        self._pending.append(command)
        self._pending_ids.add(cid)
        if self.admission is not None:
            self.admission.note_admitted(command.client)
        if waiter is not None:
            self._waiters.setdefault(cid, []).append(waiter)
        return True

    def _shed_oldest(self, now: Optional[float]) -> None:
        victim = self._pending.popleft()
        self._pending_ids.discard(victim.command_id)
        self.admission.note_shed(victim.client)
        for waiter in self._waiters.pop(victim.command_id, ()):
            waiter(victim, None, now)

    def pending_count(self) -> int:
        """Commands queued awaiting proposal (the admission queue depth)."""
        return len(self._pending)

    def result_of(self, command_id: Digest) -> Optional[bytes]:
        return self.results.get(command_id)

    def on_result(self, listener: Callable[[Command, bytes], None]) -> None:
        self._result_listeners.append(listener)

    # -- protocol hooks -----------------------------------------------------------

    def payload_source(self, now: float) -> TxBatch:
        """Drain pending commands into the next block's payload."""
        if not self._pending:
            return TxBatch(count=0, tx_size=0)
        take = len(self._pending)
        if self.max_batch:
            take = min(take, self.max_batch)
        commands = [self._pending.popleft() for _ in range(take)]
        for command in commands:
            self._pending_ids.discard(command.command_id)
            if self.admission is not None:
                self.admission.note_drained(command.client)
        items = tuple(c.to_bytes() for c in commands)
        return TxBatch(
            count=len(items),
            tx_size=max(len(i) for i in items),
            submit_time_sum=len(items) * now,
            sample=(now,),
            items=items,
        )

    def on_commit(self, record: CommitRecord) -> None:
        """Apply a committed block's commands in order, exactly once."""
        applied_before = len(self.applied_order)
        for raw in record.block.payload.items:
            try:
                command = Command.from_bytes(raw)
            except CodecError:
                continue  # non-command payload (foreign app); skip deterministically
            cid = command.command_id
            if cid in self._applied_ids:
                continue
            self._applied_ids.add(cid)
            result = self.machine.apply(command)
            self.applied_order.append(cid)
            self.results[cid] = result
            for listener in self._result_listeners:
                listener(command, result)
            for waiter in self._waiters.pop(cid, ()):
                waiter(command, result, record.commit_time)
        if self._trace is not None:
            self._trace.emit(
                record.commit_time, "trace.execute", self.replica_id,
                digest=record.block.digest.hex()[:8],
                position=record.position,
                commands=len(self.applied_order) - applied_before,
            )


class SmrCluster:
    """A fully wired replicated service (simulator runtime).

    >>> cluster = SmrCluster.build(SystemConfig(n=4), machine_factory=KvStateMachine)
    >>> cluster.replicas[0].submit(b"SET x 1")
    >>> cluster.run(5.0)
    >>> cluster.verify_convergence()
    """

    def __init__(self, replicas: List[SmrReplica], sim) -> None:
        self.replicas = replicas
        self.sim = sim

    @classmethod
    def build(
        cls,
        system: SystemConfig,
        machine_factory: Callable[[], StateMachine],
        protocol: Optional[ProtocolConfig] = None,
        protocol_name: str = "lightdag2",
        latency_model=None,
        seed: int = 0,
        obs=None,
        admission=None,
        collector=None,
        max_batch: Optional[int] = None,
    ) -> "SmrCluster":
        """Wire replicas, state machines, and consensus nodes together.

        ``admission`` is an :class:`~repro.workload.admission.AdmissionConfig`
        applied to every replica's pending queue.  ``collector`` is an
        optional :class:`~repro.workload.metrics.MetricsCollector` teed
        into every commit hook — it sees the same records the application
        does, giving the consensus-side TPS/latency a load test reports
        next to the client-observed numbers.  ``max_batch`` caps commands
        per proposal (default: the protocol's batch size).
        """
        from ..harness.runner import PROTOCOL_REGISTRY
        from ..net.latency import UniformLatency
        from ..net.simulator import Simulation
        from ..obs import NULL_OBS
        from ..workload.admission import make_admission

        obs = obs if obs is not None else NULL_OBS
        protocol = protocol or ProtocolConfig(batch_size=64)
        if max_batch is None:
            max_batch = protocol.batch_size
        node_cls: Type = PROTOCOL_REGISTRY[protocol_name]
        chains = TrustedDealer(
            system, coin_threshold=protocol.resolve_coin_threshold(system)
        ).deal()
        replicas = [
            SmrReplica(
                i,
                machine_factory(),
                max_batch=max_batch,
                admission=make_admission(admission, obs=obs, replica_id=i),
            )
            for i in range(system.n)
        ]
        if obs.trace.enabled:
            for replica in replicas:
                replica.bind_trace(obs.trace)

        def commit_hook(i: int):
            if collector is None:
                return replicas[i].on_commit
            consensus_cb = collector.callback_for(i)
            replica_cb = replicas[i].on_commit

            def tee(record):
                consensus_cb(record)
                replica_cb(record)

            return tee

        def factory(i: int):
            return lambda net: node_cls(
                net,
                system=system,
                protocol=protocol,
                keychain=chains[i],
                payload_source=replicas[i].payload_source,
                on_commit=commit_hook(i),
                obs=obs,
            )

        sim = Simulation(
            [factory(i) for i in range(system.n)],
            latency_model=latency_model or UniformLatency(0.01, 0.05),
            seed=seed,
            obs=obs,
        )
        return cls(replicas=replicas, sim=sim)

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    # -- invariants ----------------------------------------------------------------

    def verify_convergence(self) -> None:
        """Every pair of replicas agrees on the applied prefix and, where
        both applied equally much, on the exact state digest."""
        check_prefix_consistency([node.ledger for node in self.sim.nodes])
        orders = [replica.applied_order for replica in self.replicas]
        for a in range(len(orders)):
            for b in range(a + 1, len(orders)):
                common = min(len(orders[a]), len(orders[b]))
                if orders[a][:common] != orders[b][:common]:
                    raise ProtocolError(
                        f"replicas {a} and {b} applied different command "
                        f"prefixes"
                    )
                if len(orders[a]) == len(orders[b]):
                    da = self.replicas[a].machine.state_digest()
                    db = self.replicas[b].machine.state_digest()
                    if da != db:
                        raise ProtocolError(
                            f"replicas {a} and {b} applied the same commands "
                            f"but diverged in state"
                        )
