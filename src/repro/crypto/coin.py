"""The Global Perfect Coin (GPC, §III-B.2).

DAG-based protocols select each wave's leader slot with a shared random
coin that (a) is identical at every replica, (b) cannot be predicted by the
adversary before a threshold of replicas contribute, and (c) maps uniformly
onto replica indices.  The paper implements it with threshold signatures on
the wave number; we provide two interchangeable implementations:

* :class:`ThresholdCoin` — the real construction over the threshold PRF
  (partial evals with DLEQ proofs, Lagrange combination in the exponent).
* :class:`SeededCoin` — a deterministic stand-in (``H(seed, wave) mod n``)
  with dummy shares but the *same threshold-reveal timing*: the leader for
  a wave only becomes available once ``threshold`` distinct shares arrive.
  Used with the hmac/null backends for large sweeps; the adversaries in
  this repository do not attempt coin prediction, so the timing semantics
  are what matters.

Both expose the same three-method interface so protocols never know which
one they hold.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import ThresholdError
from .hashing import hash_fields, hash_to_int
from .keys import KeyChain
from .threshold import PARTIAL_EVAL_SIZE, PartialEval, ThresholdPRF, prf_output_to_int

#: Modeled wire size of a coin share (used by the network size model).
COIN_SHARE_SIZE = PARTIAL_EVAL_SIZE


@dataclass(frozen=True)
class CoinShare:
    """One replica's contribution to revealing wave ``wave``'s coin."""

    wave: int
    replica: int
    payload: object  # PartialEval for ThresholdCoin, token bytes for SeededCoin


class GlobalPerfectCoin(ABC):
    """Interface every coin implementation satisfies."""

    def __init__(self, n: int, threshold: int) -> None:
        if threshold < 1 or threshold > n:
            raise ThresholdError(f"coin threshold {threshold} invalid for n={n}")
        self.n = n
        self.threshold = threshold
        self._shares: dict[int, dict[int, CoinShare]] = {}
        self._revealed: dict[int, int] = {}

    @abstractmethod
    def make_share(self, wave: int) -> CoinShare:
        """This replica's share for ``wave``."""

    @abstractmethod
    def verify_share(self, share: CoinShare) -> bool:
        """Check a received share before counting it."""

    @abstractmethod
    def _combine(self, wave: int, shares: list[CoinShare]) -> int:
        """Combine ``threshold`` verified shares into the coin output."""

    # -- shared accumulation logic -------------------------------------------

    def add_share(self, share: CoinShare) -> int | None:
        """Accumulate a share; return the leader index once revealed.

        Idempotent per ``(wave, replica)``; returns the cached leader for
        waves already revealed.  Invalid shares are ignored (a Byzantine
        replica cannot stall the coin — only fail to contribute).
        """
        if share.wave in self._revealed:
            return self._revealed[share.wave]
        bucket = self._shares.get(share.wave)
        if bucket is not None and share.replica in bucket:
            # Duplicate (wave, replica): the first copy was verified when
            # it arrived; re-sent shares cost a dict lookup, not a proof.
            return None
        if not self.verify_share(share):
            return None
        if bucket is None:
            bucket = self._shares[share.wave] = {}
        bucket[share.replica] = share
        if len(bucket) >= self.threshold:
            leader = self._combine(share.wave, list(bucket.values()))
            self._revealed[share.wave] = leader
            del self._shares[share.wave]
            return leader
        return None

    def leader_of(self, wave: int) -> int | None:
        """The revealed leader index for ``wave``, if any."""
        return self._revealed.get(wave)

    def pending_share_count(self, wave: int) -> int:
        """How many valid shares have accumulated for an unrevealed wave."""
        return len(self._shares.get(wave, ()))


class ThresholdCoin(GlobalPerfectCoin):
    """The real coin: threshold PRF evaluated on the wave number."""

    def __init__(self, keychain: KeyChain) -> None:
        super().__init__(n=len(keychain.public_keys), threshold=keychain.coin_threshold)
        self.replica_id = keychain.replica_id
        self.prf = ThresholdPRF(
            group=keychain.group,
            threshold=keychain.coin_threshold,
            share=keychain.coin_share,
            verification_keys=keychain.coin_verification_keys,
        )
        self.group = keychain.group

    @staticmethod
    def _coin_input(wave: int) -> bytes:
        return hash_fields("gpc-wave", wave)

    def make_share(self, wave: int) -> CoinShare:
        partial = self.prf.partial_eval(self._coin_input(wave))
        return CoinShare(wave=wave, replica=self.replica_id, payload=partial)

    def verify_share(self, share: CoinShare) -> bool:
        if not isinstance(share.payload, PartialEval):
            return False
        if share.payload.index != share.replica:
            return False
        return self.prf.verify_partial(self._coin_input(share.wave), share.payload)

    def _combine(self, wave: int, shares: list[CoinShare]) -> int:
        element = self.prf.combine(
            self._coin_input(wave), [s.payload for s in shares]
        )
        return prf_output_to_int(self.group, element) % self.n


class SeededCoin(GlobalPerfectCoin):
    """Deterministic coin with threshold-reveal timing but no crypto.

    Share payloads are per-replica tokens bound to the wave; verification
    recomputes the token, so a share forged for another replica id is
    rejected (matching the accounting, if not the hardness, of the real
    coin).
    """

    def __init__(self, n: int, threshold: int, seed: int, replica_id: int) -> None:
        super().__init__(n=n, threshold=threshold)
        self.seed = seed
        self.replica_id = replica_id

    def _token(self, wave: int, replica: int) -> bytes:
        return hash_fields("seeded-coin-token", self.seed, wave, replica)

    def make_share(self, wave: int) -> CoinShare:
        return CoinShare(
            wave=wave, replica=self.replica_id, payload=self._token(wave, self.replica_id)
        )

    def verify_share(self, share: CoinShare) -> bool:
        return share.payload == self._token(share.wave, share.replica)

    def _combine(self, wave: int, shares: list[CoinShare]) -> int:
        return hash_to_int("seeded-coin-out", self.seed, wave) % self.n


def make_coin(
    crypto_name: str,
    keychain: KeyChain,
    seed: int,
) -> GlobalPerfectCoin:
    """Pick the coin implementation matching a crypto backend name."""
    if crypto_name == "schnorr":
        return ThresholdCoin(keychain)
    return SeededCoin(
        n=len(keychain.public_keys),
        threshold=keychain.coin_threshold,
        seed=seed,
        replica_id=keychain.replica_id,
    )
