"""Tests for repro.crypto.coin: the Global Perfect Coin (§III-B.2)."""

import pytest

from repro.config import SystemConfig
from repro.crypto.coin import CoinShare, SeededCoin, ThresholdCoin, make_coin
from repro.crypto.keys import TrustedDealer
from repro.errors import ThresholdError


@pytest.fixture(scope="module")
def chains():
    return TrustedDealer(SystemConfig(n=4, crypto="schnorr"), coin_threshold=3).deal()


def reveal(coins, wave):
    """Feed every coin all shares; return the set of revealed leaders."""
    shares = [coin.make_share(wave) for coin in coins]
    leaders = set()
    for coin in coins:
        out = None
        for share in shares:
            result = coin.add_share(share)
            out = result if result is not None else out
        leaders.add(out)
    return leaders


class TestThresholdCoin:
    def test_agreement(self, chains):
        coins = [ThresholdCoin(c) for c in chains]
        leaders = reveal(coins, wave=1)
        assert len(leaders) == 1
        assert leaders.pop() in range(4)

    def test_no_reveal_below_threshold(self, chains):
        coins = [ThresholdCoin(c) for c in chains]
        shares = [coin.make_share(3) for coin in coins]
        assert coins[0].add_share(shares[0]) is None
        assert coins[0].add_share(shares[1]) is None
        assert coins[0].leader_of(3) is None
        assert coins[0].pending_share_count(3) == 2

    def test_reveal_exactly_at_threshold(self, chains):
        coins = [ThresholdCoin(c) for c in chains]
        shares = [coin.make_share(4) for coin in coins]
        coins[0].add_share(shares[0])
        coins[0].add_share(shares[1])
        assert coins[0].add_share(shares[2]) is not None

    def test_duplicate_shares_do_not_reveal(self, chains):
        coins = [ThresholdCoin(c) for c in chains]
        share = coins[1].make_share(5)
        assert coins[0].add_share(share) is None
        assert coins[0].add_share(share) is None
        assert coins[0].leader_of(5) is None

    def test_forged_share_ignored(self, chains):
        coins = [ThresholdCoin(c) for c in chains]
        good = coins[1].make_share(6)
        forged = CoinShare(wave=6, replica=2, payload=good.payload)
        assert coins[0].add_share(forged) is None
        assert coins[0].pending_share_count(6) == 0

    def test_wrong_wave_share_ignored(self, chains):
        coins = [ThresholdCoin(c) for c in chains]
        share = coins[1].make_share(7)
        moved = CoinShare(wave=8, replica=1, payload=share.payload)
        assert coins[0].add_share(moved) is None

    def test_different_waves_can_differ(self, chains):
        coins = [ThresholdCoin(c) for c in chains]
        outcomes = {next(iter(reveal(coins, wave=w))) for w in range(1, 30)}
        assert len(outcomes) > 1  # 29 waves over 4 replicas: astronomically unlikely to collide on one

    def test_cached_after_reveal(self, chains):
        coins = [ThresholdCoin(c) for c in chains]
        leader = next(iter(reveal(coins, wave=9)))
        extra = coins[3].make_share(9)
        assert coins[0].add_share(extra) == leader


class TestSeededCoin:
    def make_coins(self, n=4, threshold=3, seed=0):
        return [SeededCoin(n=n, threshold=threshold, seed=seed, replica_id=i) for i in range(n)]

    def test_agreement(self):
        leaders = reveal(self.make_coins(), wave=1)
        assert len(leaders) == 1

    def test_threshold_timing(self):
        coins = self.make_coins()
        shares = [coin.make_share(2) for coin in coins]
        assert coins[0].add_share(shares[0]) is None
        assert coins[0].add_share(shares[1]) is None
        assert coins[0].add_share(shares[2]) is not None

    def test_forged_token_rejected(self):
        coins = self.make_coins()
        good = coins[1].make_share(3)
        forged = CoinShare(wave=3, replica=2, payload=good.payload)
        assert not coins[0].verify_share(forged)

    def test_seed_changes_outcome_somewhere(self):
        a = [next(iter(reveal(self.make_coins(seed=1), w))) for w in range(1, 20)]
        b = [next(iter(reveal(self.make_coins(seed=2), w))) for w in range(1, 20)]
        assert a != b

    def test_output_in_range(self):
        for w in range(1, 20):
            leader = next(iter(reveal(self.make_coins(), w)))
            assert 0 <= leader < 4


class TestCoinFactoryAndValidation:
    def test_factory_picks_threshold_coin_for_schnorr(self, chains):
        assert isinstance(make_coin("schnorr", chains[0], seed=0), ThresholdCoin)

    def test_factory_picks_seeded_for_fast_backends(self, chains):
        assert isinstance(make_coin("hmac", chains[0], seed=0), SeededCoin)
        assert isinstance(make_coin("null", chains[0], seed=0), SeededCoin)

    def test_invalid_threshold(self):
        with pytest.raises(ThresholdError):
            SeededCoin(n=4, threshold=5, seed=0, replica_id=0)
        with pytest.raises(ThresholdError):
            SeededCoin(n=4, threshold=0, seed=0, replica_id=0)

    def test_seeded_matches_threshold_interface(self, chains):
        # Both implementations agree with themselves across replicas for
        # the same wave — the only property protocols rely on.
        tc = [ThresholdCoin(c) for c in chains]
        sc = [SeededCoin(4, 3, 0, i) for i in range(4)]
        assert len(reveal(tc, 1)) == 1
        assert len(reveal(sc, 1)) == 1
