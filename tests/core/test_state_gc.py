"""Long-run state bounds and stall-recovery regressions.

Two bug families this file pins down:

* **State leaks** — per-wave and per-round bookkeeping
  (``voted_refs``, ``my_blocks``, ``revealed_leaders``, coin-share
  tracking, weak-link coverage) must be pruned alongside the store when
  ``gc_depth`` is set, or a long-lived replica grows without bound even
  though its DAG is garbage-collected.

* **Stall-clock arming** — the stall rebroadcast must not treat
  simulation start as "the last delivery": it arms at the first own
  proposal, uses a startup grace period before anything was delivered,
  and fires at most once per window.
"""

import pytest

from repro.adversary.schedule import FaultSchedule, ScheduleAdversary
from repro.config import ProtocolConfig, SystemConfig
from repro.core.base import STALL_AFTER, STALL_STARTUP_GRACE
from repro.core.lightdag1 import LightDag1Node
from repro.core.lightdag2 import LightDag2Node
from repro.crypto.keys import TrustedDealer
from repro.dag.ledger import check_prefix_consistency
from repro.net.latency import FixedLatency
from repro.net.simulator import Simulation
from repro.obs import EventJournal, MetricsRegistry, Observability


def build_sim(
    node_cls=LightDag2Node,
    gc_depth=10,
    n=4,
    seed=1,
    latency=None,
    adversary=None,
    obs=None,
    weak_links=False,
):
    system = SystemConfig(n=n, crypto="hmac", seed=seed)
    protocol = ProtocolConfig(
        batch_size=5, gc_depth=gc_depth, weak_links=weak_links
    )
    chains = TrustedDealer(
        system, coin_threshold=protocol.resolve_coin_threshold(system)
    ).deal()
    kwargs = {} if obs is None else {"obs": obs}
    return Simulation(
        [
            (lambda net, i=i: node_cls(net, system, protocol, chains[i], **kwargs))
            for i in range(n)
        ],
        latency_model=latency or FixedLatency(0.01),
        adversary=adversary,
        seed=seed,
        obs=obs if obs is not None else None,
    )


class TestBoundedGrowth:
    def test_lightdag2_bookkeeping_stays_within_gc_window(self):
        """Acceptance criterion: over a 60-wave run with gc_depth=10, every
        piece of LightDAG2/base bookkeeping stays O(window), not O(run)."""
        sim = build_sim(node_cls=LightDag2Node, gc_depth=10)
        sim.run(
            until=120.0,
            stop_when=lambda s: all(n.current_round >= 181 for n in s.nodes),
        )
        node = sim.nodes[0]
        waves_done = node.last_settled_wave
        assert waves_done >= 60, f"only reached wave {waves_done}"
        retained_rounds = (
            node.current_round - node.store.lowest_retained_round() + 1
        )
        assert retained_rounds < 40  # the store window itself is bounded

        # Round-keyed LightDAG2 state: a fixed multiple of the window.
        bound = 4 * retained_rounds
        assert len(node.voted_refs) <= bound
        assert len(node.my_blocks) <= retained_rounds + 2
        assert len(node._repropose_counter) <= retained_rounds
        assert len(node._pending_repropose) <= retained_rounds

        # Wave-keyed base-engine state: bounded by the unsettled frontier.
        wave_bound = retained_rounds  # ≥ rounds/3 waves, generous
        assert len(node.revealed_leaders) <= wave_bound
        assert len(node.committed_leader_waves) <= wave_bound
        assert len(node._sent_share_waves) <= wave_bound
        assert len(node._coin_requested) <= wave_bound
        assert len(node._deferred_cascades) <= wave_bound

        check_prefix_consistency([n.ledger for n in sim.nodes])

    def test_lightdag1_weak_link_coverage_pruned(self):
        sim = build_sim(node_cls=LightDag1Node, gc_depth=10, weak_links=True)
        sim.run(until=12.0)
        node = sim.nodes[0]
        assert node.current_round > 100
        # _covered tracks store members (plus genesis); _uncovered holds
        # only un-GC'd candidates.
        assert len(node._covered) <= len(node.store) + 4
        horizon = node.store.lowest_retained_round()
        assert all(b.round >= horizon for b in node._uncovered.values())

    def test_no_gc_keeps_history(self):
        """Without gc_depth nothing is pruned — the leak fix must not
        eagerly drop state a non-GC run still needs."""
        sim = build_sim(node_cls=LightDag2Node, gc_depth=None)
        sim.run(until=5.0)
        node = sim.nodes[0]
        assert node.store.lowest_retained_round() == 1
        assert len(node.my_blocks) >= node.current_round - 2

    def test_straggler_can_fetch_pruned_wave_shares(self):
        """`_sent_share_waves` pruning must not break coin-share serving:
        the `_max_share_wave` guard still answers requests for waves whose
        sent-set entry was garbage-collected."""
        from repro.broadcast.messages import CoinShareMsg, CoinShareRequest

        sim = build_sim(node_cls=LightDag2Node, gc_depth=10)
        sim.run(until=8.0)
        node = sim.nodes[0]
        pruned_wave = 1
        assert pruned_wave not in node._sent_share_waves  # GC removed it
        assert node._max_share_wave > pruned_wave

        sent = []
        node.net.send = lambda dst, msg: sent.append((dst, msg))
        node.on_message(1, CoinShareRequest(pruned_wave))
        assert len(sent) == 1
        dst, msg = sent[0]
        assert dst == 1 and isinstance(msg, CoinShareMsg)

        # Future waves stay unserved (no coin foreknowledge).
        sent.clear()
        node.on_message(1, CoinShareRequest(node._max_share_wave + 5))
        assert sent == []


class TestStallClock:
    def run_with_journal(self, latency, duration, adversary=None, n=4):
        obs = Observability(MetricsRegistry(), EventJournal())
        sim = build_sim(
            node_cls=LightDag2Node, gc_depth=None, latency=latency,
            adversary=adversary, obs=obs, n=n,
        )
        sim.run(until=duration)
        return sim, obs

    def rebroadcasts(self, obs):
        return [e for e in obs.journal if e.type == "stall.rebroadcast"]

    def test_no_storm_at_startup(self):
        """Regression: slow-but-live first deliveries must not trigger
        rebroadcasts — sim start is not a delivery, and pre-delivery
        stalls get the startup grace period."""
        sim, obs = self.run_with_journal(FixedLatency(0.45), duration=1.0)
        assert self.rebroadcasts(obs) == []

    def test_isolated_replica_rebroadcasts_once_per_window(self):
        """An isolated replica (it still self-delivers its own block, so
        the startup grace does not apply) rebroadcasts after the stall
        window — and then at most once per window, not once per tick."""
        phases = FaultSchedule.from_spec("partition@0+30:group=0").phases
        adversary = ScheduleAdversary(phases, seed=0)
        duration = 12.0
        sim, obs = self.run_with_journal(
            FixedLatency(0.05), duration=duration, adversary=adversary
        )
        mine = [e for e in self.rebroadcasts(obs) if e.node == 0]
        assert mine, "an isolated proposer must eventually rebroadcast"
        assert all(e.t > STALL_AFTER for e in mine)
        # Once per window, not once per sync tick.
        assert len(mine) <= duration / STALL_AFTER + 1
        for first, second in zip(mine, mine[1:]):
            assert second.t - first.t >= STALL_AFTER * 0.99

    def test_startup_grace_before_any_delivery(self):
        """LightDAG1's CBC needs an echo quorum, so an isolated replica
        never delivers anything — that pre-delivery stall gets the longer
        startup grace before the first rebroadcast."""
        phases = FaultSchedule.from_spec("partition@0+30:group=0").phases
        adversary = ScheduleAdversary(phases, seed=0)
        obs = Observability(MetricsRegistry(), EventJournal())
        sim = build_sim(
            node_cls=LightDag1Node, gc_depth=None, latency=FixedLatency(0.05),
            adversary=adversary, obs=obs,
        )
        sim.run(until=10.0)
        assert len(sim.nodes[0].ledger) == 0  # truly isolated
        mine = [e for e in self.rebroadcasts(obs) if e.node == 0]
        assert mine, "the isolated proposer must still rebroadcast"
        assert mine[0].t > STALL_STARTUP_GRACE

    def test_steady_state_quiet(self):
        """A healthy fast run never stalls."""
        sim, obs = self.run_with_journal(FixedLatency(0.01), duration=5.0)
        assert self.rebroadcasts(obs) == []
        assert all(len(n.ledger) > 0 for n in sim.nodes)
