"""Runtime-agnostic interfaces between protocols and the network.

A consensus protocol in this library is a :class:`Node`: a deterministic
state machine with three entry points (``on_start``, ``on_message``,
``on_timer``) that talks to the outside world only through the
:class:`NetworkAPI` handed to it at construction.  The same Node runs
unmodified under the discrete-event simulator and the asyncio runtime.

This mirrors the sans-I/O style: no sleeps, no sockets, no wall-clock reads
inside protocol logic — time comes from ``net.now()``, randomness from
seeded generators, and all I/O is message passing (the MPI-flavoured idiom
from the HPC guides: explicit sends, no shared state between ranks).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

#: Destination sentinel accepted by :meth:`NetworkAPI.send`.
BROADCAST = -1


class Message(ABC):
    """Base class for everything that crosses the (simulated) wire.

    Subclasses are small frozen dataclasses; :meth:`wire_size` reports the
    number of bytes the message would occupy in a compact binary encoding,
    which is what the bandwidth model charges.  Sizes follow the constants
    in :mod:`repro.net.sizes`.
    """

    @abstractmethod
    def wire_size(self) -> int:
        """Modeled encoded size in bytes."""

    # Messages are frozen values (the only mutation anywhere is the
    # idempotent ``_wire_size`` memo below).  Simulator snapshots
    # (:class:`repro.net.simulator.SimulatorSnapshot`) therefore share
    # in-flight messages between branches instead of forking them — a
    # branch can never observe a difference, and copies would dominate
    # snapshot cost during state-space exploration.
    def __copy__(self) -> "Message":
        return self

    def __deepcopy__(self, memo) -> "Message":
        return self


class SizedMessage(Message):
    """A message whose wire size is computed once and then memoized.

    The simulator consults :meth:`wire_size` per *delivery* (Θ(n²) per
    round for echo-class traffic), so recomputing a size that walks the
    payload — blocks, retrieval responses — would dominate.  Subclasses
    implement :meth:`_compute_wire_size`; the first call stores the result
    on the instance.  Invalidation is impossible by construction: message
    dataclasses are frozen, so the size can never go stale.
    """

    def wire_size(self) -> int:
        size = self.__dict__.get("_wire_size")
        if size is None:
            size = self._compute_wire_size()
            # Frozen dataclasses block normal attribute assignment; the
            # cache is not a field, so write it directly.
            object.__setattr__(self, "_wire_size", size)
        return size

    @abstractmethod
    def _compute_wire_size(self) -> int:
        """Compute the modeled encoded size (called at most once)."""


class NetworkAPI(ABC):
    """What a protocol node may do to the outside world."""

    @property
    @abstractmethod
    def node_id(self) -> int:
        """This node's replica index."""

    @property
    @abstractmethod
    def n(self) -> int:
        """Total number of replicas."""

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (simulated or wall-clock)."""

    @abstractmethod
    def send(self, dst: int, msg: Message) -> None:
        """Send ``msg`` to replica ``dst`` (or everyone for BROADCAST).

        Sending to oneself is allowed and delivered with zero network cost;
        protocols use it to keep the code path uniform.
        """

    @abstractmethod
    def set_timer(self, delay: float, tag: str, data: Any = None) -> None:
        """Schedule ``on_timer(tag, data)`` after ``delay`` seconds."""

    def broadcast(self, msg: Message, include_self: bool = True) -> None:
        """Send ``msg`` to every replica (optionally including ourselves)."""
        for dst in range(self.n):
            if include_self or dst != self.node_id:
                self.send(dst, msg)


class Node(ABC):
    """A deterministic protocol state machine bound to one replica.

    Subclasses receive their :class:`NetworkAPI` in ``__init__`` and must
    confine *all* side effects to it.  Handlers run to completion — the
    runtimes never interleave two handlers of the same node.
    """

    def __init__(self, net: NetworkAPI) -> None:
        self.net = net

    @property
    def node_id(self) -> int:
        return self.net.node_id

    def on_start(self) -> None:
        """Called once when the run begins."""

    @abstractmethod
    def on_message(self, src: int, msg: Message) -> None:
        """Called for every delivered message."""

    def on_timer(self, tag: str, data: Any = None) -> None:
        """Called when a timer set via :meth:`NetworkAPI.set_timer` fires."""


#: Factory signature used by both runtimes to build the replica set.
NodeFactory = Callable[[NetworkAPI], Node]
