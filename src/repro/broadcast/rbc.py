"""Reliable Broadcast (RBC) — three steps, full consistency and totality.

Bracha's protocol [13] as used by the baselines (implementation modeled on
Cachin-Tessaro [24], the reference the paper cites for Tusk/Bullshark):

* **VAL** — broadcaster sends the block to everyone.
* **ECHO** — on first body for a slot, broadcast an ECHO (once per slot).
* **READY** — on ``n - f`` ECHOes for a digest, broadcast READY; *also* on
  ``f + 1`` READYs (amplification — this is what buys totality: once any
  non-faulty replica delivers, every non-faulty replica eventually sends
  READY and delivers, even if the broadcaster was Byzantine).
* **Delivery** — body + ``n - f`` READYs (+ the protocol's ancestor gate).

Three message steps → the 3× latency multiplier that motivates the paper
(Table I: DAG-Rider 4 RBC rounds = 12 steps best case).
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from typing import Dict, Optional, Set, Tuple

from ..crypto.hashing import Digest
from ..dag.block import Block
from ..net.interfaces import NetworkAPI
from ..obs import NULL_OBS, Observability
from .base import DeliverCallback, InstanceTracker
from .messages import BlockEcho, BlockReady, BlockVal


class RbcManager:
    """All RBC instances of one replica."""

    #: Communication steps a full RBC takes (VAL + ECHO + READY).
    STEPS = 3

    def __init__(
        self,
        net: NetworkAPI,
        quorum: int,
        amplify_threshold: int,
        on_deliver: DeliverCallback,
        obs: Optional[Observability] = None,
    ) -> None:
        self.net = net
        self.quorum = quorum  # n - f: echo→ready and ready→deliver threshold
        self.amplify_threshold = amplify_threshold  # f + 1: ready amplification
        obs = obs or NULL_OBS
        metrics = obs.metrics
        metrics.gauge("broadcast.steps", primitive="rbc").set(self.STEPS)
        self._vals_ctr = metrics.counter("broadcast.vals_sent", primitive="rbc")
        self._echoes_ctr = metrics.counter("broadcast.echoes_sent", primitive="rbc")
        self._readies_ctr = metrics.counter("broadcast.readies_sent", primitive="rbc")
        self._amplified_ctr = metrics.counter(
            "broadcast.ready_amplifications", primitive="rbc"
        )
        self._refresh_ctr = metrics.counter("broadcast.vote_refreshes", primitive="rbc")
        self._retrieved_ctr = metrics.counter(
            "broadcast.retrieved_deliveries", primitive="rbc"
        )
        self.tracker = InstanceTracker(on_deliver, obs=obs, primitive="rbc")
        #: causal tracer (None unless tracing requested): emits the
        #: ready-quorum-crossed span, RBC's delivery predicate.
        self._trace = obs.trace if obs.trace.enabled else None
        self._echoed_slots: Set[Tuple[int, int]] = set()
        self._echoed_digest: Dict[Tuple[int, int], Digest] = {}
        self._slot_of_digest: Dict[Digest, Tuple[int, int]] = {}

    # -- proposer side ---------------------------------------------------------

    def broadcast(self, block: Block) -> None:
        self._vals_ctr.inc()
        self.net.broadcast(BlockVal(block))

    # -- receiver side ---------------------------------------------------------

    def on_val(self, src: int, block: Block) -> None:
        """Record the body; echoing happens via :meth:`echo` once the
        protocol has validated the block (and synced its ancestors)."""
        self.tracker.record_body(block)
        self._slot_of_digest[block.digest] = block.slot

    def echo(self, block: Block) -> None:
        """Broadcast an ECHO — at most once per slot, which is where RBC's
        consistency comes from."""
        if block.slot in self._echoed_slots:
            return
        self._echoed_slots.add(block.slot)
        self._echoed_digest[block.slot] = block.digest
        self._echoes_ctr.inc()
        self.net.broadcast(
            BlockEcho(round=block.round, author=block.author, digest=block.digest)
        )

    def refresh_vote(self, block: Block) -> None:
        """Re-broadcast our ECHO (and READY, if sent) for a block we
        already endorsed — stall recovery after message loss."""
        if self._echoed_digest.get(block.slot) != block.digest:
            return
        self._refresh_ctr.inc()
        self.net.broadcast(
            BlockEcho(round=block.round, author=block.author, digest=block.digest)
        )
        inst = self.tracker.peek(block.digest)
        if inst is not None and inst.sent_ready:
            self.net.broadcast(
                BlockReady(round=block.round, author=block.author, digest=block.digest)
            )

    def on_echo(self, src: int, echo: BlockEcho) -> bool:
        inst = self.tracker.state(echo.digest)
        inst.round = echo.round
        inst.echoers.add(src)
        self._slot_of_digest.setdefault(echo.digest, (echo.round, echo.author))
        if len(inst.echoers) >= self.quorum:
            self._maybe_send_ready(echo.round, echo.author, echo.digest, inst)
        return self.tracker.try_deliver(inst, self._predicate(inst))

    def on_ready(self, src: int, ready: BlockReady) -> bool:
        inst = self.tracker.state(ready.digest)
        inst.round = ready.round
        if self._trace is None:
            inst.readiers.add(src)
        else:
            before = len(inst.readiers)
            inst.readiers.add(src)
            if before < self.quorum <= len(inst.readiers):
                self._trace.emit(
                    self.net.now(), "trace.quorum", self.net.node_id,
                    digest=ready.digest.hex()[:8], round=ready.round,
                    author=ready.author, kind="ready", primitive="rbc",
                )
        self._slot_of_digest.setdefault(ready.digest, (ready.round, ready.author))
        if len(inst.readiers) >= self.amplify_threshold:
            self._maybe_send_ready(
                ready.round, ready.author, ready.digest, inst, amplified=True
            )
        return self.tracker.try_deliver(inst, self._predicate(inst))

    def _maybe_send_ready(
        self, round_: int, author: int, digest: Digest, inst, amplified: bool = False
    ) -> None:
        if inst.sent_ready:
            return
        inst.sent_ready = True
        self._readies_ctr.inc()
        if amplified:
            self._amplified_ctr.inc()
        self.net.broadcast(BlockReady(round=round_, author=author, digest=digest))

    def mark_ready(self, digest: Digest) -> bool:
        """Protocol signal that validation + ancestor gate passed."""
        inst = self.tracker.mark_ready(digest)
        return self.tracker.try_deliver(inst, self._predicate(inst))

    def deliver_retrieved(self, digest: Digest) -> bool:
        """Deliver a digest-pinned retrieval response directly (§IV-A).

        A retrieved block was requested by its exact hash (taken from a
        parent reference), so its content is authenticated by the digest
        itself; the responder serving it asserts it was delivered there.
        Bypassing the local echo/ready quorum is what lets a replica that
        missed whole rounds of broadcast traffic catch back up."""
        inst = self.tracker.mark_ready(digest)
        delivered = self.tracker.try_deliver(inst, predicate_met=True)
        if delivered:
            self._retrieved_ctr.inc()
        return delivered

    def _predicate(self, inst) -> bool:
        return len(inst.readiers) >= self.quorum

    # -- memory ---------------------------------------------------------------

    def gc_below(self, horizon: int) -> int:
        """Drop per-instance state and the slot/digest vote maps for rounds
        below ``horizon`` (the protocol's commit-settled GC watermark)."""
        removed = self.tracker.gc_below(horizon)
        stale_slots = [s for s in self._echoed_slots if s[0] < horizon]
        for slot in stale_slots:
            self._echoed_slots.discard(slot)
            self._echoed_digest.pop(slot, None)
        stale_digests = [
            d for d, slot in self._slot_of_digest.items() if slot[0] < horizon
        ]
        for digest in stale_digests:
            del self._slot_of_digest[digest]
        return removed + len(stale_slots) + len(stale_digests)

    # -- introspection ---------------------------------------------------------

    def is_delivered(self, digest: Digest) -> bool:
        return self.tracker.is_delivered(digest)

    def body_of(self, digest: Digest):
        inst = self.tracker.peek(digest)
        return inst.body if inst else None

    def ready_complete(self, digest: Digest) -> bool:
        """Quorum of READYs present (delivery may still await body/gate)."""
        inst = self.tracker.peek(digest)
        return inst is not None and len(inst.readiers) >= self.quorum

    def echoers_of(self, digest: Digest) -> AbstractSet:
        """Live read-only view of a digest's echoers (no copy)."""
        return self.tracker.echoers_of(digest)
