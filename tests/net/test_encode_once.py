"""Tests for the encode-once fan-out memos.

Wire sizes, wire bytes, and TCP frames are each computed at most once per
message instance; frozen dataclasses make the memos impossible to
invalidate.  These tests pin (a) memo correctness — cached values equal
fresh computation — and (b) the at-most-once property itself.
"""

from dataclasses import dataclass

from repro.broadcast.messages import BlockEcho, BlockVal
from repro.codec.messages import decode_message, encode_message, encoded_wire_bytes
from repro.dag.block import genesis_block, make_block
from repro.net.interfaces import SizedMessage
from repro.net.tcp import _encode_frame, _frame_for


def sample_block():
    return make_block(1, 0, [genesis_block(a).digest for a in range(4)])


class TestWireSizeMemo:
    def test_sized_message_computes_once(self):
        calls = []

        @dataclass(frozen=True)
        class Probe(SizedMessage):
            def _compute_wire_size(self) -> int:
                calls.append(1)
                return 99

        probe = Probe()
        assert probe.wire_size() == 99
        assert probe.wire_size() == 99
        assert len(calls) == 1

    def test_blockval_size_matches_fresh_instance(self):
        block = sample_block()
        msg = BlockVal(block=block)
        first = msg.wire_size()
        assert first == BlockVal(block=block).wire_size()
        assert msg.wire_size() == first

    def test_block_wire_size_memoized(self):
        block = sample_block()
        size = block.wire_size()
        assert block.__dict__.get("_wire_size") == size
        assert block.wire_size() == size


class TestEncodeOnceBytes:
    def test_bytes_match_plain_encode_and_roundtrip(self):
        msg = BlockVal(block=sample_block())
        wire = encoded_wire_bytes(msg)
        assert wire == encode_message(msg)
        assert decode_message(wire) == msg

    def test_bytes_memoized_on_instance(self):
        msg = BlockEcho(round=1, author=0, digest=sample_block().digest)
        wire = encoded_wire_bytes(msg)
        assert msg.__dict__.get("_wire_bytes") is wire
        assert encoded_wire_bytes(msg) is wire

    def test_slotted_message_falls_back(self):
        class Slotted:
            __slots__ = ()

        # No __dict__ to memoize into: encoded_wire_bytes must not crash,
        # it should just encode.  We can't encode a foreign type, so only
        # assert the fallback path is taken before encode_message raises.
        try:
            encoded_wire_bytes(Slotted())  # type: ignore[arg-type]
        except Exception:
            pass  # encode_message rejecting a foreign type is fine


class TestFrameMemo:
    def test_frame_matches_fresh_encoding(self):
        msg = BlockVal(block=sample_block())
        frame = _frame_for(msg)
        assert frame == _encode_frame(encode_message(msg))

    def test_frame_memoized_on_instance(self):
        msg = BlockEcho(round=2, author=1, digest=sample_block().digest)
        frame = _frame_for(msg)
        assert msg.__dict__.get("_wire_frame") is frame
        assert _frame_for(msg) is frame
