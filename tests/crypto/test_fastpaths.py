"""Fast-path arithmetic must agree bit-for-bit with the reference forms.

Fixed-base comb tables, simultaneous multi-exponentiation, and the
Jacobi-symbol membership test are pure accelerations — these tests pin
them to ``pow`` / naive products so a table bug can never change results.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.group import SchnorrGroup, default_group, jacobi_symbol
from repro.crypto.primes import SAFE_PRIMES
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def group():
    # A fresh group (not the singleton) so registration state is ours.
    return SchnorrGroup.from_safe_prime(SAFE_PRIMES[256])


class TestFixedBaseTables:
    @settings(max_examples=25, deadline=None)
    @given(e=st.integers(min_value=0, max_value=2**256))
    def test_generator_table_matches_pow(self, e):
        group = default_group(256)
        assert group.exp(group.g, e) == pow(group.g, e % group.q, group.p)

    def test_registered_base_matches_pow(self, group):
        base = group.exp(group.g, 0xDEADBEEF)
        group.register_fixed_base(base)
        assert group.has_fixed_base(base)
        for e in (0, 1, 2, group.q - 1, 0x123456789ABCDEF, group.q // 3):
            assert group.exp_reduced(base, e) == pow(base, e, group.p)

    def test_unregistered_base_still_correct(self, group):
        base = group.exp(group.g, 7777)
        assert not group.has_fixed_base(base)
        assert group.exp(base, 12345) == pow(base, 12345, group.p)

    def test_register_rejects_non_member(self, group):
        # p-1 has order 2, not q.
        with pytest.raises(CryptoError):
            group.register_fixed_base(group.p - 1)

    def test_negative_exponent_is_inverse(self, group):
        x = group.exp(group.g, 42)
        assert group.mul(group.exp(x, 5), group.exp(x, -5)) == 1

    def test_built_table_count_is_bounded(self, monkeypatch):
        # Past the cap, registered bases fall back to pow — memory stays
        # bounded no matter how many keys a large-n sweep registers, and
        # results are still bit-identical.
        from repro.crypto import group as group_mod

        monkeypatch.setattr(group_mod, "_MAX_BUILT_TABLES", 2)
        g = SchnorrGroup.from_safe_prime(SAFE_PRIMES[256])
        bases = [g.exp(g.g, 100 + i) for i in range(4)]
        g.register_fixed_bases(bases)
        for base in bases:
            assert g.has_fixed_base(base)
            assert g.exp_reduced(base, 0xABCDEF) == pow(base, 0xABCDEF, g.p)
        assert len(g._built) == 2


class TestMultiExp:
    @settings(max_examples=25, deadline=None)
    @given(
        exps=st.lists(
            st.integers(min_value=0, max_value=2**256), min_size=0, max_size=4
        )
    )
    def test_matches_naive_product(self, exps):
        group = default_group(256)
        rng = random.Random(99)
        pairs = [
            (group.exp(group.g, rng.randrange(1, group.q)), e) for e in exps
        ]
        naive = 1
        for base, e in pairs:
            naive = naive * pow(base, e % group.q, group.p) % group.p
        assert group.multi_exp(pairs) == naive

    def test_empty_is_identity(self, group):
        assert group.multi_exp([]) == 1

    def test_dleq_shape(self, group):
        # The exact shape dleq_verify uses: (g^s) * (h^(q-c)).
        g, q = group.g, group.q
        h = group.exp(g, 31337)
        s, c = 123456789, 987654321
        expected = group.mul(group.exp(g, s), group.exp(h, q - c))
        assert group.multi_exp(((g, s), (h, q - c))) == expected


class TestMembership:
    def test_jacobi_matches_euler_criterion(self, group):
        rng = random.Random(5)
        for _ in range(20):
            x = rng.randrange(2, group.p)
            euler = pow(x, group.q, group.p) == 1
            assert (jacobi_symbol(x, group.p) == 1) == euler

    def test_members_and_non_members(self, group):
        assert group.is_member(group.g)
        assert group.is_member(group.exp(group.g, 123))
        assert not group.is_member(0)
        assert not group.is_member(group.p)
        assert not group.is_member(group.p - 1)  # order 2

    def test_registered_base_memoized(self, group):
        base = group.exp(group.g, 555)
        group.register_fixed_base(base)
        assert base in group._members
        assert group.is_member(base)
