"""Long-run memory boundedness at scale (the PR-10 acceptance run).

A replica that runs forever must hold O(window) protocol state, not
O(history): with ``gc_depth`` set, the DAG store, broadcast-instance
trackers, dedup maps, and per-round bookkeeping are all swept below the
commit-horizon watermark.  The only thing allowed to grow with the run
is the committed ledger itself (append-only by design — it *is* the
output of consensus).

Two angles:

* **Object counts** — deterministic bounds on every round-keyed
  container after 60+ rounds at n=33 (fan-out 32, so the vectorized
  delivery-batch engine is exercised while we measure).
* **tracemalloc** — heap growth between round 32 and round 64 must be
  linear-in-ledger only: a small per-round allowance, no acceleration,
  and no transient peak far above the steady state.
"""

import tracemalloc

import pytest

from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag2 import LightDag2Node
from repro.crypto.keys import TrustedDealer
from repro.net.latency import FixedLatency
from repro.net.simulator import Simulation

#: Per-round heap allowance (KiB).  The committed ledger at n=33 and
#: batch_size=5 measures ~260 KiB/round of CommitRecords and retained
#: blocks; 768 KiB leaves 3x headroom without masking a real leak
#: (un-GC'd broadcast state at this scale accrues several MiB/round).
LEDGER_ALLOWANCE_KIB = 768


def build_sim(n, gc_depth, seed=1):
    system = SystemConfig(n=n, crypto="null", seed=seed)
    protocol = ProtocolConfig(batch_size=5, gc_depth=gc_depth)
    chains = TrustedDealer(
        system, coin_threshold=protocol.resolve_coin_threshold(system)
    ).deal()
    return Simulation(
        [
            (lambda net, i=i: LightDag2Node(net, system, protocol, chains[i]))
            for i in range(n)
        ],
        latency_model=FixedLatency(0.01),
        seed=seed,
    )


def run_to_round(sim, target, until):
    sim.run(
        until=until,
        stop_when=lambda s: all(n.current_round >= target for n in s.nodes),
    )
    assert sim.nodes[0].current_round >= target, "run stalled before target"


class TestLongRunMemory:
    def test_heap_flat_after_gc_watermark_at_n33(self):
        """60+ rounds at n=33 (vectorized-batch regime): heap growth in
        the second half is ledger-only, and every round-keyed container
        ends O(window)."""
        n, gc_depth = 33, 8
        sim = build_sim(n=n, gc_depth=gc_depth)
        tracemalloc.start()
        try:
            run_to_round(sim, 32, until=40.0)
            first, _ = tracemalloc.get_traced_memory()
            run_to_round(sim, 64, until=80.0)
            second, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()

        rounds = 32
        growth_per_round_kib = (second - first) / rounds / 1024
        assert growth_per_round_kib < LEDGER_ALLOWANCE_KIB, (
            f"heap grew {growth_per_round_kib:.0f} KiB/round after the GC "
            f"watermark engaged — protocol state is leaking past gc_depth"
        )
        # No acceleration: the second 32 rounds must not allocate more
        # than the first 32 (which include all one-time setup).
        assert second - first <= first
        # No transient blowup either — peak tracks the steady state.
        assert peak <= second * 1.5

        node = sim.nodes[0]
        window = node.current_round - node.store.lowest_retained_round() + 1
        assert window <= 4 * gc_depth  # the store window itself is bounded

        # Broadcast-instance trackers: O(n * window), not O(n * rounds).
        per_author_bound = 2 * window * n
        for name in ("pbc", "cbc"):
            tracker = getattr(node, name).tracker
            assert len(tracker._instances) <= per_author_bound, (
                f"{name} tracker holds {len(tracker._instances)} instances"
            )

        # Dedup maps are round-stamped and swept with the same horizon.
        assert len(node._known) <= per_author_bound
        assert len(node._invalid) <= per_author_bound
        assert len(node.voted_refs) <= per_author_bound  # (round, author) keys

        # The simulator's own queue holds in-flight traffic only.
        assert sim.pending_events <= 8 * n * n

    def test_gc_contrast_at_n16(self):
        """Same workload with and without gc_depth: the GC'd run's
        broadcast trackers and store stay a small fraction of the
        unbounded run's."""
        kept = build_sim(n=16, gc_depth=None, seed=2)
        run_to_round(kept, 40, until=40.0)
        swept = build_sim(n=16, gc_depth=8, seed=2)
        run_to_round(swept, 40, until=40.0)

        for name in ("pbc", "cbc"):
            full = len(getattr(kept.nodes[0], name).tracker._instances)
            pruned = len(getattr(swept.nodes[0], name).tracker._instances)
            assert pruned < full / 2, (
                f"{name}: {pruned} instances with GC vs {full} without"
            )
        assert len(swept.nodes[0]._known) < len(kept.nodes[0]._known) / 2
        assert len(swept.nodes[0].store) < len(kept.nodes[0].store)

        # GC must not have cost agreement: both runs commit a ledger.
        assert len(swept.nodes[0].ledger) > 0
        assert len(kept.nodes[0].ledger) > 0
