"""Tests for repro.net.asyncnet: the asyncio runtime."""

import asyncio
from dataclasses import dataclass

import pytest

from repro.errors import NetworkError
from repro.net.asyncnet import AsyncCluster
from repro.net.interfaces import Message, Node
from repro.net.latency import FixedLatency


@dataclass(frozen=True)
class Note(Message):
    text: str

    def wire_size(self) -> int:
        return len(self.text)


class Echoer(Node):
    def __init__(self, net):
        super().__init__(net)
        self.received = []
        self.timers = []

    def on_start(self):
        if self.node_id == 0:
            self.net.broadcast(Note("hello"))

    def on_message(self, src, msg):
        self.received.append((src, msg))
        if isinstance(msg, Note) and msg.text == "hello" and self.node_id != 0:
            self.net.send(src, Note(f"ack-{self.node_id}"))

    def on_timer(self, tag, data=None):
        self.timers.append((tag, data))


def run(cluster, duration=0.3):
    asyncio.run(cluster.run(duration))


class TestAsyncCluster:
    def test_broadcast_and_replies(self):
        cluster = AsyncCluster([Echoer for _ in range(3)])
        run(cluster)
        acks = {m.text for _, m in cluster.nodes[0].received if m.text.startswith("ack")}
        assert acks == {"ack-1", "ack-2"}

    def test_self_delivery(self):
        cluster = AsyncCluster([Echoer for _ in range(3)])
        run(cluster)
        assert any(src == 0 for src, _ in cluster.nodes[0].received)

    def test_injected_latency_delays_delivery(self):
        cluster = AsyncCluster(
            [Echoer for _ in range(2)], latency_model=FixedLatency(10.0)
        )
        run(cluster, duration=0.2)
        # hello was sent but can't arrive within 0.2s at 10s latency
        assert cluster.nodes[1].received == []

    def test_timers_fire(self):
        class TimerNode(Echoer):
            def on_start(self):
                self.net.set_timer(0.05, "tick", 42)

        cluster = AsyncCluster([TimerNode for _ in range(1)])
        run(cluster, duration=0.2)
        assert cluster.nodes[0].timers == [("tick", 42)]

    def test_zero_delay_timer(self):
        class TimerNode(Echoer):
            def on_start(self):
                self.net.set_timer(0.0, "now")

        cluster = AsyncCluster([TimerNode for _ in range(1)])
        run(cluster, duration=0.1)
        assert cluster.nodes[0].timers == [("now", None)]

    def test_messages_counted(self):
        cluster = AsyncCluster([Echoer for _ in range(3)])
        run(cluster)
        # 3 hello deliveries + 2 acks
        assert cluster.messages_delivered == 5

    def test_post_outside_run_rejected(self):
        cluster = AsyncCluster([Echoer for _ in range(2)])
        with pytest.raises(NetworkError):
            cluster.post(0, 1, Note("too-early"))

    def test_invalid_destination_rejected(self):
        class BadSender(Echoer):
            def on_start(self):
                self.net.send(99, Note("oops"))

        cluster = AsyncCluster([BadSender for _ in range(1)])
        with pytest.raises(NetworkError):
            run(cluster, duration=0.05)

    def test_clock_monotone(self):
        cluster = AsyncCluster([Echoer for _ in range(2)])
        run(cluster, duration=0.1)
        assert cluster.now() >= 0.1
