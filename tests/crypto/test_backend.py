"""Tests for repro.crypto.backend: the three signing backends."""

import pytest

from repro.config import SystemConfig
from repro.crypto.backend import HmacBackend, NullBackend, SchnorrBackend, make_backend
from repro.crypto.hashing import hash_fields
from repro.crypto.keys import TrustedDealer
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def system():
    return SystemConfig(n=4, crypto="schnorr", seed=0)


@pytest.fixture(scope="module")
def chains(system):
    return TrustedDealer(system).deal()


MSG = hash_fields("payload")


class TestSchnorrBackend:
    def test_roundtrip_across_replicas(self, system, chains):
        signer = SchnorrBackend(chains[0])
        verifier = SchnorrBackend(chains[3])
        sig = signer.sign(MSG)
        assert verifier.verify(0, MSG, sig)

    def test_wrong_signer_id_rejected(self, chains):
        signer = SchnorrBackend(chains[0])
        sig = signer.sign(MSG)
        assert not SchnorrBackend(chains[1]).verify(1, MSG, sig)

    def test_wrong_message_rejected(self, chains):
        signer = SchnorrBackend(chains[0])
        sig = signer.sign(MSG)
        assert not signer.verify(0, hash_fields("other"), sig)

    def test_wrong_type_rejected(self, chains):
        assert not SchnorrBackend(chains[0]).verify(0, MSG, b"junk")

    def test_unknown_signer_rejected(self, chains):
        signer = SchnorrBackend(chains[0])
        sig = signer.sign(MSG)
        assert not signer.verify(99, MSG, sig)


class TestHmacBackend:
    def test_roundtrip_across_replicas(self, system):
        signer = HmacBackend(0, system)
        verifier = HmacBackend(2, system)
        sig = signer.sign(MSG)
        assert verifier.verify(0, MSG, sig)

    def test_wrong_signer_id_rejected(self, system):
        sig = HmacBackend(0, system).sign(MSG)
        assert not HmacBackend(1, system).verify(1, MSG, sig)

    def test_wrong_message_rejected(self, system):
        sig = HmacBackend(0, system).sign(MSG)
        assert not HmacBackend(0, system).verify(0, hash_fields("x"), sig)

    def test_different_seed_different_keys(self):
        a = HmacBackend(0, SystemConfig(n=4, seed=1))
        b = HmacBackend(0, SystemConfig(n=4, seed=2))
        assert a.sign(MSG) != b.sign(MSG)

    def test_non_bytes_rejected(self, system):
        assert not HmacBackend(0, system).verify(0, MSG, 12345)

    def test_unknown_signer(self, system):
        backend = HmacBackend(0, system)
        with pytest.raises(CryptoError):
            backend._key_for(99)


class TestNullBackend:
    def test_accepts_everything(self):
        backend = NullBackend()
        assert backend.verify(0, MSG, backend.sign(MSG))
        assert backend.verify(7, MSG, b"anything")


class TestFactory:
    def test_schnorr_requires_keychain(self, system):
        with pytest.raises(CryptoError):
            make_backend("schnorr", 0, system, keychain=None)

    def test_all_names(self, system, chains):
        assert isinstance(make_backend("schnorr", 0, system, chains[0]), SchnorrBackend)
        assert isinstance(make_backend("hmac", 0, system), HmacBackend)
        assert isinstance(make_backend("null", 0, system), NullBackend)

    def test_unknown_name(self, system):
        with pytest.raises(CryptoError):
            make_backend("rot13", 0, system)

    def test_signature_size_consistent(self, system, chains):
        # All backends must advertise the same wire size so bandwidth
        # accounting is backend-independent.
        sizes = {
            make_backend(name, 0, system, chains[0]).signature_size
            for name in ("schnorr", "hmac", "null")
        }
        assert len(sizes) == 1
