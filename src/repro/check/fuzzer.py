"""Seed-deterministic fault-schedule fuzzing with greedy shrinking.

One fuzz *case* = (protocol, seed, n, duration, schedule, gc_depth).  The
schedule is generated deterministically from the seed and system shape
(:func:`repro.adversary.schedule.random_schedule`), the run executes with
every oracle enabled (``check_level="full"``), and any
:class:`~repro.errors.ReproError` the oracles or engine raise is a
failure.  Failures are shrunk greedily — drop phases, reduce n, halve
durations — and reported as a command line that reproduces them exactly.

Exposed on the CLI as ``python -m repro fuzz``; importable for tests.
This module imports the harness (which imports ``repro.check`` for the
oracle wiring), so it intentionally stays out of ``repro.check.__init__``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..adversary.schedule import FaultPhase, FaultSchedule, random_schedule
from ..config import ExperimentConfig, ProtocolConfig, SystemConfig
from ..errors import ConfigError, ReproError
from ..harness.parallel import NOT_RUN, parallel_map
from ..harness.runner import PROTOCOL_REGISTRY, run_experiment

#: gc_depth used on the seeds that exercise the pruning paths.
FUZZ_GC_DEPTH = 12

#: Every third seed runs with GC on — the pruning/bookkeeping interactions
#: are exactly where long-run state bugs hide.
GC_SEED_MODULUS = 3


@dataclass(frozen=True)
class FuzzCase:
    """Everything needed to reproduce one fuzz run exactly."""

    protocol: str
    seed: int
    n: int
    duration: float
    schedule: str
    gc_depth: Optional[int] = None

    def command(self) -> str:
        """The CLI invocation that replays this exact case."""
        parts = [
            "python -m repro fuzz",
            f"--protocol {self.protocol}",
            f"--seed-start {self.seed}",
            f"-n {self.n}",
            f"--duration {self.duration:g}",
            f"--schedule '{self.schedule}'",
        ]
        if self.gc_depth is not None:
            parts.append(f"--gc-depth {self.gc_depth}")
        return " ".join(parts)


@dataclass
class FuzzFailure:
    """One failing case, with its shrunk form when shrinking ran."""

    case: FuzzCase
    error: str
    shrunk: Optional[FuzzCase] = None
    shrunk_error: Optional[str] = None
    shrink_attempts: int = 0
    #: Health-watchdog verdict from replaying :meth:`minimal` with the
    #: liveness monitor attached (see :func:`probe_health`).
    health: Optional[Dict[str, object]] = None

    def minimal(self) -> FuzzCase:
        return self.shrunk if self.shrunk is not None else self.case


@dataclass
class FuzzReport:
    """Outcome of a fuzz sweep."""

    runs: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    elapsed: float = 0.0
    timed_out: bool = False
    runs_by_protocol: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


# ------------------------------------------------------------------ one case


def build_config(case: FuzzCase) -> ExperimentConfig:
    """The experiment configuration behind a fuzz case.

    Small batches and no CPU model keep a 4-replica, ~6-second case around
    a second of wall clock; warmup is irrelevant (nothing reads the
    throughput numbers) but must stay below the duration.
    """
    return ExperimentConfig(
        system=SystemConfig(n=case.n, crypto="hmac", seed=case.seed),
        protocol=ProtocolConfig(batch_size=8, gc_depth=case.gc_depth),
        protocol_name=case.protocol,
        adversary_name=f"schedule:{case.schedule}",
        duration=case.duration,
        warmup=min(1.0, case.duration * 0.25),
        cpu_fixed_us=0.0,
        cpu_per_byte_ns=0.0,
        seed=case.seed,
        check_level="full",
    )


def run_case(
    case: FuzzCase, registry: Optional[Dict] = None, obs=None
) -> Optional[str]:
    """Execute one case under full oracles.

    Returns ``None`` on success or the failure description.  A
    :class:`~repro.errors.ConfigError` (invalid case, e.g. a shrink
    candidate whose schedule no longer fits the replica set) propagates —
    it is not a protocol failure.
    """
    cfg = build_config(case)
    try:
        run_experiment(cfg, obs=obs, registry=registry)
    except ConfigError:
        raise
    except ReproError as exc:
        return f"{type(exc).__name__}: {exc}"
    return None


def probe_health(
    case: FuzzCase, registry: Optional[Dict] = None
) -> Dict[str, object]:
    """Replay a case with the liveness watchdog listening on the journal.

    The watchdog is installed as a journal *listener*, so it keeps its
    state even when the run dies on an oracle violation mid-flight — the
    verdict (``stalled`` / ``degraded`` / ``no-progress``) tells the
    investigator how the schedule was hurting *before* the oracle fired.
    Memory stays flat: a one-slot :class:`~repro.obs.journal.
    BoundedJournal` records counts only, and the monitor consumes events
    as they stream past.
    """
    from ..obs import BoundedJournal, HealthMonitor, Observability

    cfg = build_config(case)
    journal = BoundedJournal(max_events=1)
    watchdog = HealthMonitor(case.n)
    watchdog.install(journal)
    obs = Observability(journal=journal)
    try:
        run_experiment(cfg, obs=obs, registry=registry)
    except ReproError:
        pass  # the failure itself was already recorded; we want the vitals
    return watchdog.summary()


# ------------------------------------------------------------------ shrinking


def _scale_phase(phase: FaultPhase, factor: float) -> FaultPhase:
    return FaultPhase(
        kind=phase.kind,
        start=round(phase.start * factor, 3),
        duration=round(phase.duration * factor, 3),
        params=phase.params,
    )


def shrink(
    case: FuzzCase,
    registry: Optional[Dict] = None,
    max_attempts: int = 32,
    budget_s: float = 60.0,
    runner: Optional[Callable[..., Optional[str]]] = None,
) -> tuple:
    """Greedy minimization: returns ``(smaller_failing_case, attempts)``.

    Three moves, retried to a fixed point or budget exhaustion: drop one
    phase, reduce the replica count, halve the run (scaling the schedule
    with it).  Any failure counts — the shrinker minimizes "a schedule this
    protocol fails under", not one exact exception string.

    Candidates are memoized by the case itself (:class:`FuzzCase` is
    frozen, so equal cases hash alike): the move set can regenerate a
    candidate verbatim after an unrelated move lands — e.g. the n=4
    reduction rejected at n=6 reappears identically once n=6→5 succeeds —
    and replaying a known verdict would burn a full simulation run from
    both the attempt counter and the wall-clock budget.

    ``runner`` replaces :func:`run_case` (tests inject a recording stub).
    """
    run = run_case if runner is None else runner
    deadline = time.monotonic() + budget_s
    attempts = 0
    current = case
    # The input case is a known failure — seed the memo so no move that
    # happens to regenerate it re-runs it.
    verdicts: Dict[FuzzCase, bool] = {case: True}

    def still_fails(candidate: FuzzCase) -> bool:
        nonlocal attempts
        known = verdicts.get(candidate)
        if known is not None:
            return known
        if attempts >= max_attempts or time.monotonic() >= deadline:
            return False
        attempts += 1
        try:
            failed = run(candidate, registry=registry) is not None
        except ConfigError:
            # candidate invalid (e.g. schedule outgrew new n)
            failed = False
        verdicts[candidate] = failed
        return failed

    improved = True
    while improved and attempts < max_attempts and time.monotonic() < deadline:
        improved = False
        schedule = FaultSchedule.from_spec(current.schedule)
        for i in range(len(schedule.phases)):
            trimmed = FaultSchedule(
                schedule.phases[:i] + schedule.phases[i + 1:]
            )
            candidate = replace(current, schedule=trimmed.to_spec())
            if still_fails(candidate):
                current, improved = candidate, True
                break
        if improved:
            continue
        for smaller in sorted({4, (current.n + 4) // 2}):
            if smaller >= current.n:
                continue
            candidate = replace(current, n=smaller)
            if still_fails(candidate):
                current, improved = candidate, True
                break
        if improved:
            continue
        if current.duration > 3.0:
            scaled = FaultSchedule(
                tuple(_scale_phase(p, 0.5) for p in schedule.phases)
            )
            candidate = replace(
                current,
                duration=round(max(2.0, current.duration * 0.5), 3),
                schedule=scaled.to_spec(),
            )
            if still_fails(candidate):
                current, improved = candidate, True
    return current, attempts


# ------------------------------------------------------------------ sweeping


def make_case(
    protocol: str, seed: int, n: int = 4, duration: float = 6.0
) -> FuzzCase:
    """The deterministic case for one (protocol, seed) cell."""
    system = SystemConfig(n=n, crypto="hmac", seed=seed)
    schedule = random_schedule(seed, system, protocol, duration)
    gc_depth = FUZZ_GC_DEPTH if seed % GC_SEED_MODULUS == 0 else None
    return FuzzCase(
        protocol=protocol,
        seed=seed,
        n=n,
        duration=duration,
        schedule=schedule.to_spec(),
        gc_depth=gc_depth,
    )


def _fuzz_worker(case: FuzzCase, registry: Optional[Dict]):
    """Shared-nothing fuzz unit: case in, verdict out (never raises).

    ``ConfigError`` means the *case generator* produced an invalid case —
    a harness bug, not a protocol failure — so it is tagged separately and
    re-raised in the parent rather than recorded as a finding.
    """
    try:
        return "fail", run_case(case, registry=registry)
    except ConfigError as exc:
        return "config_error", str(exc)


def fuzz(
    protocols: Optional[Sequence[str]] = None,
    seeds: Iterable[int] = range(10),
    n: int = 4,
    duration: float = 6.0,
    time_box: Optional[float] = None,
    registry: Optional[Dict] = None,
    shrink_failures: bool = True,
    shrink_budget_s: float = 60.0,
    log: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = 1,
) -> FuzzReport:
    """Sweep seeds × protocols under generated schedules with full oracles.

    ``jobs`` fans the (seed, protocol) grid out over the parallel harness
    (``repro.harness.parallel``); every case is seed-deterministic, so the
    set of failures is identical at any job count.  Shrinking always runs
    serially in the parent — it is a sequential fixed-point search over
    one failing case, and failures are rare enough that parallelizing the
    sweep is where the wall-clock lives.

    ``time_box`` bounds wall-clock seconds for the *sweep* (shrinking has
    its own ``shrink_budget_s`` per failure); on expiry the report covers
    the completed runs and ``timed_out`` is set so CI jobs degrade
    gracefully instead of being killed.
    """
    if protocols is None:
        protocols = sorted(PROTOCOL_REGISTRY)
    started = time.monotonic()
    report = FuzzReport()
    cases = [
        make_case(protocol, seed, n=n, duration=duration)
        for seed in seeds
        for protocol in protocols
    ]
    verdicts, timed_out = parallel_map(
        _fuzz_worker, cases, jobs, registry=registry, time_box=time_box
    )
    report.timed_out = timed_out
    for case, verdict in zip(cases, verdicts):
        if verdict is NOT_RUN:
            continue
        kind, error = verdict
        if kind == "config_error":
            raise ConfigError(error)
        report.runs += 1
        report.runs_by_protocol[case.protocol] = (
            report.runs_by_protocol.get(case.protocol, 0) + 1
        )
        if error is None:
            continue
        failure = FuzzFailure(case=case, error=error)
        if log is not None:
            log(f"FAIL {case.protocol} seed={case.seed}: {error}")
        if shrink_failures:
            shrunk, attempts = shrink(
                case, registry=registry, budget_s=shrink_budget_s
            )
            failure.shrink_attempts = attempts
            if shrunk != case:
                failure.shrunk = shrunk
                failure.shrunk_error = run_case(shrunk, registry=registry)
            if log is not None:
                log(
                    f"  shrunk after {attempts} attempts to: "
                    f"{failure.minimal().command()}"
                )
        failure.health = probe_health(failure.minimal(), registry=registry)
        if log is not None:
            log(f"  health verdict: {failure.health['verdict']}")
        report.failures.append(failure)
    report.elapsed = time.monotonic() - started
    return report
