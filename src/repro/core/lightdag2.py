"""LightDAG2 (§V): PBC-CBC-PBC waves with equivocation containment.

A LightDAG2 wave is three rounds — Plain Broadcast, Consistent Broadcast,
Plain Broadcast (paper rounds ⟨w,0..2⟩; we use 1-based ``e ∈ {1,2,3}``).
PBC permits Byzantine equivocation, so a slot may hold several blocks
(``B^j`` with repropose/arrival index ``j``); the four rules of §V contain
the damage:

* **Rule 1** — a block references ≥ n−f previous-round blocks, at most one
  per slot (enforced by :func:`~repro.dag.validation.validate_block_structure`).
* **Rule 2** — a replica never *votes* (CBC-echoes) for two blocks that
  directly reference contradictory previous-round blocks; instead it sends
  the conflicting block to the proposer, who assembles a Byzantine proof,
  blacklists the equivocator, and **reproposes** without its blocks.
* **Rule 3** — voting is monotone in waves; a verified Byzantine proof
  blacklists its culprit everywhere: never reference the culprit again,
  embed the proof in the next own block, refuse votes for blocks that
  still reference the culprit (forwarding the proof to their proposers).
* **Rule 4** — first-round blocks record slot *determinations*: the
  anchor-candidate determination for the newest non-empty leader slot plus
  explicit picks for equivocated parent slots.

Commit rule: the wave's leader *slot* (round ⟨w,1⟩) is named by the GPC
revealed from shares riding with round-⟨w,3⟩ blocks; a candidate block in
it commits directly when **n − f** distinct-author round-⟨w,3⟩ blocks
reference it (two parent hops).  Best latency = 1 (PBC) + 2 (CBC) + 1
(PBC) = 4 steps, Table I.

Implementation note on Rule 4 and safety (recorded in DESIGN.md): block
references are hash-concrete, so a candidate's ancestor closure is already
replica-independent; our commit path orders the *digest closure*
deterministically — if both blocks of an equivocated slot are referenced,
both commit, adjacently, in (round, author, j) order — which preserves
Theorem 6's ledger-prefix safety without needing determinations to
disambiguate.  Rule 4 metadata is still produced and validated (it is part
of the wire format and the overhead measurements), and Rule 2 still makes
contradictory references un-deliverable in CBC rounds, which is what
bounds how much equivocated data can ever reach the ledger.
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from typing import Dict, List, Optional, Set, Tuple

from ..broadcast.cbc import CbcManager
from ..broadcast.messages import ByzantineProofMsg, ContradictionNotice
from ..broadcast.pbc import PbcManager
from ..crypto.hashing import Digest
from ..dag.block import Block, TxBatch, make_block
from ..dag.traversal import is_ancestor
from ..net.interfaces import Message
from .base import BaseDagNode
from .proofs import ByzantineProof


class LightDag2Node(BaseDagNode):
    """One LightDAG2 replica."""

    WAVE_LENGTH = 3
    WAVE_OVERLAP = False
    SUPPORT_DEPTH = 2  # leader in ⟨w,1⟩, support from ⟨w,3⟩
    STRICT_STORE = False

    PBC_E = (1, 3)
    CBC_E = 2

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: replicas proven Byzantine (Rule 3 exclusion set)
        self.blacklist: Set[int] = set()
        #: verified proofs by culprit
        self.proofs: Dict[int, ByzantineProof] = {}
        #: culprits whose proof still has to ride in one of our blocks
        self._proofs_to_embed: List[int] = []
        #: Rule 2 bookkeeping — PBC slot -> first block digest we endorsed
        self.voted_refs: Dict[Tuple[int, int], Digest] = {}
        #: blocks we proposed, for ContradictionNotice lookups
        self.my_blocks: Dict[Digest, Block] = {}
        #: Rule 3 first bullet — newest wave we CBC-proposed/voted in
        self._max_cbc_wave = 0
        #: CBC blocks awaiting reproposal once enough clean parents exist
        self._pending_repropose: Dict[Digest, Block] = {}
        #: originals we already reproposed, with the blacklist snapshot the
        #: reproposal was computed against — several voters send notices
        #: about the same conflict concurrently, and D′ must go out once,
        #: not once per notice.
        self._reproposed_for: Dict[Digest, frozenset] = {}
        #: next repropose index per round
        self._repropose_counter: Dict[int, int] = {}
        #: counters for the experiment reports
        self.reproposals = 0
        self.contradictions_sent = 0

    # ----------------------------------------------------------- round shape

    @staticmethod
    def round_kind(round_: int) -> int:
        """Position ``e ∈ {1,2,3}`` of a round within its wave."""
        return (round_ - 1) % 3 + 1

    @staticmethod
    def wave_of(round_: int) -> int:
        return (round_ - 1) // 3 + 1

    def _make_managers(self) -> None:
        self.pbc = PbcManager(self.net, self._on_deliver, obs=self.obs)
        self.cbc = CbcManager(
            self.net, self.system.quorum, self._on_deliver, obs=self.obs
        )

    def _manager_for_round(self, round_: int):
        return self.cbc if self.round_kind(round_) == self.CBC_E else self.pbc

    def _broadcast_managers(self) -> tuple:
        return (self.pbc, self.cbc)

    def _commit_threshold_value(self) -> int:
        return self.system.quorum  # n - f, §III-D

    def _holders_of(self, digest: Digest) -> AbstractSet:
        return self.cbc.echoers_of(digest)

    # ------------------------------------------------------------- messages

    def _on_other_message(self, src: int, msg: Message) -> None:
        if isinstance(msg, ContradictionNotice):
            self._on_contradiction(src, msg)
        elif isinstance(msg, ByzantineProofMsg):
            self._on_proof_msg(src, msg)

    def _inspect_body(self, block: Block) -> None:
        """Harvest embedded Byzantine proofs (Rule 3: proofs propagate by
        riding in blocks, Lemma 8's recognition mechanism)."""
        for proof in block.byz_proofs:
            if isinstance(proof, ByzantineProof):
                self._register_proof(proof)

    # --------------------------------------------------------------- voting

    def _participate(self, block: Block, src: int) -> None:
        if self.round_kind(block.round) != self.CBC_E:
            return  # PBC rounds deliver without votes
        self._apply_vote_policy(block)

    def _apply_vote_policy(self, block: Block) -> None:
        """Rules 2 and 3 — decide whether to echo a CBC block."""
        wave = self.wave_of(block.round)
        if wave < self._max_cbc_wave:
            return  # Rule 3, first bullet: never vote in older waves

        # Rule 3, third bullet: refuse blocks referencing proven culprits.
        for parent_digest in block.parents:
            parent = self.store.get(parent_digest)
            if parent.is_genesis:
                continue
            if parent.author in self.blacklist:
                proof = self.proofs[parent.author]
                self.net.send(
                    block.author,
                    ByzantineProofMsg(
                        culprit=proof.culprit,
                        block_a=proof.block_a,
                        block_b=proof.block_b,
                        objected=block.digest,
                    ),
                )
                return

        # Rule 2: refuse contradictory references, notify the proposer.
        for parent_digest in block.parents:
            parent = self.store.get(parent_digest)
            endorsed = self.voted_refs.get(parent.slot)
            if endorsed is not None and endorsed != parent_digest:
                self.contradictions_sent += 1
                self.net.send(
                    block.author,
                    ContradictionNotice(
                        objected=block.digest,
                        conflicting_block=self.store.get(endorsed),
                    ),
                )
                return

        # All clear: vote, and bind our endorsements (Rule 2 bookkeeping).
        self._max_cbc_wave = max(self._max_cbc_wave, wave)
        for parent_digest in block.parents:
            parent = self.store.get(parent_digest)
            if not parent.is_genesis:
                self.voted_refs.setdefault(parent.slot, parent_digest)
        self.cbc.vote(block)

    # ------------------------------------------------- proofs & reproposals

    def _register_proof(self, proof: ByzantineProof) -> bool:
        """Verify and adopt a Byzantine proof (idempotent per culprit)."""
        if proof.culprit in self.blacklist:
            return True
        if not proof.verify(self.backend):
            return False
        self.proofs[proof.culprit] = proof
        self.blacklist.add(proof.culprit)
        self._proofs_to_embed.append(proof.culprit)
        return True

    def _on_contradiction(self, src: int, notice: ContradictionNotice) -> None:
        """Rule 2, proposer side: assemble the proof and repropose."""
        original = self.my_blocks.get(notice.objected)
        if original is None:
            return
        c0 = notice.conflicting_block
        if not self.backend.verify(c0.author, c0.digest, c0.signature):
            return
        c1: Optional[Block] = None
        for parent_digest in original.parents:
            parent = self.store.get_optional(parent_digest)
            if (
                parent is not None
                and parent.slot == c0.slot
                and parent.digest != c0.digest
            ):
                c1 = parent
                break
        if c1 is None:
            return  # bogus or stale notice
        proof = ByzantineProof(culprit=c0.author, block_a=c0, block_b=c1)
        if not self._register_proof(proof):
            return
        self._repropose(original)

    def _on_proof_msg(self, src: int, msg: ByzantineProofMsg) -> None:
        """Rule 3, proposer side: a voter refused our block because it
        references a proven culprit — adopt the proof and repropose."""
        proof = ByzantineProof(
            culprit=msg.culprit, block_a=msg.block_a, block_b=msg.block_b
        )
        if not self._register_proof(proof):
            return
        original = self.my_blocks.get(msg.objected)
        if original is not None and self.round_kind(original.round) == self.CBC_E:
            self._repropose(original)

    def _repropose(self, original: Block) -> None:
        """Rule 2: propose D′ in the same slot, clean of culprit references,
        carrying the proof(s).  At most one reproposal per (original,
        blacklist state): a burst of notices about one conflict yields one
        D′; only a *newly* exposed culprit justifies another."""
        if original.author != self.node_id:
            return
        snapshot = frozenset(self.blacklist)
        if self._reproposed_for.get(original.digest) == snapshot:
            return
        round_ = original.round
        parents = self._choose_parents(round_)
        if len(parents) < self._quorum:
            # Not enough clean parents yet; retry as deliveries arrive.
            self._pending_repropose[original.digest] = original
            return
        self._pending_repropose.pop(original.digest, None)
        self._reproposed_for[original.digest] = snapshot
        self._repropose_counter[round_] = self._repropose_counter.get(round_, 0) + 1
        j = self._repropose_counter[round_]
        block = make_block(
            round_,
            self.node_id,
            parents,
            original.payload,
            repropose_index=j,
            byz_proofs=self._drain_proof_embeds(),
            signer=self.backend,
        )
        self.my_blocks[block.digest] = block
        self.reproposals += 1
        if self._trace is not None:
            self._trace.emit(
                self.net.now(), "trace.repropose", self.node_id,
                round=round_, digest=block.digest.hex()[:8],
                original=original.digest.hex()[:8], index=j,
            )
        self.cbc.broadcast(block)

    def _drain_proof_embeds(self) -> Tuple[ByzantineProof, ...]:
        proofs = tuple(self.proofs[c] for c in self._proofs_to_embed)
        self._proofs_to_embed.clear()
        return proofs

    def _after_deliver(self, block: Block) -> None:
        if self._pending_repropose and block.round >= 1:
            for original in list(self._pending_repropose.values()):
                if original.round == block.round + 1:
                    self._repropose(original)

    def _gc_state(self, horizon: int) -> None:
        """Prune the Rule 2/3 bookkeeping alongside the store.

        Everything below the horizon is un-revotable: a CBC block whose
        parents were pruned can never finish validation (it parks in
        retrieval, which GCs it at the same horizon), so endorsements,
        proposal copies, and repropose state about those rounds are dead.
        ``voted_refs`` keys are *parent* slots — one round below the blocks
        endorsing them — hence the ``horizon - 1`` cutoff: any parent still
        in the store keeps its endorsement.
        """
        super()._gc_state(horizon)
        for slot in [s for s in self.voted_refs if s[0] < horizon - 1]:
            del self.voted_refs[slot]
        doomed = [d for d, b in self.my_blocks.items() if b.round < horizon]
        for digest in doomed:
            del self.my_blocks[digest]
        if self._reproposed_for:
            self._reproposed_for = {
                d: snap
                for d, snap in self._reproposed_for.items()
                if d in self.my_blocks
            }
        for digest in [
            d for d, b in self._pending_repropose.items() if b.round < horizon
        ]:
            del self._pending_repropose[digest]
        for round_ in [r for r in self._repropose_counter if r < horizon]:
            del self._repropose_counter[round_]

    # ------------------------------------------------------------ proposing

    def _parent_allowed(self, block: Block) -> bool:
        return block.is_genesis or block.author not in self.blacklist

    def _can_propose_extra(self, round_: int) -> bool:
        """First-round blocks wait for the previous wave's coin so the
        Rule-4 anchor (the newest leader slot) is known."""
        if self.round_kind(round_) == 1:
            wave = self.wave_of(round_)
            if wave > 1 and (wave - 1) not in self.revealed_leaders:
                return False
        return True

    def _build_block(self, round_: int, parents: List[Digest], payload: TxBatch) -> Block:
        e = self.round_kind(round_)
        determinations = self._rule4_determinations(parents) if e == 1 else ()
        block = make_block(
            round_,
            self.node_id,
            parents,
            payload,
            byz_proofs=self._drain_proof_embeds(),
            determinations=determinations,
            signer=self.backend,
        )
        self.my_blocks[block.digest] = block
        if e == self.CBC_E:
            self._max_cbc_wave = max(self._max_cbc_wave, self.wave_of(round_))
        return block

    def _rule4_determinations(
        self, parents: List[Digest]
    ) -> Tuple[Tuple[int, int, Digest], ...]:
        """Rule 4 metadata for a first-round block.

        Two parts: (a) the anchor determination — the unique candidate of
        the newest non-empty leader slot, derived from round-⟨w,3⟩ blocks
        as the rule prescribes; (b) explicit picks for every equivocated
        slot among our direct parents (our parent choice *is* the pick;
        recording it makes it visible on the wire).
        """
        determinations: List[Tuple[int, int, Digest]] = []
        anchor = self._anchor_determination()
        if anchor is not None:
            determinations.append(anchor)
        for parent_digest in parents:
            parent = self.store.get_optional(parent_digest)
            if parent is None or parent.is_genesis:
                continue
            if self.store.slot_is_equivocated(*parent.slot):
                determinations.append((parent.round, parent.author, parent_digest))
        return tuple(determinations)

    def _anchor_determination(self) -> Optional[Tuple[int, int, Digest]]:
        """Find the newest non-empty leader slot and its unique block, by
        scanning which candidate the round-⟨w,3⟩ blocks reference."""
        for wave in sorted(self.revealed_leaders, reverse=True):
            leader = self.revealed_leaders[wave]
            leader_round = self.wave.first_round(wave)
            candidates = self.store.blocks_in_slot(leader_round, leader)
            if not candidates:
                continue
            for third in self.store.blocks_in_round(leader_round + 2):
                for candidate in candidates:
                    if self._references_within(third, candidate.digest, 2):
                        return (leader_round, leader, candidate.digest)
            # Non-empty locally but unreferenced by any third-round block we
            # hold: treat as empty and fall through to an older wave.
        return None

    # ----------------------------------------------------------- committing

    def _support_count(self, wave_num: int, leader_block: Block) -> int:
        """Distinct authors in round ⟨w,3⟩ with any delivered block that
        references the candidate (two hops, through delivered — hence
        Rule-2-consistent — CBC blocks)."""
        support_round = self._support_round(wave_num)
        count = 0
        for author in self.store.authors_in_round(support_round):
            for supporter in self.store.blocks_in_slot(support_round, author):
                if self._references_within(
                    supporter, leader_block.digest, self.SUPPORT_DEPTH
                ):
                    count += 1
                    break
        return count

    def _try_direct_commit(self, wave_num: int) -> None:
        if (
            wave_num <= self.last_settled_wave
            or wave_num in self.committed_leader_waves
        ):
            self._deferred_cascades.discard(wave_num)
            return
        leader = self.revealed_leaders.get(wave_num)
        if leader is None:
            return
        leader_round = self.wave.first_round(wave_num)
        for candidate in self.store.blocks_in_slot(leader_round, leader):
            if self._support_count(wave_num, candidate) >= self._commit_support:
                self._commit_cascade(wave_num, candidate)
                return

    def _cascade_candidate(self, w: int, leader_v: Block) -> Optional[Block]:
        """Among (possibly several) blocks in wave ``w``'s leader slot, the
        unique one inside ``leader_v``'s closure (Lemma 4 makes at most one
        reachable; iteration order is a deterministic tie-break regardless)."""
        leader = self.revealed_leaders.get(w)
        if leader is None:
            return None
        leader_round = self.wave.first_round(w)
        candidates = sorted(
            self.store.blocks_in_slot(leader_round, leader),
            key=lambda b: (b.repropose_index, b.digest),
        )
        for candidate in candidates:
            if is_ancestor(candidate.digest, leader_v, self.store):
                return candidate
        return None
