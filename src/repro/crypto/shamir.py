"""Shamir secret sharing over ``Z_q``.

The threshold-crypto infrastructure the paper assumes (established by ADKG
[17], [18]) boils down to: each replica ``i`` holds a share ``s_i`` of a
group-wide secret ``s`` such that any ``t`` shares reconstruct ``s`` and
fewer reveal nothing.  We implement the classic polynomial scheme:

* dealer samples a degree-``t-1`` polynomial ``P`` with ``P(0) = s``;
* replica ``i`` (1-indexed evaluation point ``x = i + 1``) gets
  ``s_i = P(i + 1)``;
* any ``t`` points reconstruct ``P(0)`` by Lagrange interpolation.

:func:`lagrange_at_zero` exposes the interpolation coefficients separately
because the threshold PRF needs them *in the exponent* (combining partial
evaluations ``h^{s_i}`` rather than the scalar shares themselves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..errors import ThresholdError


@dataclass(frozen=True)
class ShamirShare:
    """One replica's share: the evaluation point ``x`` and value ``y``."""

    x: int
    y: int


def split_secret(
    secret: int, threshold: int, num_shares: int, modulus: int, rng
) -> list[ShamirShare]:
    """Split ``secret`` into ``num_shares`` shares with the given threshold.

    Evaluation points are ``1 .. num_shares`` (replica ``i`` gets point
    ``i + 1``), never 0 — point 0 *is* the secret.
    """
    if not 1 <= threshold <= num_shares:
        raise ThresholdError(
            f"threshold {threshold} out of range for {num_shares} shares"
        )
    if not 0 <= secret < modulus:
        raise ThresholdError("secret must be reduced modulo the share modulus")
    coeffs = [secret] + [rng.randrange(modulus) for _ in range(threshold - 1)]
    return [
        ShamirShare(x=x, y=_poly_eval(coeffs, x, modulus))
        for x in range(1, num_shares + 1)
    ]


def _poly_eval(coeffs: Sequence[int], x: int, modulus: int) -> int:
    """Horner evaluation of a polynomial with little-endian coefficients."""
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * x + c) % modulus
    return acc


def lagrange_at_zero(points: Sequence[int], modulus: int) -> dict[int, int]:
    """Lagrange basis coefficients ``λ_j`` at ``x = 0`` for the given points.

    Returns a mapping ``x_j -> λ_j`` such that for any degree-``len(points)-1``
    polynomial ``P``, ``P(0) = Σ λ_j · P(x_j) (mod modulus)``.
    """
    pts = list(points)
    if len(set(pts)) != len(pts):
        raise ThresholdError(f"duplicate evaluation points: {pts}")
    if any(x == 0 for x in pts):
        raise ThresholdError("evaluation point 0 would reveal the secret directly")
    coeffs: dict[int, int] = {}
    for j, xj in enumerate(pts):
        num, den = 1, 1
        for m, xm in enumerate(pts):
            if m == j:
                continue
            num = num * (-xm) % modulus
            den = den * (xj - xm) % modulus
        coeffs[xj] = num * pow(den, -1, modulus) % modulus
    return coeffs


def recover_secret(shares: Iterable[ShamirShare], modulus: int) -> int:
    """Reconstruct the secret from at least ``threshold`` distinct shares."""
    share_list = list(shares)
    lam = lagrange_at_zero([s.x for s in share_list], modulus)
    return sum(lam[s.x] * s.y for s in share_list) % modulus


def verify_share_consistency(
    shares: Mapping[int, ShamirShare], threshold: int, modulus: int
) -> bool:
    """Check that every ``threshold``-subset of shares agrees on the secret.

    Exhaustive check used by tests and the trusted dealer's self-audit; cost
    is combinatorial, so only call with small share sets.
    """
    from itertools import combinations

    share_list = list(shares.values())
    if len(share_list) < threshold:
        raise ThresholdError("not enough shares to audit")
    secrets = {
        recover_secret(combo, modulus)
        for combo in combinations(share_list, threshold)
    }
    return len(secrets) == 1
