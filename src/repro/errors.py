"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.  The
sub-hierarchy mirrors the major subsystems (crypto, DAG, broadcast, protocol,
network) and each exception carries enough context in its message to be
actionable without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """Raised when a configuration object is internally inconsistent.

    Examples: ``n < 3f + 1``, a commit threshold larger than the number of
    replicas, or a negative bandwidth.
    """


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class SignatureError(CryptoError):
    """A signature failed verification or was malformed."""


class ThresholdError(CryptoError):
    """Threshold-crypto failure: bad share, not enough shares, bad proof."""


class DagError(ReproError):
    """Base class for DAG-structure violations."""


class UnknownBlockError(DagError):
    """A referenced block is not present in the local store."""


class InvalidBlockError(DagError):
    """A block violates structural validity (Rule 1, bad round, bad parents)."""


class EquivocationDetected(DagError):
    """Two contradictory blocks were observed in the same slot.

    This is *not* fatal under LightDAG2 (PBC permits equivocation and the
    protocol handles it through Rules 2-4); the exception type is used by
    strict stores (LightDAG1 / baselines) where the consistency property of
    CBC/RBC makes a second block in a slot a protocol violation.
    """


class BroadcastError(ReproError):
    """A broadcast instance received a message violating its state machine."""


class ProtocolError(ReproError):
    """A consensus-protocol invariant was violated at runtime."""


class SafetyViolation(ProtocolError):
    """Two non-faulty replicas committed different blocks at the same index.

    Raised only by the test/verification harness when comparing ledgers; a
    correct run must never produce it.
    """


class InvariantViolation(ProtocolError):
    """An invariant oracle (``repro.check``) found a broken protocol
    invariant — per-node (ledger shape, retrieval/store consistency,
    LightDAG2 Rule 2/3 bookkeeping) or cross-replica (leader-sequence or
    commit-metadata disagreement).

    Like :class:`SafetyViolation` this is a verdict of the checking
    machinery, not a runtime error of the protocols themselves; a correct
    run under any schedule must never produce it.
    """


class NetworkError(ReproError):
    """Transport-level failure in the asyncio runtime."""


class SweepError(ReproError):
    """One or more runs of a parallel sweep failed.

    Raised by :meth:`repro.harness.parallel.SweepResult.require` when a
    caller needs every run of a sweep to have succeeded; carries the
    per-run failures (traceback + replay command) so nothing is lost.
    """

    def __init__(self, message: str, failures=()):
        super().__init__(message)
        self.failures = tuple(failures)


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""
