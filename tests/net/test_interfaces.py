"""Tests for repro.net.interfaces: the runtime-agnostic contract."""

from dataclasses import dataclass

from repro.net.interfaces import BROADCAST, Message, Node

from ..conftest import FakeNet


@dataclass(frozen=True)
class Ping(Message):
    def wire_size(self) -> int:
        return 8


class Echo(Node):
    def __init__(self, net):
        super().__init__(net)
        self.seen = []

    def on_message(self, src, msg):
        self.seen.append((src, msg))


class TestNetworkApiDefaults:
    def test_broadcast_includes_self(self):
        net = FakeNet(node_id=1, n=4)
        net.broadcast(Ping())
        assert sorted(dst for dst, _ in net.sent) == [0, 1, 2, 3]

    def test_broadcast_exclude_self(self):
        net = FakeNet(node_id=1, n=4)
        net.broadcast(Ping(), include_self=False)
        assert sorted(dst for dst, _ in net.sent) == [0, 2, 3]

    def test_broadcast_sentinel_distinct_from_ids(self):
        assert BROADCAST not in range(1024)


class TestNodeDefaults:
    def test_node_id_delegates(self):
        node = Echo(FakeNet(node_id=3, n=4))
        assert node.node_id == 3

    def test_default_on_start_and_timer_are_noops(self):
        node = Echo(FakeNet())
        node.on_start()
        node.on_timer("anything", {"data": 1})
        assert node.seen == []

    def test_message_requires_wire_size(self):
        import pytest

        with pytest.raises(TypeError):
            Message()  # abstract
