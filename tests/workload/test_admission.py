"""Tests for repro.workload.admission: bounded queues and backpressure."""

import pytest

from repro.errors import ConfigError
from repro.obs import EventJournal, MetricsRegistry, Observability
from repro.workload.admission import (
    ADMIT,
    REJECT_CLIENT,
    REJECT_FULL,
    SHED,
    AdmissionConfig,
    AdmissionController,
    make_admission,
)


class TestConfig:
    def test_defaults_are_unbounded(self):
        cfg = AdmissionConfig()
        assert cfg.max_pending == 0 and cfg.per_client_cap == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            AdmissionConfig(max_pending=-1)
        with pytest.raises(ConfigError):
            AdmissionConfig(per_client_cap=-1)
        with pytest.raises(ConfigError):
            AdmissionConfig(policy="drop-newest")

    def test_make_admission_returns_none_when_unbounded(self):
        assert make_admission(None) is None
        assert make_admission(AdmissionConfig()) is None
        assert make_admission(AdmissionConfig(max_pending=1)) is not None
        assert make_admission(AdmissionConfig(per_client_cap=1)) is not None


class TestDecisions:
    def test_admit_below_cap(self):
        ctl = AdmissionController(AdmissionConfig(max_pending=2))
        assert ctl.decide("a") == ADMIT
        ctl.note_admitted("a")
        assert ctl.decide("a") == ADMIT

    def test_reject_at_cap(self):
        ctl = AdmissionController(AdmissionConfig(max_pending=1))
        ctl.note_admitted("a")
        assert ctl.decide("b") == REJECT_FULL
        assert ctl.rejected_total == 1

    def test_shed_policy_at_cap(self):
        ctl = AdmissionController(
            AdmissionConfig(max_pending=1, policy="shed-oldest")
        )
        ctl.note_admitted("a")
        assert ctl.decide("b") == SHED
        # the caller evicts and reports:
        ctl.note_shed("a")
        ctl.note_admitted("b")
        assert ctl.depth == 1
        assert ctl.shed == 1

    def test_per_client_cap_checked_before_queue_bound(self):
        ctl = AdmissionController(
            AdmissionConfig(max_pending=10, per_client_cap=1)
        )
        ctl.note_admitted("greedy")
        assert ctl.decide("greedy") == REJECT_CLIENT
        assert ctl.decide("other") == ADMIT

    def test_drain_releases_client_slots(self):
        ctl = AdmissionController(AdmissionConfig(per_client_cap=1))
        ctl.note_admitted("a")
        assert ctl.decide("a") == REJECT_CLIENT
        ctl.note_drained("a")
        assert ctl.decide("a") == ADMIT


class TestAccounting:
    def test_max_depth_is_high_water_mark(self):
        ctl = AdmissionController(AdmissionConfig(max_pending=100))
        for _ in range(7):
            ctl.note_admitted("a")
        for _ in range(7):
            ctl.note_drained("a")
        ctl.note_admitted("a")
        assert ctl.depth == 1
        assert ctl.max_depth == 7

    def test_summary_totals(self):
        ctl = AdmissionController(AdmissionConfig(max_pending=1))
        ctl.note_admitted("a")
        ctl.decide("b")
        summary = ctl.summary()
        assert summary == {
            "admitted": 1, "rejected": 1, "shed": 0,
            "depth": 1, "max_depth": 1,
        }

    def test_obs_counters_and_gauge(self):
        obs = Observability(MetricsRegistry(), EventJournal())
        ctl = AdmissionController(
            AdmissionConfig(max_pending=1), obs=obs, replica_id=2
        )
        ctl.note_admitted("a")
        ctl.decide("b")  # reject-full
        assert obs.metrics.counter_total("smr.admitted") == 1
        assert obs.metrics.counter_total("smr.rejected") == 1
        gauge = obs.metrics.gauge("smr.pending_depth", replica=2)
        assert gauge.value == 1
