"""Tests for repro.core.retrieval: the §IV-A block retrieval mechanism."""

import pytest

from repro.broadcast.messages import RetrievalRequest, RetrievalResponse
from repro.core.retrieval import RETRY_TAG, RetrievalManager
from repro.dag.block import genesis_block, make_block
from repro.dag.store import DagStore

from ..conftest import FakeNet


def chain_blocks():
    """g -> a(r1) -> b(r2): b's parent is a, a's parents are genesis."""
    a = make_block(1, 0, [genesis_block(x).digest for x in range(4)])
    b = make_block(2, 0, [a.digest])
    return a, b


@pytest.fixture
def setup():
    net = FakeNet(node_id=0, n=4)
    store = DagStore(n=4)
    manager = RetrievalManager(net, store, retry_base=0.5)
    return net, store, manager


class TestRequesting:
    def test_note_pending_sends_request_to_source(self, setup):
        net, _, manager = setup
        a, b = chain_blocks()
        manager.note_pending(b, src=2, missing=[a.digest])
        (dst, msg), = net.sent
        assert dst == 2
        assert isinstance(msg, RetrievalRequest)
        assert msg.digests == (a.digest,)
        assert manager.is_pending(b.digest)

    def test_retry_timer_armed(self, setup):
        net, _, manager = setup
        a, b = chain_blocks()
        manager.note_pending(b, src=2, missing=[a.digest])
        armed = [
            (at, tag, data) for at, tag, data in net.timers
            if tag == RETRY_TAG and data == a.digest
        ]
        assert len(armed) == 1
        # base delay plus deterministic jitter in [0, 0.5 * base)
        assert 0.5 <= armed[0][0] < 0.75

    def test_no_duplicate_timers_per_digest(self, setup):
        """Re-registering dependents of the same missing parent must not
        pile extra retry timers into the queue."""
        net, _, manager = setup
        a, b = chain_blocks()
        c = make_block(2, 1, [a.digest])
        manager.note_pending(b, src=2, missing=[a.digest])
        manager.note_pending(c, src=3, missing=[a.digest])
        timers = [t for t in net.timers if t[1] == RETRY_TAG]
        assert len(timers) == 1

    def test_duplicate_pending_ignored(self, setup):
        net, _, manager = setup
        a, b = chain_blocks()
        manager.note_pending(b, src=2, missing=[a.digest])
        manager.note_pending(b, src=3, missing=[a.digest])
        assert len([m for _, m in net.sent if isinstance(m, RetrievalRequest)]) == 1

    def test_inflight_not_rerequested(self, setup):
        net, _, manager = setup
        a, b = chain_blocks()
        c = make_block(2, 1, [a.digest])
        manager.note_pending(b, src=2, missing=[a.digest])
        manager.note_pending(c, src=3, missing=[a.digest])
        requests = [m for _, m in net.sent if isinstance(m, RetrievalRequest)]
        assert len(requests) == 1

    def test_note_pending_empty_missing_reports_complete(self, setup):
        """An empty missing list must not register a block that can never
        become ready (no parent delivery would trigger satisfied_by)."""
        net, _, manager = setup
        _, b = chain_blocks()
        assert manager.note_pending(b, src=2, missing=[]) is False
        assert not manager.is_pending(b.digest)
        assert net.sent == []

    def test_note_pending_already_stored_parent_reports_complete(self, setup):
        net, store, manager = setup
        a, b = chain_blocks()
        store.add(a)
        assert manager.note_pending(b, src=2, missing=[a.digest]) is False
        assert not manager.is_pending(b.digest)
        assert net.sent == []

    def test_note_pending_registered_returns_true(self, setup):
        _, _, manager = setup
        a, b = chain_blocks()
        assert manager.note_pending(b, src=2, missing=[a.digest]) is True
        assert manager.note_pending(b, src=3, missing=[a.digest]) is True

    def test_requested_state_pruned_on_delivery(self, setup):
        """_requested/_inflight must not grow without bound: delivery of
        the missing parent releases every trace of the request."""
        _, store, manager = setup
        a, b = chain_blocks()
        manager.note_pending(b, src=2, missing=[a.digest])
        assert manager.inflight_count() == 1
        store.add(a)
        manager.satisfied_by(a.digest)
        assert manager.inflight_count() == 0
        assert a.digest not in manager._requested
        # a late (duplicate) response for the delivered digest is ignored
        assert manager.on_response(3, RetrievalResponse((a,))) == []

    def test_requested_state_pruned_on_drop(self, setup):
        """Dropping the only dependent cancels the parent's request too."""
        _, _, manager = setup
        a, b = chain_blocks()
        manager.note_pending(b, src=2, missing=[a.digest])
        manager.drop_pending(b.digest)
        assert manager.inflight_count() == 0
        assert a.digest not in manager._requested

    def test_disabled_manager_sends_nothing(self):
        net = FakeNet()
        manager = RetrievalManager(net, DagStore(n=4), enabled=False)
        a, b = chain_blocks()
        manager.note_pending(b, src=2, missing=[a.digest])
        assert net.sent == []


class TestResponding:
    def test_serves_known_blocks(self, setup):
        net, store, manager = setup
        a, _ = chain_blocks()
        store.add(a)
        manager.on_request(3, RetrievalRequest((a.digest,)))
        (dst, msg), = net.sent
        assert dst == 3
        assert isinstance(msg, RetrievalResponse)
        assert msg.blocks == (a,)
        assert manager.blocks_served == 1

    def test_silent_on_unknown(self, setup):
        net, _, manager = setup
        manager.on_request(3, RetrievalRequest((b"\x01" * 32,)))
        assert net.sent == []

    def test_partial_response(self, setup):
        net, store, manager = setup
        a, _ = chain_blocks()
        store.add(a)
        manager.on_request(1, RetrievalRequest((a.digest, b"\x09" * 32)))
        (_, msg), = net.sent
        assert msg.blocks == (a,)


class TestCompletion:
    def test_satisfied_by_releases_dependent(self, setup):
        _, store, manager = setup
        a, b = chain_blocks()
        manager.note_pending(b, src=2, missing=[a.digest])
        store.add(a)
        ready = manager.satisfied_by(a.digest)
        assert ready == [(b, 2, False)]
        assert not manager.is_pending(b.digest)

    def test_partial_satisfaction_keeps_pending(self, setup):
        _, store, manager = setup
        a1 = make_block(1, 0, [genesis_block(x).digest for x in range(4)])
        a2 = make_block(1, 1, [genesis_block(x).digest for x in range(4)])
        b = make_block(2, 0, [a1.digest, a2.digest])
        manager.note_pending(b, src=2, missing=[a1.digest, a2.digest], retrieved=True)
        assert manager.satisfied_by(a1.digest) == []
        assert manager.is_pending(b.digest)
        assert manager.satisfied_by(a2.digest) == [(b, 2, True)]

    def test_on_response_returns_requested_bodies(self, setup):
        _, _, manager = setup
        a, b = chain_blocks()
        manager.note_pending(b, src=2, missing=[a.digest])  # requests a
        out = manager.on_response(2, RetrievalResponse((a,)))
        assert out == [(a, 2)]

    def test_on_response_drops_unsolicited(self, setup):
        """An unsolicited block is not digest-pinned: ignore it."""
        _, _, manager = setup
        a, _ = chain_blocks()
        assert manager.on_response(2, RetrievalResponse((a,))) == []

    def test_drop_pending_cleans_indexes(self, setup):
        _, _, manager = setup
        a, b = chain_blocks()
        manager.note_pending(b, src=2, missing=[a.digest])
        manager.drop_pending(b.digest)
        assert not manager.is_pending(b.digest)
        assert manager.satisfied_by(a.digest) == []


class TestRetry:
    def test_retry_targets_different_replica(self, setup):
        net, _, manager = setup
        a, b = chain_blocks()
        manager.note_pending(b, src=2, missing=[a.digest])
        net.clear()
        manager.on_retry_timer(a.digest, candidates={3})
        (dst, msg), = net.sent
        assert dst == 3
        assert isinstance(msg, RetrievalRequest)

    def test_retry_avoids_previous_and_self(self, setup):
        net, _, manager = setup
        a, b = chain_blocks()
        manager.note_pending(b, src=2, missing=[a.digest])
        net.clear()
        for _ in range(10):
            manager.on_retry_timer(a.digest, candidates=set())
            if net.sent:
                dst, _ = net.sent[-1]
                assert dst not in (0,)  # never ask ourselves

    def test_retry_noop_once_satisfied(self, setup):
        net, store, manager = setup
        a, b = chain_blocks()
        manager.note_pending(b, src=2, missing=[a.digest])
        store.add(a)
        manager.satisfied_by(a.digest)
        net.clear()
        manager.on_retry_timer(a.digest, candidates={3})
        assert net.sent == []
