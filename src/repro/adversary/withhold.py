"""Retrieval-withholding adversary: attack the §IV-A recovery path.

The paper's §V analysis leans on block retrieval recovering quickly when
the *first-choice* responder (the replica that sent the incomplete block)
is faulty.  :class:`WithholdingResponder` is that faulty responder made
concrete: a replica that participates honestly in every broadcast and
vote, but sabotages retrieval —

* ``ignore`` mode: silently drops every :class:`RetrievalRequest` it
  receives (the paper's "faulty responder" read literally), or
* ``garbage`` mode: answers each request with fabricated bodies — junk
  blocks *labeled with the requested digests* and signed by the attacker —
  which exercises the requester's digest-pinning check (a body is only
  accepted if its content re-hashes to the requested digest).

Because the withholder is otherwise live, honest replicas keep choosing
it as a first-choice responder; recovery then depends entirely on the
requester's backoff/fan-out escalation reaching an honest holder — which
is exactly what the hardened :class:`~repro.core.retrieval.RetrievalManager`
must guarantee (and what ``tests/core/test_retrieval_adversarial.py``
asserts end to end).

It is a *behavioural* adversary: like the equivocator, it is installed as
an alternative node class for the corrupted replica indices (the harness
builds it over whatever protocol class the run uses via
:func:`withholding_node_class`).
"""

from __future__ import annotations

from typing import Type

from ..broadcast.messages import RetrievalRequest, RetrievalResponse
from ..core.base import BaseDagNode
from ..dag.block import EMPTY_BATCH, Block
from ..net.interfaces import Message


class WithholdingResponder:
    """Mixin over a :class:`BaseDagNode` subclass: sabotage retrieval.

    Class attribute ``WITHHOLD_MODE`` selects the behaviour:
    ``"ignore"`` (default) or ``"garbage"``.
    """

    WITHHOLD_MODE = "ignore"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: retrieval requests received and sabotaged
        self.withheld_requests = 0

    def on_message(self, src: int, msg: Message) -> None:
        if isinstance(msg, RetrievalRequest):
            self.withheld_requests += 1
            if self.WITHHOLD_MODE == "garbage":
                self.net.send(src, self._garbage_response(msg))
            return  # ignore mode: never answer
        super().on_message(src, msg)

    def _garbage_response(self, request: RetrievalRequest) -> RetrievalResponse:
        """Junk bodies labeled with the requested digests and signed by us.

        The label matches an open request at the victim, and the signature
        verifies (it is our own, over the claimed digest) — only the
        requester's content-rehash (digest pinning) can reject these.
        """
        junk = tuple(
            Block(
                round=1,
                author=self.node_id,
                parents=(),
                payload=EMPTY_BATCH,
                digest=digest,
                signature=self.backend.sign(digest),
            )
            for digest in request.digests
        )
        return RetrievalResponse(blocks=junk)


def withholding_node_class(
    base_cls: Type[BaseDagNode], mode: str = "ignore"
) -> Type[BaseDagNode]:
    """A ``base_cls`` variant whose retrieval responder is Byzantine."""
    if mode not in ("ignore", "garbage"):
        raise ValueError(f"unknown withholding mode {mode!r}")
    return type(
        f"Withholding{base_cls.__name__}",
        (WithholdingResponder, base_cls),
        {"WITHHOLD_MODE": mode},
    )
