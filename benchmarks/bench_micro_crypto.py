"""Micro-benchmarks: the cryptographic substrate.

Not a paper figure — these quantify the per-operation costs behind the
crypto-backend ablation (DESIGN.md §5.5) and justify the default choice of
the HMAC backend for large simulator sweeps.
"""

import random

import pytest

from repro.config import SystemConfig
from repro.crypto.backend import HmacBackend, NullBackend, SchnorrBackend
from repro.crypto.coin import ThresholdCoin
from repro.crypto.group import default_group
from repro.crypto.hashing import hash_fields
from repro.crypto.keys import TrustedDealer
from repro.crypto.shamir import recover_secret, split_secret

SYSTEM = SystemConfig(n=4, crypto="schnorr", seed=0)
CHAINS = TrustedDealer(SYSTEM).deal()
MSG = hash_fields("benchmark-message")


class TestSigningBackends:
    def test_schnorr_sign(self, benchmark):
        backend = SchnorrBackend(CHAINS[0])
        benchmark(backend.sign, MSG)

    def test_schnorr_verify(self, benchmark):
        backend = SchnorrBackend(CHAINS[0])
        sig = backend.sign(MSG)
        assert benchmark(backend.verify, 0, MSG, sig)

    def test_hmac_sign(self, benchmark):
        backend = HmacBackend(0, SYSTEM)
        benchmark(backend.sign, MSG)

    def test_hmac_verify(self, benchmark):
        backend = HmacBackend(0, SYSTEM)
        sig = backend.sign(MSG)
        assert benchmark(backend.verify, 0, MSG, sig)

    def test_null_sign(self, benchmark):
        benchmark(NullBackend().sign, MSG)


class TestCoin:
    def test_threshold_coin_share(self, benchmark):
        coin = ThresholdCoin(CHAINS[0])
        benchmark(coin.make_share, 1)

    def test_threshold_coin_verify_share(self, benchmark):
        coins = [ThresholdCoin(c) for c in CHAINS]
        share = coins[1].make_share(1)
        assert benchmark(coins[0].verify_share, share)

    def test_threshold_coin_reveal(self, benchmark):
        shares = [ThresholdCoin(c).make_share(1) for c in CHAINS]

        def reveal():
            coin = ThresholdCoin(CHAINS[0])
            out = None
            for share in shares:
                result = coin.add_share(share)
                out = result if result is not None else out
            return out

        assert benchmark(reveal) is not None


class TestPrimitives:
    def test_hash_fields(self, benchmark):
        benchmark(hash_fields, "block", 12, 3, (b"\x00" * 32,) * 4)

    def test_group_exp(self, benchmark):
        group = default_group(256)
        benchmark(group.exp, group.g, 0xDEADBEEF12345678)

    def test_shamir_split(self, benchmark):
        group = default_group(256)
        rng = random.Random(1)
        benchmark(split_secret, 12345, 5, 7, group.q, rng)

    def test_shamir_recover(self, benchmark):
        group = default_group(256)
        shares = split_secret(12345, 5, 7, group.q, random.Random(1))
        assert benchmark(recover_secret, shares[:5], group.q) == 12345
