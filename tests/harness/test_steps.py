"""Tests for repro.harness.steps: the Table I step-count reproduction.

These are the repository's headline unit-level claims: each protocol's
measured best-case commit latency in communication steps must equal the
paper's figure (bracketed early-reveal variant where our coin timing
realizes it; see EXPERIMENTS.md for the DAG-Rider note).
"""

import pytest

from repro.harness.steps import TABLE1_ANALYTIC, measure_commit_steps, table1_rows


class TestTable1Analytic:
    def test_all_protocols_listed(self):
        assert set(TABLE1_ANALYTIC) == {
            "dagrider", "tusk", "bullshark", "lightdag1", "lightdag2",
        }

    def test_paper_values_verbatim(self):
        assert TABLE1_ANALYTIC["dagrider"].best_steps == 12
        assert TABLE1_ANALYTIC["tusk"].best_steps == 9
        assert TABLE1_ANALYTIC["bullshark"].best_steps == 6
        assert TABLE1_ANALYTIC["lightdag1"].best_steps == 6
        assert TABLE1_ANALYTIC["lightdag2"].best_steps == 4
        assert TABLE1_ANALYTIC["lightdag2"].worst_steps == "12(t+1)"


class TestMeasuredSteps:
    @pytest.mark.parametrize(
        "protocol,expected",
        [
            ("lightdag2", 4),   # PBC + CBC + PBC, Table I best
            ("lightdag1", 5),   # bracketed early-reveal value
            ("bullshark", 6),   # 2 RBC rounds
            ("tusk", 7),        # bracketed early-reveal value
            ("dagrider", 12),   # unbracketed (see EXPERIMENTS.md note)
        ],
    )
    def test_best_case_steps(self, protocol, expected):
        measured = measure_commit_steps(protocol, n=4, sim_steps=60.0)
        assert measured.best_steps == pytest.approx(expected)

    def test_ordering_matches_table(self):
        """The paper's central comparison: LightDAG2 < LightDAG1 <
        Bullshark < Tusk < DAG-Rider in best-case steps."""
        best = {
            name: measure_commit_steps(name, n=4, sim_steps=60.0).best_steps
            for name in TABLE1_ANALYTIC
        }
        assert (
            best["lightdag2"] < best["lightdag1"] < best["bullshark"]
            <= best["tusk"] < best["dagrider"]
        )

    def test_mean_steps_bounded_by_wave_depth(self):
        measured = measure_commit_steps("lightdag2", n=4, sim_steps=60.0)
        # Mean includes ancestors committed a wave late; it stays well under
        # two full waves in synchrony.
        assert measured.best_steps <= measured.mean_steps <= 12

    def test_waves_commit(self):
        measured = measure_commit_steps("lightdag1", n=4, sim_steps=60.0)
        assert measured.waves_committed > 5


class TestRows:
    def test_rows_complete(self):
        rows = table1_rows(n=4)
        assert len(rows) == 5
        for row in rows:
            assert row["measured_best"] == pytest.approx(row["expected_measured"]) or (
                row["protocol"] == "dagrider"
            )
