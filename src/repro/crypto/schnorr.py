"""Schnorr signatures over the library's safe-prime group.

This is the concrete PKI the paper assumes (§III-A): every replica holds a
key pair, every protocol message that needs authentication carries a
signature, and the adversary cannot forge signatures of non-faulty replicas.

The scheme is textbook Schnorr with deterministic (RFC-6979-style) nonces so
signing is side-effect free and reproducible:

* key: ``sk ∈ Z_q``, ``pk = g^sk``
* sign(m): ``k = H(sk, m)``; ``R = g^k``; ``c = H(R, pk, m)``;
  ``s = k + c·sk mod q``; signature = ``(c, s)``
* verify: recompute ``R' = g^s · pk^{-c}`` and check ``c == H(R', pk, m)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SignatureError
from .group import SchnorrGroup
from .hashing import Digest, hash_fields

#: Modeled wire size of a Schnorr signature: two 32-byte scalars.
SIGNATURE_SIZE = 64


@dataclass(frozen=True)
class SchnorrSignature:
    """A ``(c, s)`` Schnorr signature pair."""

    c: int
    s: int


@dataclass(frozen=True)
class SchnorrKeyPair:
    """A replica's signing key pair."""

    sk: int
    pk: int

    @classmethod
    def generate(cls, group: SchnorrGroup, rng) -> "SchnorrKeyPair":
        sk = group.random_scalar(rng)
        return cls(sk=sk, pk=group.exp(group.g, sk))

    @classmethod
    def from_seed(cls, group: SchnorrGroup, *seed_fields) -> "SchnorrKeyPair":
        """Deterministic key derivation (used by the trusted dealer)."""
        sk = group.scalar_from_hash("keygen", *seed_fields)
        return cls(sk=sk, pk=group.exp(group.g, sk))


def _challenge(group: SchnorrGroup, commitment: int, pk: int, message: Digest) -> int:
    return group.scalar_from_hash("schnorr-c", commitment, pk, message)


def schnorr_sign(group: SchnorrGroup, keypair: SchnorrKeyPair, message: Digest) -> SchnorrSignature:
    """Sign a 32-byte message digest with a deterministic nonce."""
    k = group.scalar_from_hash("schnorr-k", keypair.sk, message)
    commitment = group.exp(group.g, k)
    c = _challenge(group, commitment, keypair.pk, message)
    s = (k + c * keypair.sk) % group.q
    return SchnorrSignature(c=c, s=s)


def schnorr_verify(
    group: SchnorrGroup, pk: int, message: Digest, sig: SchnorrSignature
) -> bool:
    """Verify a signature; returns False rather than raising on bad input."""
    if not (0 < sig.c < group.q and 0 <= sig.s < group.q):
        return False
    if not group.is_member(pk):
        return False
    # R' = g^s * pk^{-c}
    commitment = group.mul(group.exp(group.g, sig.s), group.inv(group.exp(pk, sig.c)))
    return _challenge(group, commitment, pk, message) == sig.c


def require_valid(
    group: SchnorrGroup, pk: int, message: Digest, sig: SchnorrSignature, what: str
) -> None:
    """Verify and raise :class:`SignatureError` with context on failure."""
    if not schnorr_verify(group, pk, message, sig):
        raise SignatureError(f"invalid signature on {what}")


def signature_digest(sig: SchnorrSignature) -> Digest:
    """Stable digest of a signature, for inclusion in hashed structures."""
    return hash_fields("sigdig", sig.c, sig.s)
