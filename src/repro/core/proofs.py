"""Byzantine proofs: transferable evidence of equivocation (§V).

A Byzantine proof is a pair of distinct blocks signed by the same replica
for the same slot — irrefutable evidence of equivocation under the PKI
assumption.  Proofs are created by Rule 2 (a CBC proposer that received a
:class:`~repro.broadcast.messages.ContradictionNotice`), travel embedded in
reproposed blocks and in :class:`~repro.broadcast.messages.ByzantineProofMsg`
notices, and trigger Rule 3's exclusion at every replica that verifies one
(Lemma 8: all replicas recognize the culprit within roughly one wave).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..crypto.hashing import Digest, hash_fields
from ..dag.block import Block


@dataclass(frozen=True)
class ByzantineProof:
    """Evidence that ``culprit`` equivocated: two signed blocks, one slot."""

    culprit: int
    block_a: Block
    block_b: Block

    @cached_property
    def digest(self) -> Digest:
        """Stable identity; contributes to the embedding block's hash."""
        # Order-normalize so (a, b) and (b, a) are the same proof.
        lo, hi = sorted((self.block_a.digest, self.block_b.digest))
        return hash_fields("byzproof", self.culprit, lo, hi)

    def verify(self, backend) -> bool:
        """Check the proof is genuine.

        Requires: both blocks claim the culprit as author, occupy the same
        slot, differ in content, and carry valid culprit signatures.  A
        replica must never blacklist on an unverified proof — otherwise a
        Byzantine replica could frame honest ones.
        """
        a, b = self.block_a, self.block_b
        if a.author != self.culprit or b.author != self.culprit:
            return False
        if a.slot != b.slot:
            return False
        if a.digest == b.digest:
            return False
        if not backend.verify(self.culprit, a.digest, a.signature):
            return False
        if not backend.verify(self.culprit, b.digest, b.signature):
            return False
        return True


def proof_from_blocks(block_a: Block, block_b: Block) -> ByzantineProof:
    """Build a proof from two conflicting blocks (author taken from them)."""
    return ByzantineProof(culprit=block_a.author, block_a=block_a, block_b=block_b)
