"""Cross-runtime equivalence: the same protocol code on three transports.

The sans-I/O layering's promise is that a Node behaves identically under
the discrete-event simulator, the asyncio queue runtime, and the TCP
socket transport.  Wall-clock runtimes aren't deterministic, so "identical"
means: same safety invariants, same protocol structure (wave shapes,
commit rules), and payload integrity end to end.
"""

import asyncio

import pytest

from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag2 import LightDag2Node
from repro.crypto.keys import TrustedDealer
from repro.dag.block import TxBatch
from repro.dag.ledger import check_prefix_consistency
from repro.net.asyncnet import AsyncCluster
from repro.net.latency import FixedLatency
from repro.net.simulator import Simulation
from repro.net.tcp import TcpCluster

SYSTEM = SystemConfig(n=4, crypto="hmac", seed=5)
PROTOCOL = ProtocolConfig(batch_size=8)


def factories():
    chains = TrustedDealer(
        SYSTEM, coin_threshold=PROTOCOL.resolve_coin_threshold(SYSTEM)
    ).deal()

    def payload_source(now):
        return TxBatch(count=8, tx_size=128, submit_time_sum=8 * now, sample=(now,))

    def factory(i):
        return lambda net: LightDag2Node(
            net, SYSTEM, PROTOCOL, chains[i], payload_source=payload_source
        )

    return [factory(i) for i in range(SYSTEM.n)]


def run_simulator():
    sim = Simulation(factories(), latency_model=FixedLatency(0.01), seed=5)
    sim.run(until=2.0)
    return sim.nodes


def run_asyncio():
    cluster = AsyncCluster(factories())
    asyncio.run(cluster.run(1.5))
    return cluster.nodes


def run_tcp():
    cluster = TcpCluster(factories())
    asyncio.run(cluster.run(2.0))
    return cluster.nodes


RUNTIMES = {
    "simulator": run_simulator,
    "asyncio": run_asyncio,
    "tcp": run_tcp,
}


@pytest.mark.parametrize("runtime", sorted(RUNTIMES))
class TestEveryRuntime:
    def test_progress_and_safety(self, runtime):
        nodes = RUNTIMES[runtime]()
        check_prefix_consistency([n.ledger for n in nodes])
        assert all(len(n.ledger) > 0 for n in nodes), runtime

    def test_wave_structure_identical(self, runtime):
        nodes = RUNTIMES[runtime]()
        node = nodes[0]
        # Same protocol constants regardless of transport.
        assert node.WAVE_LENGTH == 3
        assert node._commit_support == SYSTEM.quorum
        # Committed leaders occupy first-round slots.
        for w in node.committed_leader_waves:
            leader = node.leader_block_of(w)
            assert leader is not None
            assert node.wave.first_round(w) == leader.round

    def test_payload_counts_preserved(self, runtime):
        nodes = RUNTIMES[runtime]()
        counts = {
            r.block.payload.count
            for r in nodes[0].ledger
            if r.block.payload.count
        }
        assert counts == {8}, runtime


def test_coin_sequence_identical_across_runtimes():
    """Leader election depends only on (seed, wave): every runtime must
    reveal the same leader sequence for the waves it reaches."""
    leaders = {}
    for name, run in RUNTIMES.items():
        nodes = run()
        node = nodes[0]
        leaders[name] = {
            w: node.revealed_leaders[w] for w in sorted(node.revealed_leaders)[:5]
        }
    reference = leaders.pop("simulator")
    for name, observed in leaders.items():
        common = set(reference) & set(observed)
        assert common, f"{name} revealed no common waves"
        for w in common:
            assert observed[w] == reference[w], (name, w)
