"""Tests for repro.analysis.obs_export: JSONL, Prometheus, Chrome trace."""

import json

import pytest

from repro.analysis.obs_export import (
    journal_to_chrome_trace,
    journal_to_jsonl,
    load_journal_jsonl,
    registry_summary_rows,
    registry_to_prometheus,
)
from repro.obs import EventJournal, MetricsRegistry


@pytest.fixture
def journal():
    j = EventJournal()
    j.emit(0.0, "block.propose", node=0, round=1, author=0, digest="aa11", txs=5)
    j.emit(0.1, "block.deliver", node=1, round=1, author=0, digest="aa11")
    j.emit(0.3, "block.commit", node=1, round=1, author=0, digest="aa11", wave=1)
    j.emit(0.2, "coin.reveal", node=1, wave=1, leader=2)
    j.emit(0.4, "adversary.drop", src=0, dst=3, msg="BlockVal")
    return j


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("net.messages_sent", type="BlockVal").inc(12)
    reg.counter("net.messages_sent", type="BlockEcho").inc(30)
    reg.gauge("broadcast.steps", primitive="cbc").set(2)
    h = reg.histogram("net.egress_wait_seconds", buckets=(0.001, 0.01))
    h.observe(0.0005)
    h.observe(0.005)
    h.observe(2.0)  # overflow
    return reg


class TestJsonl:
    def test_one_object_per_line_roundtrip(self, journal, tmp_path):
        path = tmp_path / "j.jsonl"
        text = journal_to_jsonl(journal, path)
        assert path.read_text() == text
        rows = load_journal_jsonl(path)
        assert len(rows) == len(journal)
        assert rows[0] == {
            "t": 0.0, "node": 0, "type": "block.propose",
            "round": 1, "author": 0, "digest": "aa11", "txs": 5,
        }

    def test_empty_journal(self):
        assert journal_to_jsonl(EventJournal()) == ""


class TestPrometheus:
    def test_type_headers_and_series(self, registry):
        text = registry_to_prometheus(registry)
        assert "# TYPE repro_net_messages_sent counter" in text
        assert 'repro_net_messages_sent{type="BlockVal"} 12' in text
        assert 'repro_net_messages_sent{type="BlockEcho"} 30' in text
        assert 'repro_broadcast_steps{primitive="cbc"} 2' in text
        # Dots in metric names are sanitized for Prometheus.
        assert "." not in text.split("{")[0]

    def test_histogram_cumulative_buckets(self, registry):
        lines = registry_to_prometheus(registry).splitlines()
        buckets = [l for l in lines if "egress_wait_seconds_bucket" in l]
        assert buckets[0].endswith(" 1")  # le=0.001
        assert buckets[1].endswith(" 2")  # le=0.01, cumulative
        assert 'le="+Inf"} 3' in buckets[2]
        assert any(l.startswith("repro_net_egress_wait_seconds_count") and
                   l.endswith(" 3") for l in lines)
        assert any(l.startswith("repro_net_egress_wait_seconds_sum")
                   for l in lines)

    def test_deterministic_and_written(self, registry, tmp_path):
        path = tmp_path / "m.prom"
        assert registry_to_prometheus(registry, path) == path.read_text()
        assert registry_to_prometheus(registry) == registry_to_prometheus(registry)

    def test_empty_registry(self):
        assert registry_to_prometheus(MetricsRegistry()) == ""


class TestChromeTrace:
    def test_valid_json_with_spans(self, journal, tmp_path):
        path = tmp_path / "t.json"
        trace = json.loads(journal_to_chrome_trace(journal, path))
        assert json.loads(path.read_text()) == trace
        events = trace["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        cats = {e["cat"] for e in spans}
        assert cats == {"dissemination", "ordering"}
        dis = next(e for e in spans if e["cat"] == "dissemination")
        # propose at t=0, deliver at t=0.1 → 100 ms span in µs.
        assert dis["ts"] == 0.0
        assert dis["dur"] == pytest.approx(1e5)
        assert dis["pid"] == 1  # rendered on the delivering replica

    def test_metadata_names_processes(self, journal):
        trace = json.loads(journal_to_chrome_trace(journal))
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        assert "replica 0" in names and "network" in names

    def test_instants_for_coin_and_adversary(self, journal):
        trace = json.loads(journal_to_chrome_trace(journal))
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {"coin.reveal", "adversary.drop"}

    def test_unmatched_commit_emits_no_span(self):
        journal = EventJournal()
        journal.emit(0.5, "block.commit", node=0, digest="zz", author=0)
        trace = json.loads(journal_to_chrome_trace(journal))
        assert [e for e in trace["traceEvents"] if e["ph"] == "X"] == []


class TestSummaryRows:
    def test_rows_cover_all_kinds(self, registry):
        rows = registry_summary_rows(registry)
        by_metric = {(r["metric"], r["labels"]): r for r in rows}
        assert by_metric[("net.messages_sent", "type=BlockVal")]["value"] == 12
        hist = by_metric[("net.egress_wait_seconds", "")]
        assert hist["count"] == 3 and hist["max"] == 2.0

    def test_empty_histograms_skipped(self):
        reg = MetricsRegistry()
        reg.histogram("quiet")
        assert registry_summary_rows(reg) == []
