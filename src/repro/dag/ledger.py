"""The committed ledger.

Commitment assigns every block a position in a totally ordered sequence —
the object the safety property speaks about ("two non-faulty replicas
commit blocks B and B' at the same position ⇒ B = B'", §II-A).  The ledger
records that sequence together with enough metadata for the metrics layer
(commit time, the leader that triggered the commit) and for the test
harness's cross-replica prefix checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Set

from ..crypto.hashing import Digest, short_hex
from ..errors import ProtocolError
from .block import Block


@dataclass(frozen=True)
class CommitRecord:
    """One committed block with its position and provenance."""

    position: int
    block: Block
    commit_time: float
    #: Digest of the (directly or indirectly committed) leader whose
    #: commitment pulled this block in; equals the block's own digest for
    #: leader blocks.
    via_leader: Digest
    #: Index k of the committed-leader sequence this block was ordered under.
    leader_index: int


class Ledger:
    """Append-only committed sequence with O(1) membership checks."""

    def __init__(self) -> None:
        self._records: List[CommitRecord] = []
        self._committed: Set[Digest] = set()
        self._leader_count = 0
        self._trace = None
        self._trace_node = -1

    def bind_trace(self, trace, node_id: int) -> None:
        """Attach a tracer so appends emit ``trace.ordered`` spans.

        Called by the owning node when tracing is on; the default (no
        tracer) keeps :meth:`append` branch-only, per the obs budget.
        """
        self._trace = trace
        self._trace_node = node_id

    # -- appends ---------------------------------------------------------------

    def begin_leader(self) -> int:
        """Start a new committed-leader index ``k`` and return it."""
        self._leader_count += 1
        return self._leader_count - 1

    def append(
        self, block: Block, commit_time: float, via_leader: Digest, leader_index: int
    ) -> CommitRecord:
        """Commit one block at the next position."""
        if block.digest in self._committed:
            raise ProtocolError(
                f"block {block.digest.hex()[:8]} committed twice"
            )
        record = CommitRecord(
            position=len(self._records),
            block=block,
            commit_time=commit_time,
            via_leader=via_leader,
            leader_index=leader_index,
        )
        self._records.append(record)
        self._committed.add(block.digest)
        if self._trace is not None:
            self._trace.emit(
                commit_time, "trace.ordered", self._trace_node,
                digest=short_hex(block.digest), round=block.round,
                author=block.author, position=record.position,
                leader_index=leader_index,
            )
        return record

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[CommitRecord]:
        return iter(self._records)

    def __contains__(self, digest: Digest) -> bool:
        return digest in self._committed

    @property
    def committed_digests(self) -> Set[Digest]:
        """Live view of all committed digests (do not mutate)."""
        return self._committed

    @property
    def leader_count(self) -> int:
        return self._leader_count

    def record_at(self, position: int) -> CommitRecord:
        return self._records[position]

    def last(self) -> Optional[CommitRecord]:
        return self._records[-1] if self._records else None

    def digest_sequence(self) -> List[Digest]:
        """The ordered digest list — what cross-replica safety compares."""
        return [r.block.digest for r in self._records]

    def total_transactions(self) -> int:
        return sum(r.block.payload.count for r in self._records)


def check_prefix_consistency(ledgers: List[Ledger]) -> None:
    """Assert that every pair of ledgers agrees on their common prefix.

    This is the executable form of Theorems 2 and 6: non-faulty replicas
    may be at different commit depths, but where both have committed, they
    must have committed identically.  Raises :class:`ProtocolError` naming
    the first divergent position.

    Prefix agreement with a common reference is transitive, so instead of
    the O(R²·L) all-pairs scan it suffices to compare every ledger against
    the longest one (O(R·L)): if two ledgers each match the longest on
    their whole length, they match each other on their common prefix.
    """
    sequences = [ledger.digest_sequence() for ledger in ledgers]
    if len(sequences) < 2:
        return
    ref = max(range(len(sequences)), key=lambda i: len(sequences[i]))
    ref_seq = sequences[ref]
    for i, seq in enumerate(sequences):
        if i == ref:
            continue
        # Every non-reference ledger is no longer than the reference, so
        # its whole sequence is the common prefix.
        if seq == ref_seq[: len(seq)]:
            continue
        for pos, (mine, theirs) in enumerate(zip(seq, ref_seq)):
            if mine != theirs:
                a, b = sorted((i, ref))
                raise ProtocolError(
                    f"safety violation: ledgers {a} and {b} diverge at "
                    f"position {pos}: {sequences[a][pos].hex()[:8]} != "
                    f"{sequences[b][pos].hex()[:8]}"
                )
