"""Partition and recovery: the §IV-A retrieval mechanism under fire.

An isolated replica misses whole waves of CBC/PBC traffic (no totality!).
When the partition heals, the only way back is retrieval: blocks it
receives reference ancestors it never saw, it pulls them from peers, and
its ledger catches up as a consistent prefix.
"""

import pytest

from repro.adversary.partition import PartitionAdversary
from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag1 import LightDag1Node
from repro.core.lightdag2 import LightDag2Node
from repro.crypto.keys import TrustedDealer
from repro.dag.ledger import check_prefix_consistency
from repro.net.latency import FixedLatency
from repro.net.simulator import Simulation


def build_sim(node_cls, adversary, n=4, seed=1):
    system = SystemConfig(n=n, crypto="hmac", seed=seed)
    protocol = ProtocolConfig(batch_size=5)
    chains = TrustedDealer(
        system, coin_threshold=protocol.resolve_coin_threshold(system)
    ).deal()
    return Simulation(
        [
            (lambda net, i=i: node_cls(net, system, protocol, chains[i]))
            for i in range(n)
        ],
        latency_model=FixedLatency(0.05),
        adversary=adversary,
        seed=seed,
    )


class TestPartitionAdversary:
    def test_cut_detection(self):
        adversary = PartitionAdversary(group_a=[0, 1], start=0.0, end=1.0)
        assert adversary._crosses_cut(0, 2)
        assert adversary._crosses_cut(3, 1)
        assert not adversary._crosses_cut(0, 1)
        assert not adversary._crosses_cut(2, 3)

    def test_window_respected(self):
        from repro.broadcast.messages import RetrievalRequest

        adversary = PartitionAdversary(group_a=[0], start=1.0, end=2.0)
        msg = RetrievalRequest(())
        assert adversary.on_send(0, 1, msg, 0.5) == 0.0
        assert adversary.on_send(0, 1, msg, 1.5) is None
        assert adversary.on_send(0, 1, msg, 2.5) == 0.0
        assert adversary.dropped == 1

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            PartitionAdversary(group_a=[0], start=2.0, end=1.0)


@pytest.mark.parametrize("node_cls", [LightDag1Node, LightDag2Node])
class TestIsolatedReplicaRecovery:
    def test_majority_progresses_during_isolation(self, node_cls):
        adversary = PartitionAdversary(group_a=[3], start=0.5, end=4.0)
        sim = build_sim(node_cls, adversary)
        sim.run(until=4.0)
        majority = sim.nodes[:3]
        assert all(len(n.ledger) > 10 for n in majority)
        # The isolated replica stalls (it cannot gather quorums alone).
        assert len(sim.nodes[3].ledger) < len(majority[0].ledger)

    def test_isolated_replica_catches_up_after_heal(self, node_cls):
        adversary = PartitionAdversary(group_a=[3], start=0.5, end=4.0)
        sim = build_sim(node_cls, adversary)
        sim.run(until=12.0)
        check_prefix_consistency([n.ledger for n in sim.nodes])
        isolated = sim.nodes[3]
        reference = sim.nodes[0]
        # Catch-up: the straggler is within a couple of waves of the pack.
        assert len(isolated.ledger) > 0.7 * len(reference.ledger)
        assert isolated.retrieval.requests_sent > 0  # retrieval did the work

    def test_even_split_halts_everyone_safely(self, node_cls):
        """A 2-2 split leaves no side with an n-f quorum: no progress on
        either side, and no safety damage once healed."""
        adversary = PartitionAdversary(group_a=[0, 1], start=0.2, end=3.0)
        sim = build_sim(node_cls, adversary)
        sim.run(until=3.0)
        committed_during = max(len(n.ledger) for n in sim.nodes)
        sim.run(until=8.0)
        check_prefix_consistency([n.ledger for n in sim.nodes])
        assert all(len(n.ledger) > committed_during for n in sim.nodes)
