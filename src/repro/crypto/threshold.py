"""Threshold PRF with verifiable partial evaluations.

This is the primitive the Global Perfect Coin is built on (the paper
implements its GPC with threshold signatures; a threshold PRF is the same
object viewed output-first — Cachin-Kursawe-Shoup's common coin [19]).

Construction
------------
The dealer shares a secret ``s`` (Shamir, threshold ``t``) and publishes
verification keys ``vk_i = g^{s_i}``.  For an input ``m``:

* ``h = hash_to_group(m)``,
* replica ``i``'s partial evaluation is ``σ_i = h^{s_i}`` together with a
  Chaum-Pedersen DLEQ proof that ``log_g vk_i == log_h σ_i`` (so a Byzantine
  replica cannot inject a bogus share),
* any ``t`` verified partials combine by Lagrange interpolation *in the
  exponent*: ``F(m) = h^s = Π σ_j^{λ_j}``.

``F(m)`` is unpredictable until ``t`` partials exist — exactly the GPC's
threshold-reveal property (§III-B.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import ThresholdError
from .group import SchnorrGroup
from .hashing import Digest, hash_to_int
from .memo import VerifiedMemo
from .shamir import ShamirShare, lagrange_at_zero

#: Bound on the per-PRF caches (input elements and verified partials).
_PRF_CACHE_CAPACITY = 4096

#: Modeled wire size of a partial evaluation (element + DLEQ proof).
PARTIAL_EVAL_SIZE = 32 + 64


@dataclass(frozen=True)
class DleqProof:
    """Chaum-Pedersen proof that two elements share one discrete log."""

    c: int
    s: int


@dataclass(frozen=True)
class PartialEval:
    """Replica ``index``'s partial PRF evaluation on some input."""

    index: int  # replica id (0-based); the Shamir point is index + 1
    value: int  # h^{s_i}
    proof: DleqProof


def _dleq_challenge(
    group: SchnorrGroup, g1: int, h1: int, g2: int, h2: int, a1: int, a2: int
) -> int:
    return group.scalar_from_hash("dleq", g1, h1, g2, h2, a1, a2)


def dleq_prove(
    group: SchnorrGroup, exponent: int, g1: int, g2: int
) -> tuple[int, int, DleqProof]:
    """Prove knowledge of ``x`` with ``h1 = g1^x`` and ``h2 = g2^x``.

    Returns ``(h1, h2, proof)``.  The nonce is derived deterministically
    from the witness and bases, mirroring the signature scheme.
    """
    # Reduce the witness once; the nonce is born reduced (hash scalars
    # live in [1, q)), so the reduced-exponent entry point applies.
    x = exponent % group.q
    h1 = group.exp_reduced(g1, x)
    h2 = group.exp_reduced(g2, x)
    k = group.scalar_from_hash("dleq-k", exponent, g1, g2)
    a1 = group.exp_reduced(g1, k)
    a2 = group.exp_reduced(g2, k)
    c = _dleq_challenge(group, g1, h1, g2, h2, a1, a2)
    s = (k + c * exponent) % group.q
    return h1, h2, DleqProof(c=c, s=s)


def dleq_verify(
    group: SchnorrGroup, g1: int, h1: int, g2: int, h2: int, proof: DleqProof
) -> bool:
    """Verify a Chaum-Pedersen DLEQ proof.

    Inversion-free: ``x^{-c}`` is computed as ``x^{q-c}``.  In the coin
    path ``g1`` is the generator and ``h1`` a dealer-registered
    verification key, so the first commitment runs entirely off fixed-base
    tables; the second pair varies per input and uses one interleaved
    Shamir multi-exponentiation instead of two modexps plus an inversion.
    """
    if not (0 < proof.c < group.q and 0 <= proof.s < group.q):
        return False
    if not (group.is_member(h1) and group.is_member(h2)):
        return False
    neg_c = group.q - proof.c
    a1 = group.mul(
        group.exp_reduced(g1, proof.s), group.exp_reduced(h1, neg_c)
    )
    a2 = group.multi_exp(((g2, proof.s), (h2, neg_c)))
    return _dleq_challenge(group, g1, h1, g2, h2, a1, a2) == proof.c


class ThresholdPRF:
    """Shared-key threshold PRF; one instance per replica.

    Parameters
    ----------
    group:
        The Schnorr group.
    threshold:
        Number of partials needed to evaluate.
    share:
        This replica's Shamir share of the master secret (``None`` for a
        pure verifier/combiner, e.g. a metrics observer).
    verification_keys:
        Mapping of replica id to ``g^{s_i}`` for proof verification.
    """

    def __init__(
        self,
        group: SchnorrGroup,
        threshold: int,
        share: ShamirShare | None,
        verification_keys: Mapping[int, int],
    ) -> None:
        if threshold < 1:
            raise ThresholdError(f"threshold must be >= 1, got {threshold}")
        self.group = group
        self.threshold = threshold
        self.share = share
        self.verification_keys = dict(verification_keys)
        # Verification keys are hot DLEQ bases (one a1 term per share
        # verified); registration also memoizes their membership.
        group.register_fixed_bases(self.verification_keys.values())
        #: message digest -> hash_to_group output (every partial for one
        #: wave shares the same input element; hashing it once per wave
        #: instead of once per share).
        self._input_elements: dict = {}
        #: verify-once memo over full (index, message, value, proof) claims
        #: — positive results only (see repro.crypto.memo).
        self._verified = VerifiedMemo(_PRF_CACHE_CAPACITY)

    def input_element(self, message: Digest) -> int:
        """The group element ``h = H(m)`` every partial is computed on."""
        element = self._input_elements.get(message)
        if element is None:
            if len(self._input_elements) >= _PRF_CACHE_CAPACITY:
                self._input_elements.clear()
            element = self._input_elements[message] = self.group.hash_to_group(
                "tprf-in", message
            )
        return element

    def partial_eval(self, message: Digest) -> PartialEval:
        """This replica's verified partial evaluation on ``message``."""
        if self.share is None:
            raise ThresholdError("verifier-only instance holds no share")
        h = self.input_element(message)
        _, value, proof = dleq_prove(self.group, self.share.y, self.group.g, h)
        return PartialEval(index=self.share.x - 1, value=value, proof=proof)

    def verify_partial(self, message: Digest, partial: PartialEval) -> bool:
        """Check a partial's DLEQ proof against its verification key.

        Memoized per full claim: a partial accepted at intake costs a set
        lookup when :meth:`combine` re-checks it (or when a peer re-sends
        it); rejections are always re-derived.
        """
        vk = self.verification_keys.get(partial.index)
        if vk is None:
            return False
        key = (partial.index, message, partial.value, partial.proof)
        if key in self._verified:
            return True
        h = self.input_element(message)
        ok = dleq_verify(
            self.group, self.group.g, vk, h, partial.value, partial.proof
        )
        if ok:
            self._verified.add(key)
        return ok

    def combine(self, message: Digest, partials: Iterable[PartialEval]) -> int:
        """Combine ``threshold`` partials into ``F(m) = h^s`` (verifying each)."""
        selected: dict[int, PartialEval] = {}
        for partial in partials:
            if partial.index not in selected:
                selected[partial.index] = partial
            if len(selected) == self.threshold:
                break
        if len(selected) < self.threshold:
            raise ThresholdError(
                f"need {self.threshold} distinct partials, got {len(selected)}"
            )
        for partial in selected.values():
            if not self.verify_partial(message, partial):
                raise ThresholdError(
                    f"partial evaluation from replica {partial.index} failed "
                    f"DLEQ verification"
                )
        points = [p.index + 1 for p in selected.values()]
        # Lagrange coefficients come out of lagrange_at_zero already
        # reduced mod q — no second reduction needed.
        lam = lagrange_at_zero(points, self.group.q)
        result = 1
        for partial in selected.values():
            result = self.group.mul(
                result, self.group.exp_reduced(partial.value, lam[partial.index + 1])
            )
        return result


def combine_partials(
    prf: ThresholdPRF, message: Digest, partials: Iterable[PartialEval]
) -> int:
    """Module-level convenience wrapper over :meth:`ThresholdPRF.combine`."""
    return prf.combine(message, partials)


def prf_output_to_int(group: SchnorrGroup, element: int) -> int:
    """Map the PRF output element to a uniform integer (hash of encoding)."""
    return hash_to_int("tprf-out", group.element_to_bytes(element))
