"""Fig. 15: latency vs throughput under each protocol's strongest attack.

Paper setting (§VI-A/E): crash-f against Tusk and LightDAG1, leader delay
against Bullshark, scheduled equivocation against LightDAG2; n ∈ {7, 22}.
Claims under reproduction:

* Bullshark delivers the poorest performance (broken optimistic path and
  the prolonged optimistic→pessimistic switch);
* LightDAG1 consistently outperforms Tusk;
* LightDAG2 remains the best overall — the 12(t+1) worst case is not
  realized because each successful attack permanently exposes one
  Byzantine replica (§VI-E).
"""

import pytest

from repro.harness.experiments import peak_throughput, unfavorable_curve
from repro.harness.report import render_series, series_by_protocol

from .conftest import save_report


def test_fig15_unfavorable_tradeoff(benchmark, axes, results_dir, jobs):
    # The attacks need runway: Bullshark's timeout backoff takes several
    # waves to outgrow the adversary's delay, and LightDAG2's exclusion
    # machinery needs the attack to actually fire — so Fig. 15 runs at
    # least 15 simulated seconds regardless of scale.
    duration = max(axes["duration"], 15.0)
    results = benchmark.pedantic(
        unfavorable_curve,
        kwargs=dict(
            replica_counts=axes["tradeoff_replicas"],
            batch_ramp=axes["batch_ramp"],
            duration=duration,
            seed=15,
            jobs=jobs,
        ),
        rounds=1,
        iterations=1,
    )
    series = series_by_protocol(results, x_field="batch")
    peaks = peak_throughput(results)
    report = render_series(series, "batch")
    report += "\n\npeak throughput under attack:\n"
    for key in sorted(peaks):
        r = peaks[key]
        report += (f"  {key:<22} {r.throughput_tps:>10,.0f} TPS, "
                   f"latency={r.mean_latency * 1000:.0f}ms "
                   f"(attack: {r.config.adversary_name} -> "
                   f"{r.extras.get('reproposals', 0):.0f} reproposals)\n")
    save_report(results_dir, "fig15_unfavorable", report)

    for n in axes["tradeoff_replicas"]:
        peak_tps = {p: peaks[f"{p}@n={n}"].throughput_tps
                    for p in ("tusk", "bullshark", "lightdag1", "lightdag2")}
        lat = {p: peaks[f"{p}@n={n}"].mean_latency
               for p in ("tusk", "bullshark", "lightdag1", "lightdag2")}

        # LightDAG2 best overall despite being the protocol under the most
        # targeted attack.
        assert peak_tps["lightdag2"] == max(peak_tps.values())
        # LightDAG1 consistently outperforms Tusk.
        assert peak_tps["lightdag1"] > peak_tps["tusk"]
        assert lat["lightdag1"] < lat["tusk"]
        # The RBC baselines sit at the bottom of the latency ranking; the
        # crash-f attack on Tusk and the leader-delay attack on Bullshark
        # can land within a few percent of each other, so "poorest" is
        # asserted as: worse than both LightDAGs and within 10% of the max.
        assert lat["bullshark"] > lat["lightdag1"]
        assert lat["bullshark"] > lat["lightdag2"]
        assert lat["bullshark"] >= 0.9 * max(lat.values())
