"""The paper's contribution: LightDAG1 and LightDAG2.

* :mod:`repro.core.base` — the wave/commit engine shared by both variants
  *and* the baselines: round advancement, the Global Perfect Coin plumbing,
  Algorithm 1's commit cascade, and the §IV-A retrieval integration.
* :mod:`repro.core.retrieval` — the block retrieval mechanism (§IV-A).
* :mod:`repro.core.lightdag1` — LightDAG1 (§IV): three overlapping CBC
  rounds per wave, f+1 direct-commit rule.
* :mod:`repro.core.lightdag2` — LightDAG2 (§V): PBC-CBC-PBC waves,
  Rules 1–4, Byzantine proofs and equivocator exclusion.
* :mod:`repro.core.proofs` — Byzantine-proof objects (Rule 2/3 evidence).
"""

from .base import BaseDagNode
from .lightdag1 import LightDag1Node
from .lightdag2 import LightDag2Node
from .proofs import ByzantineProof
from .retrieval import RetrievalManager

__all__ = [
    "BaseDagNode",
    "ByzantineProof",
    "LightDag1Node",
    "LightDag2Node",
    "RetrievalManager",
]
