"""Tests for repro.workload.txgen: the analytic mempool."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.workload.txgen import Mempool


class TestSaturatingMode:
    def test_always_full_batches(self):
        pool = Mempool(batch_size=100, tx_size=128, rate=0.0)
        batch = pool.take(now=5.0)
        assert batch.count == 100
        assert batch.submit_time_sum == pytest.approx(500.0)

    def test_stamped_at_proposal(self):
        pool = Mempool(batch_size=10, tx_size=128)
        assert pool.take(3.0).mean_submit_time() == pytest.approx(3.0)

    def test_taken_total_accumulates(self):
        pool = Mempool(batch_size=10, tx_size=128)
        pool.take(1.0)
        pool.take(2.0)
        assert pool.taken_total == 20


class TestOpenLoopMode:
    def test_accrual_rate(self):
        pool = Mempool(batch_size=1000, tx_size=128, rate=100.0)
        batch = pool.take(now=1.0)
        assert batch.count == 100

    def test_backlog_query(self):
        pool = Mempool(batch_size=10, tx_size=128, rate=50.0)
        assert pool.backlog(2.0) == 100

    def test_batch_size_caps_drain(self):
        pool = Mempool(batch_size=30, tx_size=128, rate=100.0)
        batch = pool.take(now=1.0)
        assert batch.count == 30
        assert pool.backlog(1.0) == 70

    def test_fifo_oldest_first(self):
        pool = Mempool(batch_size=50, tx_size=128, rate=100.0)
        first = pool.take(now=1.0)   # txs arrived in [0, 1) -> oldest 50 in [0, 0.5)
        assert first.mean_submit_time() == pytest.approx(0.25, abs=0.02)
        second = pool.take(now=1.0)  # the remaining 50 from [0.5, 1.0)
        assert second.mean_submit_time() == pytest.approx(0.75, abs=0.02)

    def test_empty_queue_empty_batch(self):
        pool = Mempool(batch_size=10, tx_size=128, rate=1.0)
        batch = pool.take(now=0.1)  # only 0.1 tx accrued -> floor 0
        assert batch.count == 0

    def test_fractional_carry_preserved(self):
        pool = Mempool(batch_size=100, tx_size=128, rate=3.0)
        total = 0
        for step in range(1, 101):
            total += pool.take(now=step / 3.0).count
        # 100/3 * 3 = 100 arrivals give exactly 100 txs, no drift.
        assert total == pytest.approx(100, abs=1)

    def test_queueing_delay_grows_when_overloaded(self):
        """Offered load 2x capacity: latency (now - submit) must grow —
        the saturation hockey stick of Fig. 14."""
        pool = Mempool(batch_size=100, tx_size=128, rate=200.0)
        waits = []
        for step in range(1, 20):
            now = float(step)
            batch = pool.take(now)
            if batch.count:
                waits.append(now - batch.mean_submit_time())
        assert waits[-1] > waits[0]

    def test_time_never_goes_backwards(self):
        pool = Mempool(batch_size=10, tx_size=128, rate=10.0)
        pool.take(5.0)
        batch = pool.take(4.0)  # stale clock: accrual is monotone, no crash
        assert batch.count >= 0


class TestValidation:
    def test_bad_batch_size(self):
        with pytest.raises(ConfigError):
            Mempool(batch_size=0, tx_size=128)

    def test_negative_rate(self):
        with pytest.raises(ConfigError):
            Mempool(batch_size=1, tx_size=128, rate=-1)

    def test_from_config(self):
        from repro.config import ProtocolConfig

        pool = Mempool.from_config(ProtocolConfig(batch_size=250), rate=10.0)
        assert pool.batch_size == 250
        assert pool.rate == 10.0


class TestBoundedBacklog:
    def test_cap_bounds_backlog_and_counts_drops(self):
        pool = Mempool(batch_size=10, tx_size=128, rate=1000.0, max_backlog=50)
        assert pool.backlog(10.0) == 50  # 10k arrived, queue pinned at cap
        assert pool.accrued_total == 10_000
        assert pool.dropped_total == 9_950

    def test_backlog_never_exceeds_cap_past_saturation(self):
        """Satellite regression: open loop past saturation must not accrue
        chunks without bound — memory and queue depth stay capped."""
        pool = Mempool(batch_size=10, tx_size=128, rate=500.0, max_backlog=100)
        for step in range(1, 200):
            pool.take(now=step * 0.1)
            assert pool.backlog(step * 0.1) <= 100
            assert len(pool._chunks) <= 101
        assert pool.dropped_total > 0

    def test_drain_reopens_admission(self):
        pool = Mempool(batch_size=40, tx_size=128, rate=100.0, max_backlog=50)
        assert pool.backlog(1.0) == 50  # 100 arrived, 50 dropped
        pool.take(now=1.0)              # drains 40, room for 40 again
        # ~40 fresh arrivals are admitted (one may sit in the fractional
        # carry); the point is the drain reopened the queue.
        assert pool.backlog(1.4) in (49, 50)

    def test_admitted_prefix_keeps_fifo_submit_times(self):
        """When the newest arrivals are shed, the admitted ones occupy the
        leading fraction of the window — submit times stay honest."""
        pool = Mempool(batch_size=100, tx_size=128, rate=100.0, max_backlog=50)
        batch = pool.take(now=1.0)  # 100 arrived in [0,1); only [0,0.5) kept
        assert batch.count == 50
        assert batch.mean_submit_time() == pytest.approx(0.25, abs=0.01)

    def test_negative_cap_rejected(self):
        with pytest.raises(ConfigError):
            Mempool(batch_size=1, tx_size=128, rate=1.0, max_backlog=-1)

    def test_dropped_metric_bound(self):
        from repro.obs import EventJournal, MetricsRegistry, Observability

        obs = Observability(MetricsRegistry(), EventJournal())
        pool = Mempool(batch_size=10, tx_size=128, rate=1000.0, max_backlog=10)
        pool.bind_obs(obs, node_id=3)
        pool.backlog(1.0)
        assert obs.metrics.counter_total("mempool.dropped") == pool.dropped_total


@settings(max_examples=40)
@given(
    rate=st.floats(min_value=1.0, max_value=10_000.0),
    batch=st.integers(min_value=1, max_value=1000),
    steps=st.integers(min_value=1, max_value=30),
)
def test_property_conservation(rate, batch, steps):
    """No transaction is created or destroyed: counts are integers, so the
    ledger balances *exactly* — drained + queued = accrued, to the last
    transaction, over arbitrary take/backlog interleavings."""
    pool = Mempool(batch_size=batch, tx_size=128, rate=rate)
    drained = 0
    for step in range(1, steps + 1):
        drained += pool.take(now=step * 0.1).count
    remaining = pool.backlog(steps * 0.1)
    assert drained == pool.taken_total
    assert drained + remaining == pool.accrued_total
    # The analytic arrival count tracks rate*time to within the carry.
    assert pool.accrued_total == pytest.approx(rate * steps * 0.1, abs=1.0)


@settings(max_examples=40)
@given(
    rate=st.floats(min_value=1.0, max_value=10_000.0),
    batch=st.integers(min_value=1, max_value=500),
    cap=st.integers(min_value=1, max_value=2000),
    steps=st.integers(min_value=1, max_value=30),
)
def test_property_conservation_with_cap(rate, batch, cap, steps):
    """With a bounded backlog the conservation law gains a drop term and
    still balances exactly: accrued == taken + backlog + dropped."""
    pool = Mempool(batch_size=batch, tx_size=128, rate=rate, max_backlog=cap)
    for step in range(1, steps + 1):
        pool.take(now=step * 0.1)
    remaining = pool.backlog(steps * 0.1)
    assert remaining <= cap
    assert pool.accrued_total == pool.taken_total + remaining + pool.dropped_total


@settings(max_examples=40)
@given(
    rate=st.floats(min_value=10.0, max_value=1000.0),
    batch=st.integers(min_value=1, max_value=200),
)
def test_property_submit_times_within_window(rate, batch):
    """Every batch's mean submit time lies inside the accrual window."""
    pool = Mempool(batch_size=batch, tx_size=128, rate=rate)
    result = pool.take(now=2.0)
    if result.count:
        assert 0.0 <= result.mean_submit_time() <= 2.0
