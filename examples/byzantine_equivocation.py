#!/usr/bin/env python3
"""LightDAG2 under the §VI-A equivocation attack, step by step.

A Byzantine replica broadcasts two contradictory blocks in a wave's first
PBC round.  Watch the protocol machinery respond (§V):

1. honest CBC proposers unknowingly reference one copy or the other;
2. Rule 2 voters detect the contradiction and send the conflicting block
   back to the proposers instead of voting;
3. proposers assemble a Byzantine proof and *repropose* clean blocks;
4. the proof propagates (Lemma 8) and every honest replica blacklists the
   equivocator — it is excluded from all future waves (Lemma 7);
5. ledgers stay identical at every honest replica (Theorem 6), and
   commits resume at full speed (Theorem 10's self-limiting argument).

Run:  python examples/byzantine_equivocation.py
"""

from repro.adversary.byzantine import EquivocatingLightDag2Node
from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag2 import LightDag2Node
from repro.crypto.keys import TrustedDealer
from repro.dag.ledger import check_prefix_consistency
from repro.net.latency import UniformLatency
from repro.net.simulator import Simulation


def main() -> None:
    system = SystemConfig(n=7)  # tolerates f = 2
    protocol = ProtocolConfig(batch_size=100)
    chains = TrustedDealer(system).deal()
    byzantine = {5: 1, 6: 4}  # replica -> wave its attack starts (staggered)

    def factory(i: int):
        def make(net):
            if i in byzantine:
                return EquivocatingLightDag2Node(
                    net, system, protocol, chains[i], start_wave=byzantine[i]
                )
            return LightDag2Node(net, system, protocol, chains[i])

        return make

    sim = Simulation(
        [factory(i) for i in range(system.n)],
        latency_model=UniformLatency(0.02, 0.08),
        seed=11,
    )
    sim.run(until=20.0)

    print("Byzantine replicas (equivocating in first-round PBC):")
    for b, start in byzantine.items():
        node = sim.nodes[b]
        print(
            f"  replica {b}: attack from wave {start}, "
            f"equivocated {node.equivocations}x, caught={node.caught}"
        )

    honest = [sim.nodes[i] for i in range(system.n) if i not in byzantine]
    print("\nHonest replicas:")
    for node in honest:
        print(
            f"  replica {node.node_id}: committed {len(node.ledger)} blocks, "
            f"blacklist={sorted(node.blacklist)}, "
            f"reproposals={node.reproposals}, "
            f"contradiction notices sent={node.contradictions_sent}"
        )

    check_prefix_consistency([node.ledger for node in honest])
    print("\nSafety check: all honest ledgers agree on their common prefix ✓")

    caught_everywhere = all(
        node.blacklist == set(byzantine) for node in honest
    )
    print(
        "Exclusion: every honest replica blacklisted every equivocator "
        f"{'✓' if caught_everywhere else '✗ (still propagating)'}"
    )


if __name__ == "__main__":
    main()
