"""Tests for repro.analysis: repetition stats, export, DAG visualization."""

import json

import pytest

from repro.analysis.dagviz import dag_to_ascii, dag_to_dot
from repro.analysis.export import load_results_json, results_to_csv, results_to_json
from repro.analysis.stats import Aggregate, aggregate_results, repeat_experiment
from repro.config import ExperimentConfig, ProtocolConfig, SystemConfig
from repro.dag.store import DagStore


def small_config(**kw):
    kw.setdefault("duration", 4.0)
    kw.setdefault("warmup", 1.0)
    return ExperimentConfig(
        system=SystemConfig(n=4, crypto="hmac", seed=1),
        protocol=ProtocolConfig(batch_size=20),
        protocol_name="lightdag2",
        **kw,
    )


class TestAggregate:
    def test_single_sample(self):
        agg = Aggregate.of([5.0])
        assert agg.mean == 5.0 and agg.stdev == 0.0 and agg.ci95_half_width == 0.0

    def test_known_values(self):
        agg = Aggregate.of([1.0, 2.0, 3.0])
        assert agg.mean == pytest.approx(2.0)
        assert agg.stdev == pytest.approx(1.0)
        assert agg.ci95_half_width == pytest.approx(1.96 / 3**0.5)

    def test_empty_is_nan_not_crash(self):
        import math

        agg = Aggregate.of([])
        assert math.isnan(agg.mean)
        assert math.isnan(agg.stdev)
        assert math.isnan(agg.ci95_half_width)
        assert agg.samples == ()
        assert math.isnan(agg.quantile(0.5))

    def test_quantile_and_percentile_properties(self):
        agg = Aggregate.of([3.0, 1.0, 2.0])
        assert agg.quantile(0.5) == 2.0
        assert agg.p50 == 2.0
        assert agg.p95 == pytest.approx(2.9)

    def test_percentile_reexported_from_workload(self):
        # Back-compat: the old import site must keep working.
        from repro.analysis.stats import percentile
        from repro.workload.metrics import percentile as reexported

        assert reexported is percentile


class TestRepeatExperiment:
    def test_aggregates_over_seeds(self):
        repeated = repeat_experiment(small_config(), repeats=3)
        assert repeated.repeats == 3
        assert len(repeated.runs) == 3
        assert repeated.throughput.mean > 0
        # Distinct seeds must actually produce distinct runs.
        assert len(set(repeated.throughput.samples)) > 1

    def test_reproducible(self):
        a = repeat_experiment(small_config(), repeats=2)
        b = repeat_experiment(small_config(), repeats=2)
        assert a.throughput.samples == b.throughput.samples

    def test_row_shape(self):
        row = repeat_experiment(small_config(), repeats=2).row()
        assert row["repeats"] == 2
        assert "tps_ci95" in row and "latency_ci95_s" in row

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            repeat_experiment(small_config(), repeats=0)

    def test_jobs_equivalence(self):
        a = repeat_experiment(small_config(), repeats=2, jobs=1)
        b = repeat_experiment(small_config(), repeats=2, jobs=2)
        assert a.throughput.samples == b.throughput.samples
        assert a.latency.samples == b.latency.samples


class TestAggregateResults:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_results([])

    def test_single_run_gets_zero_spread(self):
        repeated = repeat_experiment(small_config(), repeats=1)
        agg = aggregate_results(repeated.runs)
        assert agg.extras["seed_count"] == 1.0
        assert agg.extras["tps_stddev"] == 0.0
        assert agg.throughput_tps == repeated.runs[0].throughput_tps

    def test_mean_and_stddev(self):
        repeated = repeat_experiment(small_config(), repeats=3)
        agg = aggregate_results(repeated.runs)
        tps = [r.throughput_tps for r in repeated.runs]
        assert agg.throughput_tps == pytest.approx(sum(tps) / 3)
        assert agg.extras["tps_stddev"] == pytest.approx(repeated.throughput.stdev)
        assert agg.extras["seed_count"] == 3.0
        assert agg.config == repeated.runs[0].config
        # Counters aggregate to per-run means, not sums.
        assert agg.committed_txs <= max(r.committed_txs for r in repeated.runs)


class TestExport:
    @pytest.fixture(scope="class")
    def results(self):
        from repro.harness.runner import run_experiment

        return [run_experiment(small_config(seed=s)) for s in (1, 2)]

    def test_json_roundtrip(self, results, tmp_path):
        path = tmp_path / "out.json"
        results_to_json(results, path)
        loaded = load_results_json(path)
        assert len(loaded) == 2
        assert loaded[0]["protocol"] == "lightdag2"

    def test_json_string_valid(self, results):
        parsed = json.loads(results_to_json(results))
        assert all("tps" in row for row in parsed)

    def test_csv_header_and_rows(self, results, tmp_path):
        path = tmp_path / "out.csv"
        text = results_to_csv(results, path)
        lines = text.strip().splitlines()
        assert len(lines) == 3
        assert "protocol" in lines[0]
        assert path.read_text() == text

    def test_empty_csv(self):
        assert results_to_csv([]) == ""


class TestDagViz:
    @pytest.fixture
    def populated(self):
        from tests.dag.helpers import grow_chain

        store = DagStore(n=4)
        grow_chain(store, rounds=3, n=4)
        return store

    def test_ascii_grid_shape(self, populated):
        art = dag_to_ascii(populated)
        lines = art.splitlines()
        assert len(lines) == 6  # header + 4 replicas + legend
        assert lines[1].count("o") == 3  # 3 delivered rounds for replica 0

    def test_ascii_marks_committed(self, populated):
        from repro.dag.ledger import Ledger

        ledger = Ledger()
        k = ledger.begin_leader()
        block = populated.block_in_slot(1, 0)
        ledger.append(block, 1.0, block.digest, k)
        art = dag_to_ascii(populated, ledger=ledger)
        assert "#" in art

    def test_ascii_marks_equivocation(self):
        from repro.dag.block import genesis_block, make_block

        store = DagStore(n=4, strict=False)
        parents = [genesis_block(a).digest for a in range(4)]
        store.add(make_block(1, 0, parents))
        store.add(make_block(1, 0, parents, repropose_index=1))
        assert "X" in dag_to_ascii(store)

    def test_dot_is_wellformed(self, populated):
        dot = dag_to_dot(populated)
        assert dot.startswith("digraph dag {") and dot.endswith("}")
        assert "r1_0" in dot and "->" in dot

    def test_dot_caps_blocks(self, populated):
        dot = dag_to_dot(populated, max_blocks=2)
        assert dot.count("[") <= 4  # 1 node-attr line each + header


class TestDagVizFromRealRun:
    def test_visualize_simulation_output(self):
        from repro.core.lightdag1 import LightDag1Node
        from repro.crypto.keys import TrustedDealer
        from repro.net.latency import FixedLatency
        from repro.net.simulator import Simulation

        system = SystemConfig(n=4, crypto="hmac", seed=1)
        protocol = ProtocolConfig(batch_size=5)
        chains = TrustedDealer(system).deal()
        sim = Simulation(
            [
                (lambda net, i=i: LightDag1Node(net, system, protocol, chains[i]))
                for i in range(4)
            ],
            latency_model=FixedLatency(0.05),
            seed=1,
        )
        sim.run(until=2.0)
        node = sim.nodes[0]
        leaders = {
            node.leader_block_of(w).digest
            for w in node.committed_leader_waves
            if node.leader_block_of(w) is not None
        }
        art = dag_to_ascii(node.store, ledger=node.ledger, leaders=leaders,
                           last_round=10)
        assert "L" in art and "#" in art
        dot = dag_to_dot(node.store, ledger=node.ledger, last_round=6)
        assert "fillcolor" in dot
