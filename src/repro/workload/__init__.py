"""Workload generation and measurement.

* :mod:`repro.workload.txgen` — open-loop transaction arrival modeling and
  the per-replica mempool that turns arrivals into block payloads.
* :mod:`repro.workload.metrics` — commit-side measurement: throughput
  (committed transactions per second) and latency ("the time taken by a
  transaction to be committed from the moment it is proposed", §VI-A).
"""

from .metrics import LatencyStats, MetricsCollector
from .txgen import Mempool

__all__ = ["LatencyStats", "Mempool", "MetricsCollector"]
