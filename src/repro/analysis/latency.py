"""Commit-latency decomposition and causal critical-path analysis.

The paper's headline claim is *low latency through lightweight broadcast*
— this module says **where a committed block's milliseconds went**.  From
a traced run's journal (``block.*``/``coin.*`` events plus the
``trace.*`` spans of :mod:`repro.obs.trace`) it reconstructs, per
committed ``(replica, block)`` pair, the lifecycle timeline

    created → body arrived → vote/echo quorum → delivered
            → wave coin revealed → committed

and decomposes end-to-end commit latency into the stages between
consecutive milestones:

==============  =============================================================
``broadcast``   proposal broadcast → body's arrival at this replica (VAL hop)
``quorum``      body here → the broadcast's delivery quorum crossed here
``gating``      quorum → delivered (§IV-A ancestor gate / retrieval stalls)
``coin``        delivered → the committing wave's coin revealed here
``ordering``    coin → the commit cascade actually ran (support references)
==============  =============================================================

**Reconciliation guarantee**: milestones are folded through a running
maximum, so every stage is ≥ 0 and the stages *telescope* — their sum is
exactly ``committed − created`` for every block, which is what lets the
per-stage aggregate table claim to explain the measured commit latency
(asserted in ``tests/analysis/test_latency.py``).  A missing milestone
(PBC has no quorum; a retrieved block skips it) contributes a zero-width
stage rather than breaking the sum.

Client-side **queueing** (tx submitted → proposal drained it, from
``trace.batch``) and post-commit **execute** (from ``trace.execute``)
are reported separately — they sit outside consensus latency.

:func:`critical_path` walks a committed block's causal ancestry (parents
recorded on ``trace.body``) picking, at each hop, the parent that was
delivered *last* at the observing replica — the longest blocking chain
that gated this block's acceptance.

The CLI front end is ``repro explain`` (see :mod:`repro.cli`); the
harness attaches :func:`explain_report`'s JSON to traced sweep results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .stats import percentile

#: Consensus stages, in causal order.  Their widths sum to committed−created.
STAGES: Tuple[str, ...] = ("broadcast", "quorum", "gating", "coin", "ordering")

#: Milestone names, in causal order (created first, committed last).
_MILESTONES: Tuple[str, ...] = (
    "created", "body", "quorum", "delivered", "coin", "committed"
)


@dataclass
class BlockTimeline:
    """Milestones of one block's life at one observing replica.

    ``None`` marks milestones that never happened locally (e.g. no
    ``trace.quorum`` for a PBC or retrieval-delivered block).
    """

    node: int
    digest: str
    round: int = -1
    author: int = -1
    created: Optional[float] = None
    batch_mean_submit: Optional[float] = None
    body: Optional[float] = None
    quorum: Optional[float] = None
    delivered: Optional[float] = None
    coin: Optional[float] = None
    committed: Optional[float] = None
    executed: Optional[float] = None
    position: Optional[int] = None
    wave: Optional[int] = None
    parents: Tuple[str, ...] = ()

    def stages(self) -> Optional[Dict[str, float]]:
        """Per-stage widths; None unless both endpoints exist.

        Milestones run through a cumulative max, so consecutive widths
        are non-negative and telescope to exactly
        ``committed - created``.
        """
        if self.created is None or self.committed is None:
            return None
        bounds: List[float] = [self.created]
        running = self.created
        for value in (self.body, self.quorum, self.delivered, self.coin):
            if value is not None and value > running:
                # Clamp into [created, committed]: a missing milestone
                # inherits its predecessor (zero-width stage) and an
                # out-of-range one cannot break the telescoping sum.
                running = min(value, self.committed)
            bounds.append(running)
        bounds.append(self.committed if self.committed > running else running)
        return {
            stage: bounds[i + 1] - bounds[i]
            for i, stage in enumerate(STAGES)
        }

    @property
    def end_to_end(self) -> Optional[float]:
        if self.created is None or self.committed is None:
            return None
        return self.committed - self.created

    @property
    def queue_wait(self) -> Optional[float]:
        """Mean client queueing delay of the block's transactions."""
        if self.created is None or self.batch_mean_submit is None:
            return None
        return max(self.created - self.batch_mean_submit, 0.0)


def _normalize(event) -> Tuple[float, int, str, Dict[str, object]]:
    """Accept journal :class:`~repro.obs.Event` tuples or JSONL dicts."""
    if isinstance(event, dict):
        data = {k: v for k, v in event.items() if k not in ("t", "node", "type")}
        return float(event["t"]), int(event["node"]), str(event["type"]), data
    return event.t, event.node, event.type, event.data


def build_timelines(events: Iterable) -> Dict[Tuple[int, str], BlockTimeline]:
    """Fold journal events into per-``(node, digest)`` timelines.

    Only committed pairs get full decomposition downstream; uncommitted
    timelines are still returned (the health layer and the critical-path
    walk use their delivery times).
    """
    timelines: Dict[Tuple[int, str], BlockTimeline] = {}
    proposed: Dict[str, Tuple[float, int, int]] = {}  # digest -> (t, round, author)
    batches: Dict[Tuple[int, float], float] = {}  # (node, t) -> mean_submit
    coins: Dict[Tuple[int, int], float] = {}  # (node, wave) -> reveal t

    def line(node: int, digest: str) -> BlockTimeline:
        key = (node, digest)
        tl = timelines.get(key)
        if tl is None:
            tl = timelines[key] = BlockTimeline(node=node, digest=digest)
        return tl

    for event in events:
        t, node, type_, data = _normalize(event)
        if type_ == "block.propose":
            digest = str(data.get("digest"))
            if digest not in proposed:
                proposed[digest] = (
                    t, int(data.get("round", -1)), int(data.get("author", node))
                )
        elif type_ == "trace.batch":
            batches[(node, t)] = float(data.get("mean_submit", t))
        elif type_ == "trace.body":
            tl = line(node, str(data.get("digest")))
            if tl.body is None:
                tl.body = t
                tl.round = int(data.get("round", tl.round))
                tl.author = int(data.get("author", tl.author))
                tl.parents = tuple(str(p) for p in data.get("parents", ()))
        elif type_ == "trace.quorum":
            tl = line(node, str(data.get("digest")))
            if tl.quorum is None:
                tl.quorum = t
        elif type_ == "block.deliver":
            tl = line(node, str(data.get("digest")))
            if tl.delivered is None:
                tl.delivered = t
                tl.round = int(data.get("round", tl.round))
                tl.author = int(data.get("author", tl.author))
        elif type_ == "coin.reveal":
            coins.setdefault((node, int(data.get("wave", -1))), t)
        elif type_ == "block.commit":
            tl = line(node, str(data.get("digest")))
            if tl.committed is None:
                tl.committed = t
                tl.wave = int(data.get("wave", -1))
                tl.round = int(data.get("round", tl.round))
                tl.author = int(data.get("author", tl.author))
        elif type_ == "trace.ordered":
            tl = line(node, str(data.get("digest")))
            if tl.position is None:
                tl.position = int(data.get("position", -1))
        elif type_ == "trace.execute":
            tl = line(node, str(data.get("digest")))
            if tl.executed is None:
                tl.executed = t

    for (node, digest), tl in timelines.items():
        origin = proposed.get(digest)
        if origin is not None:
            tl.created, round_, author = origin
            if tl.round < 0:
                tl.round = round_
            if tl.author < 0:
                tl.author = author
            tl.batch_mean_submit = batches.get((author, tl.created))
        if tl.wave is not None:
            tl.coin = coins.get((node, tl.wave))
    return timelines


def _stat_row(samples: List[float]) -> Dict[str, float]:
    ordered = sorted(samples)
    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered) if ordered else 0.0,
        "p50": percentile(ordered, 0.50) if ordered else 0.0,
        "p95": percentile(ordered, 0.95) if ordered else 0.0,
        "p99": percentile(ordered, 0.99) if ordered else 0.0,
        "max": ordered[-1] if ordered else 0.0,
    }


def stage_breakdown(
    timelines: Dict[Tuple[int, str], BlockTimeline],
) -> Dict[str, object]:
    """Aggregate per-stage statistics over every decomposable timeline."""
    per_stage: Dict[str, List[float]] = {stage: [] for stage in STAGES}
    totals: List[float] = []
    queue: List[float] = []
    execute: List[float] = []
    max_error = 0.0
    for tl in timelines.values():
        stages = tl.stages()
        if stages is None:
            continue
        total = tl.end_to_end or 0.0
        totals.append(total)
        max_error = max(max_error, abs(sum(stages.values()) - total))
        for stage, width in stages.items():
            per_stage[stage].append(width)
        if tl.queue_wait is not None:
            queue.append(tl.queue_wait)
        if tl.executed is not None and tl.committed is not None:
            execute.append(max(tl.executed - tl.committed, 0.0))
    mean_total = sum(totals) / len(totals) if totals else 0.0
    stages_out: Dict[str, Dict[str, float]] = {}
    for stage in STAGES:
        row = _stat_row(per_stage[stage])
        row["share"] = row["mean"] / mean_total if mean_total > 0 else 0.0
        stages_out[stage] = row
    return {
        "blocks": len(totals),
        "end_to_end": _stat_row(totals),
        "stages": stages_out,
        "queue": _stat_row(queue) if queue else None,
        "execute": _stat_row(execute) if execute else None,
        "reconciliation_max_abs_error": max_error,
    }


def critical_path(
    timelines: Dict[Tuple[int, str], BlockTimeline],
    node: int,
    digest: str,
    max_depth: int = 32,
) -> List[Dict[str, object]]:
    """The longest blocking ancestor chain of one block, at one replica.

    Starting from ``digest``, repeatedly steps to the parent delivered
    *last* at ``node`` — the block whose arrival actually gated this
    hop's acceptance (§IV-A).  Returns hops root-first, each with the
    local delivery time and how long the child waited for it.
    """
    path: List[Dict[str, object]] = []
    current = timelines.get((node, digest))
    seen = {digest}
    while current is not None and len(path) < max_depth:
        blocking: Optional[BlockTimeline] = None
        for parent in current.parents:
            candidate = timelines.get((node, parent))
            if candidate is None or candidate.delivered is None:
                continue
            if blocking is None or candidate.delivered > (blocking.delivered or 0.0):
                blocking = candidate
        entry: Dict[str, object] = {
            "digest": current.digest,
            "round": current.round,
            "author": current.author,
            "delivered": current.delivered,
        }
        if blocking is not None and current.delivered is not None:
            entry["waited_for_parent"] = max(
                current.delivered - (blocking.delivered or 0.0), 0.0
            )
        path.append(entry)
        if blocking is None or blocking.digest in seen:
            break
        seen.add(blocking.digest)
        current = blocking
    path.reverse()
    return path


def slowest_committed(
    timelines: Dict[Tuple[int, str], BlockTimeline],
) -> Optional[BlockTimeline]:
    """The committed timeline with the largest end-to-end latency."""
    worst: Optional[BlockTimeline] = None
    for tl in timelines.values():
        total = tl.end_to_end
        if total is None:
            continue
        if worst is None or total > (worst.end_to_end or 0.0):
            worst = tl
    return worst


def explain_report(
    events: Iterable,
    protocol: str = "",
    n: int = 0,
) -> Dict[str, object]:
    """The full machine-readable latency report for one traced run."""
    timelines = build_timelines(events)
    report = stage_breakdown(timelines)
    report["protocol"] = protocol
    report["n"] = n
    worst = slowest_committed(timelines)
    if worst is not None:
        report["slowest_block"] = {
            "digest": worst.digest,
            "node": worst.node,
            "round": worst.round,
            "author": worst.author,
            "end_to_end": worst.end_to_end,
            "stages": worst.stages(),
        }
        report["critical_path"] = critical_path(
            timelines, worst.node, worst.digest
        )
    else:
        report["slowest_block"] = None
        report["critical_path"] = []
    return report


def write_report(report: Dict[str, object], path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def _ms(value: Optional[float]) -> str:
    return f"{value * 1e3:8.2f}" if value is not None else "       -"


def format_report(report: Dict[str, object]) -> str:
    """Human-readable rendering for ``repro explain``."""
    lines: List[str] = []
    blocks = report.get("blocks", 0)
    e2e = report.get("end_to_end") or {}
    lines.append(
        f"{report.get('protocol', '?')} n={report.get('n', '?')}: "
        f"{blocks} committed block timeline(s)"
    )
    if not blocks:
        lines.append("no committed blocks with full timelines — "
                     "was the run traced (--trace/--journal) and long enough?")
        return "\n".join(lines)
    lines.append(
        f"end-to-end commit latency: mean {_ms(e2e.get('mean')).strip()} ms, "
        f"p50 {_ms(e2e.get('p50')).strip()} ms, "
        f"p95 {_ms(e2e.get('p95')).strip()} ms"
    )
    lines.append("")
    lines.append(f"{'stage':<12}{'mean ms':>10}{'p50 ms':>10}"
                 f"{'p95 ms':>10}{'p99 ms':>10}{'share':>8}")
    stages: Dict[str, Dict[str, float]] = report.get("stages", {})  # type: ignore[assignment]
    for stage in STAGES:
        row = stages.get(stage)
        if row is None:
            continue
        lines.append(
            f"{stage:<12}{_ms(row['mean']):>10}{_ms(row['p50']):>10}"
            f"{_ms(row['p95']):>10}{_ms(row['p99']):>10}"
            f"{row['share'] * 100:>7.1f}%"
        )
    mean_sum = sum(row["mean"] for row in stages.values())
    lines.append(
        f"{'Σ stages':<12}{_ms(mean_sum):>10}"
        f"  (reconciles with end-to-end mean, max |err| "
        f"{report.get('reconciliation_max_abs_error', 0.0):.2e}s)"
    )
    queue = report.get("queue")
    if queue:
        lines.append(f"client queueing (pre-consensus): "
                     f"mean {_ms(queue['mean']).strip()} ms")
    execute = report.get("execute")
    if execute:
        lines.append(f"execution (post-commit): "
                     f"mean {_ms(execute['mean']).strip()} ms")
    slowest = report.get("slowest_block")
    if slowest:
        lines.append("")
        lines.append(
            f"slowest block: r{slowest['round']}/a{slowest['author']} "
            f"({slowest['digest']}) at replica {slowest['node']}: "
            f"{_ms(slowest['end_to_end']).strip()} ms"
        )
        path = report.get("critical_path") or []
        if path:
            lines.append("critical path (longest blocking ancestor chain):")
            for hop in path:
                waited = hop.get("waited_for_parent")
                suffix = (
                    f"  (+{_ms(waited).strip()} ms after blocking parent)"
                    if waited is not None else ""
                )
                delivered = hop.get("delivered")
                at = (
                    f"delivered t={delivered:.4f}s"
                    if isinstance(delivered, float) else "not delivered"
                )
                lines.append(
                    f"  r{hop['round']}/a{hop['author']} {hop['digest']} — "
                    f"{at}{suffix}"
                )
    health = report.get("health")
    if health:
        lines.append("")
        lines.append(f"health: {health.get('verdict', '?')}")
        for alert, count in sorted((health.get("alerts") or {}).items()):
            lines.append(f"  {alert}: {count}")
    return "\n".join(lines)
