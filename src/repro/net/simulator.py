"""Deterministic discrete-event network simulator.

The simulator executes a set of :class:`~repro.net.interfaces.Node` state
machines over a modeled network and is the engine behind every benchmark
figure.  Design points:

* **Determinism** — one seeded ``random.Random`` drives all latency draws;
  the event queue breaks time ties by a monotone sequence number; node
  handlers run to completion.  Same seed → bit-identical run.
* **Bandwidth model** — each replica has a shared egress NIC of
  ``bandwidth_bps``; messages serialize through it FIFO
  (``egress_free[src]`` tracks when the NIC drains) and then propagate
  according to the latency model.  This is what produces the saturation
  plateaus of Fig. 12/14 and the throughput convergence of Fig. 13a.
* **Adversary hooks** — an :class:`~repro.adversary.base.Adversary` may
  delay or drop any message and crash replicas; Byzantine *behaviour*
  (equivocation and the like) is expressed as alternative Node
  implementations, matching the paper's threat model where the adversary
  controls up to ``f`` replicas and the message schedule.

The hot loop is kept allocation-light on purpose (the profiling-first guide:
the event loop dominates; everything else is protocol logic).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..errors import SimulationError
from .interfaces import Message, NetworkAPI, Node, NodeFactory
from .latency import FixedLatency, LatencyModel

_DELIVER = 0
_TIMER = 1
_PROCESS = 2


@dataclass(frozen=True)
class CpuCost:
    """Per-node message-processing cost model.

    Real deployments saturate replica CPUs on per-message work (signature
    verification, deserialization, hashing) long before links fill — this
    is what makes throughput *decline* as the replica set grows (Fig. 13a):
    every node processes Θ(n²) echo-class messages per round.  Messages
    arriving at a node serialize through a single CPU queue with cost
    ``fixed_s + per_byte_s × size``.

    Defaults approximate a prototype-grade stack: ~250 µs per message
    (ed25519-class verify, deserialization, handling, GC pressure) and
    20 ns/byte (~50 MB/s effective decode+hash+copy).
    """

    fixed_s: float = 250e-6
    per_byte_s: float = 20e-9

    def cost(self, size: int) -> float:
        return self.fixed_s + size * self.per_byte_s


@dataclass
class SimulationStats:
    """Counters accumulated over a run."""

    events_processed: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    final_time: float = 0.0
    per_node_bytes: dict = field(default_factory=dict)

    def record_send(self, src: int, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        self.per_node_bytes[src] = self.per_node_bytes.get(src, 0) + size


class _SimNetworkAPI(NetworkAPI):
    """Per-node facade over the simulator."""

    __slots__ = ("_sim", "_node_id")

    def __init__(self, sim: "Simulation", node_id: int) -> None:
        self._sim = sim
        self._node_id = node_id

    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def n(self) -> int:
        return len(self._sim.nodes)

    def now(self) -> float:
        return self._sim.now

    def send(self, dst: int, msg: Message) -> None:
        self._sim._enqueue_send(self._node_id, dst, msg)

    def set_timer(self, delay: float, tag: str, data: Any = None) -> None:
        self._sim._enqueue_timer(self._node_id, delay, tag, data)


class Simulation:
    """Builds and runs a replica set over the modeled network.

    Parameters
    ----------
    factories:
        One node factory per replica; ``factories[i]`` receives the
        :class:`NetworkAPI` for replica ``i``.  Byzantine replicas are
        simply factories producing malicious Node subclasses.
    latency_model:
        Propagation model (defaults to 50 ms fixed).
    bandwidth_bps:
        Shared egress NIC capacity per replica; ``None`` disables the
        serialization model entirely (pure propagation — used by the
        step-count experiments).
    adversary:
        Optional message-schedule adversary (see :mod:`repro.adversary`).
    seed:
        Seed for all latency jitter and adversary randomness.
    """

    def __init__(
        self,
        factories: Sequence[NodeFactory],
        latency_model: LatencyModel | None = None,
        bandwidth_bps: float | None = None,
        adversary: Optional["AdversaryProtocol"] = None,
        cpu: CpuCost | None = None,
        seed: int = 0,
    ) -> None:
        self.latency = latency_model or FixedLatency()
        self.bandwidth_bps = bandwidth_bps
        self.adversary = adversary
        self.cpu = cpu
        self.rng = random.Random(f"sim:{seed}")
        self.now = 0.0
        self.stats = SimulationStats()
        self._queue: list = []
        self._seq = itertools.count()
        self._egress_free = [0.0] * len(factories)
        self._cpu_free = [0.0] * len(factories)
        self._crashed: set[int] = set()
        self.nodes: list[Node] = []
        for i, factory in enumerate(factories):
            self.nodes.append(factory(_SimNetworkAPI(self, i)))
        if self.adversary is not None:
            self.adversary.attach(self)
        self._started = False

    # -- event scheduling ----------------------------------------------------

    def _enqueue_send(self, src: int, dst: int, msg: Message) -> None:
        if src in self._crashed:
            return
        if dst == src:
            # Local delivery: no propagation, no serialization, but still an
            # event so handler atomicity is preserved.
            heapq.heappush(
                self._queue, (self.now, next(self._seq), _DELIVER, (src, dst, msg))
            )
            return
        size = msg.wire_size()
        self.stats.record_send(src, size)

        if self.adversary is not None:
            verdict = self.adversary.on_send(src, dst, msg, self.now)
            if verdict is None:
                self.stats.messages_dropped += 1
                return
            extra_delay = verdict
        else:
            extra_delay = 0.0

        if self.bandwidth_bps is not None:
            start = max(self.now, self._egress_free[src])
            finish = start + size * 8.0 / self.bandwidth_bps
            self._egress_free[src] = finish
        else:
            finish = self.now
        arrival = finish + self.latency.delay(src, dst, self.rng) + extra_delay
        heapq.heappush(
            self._queue, (arrival, next(self._seq), _DELIVER, (src, dst, msg))
        )

    def _enqueue_timer(self, node_id: int, delay: float, tag: str, data: Any) -> None:
        if delay < 0:
            raise SimulationError(f"negative timer delay {delay}")
        heapq.heappush(
            self._queue,
            (self.now + delay, next(self._seq), _TIMER, (node_id, tag, data)),
        )

    # -- fault injection -----------------------------------------------------

    def crash(self, node_id: int, at: float | None = None) -> None:
        """Crash a replica now or at a future time.

        A crashed replica stops sending, receiving, and firing timers; its
        state is left intact (crash-stop, not crash-recovery).
        """
        if at is None or at <= self.now:
            self._crashed.add(node_id)
        else:
            heapq.heappush(
                self._queue, (at, next(self._seq), _TIMER, (node_id, "__crash__", None))
            )

    @property
    def crashed(self) -> frozenset:
        return frozenset(self._crashed)

    # -- run loop --------------------------------------------------------------

    def start(self) -> None:
        """Invoke every node's ``on_start`` (idempotent)."""
        if self._started:
            return
        self._started = True
        for node in self.nodes:
            if node.node_id not in self._crashed:
                node.on_start()

    def run(
        self,
        until: float | None = None,
        max_events: int = 50_000_000,
        stop_when: Callable[["Simulation"], bool] | None = None,
    ) -> SimulationStats:
        """Process events until the queue drains, time passes ``until``,
        the event budget is hit, or ``stop_when(sim)`` returns True.

        ``stop_when`` is evaluated after each event — use it for
        "run until every replica committed k blocks" style experiments.
        """
        self.start()
        processed = 0
        while self._queue:
            when, _, kind, payload = self._queue[0]
            if until is not None and when > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            self.now = when
            self._dispatch(kind, payload)
            processed += 1
            self.stats.events_processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"event budget {max_events} exhausted at t={self.now:.3f}s "
                    f"({len(self._queue)} events pending) — runaway protocol?"
                )
            if stop_when is not None and stop_when(self):
                break
        self.stats.final_time = self.now
        return self.stats

    def _dispatch(self, kind: int, payload: tuple) -> None:
        if kind == _DELIVER:
            src, dst, msg = payload
            if dst in self._crashed:
                return
            if self.cpu is not None and src != dst:
                cost = self.cpu.cost(msg.wire_size())
                if self._cpu_free[dst] <= self.now:
                    # CPU idle: hand over now; this message's cost delays
                    # whatever arrives next.
                    self._cpu_free[dst] = self.now + cost
                else:
                    # CPU busy: requeue behind the backlog.
                    ready = self._cpu_free[dst] + cost
                    self._cpu_free[dst] = ready
                    heapq.heappush(
                        self._queue,
                        (ready, next(self._seq), _PROCESS, (src, dst, msg)),
                    )
                    return
            self.stats.messages_delivered += 1
            self.nodes[dst].on_message(src, msg)
        elif kind == _PROCESS:
            src, dst, msg = payload
            if dst in self._crashed:
                return
            self.stats.messages_delivered += 1
            self.nodes[dst].on_message(src, msg)
        else:
            node_id, tag, data = payload
            if tag == "__crash__":
                self._crashed.add(node_id)
                return
            if node_id in self._crashed:
                return
            self.nodes[node_id].on_timer(tag, data)

    @property
    def pending_events(self) -> int:
        return len(self._queue)


class AdversaryProtocol:
    """Structural interface the simulator expects from adversaries.

    Kept here (rather than in :mod:`repro.adversary`) to avoid an import
    cycle; real adversaries subclass :class:`repro.adversary.base.Adversary`
    which conforms to this.
    """

    def attach(self, sim: Simulation) -> None:  # pragma: no cover - interface
        """Called once after nodes are constructed."""

    def on_send(
        self, src: int, dst: int, msg: Message, now: float
    ) -> float | None:  # pragma: no cover - interface
        """Return extra delay in seconds, or ``None`` to drop the message."""
        return 0.0
