"""DAG-Rider baseline ([8], Keidar et al., PODC 2021).

Wave = **four RBC rounds**.  The wave's leader block (round ⟨w,1⟩, named by
the GPC revealed from shares riding with round-⟨w,4⟩ blocks) commits
directly when ``2f + 1`` round-⟨w,4⟩ blocks reference it (three parent
hops — the "strong path" condition).  Missed leaders commit through the
same Algorithm-1-style cascade as LightDAG.

Latency accounting (Table I): 4 RBC rounds × 3 steps = 12 steps best case
(10 when the coin reveal is counted at the first step of the fourth RBC).
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from typing import Set

from ..broadcast.rbc import RbcManager
from ..crypto.hashing import Digest
from ..dag.block import Block
from ..core.base import BaseDagNode


class DagRiderNode(BaseDagNode):
    """One DAG-Rider replica."""

    WAVE_LENGTH = 4
    WAVE_OVERLAP = False
    SUPPORT_DEPTH = 3
    STRICT_STORE = True

    def _make_managers(self) -> None:
        self.rbc = RbcManager(
            self.net,
            quorum=self.system.quorum,
            amplify_threshold=self.system.validity_quorum,
            on_deliver=self._on_deliver,
            obs=self.obs,
        )

    def _manager_for_round(self, round_: int) -> RbcManager:
        return self.rbc

    def _broadcast_managers(self) -> tuple:
        return (self.rbc,)

    def _commit_threshold_value(self) -> int:
        return 2 * self.system.f + 1

    def _participate(self, block: Block, src: int) -> None:
        self.rbc.echo(block)

    def _holders_of(self, digest: Digest) -> AbstractSet:
        return self.rbc.echoers_of(digest)
