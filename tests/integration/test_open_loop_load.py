"""Open-loop offered load (ExperimentConfig.tx_rate_per_replica).

The saturating mode used by the figure benches measures the consensus
path; the open-loop mode models real clients at a fixed rate, where
*queueing* appears: latency stays flat below capacity and grows without
bound above it — the other half of Fig. 14's hockey stick.
"""

import pytest

from repro.config import ExperimentConfig, ProtocolConfig, SystemConfig
from repro.harness.runner import run_experiment


def run_at_rate(rate, protocol="lightdag2", batch=200, duration=12.0, seed=4):
    cfg = ExperimentConfig(
        system=SystemConfig(n=4, crypto="hmac", seed=seed),
        protocol=ProtocolConfig(batch_size=batch),
        protocol_name=protocol,
        duration=duration,
        warmup=3.0,
        tx_rate_per_replica=rate,
        seed=seed,
    )
    return run_experiment(cfg)


class TestOpenLoop:
    def test_throughput_tracks_offered_load_below_capacity(self):
        result = run_at_rate(rate=500.0)
        # 4 replicas × 500 tx/s offered; committed throughput ≈ offered.
        assert result.throughput_tps == pytest.approx(2000, rel=0.15)

    def test_latency_flat_below_capacity(self):
        light = run_at_rate(rate=200.0)
        moderate = run_at_rate(rate=800.0)
        # Well under capacity, queueing is negligible: latencies within 2x.
        assert moderate.mean_latency < 2 * light.mean_latency

    def test_queueing_blowup_above_capacity(self):
        """Offered load far above capacity: the backlog grows for the whole
        run and measured latency reflects it."""
        below = run_at_rate(rate=500.0, batch=100)
        above = run_at_rate(rate=20_000.0, batch=100)
        assert above.mean_latency > 3 * below.mean_latency
        # Committed throughput caps at roughly batch x round rate, far
        # below the offered 80k tx/s.
        assert above.throughput_tps < 40_000

    def test_zero_rate_means_saturating(self):
        saturating = run_at_rate(rate=0.0)
        # Saturating mode always fills batches: throughput well above the
        # small open-loop rate.
        assert saturating.throughput_tps > 4000

    def test_empty_blocks_when_queue_dry(self):
        """At a very low rate most blocks carry zero transactions — the
        protocol must keep advancing regardless (liveness does not depend
        on payload)."""
        result = run_at_rate(rate=10.0)
        assert result.rounds_reached > 30
        assert result.throughput_tps == pytest.approx(40, rel=0.3)
