"""DAG test helpers: build small valid DAGs quickly."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.dag.block import Block, TxBatch, make_block
from repro.dag.store import DagStore


def batch(count: int = 1, at: float = 0.0, tx_size: int = 128) -> TxBatch:
    return TxBatch(count=count, tx_size=tx_size, submit_time_sum=count * at, sample=(at,))


def build_round(
    store: DagStore,
    round_: int,
    authors: Sequence[int],
    parents_per_author: Optional[Dict[int, List[bytes]]] = None,
    payload_at: float = 0.0,
) -> List[Block]:
    """Create one block per author in ``round_``, referencing all blocks of
    round-1 by default, and add them to the store."""
    blocks = []
    for author in authors:
        if parents_per_author and author in parents_per_author:
            parents = parents_per_author[author]
        else:
            parents = [
                store.block_in_slot(round_ - 1, a).digest
                for a in sorted(store.authors_in_round(round_ - 1))
            ]
        block = make_block(round_, author, parents, payload=batch(at=payload_at))
        store.add(block)
        blocks.append(block)
    return blocks


def grow_chain(store: DagStore, rounds: int, n: int) -> None:
    """Fully-connected DAG: every author proposes in every round."""
    for r in range(1, rounds + 1):
        build_round(store, r, range(n))
