"""Client populations: the end-to-end traffic plane.

The analytic :class:`~repro.workload.txgen.Mempool` measures the
*consensus* path — transactions are numbers, nobody waits for an answer.
This module adds the missing half of the paper's systems story: **clients
that submit real commands and observe real responses**, so a run reports
client-side (end-to-end) TPS and latency next to the consensus-side
numbers, the way the lightDAG benchmark harness prints its summary.

Three pieces compose a workload:

* **Arrival processes** — when do submissions happen?  Homogeneous
  Poisson (:class:`PoissonArrivals`), a two-state on/off burst process
  (:class:`BurstyArrivals`), and a sinusoidal diurnal ramp
  (:class:`DiurnalArrivals`); the time-varying ones sample by Lewis—
  Shedler thinning, so each is an exact nonhomogeneous Poisson process.
* **Operation mix** — what is submitted?  A Zipf-skewed key popularity
  distribution (:class:`ZipfKeys`, YCSB-style skew) over a SET/GET/DEL/CAS
  verb mix against the :class:`~repro.smr.kv.KvStateMachine` grammar.
* **Populations** — who submits?  :class:`ClientPopulation` drives a
  :class:`~repro.smr.replica.SmrCluster` either **open loop** (arrivals
  fire regardless of responses — offered rate is the independent
  variable, the saturation sweeps' x-axis) or **closed loop** (each
  client keeps at most ``outstanding`` commands in flight and thinks
  between operations — the "N users" model; offered rate emerges from
  the response rate).

Every command is tracked from submission to the waiter callback the SMR
replica fires at commit, yielding exact end-to-end latency samples
(p50/p99/p999) and completion throughput.  Closed-loop clients with one
outstanding command additionally *verify* read-your-writes against a
local model of their (private) keyspace — the regression that catches an
untagged GET confusing a stored ``"NIL"`` with a missing key.

Everything is deterministic: one seeded :class:`random.Random` drives the
whole population, and all timing flows through the simulator's
``call_at`` hook, so a (seed, spec) pair replays bit-identically.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.stats import percentile
from ..errors import ConfigError
from ..smr.machine import Command
from ..smr.replica import SmrReplica

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "make_arrivals",
    "ZipfKeys",
    "OpMix",
    "WorkloadSpec",
    "ClientStats",
    "ClientPopulation",
]


# --------------------------------------------------------------- arrivals


class ArrivalProcess:
    """Inter-arrival sampler: ``next_gap(rng, now)`` seconds to the next
    submission.  Implementations must depend only on ``rng`` and ``now``
    (deterministic replay)."""

    def next_gap(self, rng: random.Random, now: float) -> float:
        raise NotImplementedError

    def rate_at(self, now: float) -> float:
        """Instantaneous offered rate (tx/s) — for reports."""
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process at ``rate`` tx/s."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ConfigError("arrival rate must be positive")
        self.rate = rate

    def next_gap(self, rng: random.Random, now: float) -> float:
        return rng.expovariate(self.rate)

    def rate_at(self, now: float) -> float:
        return self.rate


class _ThinnedArrivals(ArrivalProcess):
    """Nonhomogeneous Poisson via Lewis–Shedler thinning: sample candidate
    points at the peak rate, accept each with probability
    ``rate(t)/peak``.  Exact for any bounded rate function."""

    peak: float

    def next_gap(self, rng: random.Random, now: float) -> float:
        t = now
        while True:
            t += rng.expovariate(self.peak)
            if rng.random() * self.peak <= self.rate_at(t):
                return t - now


class BurstyArrivals(_ThinnedArrivals):
    """On/off (interrupted Poisson) bursts with a fixed duty cycle.

    The *mean* rate equals ``rate``; during the on-phase (fraction
    ``duty`` of each ``period``) traffic arrives at ``rate / duty``,
    during the off-phase not at all.  ``duty=1`` degenerates to Poisson.
    """

    def __init__(self, rate: float, period: float = 2.0, duty: float = 0.25) -> None:
        if rate <= 0:
            raise ConfigError("arrival rate must be positive")
        if not 0 < duty <= 1:
            raise ConfigError("duty must be in (0, 1]")
        if period <= 0:
            raise ConfigError("period must be positive")
        self.rate = rate
        self.period = period
        self.duty = duty
        self.peak = rate / duty

    def rate_at(self, now: float) -> float:
        phase = math.fmod(now, self.period)
        return self.peak if phase < self.duty * self.period else 0.0


class DiurnalArrivals(_ThinnedArrivals):
    """Sinusoidal ramp: ``rate(t) = rate * (1 + amplitude*sin(2πt/period))``.

    ``amplitude`` in [0, 1); the mean over a full period is ``rate``.
    A long-period ramp models the day/night swing; a short one a load
    oscillation crossing the capacity knee twice a cycle.
    """

    def __init__(self, rate: float, period: float = 20.0, amplitude: float = 0.8) -> None:
        if rate <= 0:
            raise ConfigError("arrival rate must be positive")
        if not 0 <= amplitude < 1:
            raise ConfigError("amplitude must be in [0, 1)")
        if period <= 0:
            raise ConfigError("period must be positive")
        self.rate = rate
        self.period = period
        self.amplitude = amplitude
        self.peak = rate * (1 + amplitude)

    def rate_at(self, now: float) -> float:
        return self.rate * (1 + self.amplitude * math.sin(2 * math.pi * now / self.period))


#: Arrival-process names accepted by :func:`make_arrivals` and the CLI.
ARRIVAL_KINDS = ("poisson", "bursty", "diurnal")


def make_arrivals(kind: str, rate: float, **kwargs) -> ArrivalProcess:
    """Arrival process by name: ``poisson``, ``bursty``, or ``diurnal``."""
    if kind == "poisson":
        return PoissonArrivals(rate)
    if kind == "bursty":
        return BurstyArrivals(rate, **kwargs)
    if kind == "diurnal":
        return DiurnalArrivals(rate, **kwargs)
    raise ConfigError(
        f"unknown arrival process {kind!r}; choose from {ARRIVAL_KINDS}"
    )


# --------------------------------------------------------------- key skew


class ZipfKeys:
    """Zipf-distributed key indices over ``[0, n_keys)``.

    ``P(k) ∝ 1 / (k+1)^skew`` — the YCSB-style popularity model: a few
    hot keys absorb most traffic, the tail is long.  ``skew=0`` is
    uniform.  Sampling is an O(log n) bisect over the precomputed CDF.
    """

    def __init__(self, n_keys: int, skew: float = 0.99) -> None:
        if n_keys < 1:
            raise ConfigError("n_keys must be positive")
        if skew < 0:
            raise ConfigError("skew cannot be negative")
        self.n_keys = n_keys
        self.skew = skew
        cdf: List[float] = []
        total = 0.0
        for k in range(n_keys):
            total += 1.0 / (k + 1) ** skew
            cdf.append(total)
        self._cdf = cdf
        self._total = total

    def sample(self, rng: random.Random) -> int:
        return bisect_left(self._cdf, rng.random() * self._total)


# --------------------------------------------------------------- op mix


class OpMix:
    """SET/GET/DEL/CAS mix over a Zipf keyspace.

    ``weights`` are relative frequencies for (SET, GET, DEL, CAS).
    ``private`` scopes keys to the issuing client (``c<id>.k<idx>``),
    making sequential read-your-writes verification sound; shared mode
    (``k<idx>``) exercises cross-client contention instead.
    """

    VERBS = ("SET", "GET", "DEL", "CAS")

    def __init__(
        self,
        keys: ZipfKeys,
        weights: Tuple[float, float, float, float] = (45.0, 45.0, 5.0, 5.0),
        value_size: int = 16,
        private: bool = True,
    ) -> None:
        if len(weights) != 4 or any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ConfigError("weights must be 4 non-negative numbers, sum > 0")
        self.keys = keys
        self.weights = tuple(float(w) for w in weights)
        self.value_size = max(1, value_size)
        self.private = private
        cum: List[float] = []
        total = 0.0
        for w in self.weights:
            total += w
            cum.append(total)
        self._cum = cum
        self._total = total

    def key_for(self, client_id: int, rng: random.Random) -> str:
        idx = self.keys.sample(rng)
        return f"c{client_id}.k{idx}" if self.private else f"k{idx}"

    def next_verb(self, rng: random.Random) -> str:
        return self.VERBS[bisect_left(self._cum, rng.random() * self._total)]

    def value(self, rng: random.Random) -> str:
        return f"v{rng.getrandbits(32):08x}".ljust(self.value_size, "x")[: self.value_size]


# --------------------------------------------------------------- spec


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything a client population needs, picklable for sweep workers.

    ``rate`` is the *aggregate* offered load in tx/s (open loop); closed
    loop ignores it (throughput emerges from ``clients``/``outstanding``/
    ``think_s``).
    """

    clients: int = 100
    mode: str = "open"                 # "open" | "closed"
    rate: float = 500.0                # aggregate offered tx/s (open loop)
    arrival: str = "poisson"           # poisson | bursty | diurnal
    arrival_period: float = 2.0        # bursty/diurnal period (s)
    arrival_duty: float = 0.25         # bursty duty cycle
    arrival_amplitude: float = 0.8     # diurnal swing
    think_s: float = 0.0               # closed-loop think time
    outstanding: int = 1               # closed-loop in-flight per client
    keys: int = 1000
    zipf: float = 0.99
    value_size: int = 16
    mix: Tuple[float, float, float, float] = (45.0, 45.0, 5.0, 5.0)
    shared_keys: bool = False
    retry_backoff_s: float = 0.05      # closed-loop reject/shed retry wait
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigError("need at least one client")
        if self.mode not in ("open", "closed"):
            raise ConfigError(f"mode must be 'open' or 'closed', got {self.mode!r}")
        if self.mode == "open" and self.rate <= 0:
            raise ConfigError("open-loop rate must be positive")
        if self.outstanding < 1:
            raise ConfigError("outstanding must be >= 1")
        if self.think_s < 0 or self.retry_backoff_s < 0:
            raise ConfigError("think/backoff times cannot be negative")
        if self.arrival not in ARRIVAL_KINDS:
            raise ConfigError(
                f"unknown arrival process {self.arrival!r}; "
                f"choose from {ARRIVAL_KINDS}"
            )

    def arrivals(self) -> ArrivalProcess:
        if self.arrival == "bursty":
            return BurstyArrivals(
                self.rate, period=self.arrival_period, duty=self.arrival_duty
            )
        if self.arrival == "diurnal":
            return DiurnalArrivals(
                self.rate,
                period=self.arrival_period,
                amplitude=self.arrival_amplitude,
            )
        return PoissonArrivals(self.rate)


# --------------------------------------------------------------- stats


@dataclass
class ClientStats:
    """Client-observed outcomes of one run.

    ``latencies`` holds the end-to-end (submit → committed result) delay
    of every operation completing inside the measurement window; the
    aggregate getters are exact over those samples.
    """

    warmup: float = 0.0
    measure_until: float = math.inf
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    shed: int = 0
    retries: int = 0
    verified: int = 0
    verify_failures: int = 0
    measured_completed: int = 0
    latencies: List[float] = field(default_factory=list)

    def record_submit(self) -> None:
        self.submitted += 1

    def record_completion(self, submit_time: float, result_time: float) -> None:
        self.completed += 1
        if self.warmup <= result_time <= self.measure_until:
            self.measured_completed += 1
            self.latencies.append(result_time - submit_time)

    def e2e_tps(self) -> float:
        window = self.measure_until - self.warmup
        if not math.isfinite(window) or window <= 0:
            return 0.0
        return self.measured_completed / window

    def mean_latency(self) -> float:
        if not self.latencies:
            return math.nan
        return sum(self.latencies) / len(self.latencies)

    def quantile(self, q: float) -> float:
        return percentile(sorted(self.latencies), q)

    def summary(self) -> Dict[str, float]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "retries": self.retries,
            "verified": self.verified,
            "verify_failures": self.verify_failures,
            "e2e_tps": self.e2e_tps(),
            "e2e_mean_s": self.mean_latency(),
            "e2e_p50_s": self.quantile(0.50),
            "e2e_p99_s": self.quantile(0.99),
            "e2e_p999_s": self.quantile(0.999),
        }


# --------------------------------------------------------------- population


class _ClientState:
    """Mutable per-client bookkeeping (closed loop + verification)."""

    __slots__ = ("client_id", "name", "replica", "nonce", "expected", "inflight")

    def __init__(self, client_id: int, replica: SmrReplica) -> None:
        self.client_id = client_id
        self.name = f"client-{client_id}"
        self.replica = replica
        self.nonce = 0
        #: local model of the private keyspace: key -> expected value
        self.expected: Dict[str, str] = {}
        self.inflight = 0


class _Op:
    """One tracked operation: payload plus what the client expects back."""

    __slots__ = ("command", "submit_time", "verb", "key", "value", "expect")

    def __init__(self, command: Command, submit_time: float, verb: str,
                 key: str, value: Optional[str], expect: Optional[bytes]) -> None:
        self.command = command
        self.submit_time = submit_time
        self.verb = verb
        self.key = key
        self.value = value
        self.expect = expect


class ClientPopulation:
    """Drives an :class:`~repro.smr.replica.SmrCluster` with ``spec``.

    Call :meth:`install` before ``cluster.run``: it seeds the simulator
    with the first client events via ``sim.call_at``; everything after
    that self-schedules.  ``stats`` accumulates as the simulation runs.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        cluster,
        duration: float,
        warmup: float = 0.0,
    ) -> None:
        self.spec = spec
        self.cluster = cluster
        self.duration = duration
        self.rng = random.Random(spec.seed)
        self.stats = ClientStats(warmup=warmup, measure_until=duration)
        n = len(cluster.replicas)
        self.clients = [
            _ClientState(c, cluster.replicas[c % n]) for c in range(spec.clients)
        ]
        # Sequential (outstanding=1) closed-loop clients over private keys
        # can check every answer against their own model.
        self.verify = (
            spec.mode == "closed" and spec.outstanding == 1 and not spec.shared_keys
        )
        self.mix = OpMix(
            ZipfKeys(spec.keys, spec.zipf),
            weights=spec.mix,
            value_size=spec.value_size,
            private=not spec.shared_keys,
        )
        self._arrivals = spec.arrivals() if spec.mode == "open" else None

    # -- wiring ------------------------------------------------------------------

    def install(self) -> None:
        sim = self.cluster.sim
        if self.spec.mode == "open":
            gap = self._arrivals.next_gap(self.rng, sim.now)
            sim.call_at(sim.now + gap, self._on_arrival)
        else:
            for client in self.clients:
                for _ in range(self.spec.outstanding):
                    # Staggered starts avoid a synchronized thundering herd
                    # at t=0 (and keep the schedule seed-deterministic).
                    start = sim.now + self.rng.uniform(0.0, 0.05)
                    sim.call_at(start, self._starter(client))

    def _starter(self, client: _ClientState):
        def fire(sim) -> None:
            self._submit(client, sim)

        return fire

    # -- open loop ---------------------------------------------------------------

    def _on_arrival(self, sim) -> None:
        if sim.now >= self.duration:
            return
        client = self.clients[self.rng.randrange(len(self.clients))]
        self._submit(client, sim, retry_on_pushback=False)
        gap = self._arrivals.next_gap(self.rng, sim.now)
        sim.call_at(sim.now + gap, self._on_arrival)

    # -- op construction ---------------------------------------------------------

    def _build_op(self, client: _ClientState, now: float) -> _Op:
        mix = self.mix
        verb = mix.next_verb(self.rng)
        key = mix.key_for(client.client_id, self.rng)
        value: Optional[str] = None
        expect: Optional[bytes] = None
        current = client.expected.get(key)
        if verb == "SET":
            value = mix.value(self.rng)
            payload = f"SET {key} {value}"
            expect = b"OK"
        elif verb == "GET":
            payload = f"GET {key}"
            expect = b"NIL" if current is None else b"VAL " + current.encode()
        elif verb == "DEL":
            payload = f"DEL {key}"
            expect = b"NIL" if current is None else b"OK"
        else:  # CAS
            expected_str = current if current is not None else "absent"
            value = mix.value(self.rng)
            payload = f"CAS {key} {expected_str} {value}"
            expect = b"FAIL" if current is None else b"OK"
        client.nonce += 1
        command = Command.create(
            client=client.name, payload=payload.encode(), nonce=client.nonce
        )
        return _Op(command, now, verb, key, value, expect)

    def _apply_model(self, client: _ClientState, op: _Op, result: bytes) -> None:
        """Advance the client's local keyspace model after a completion."""
        if op.verb == "SET":
            client.expected[op.key] = op.value
        elif op.verb == "DEL":
            client.expected.pop(op.key, None)
        elif op.verb == "CAS" and result == b"OK":
            client.expected[op.key] = op.value

    # -- submission & completion -------------------------------------------------

    def _submit(
        self,
        client: _ClientState,
        sim,
        op: Optional[_Op] = None,
        retry_on_pushback: bool = True,
    ) -> None:
        now = sim.now
        if now >= self.duration:
            return
        if op is None:
            op = self._build_op(client, now)
            self.stats.record_submit()
        else:
            self.stats.retries += 1

        def waiter(command, result, commit_time) -> None:
            self._on_done(client, op, result, commit_time, sim)

        admitted = client.replica.submit_command(op.command, now=now, waiter=waiter)
        if admitted:
            client.inflight += 1
            return
        self.stats.rejected += 1
        if retry_on_pushback:
            # Closed loop must not deadlock on pushback: retry the same
            # command (same id — the exactly-once path) after a backoff.
            backoff = self.spec.retry_backoff_s * (0.5 + self.rng.random())
            sim.call_at(now + backoff, lambda s: self._submit(client, s, op=op))

    def _on_done(self, client: _ClientState, op: _Op, result, commit_time, sim) -> None:
        client.inflight -= 1
        if result is None:
            # Shed by admission control before ordering.
            self.stats.shed += 1
            if self.spec.mode == "closed":
                backoff = self.spec.retry_backoff_s * (0.5 + self.rng.random())
                target = max(sim.now, op.submit_time) + backoff
                if target < self.duration:
                    sim.call_at(target, lambda s: self._submit(client, s, op=op))
            return
        when = commit_time if commit_time is not None else sim.now
        self.stats.record_completion(op.submit_time, when)
        if self.verify:
            self.stats.verified += 1
            if op.expect is not None and result != op.expect:
                self.stats.verify_failures += 1
        self._apply_model(client, op, result)
        if self.spec.mode == "closed":
            next_at = when + self.spec.think_s
            if next_at < self.duration and client.inflight < self.spec.outstanding:
                sim.call_at(max(next_at, sim.now), self._starter(client))
