"""Tests for repro.codec.primitives: writer/reader round-trips and strictness."""

import pytest
from hypothesis import given, strategies as st

from repro.codec.primitives import CodecError, Reader, Writer


class TestRoundTrips:
    def test_byte(self):
        data = Writer().byte(0).byte(255).getvalue()
        r = Reader(data)
        assert (r.byte(), r.byte()) == (0, 255)
        r.expect_eof()

    def test_uvarint_boundaries(self):
        values = [0, 1, 127, 128, 16383, 16384, 2**32, 2**64 - 1]
        w = Writer()
        for v in values:
            w.uvarint(v)
        r = Reader(w.getvalue())
        assert [r.uvarint() for _ in values] == values

    def test_svarint_signs(self):
        values = [0, 1, -1, 63, -64, 2**40, -(2**40)]
        w = Writer()
        for v in values:
            w.svarint(v)
        r = Reader(w.getvalue())
        assert [r.svarint() for _ in values] == values

    def test_lp_bytes(self):
        data = Writer().lp_bytes(b"").lp_bytes(b"hello").getvalue()
        r = Reader(data)
        assert r.lp_bytes() == b""
        assert r.lp_bytes() == b"hello"

    def test_lp_str_unicode(self):
        data = Writer().lp_str("héllo ✓").getvalue()
        assert Reader(data).lp_str() == "héllo ✓"

    def test_bigint(self):
        values = [0, 1, 255, 256, 2**255 - 19, 2**512]
        w = Writer()
        for v in values:
            w.bigint(v)
        r = Reader(w.getvalue())
        assert [r.bigint() for _ in values] == values

    def test_double(self):
        values = [0.0, -1.5, 3.141592653589793, 1e308, 5e-324]
        w = Writer()
        for v in values:
            w.double(v)
        r = Reader(w.getvalue())
        assert [r.double() for _ in values] == values

    def test_boolean(self):
        data = Writer().boolean(True).boolean(False).getvalue()
        r = Reader(data)
        assert (r.boolean(), r.boolean()) == (True, False)

    def test_optional_bytes(self):
        data = Writer().optional_bytes(None).optional_bytes(b"x").getvalue()
        r = Reader(data)
        assert r.optional_bytes() is None
        assert r.optional_bytes() == b"x"


class TestStrictness:
    def test_truncated_raises(self):
        data = Writer().lp_bytes(b"hello").getvalue()
        with pytest.raises(CodecError, match="truncated"):
            Reader(data[:-2]).lp_bytes()

    def test_trailing_garbage_detected(self):
        r = Reader(b"\x00\xff")
        r.byte()
        with pytest.raises(CodecError, match="trailing"):
            r.expect_eof()

    def test_overlong_varint_rejected(self):
        with pytest.raises(CodecError, match="varint"):
            Reader(b"\xff" * 11).uvarint()

    def test_huge_length_prefix_rejected(self):
        data = Writer().uvarint(2**40).getvalue()
        with pytest.raises(CodecError, match="length"):
            Reader(data).lp_bytes()

    def test_invalid_boolean(self):
        with pytest.raises(CodecError):
            Reader(b"\x02").boolean()

    def test_invalid_optional_tag(self):
        with pytest.raises(CodecError):
            Reader(b"\x07").optional_bytes()

    def test_negative_writer_inputs(self):
        with pytest.raises(CodecError):
            Writer().uvarint(-1)
        with pytest.raises(CodecError):
            Writer().uvarint(2**64)
        with pytest.raises(CodecError):
            Writer().bigint(-1)
        with pytest.raises(CodecError):
            Writer().byte(300)


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_property_uvarint_roundtrip(value):
    assert Reader(Writer().uvarint(value).getvalue()).uvarint() == value


@given(st.integers(min_value=-(2**62), max_value=2**62))
def test_property_svarint_roundtrip(value):
    assert Reader(Writer().svarint(value).getvalue()).svarint() == value


@given(st.binary(max_size=512))
def test_property_lp_bytes_roundtrip(value):
    assert Reader(Writer().lp_bytes(value).getvalue()).lp_bytes() == value


@given(st.lists(st.binary(max_size=64), max_size=8))
def test_property_sequences_self_delimiting(chunks):
    """Concatenated encodings decode back to the same chunk list —
    no framing ambiguity."""
    w = Writer()
    for chunk in chunks:
        w.lp_bytes(chunk)
    r = Reader(w.getvalue())
    assert [r.lp_bytes() for _ in chunks] == chunks
    r.expect_eof()
