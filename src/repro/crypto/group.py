"""Schnorr group arithmetic over an embedded safe prime.

A *Schnorr group* is the order-``q`` subgroup of quadratic residues of
``Z_p^*`` where ``p = 2q + 1`` is a safe prime.  Every non-trivial element
generates the subgroup, discrete logs live in ``Z_q``, and membership is
cheap to test (for a safe prime the subgroup is exactly the quadratic
residues, so a Jacobi symbol decides it).  This single structure backs:

* Schnorr signatures (:mod:`repro.crypto.schnorr`),
* the threshold PRF / Global Perfect Coin (:mod:`repro.crypto.threshold`),
* Chaum-Pedersen DLEQ proofs for coin-share verification.

The group is a value object; all operations take plain ints and return
plain ints so there is no per-element wrapper overhead in hot loops.

Hot-path machinery
------------------
Exponentiation dominates every protocol run (each replica verifies Θ(n²)
echo-class messages per round), so the group keeps two per-instance caches,
both derived purely from immutable inputs:

* **Fixed-base tables** — :meth:`register_fixed_base` marks a base (the
  generator, a replica public key, a coin verification key) as hot; the
  first exponentiation with it builds an 8-bit comb table, after which
  ``base^e`` costs ~32 modular multiplications instead of a full modexp.
  Table construction is lazy, so registering keys for a replica set that
  never verifies costs nothing, and the number of *built* tables is
  capped (further bases silently fall back to ``pow``) so large-n sweeps
  cannot pin unbounded memory on the process-wide singleton group.
* **Membership memo** — registered bases are membership-checked once at
  registration; :meth:`is_member` answers for them from a set lookup, and
  for unregistered elements via a binary Jacobi symbol (no modexp at all).

Neither cache participates in equality or hashing — two groups with the
same ``(p, q, g)`` compare equal regardless of what has been registered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import CryptoError
from .hashing import hash_to_int
from .primes import SAFE_PRIMES, SafePrime

#: Comb window width in bits.  8 divides the scalar into byte-sized digits,
#: so exponent decomposition is plain shifts/masks; each base's table holds
#: ``ceil(qbits / 8)`` rows of 255 odd entries (~0.5 MiB for 256-bit p).
_WINDOW_BITS = 8

#: Cap on lazily *built* comb tables per group instance.  Registration is
#: unbounded (it only memoizes membership), but each built table pins
#: ~0.5 MiB for the life of the group — and ``default_group`` is a
#: process-wide singleton, so a large-n sweep (n=61 registers ~120 keys)
#: could otherwise accumulate tens of MiB that are never evicted.  Bases
#: past the cap fall back to ``pow`` — a speed trade, never correctness;
#: lazy construction means the cap is spent on the bases actually used.
_MAX_BUILT_TABLES = 96


class _FixedBaseTable:
    """Comb precomputation for one base: ``rows[j][d] = base^(d << 8j)``."""

    __slots__ = ("rows",)

    def __init__(self, base: int, p: int, qbits: int) -> None:
        windows = (qbits + _WINDOW_BITS - 1) // _WINDOW_BITS
        rows: List[List[int]] = []
        b = base
        for _ in range(windows):
            row = [1] * 256
            acc = 1
            for d in range(1, 256):
                acc = acc * b % p
                row[d] = acc
            rows.append(row)
            # Advance the window base: b^(256) = b^255 * b.
            b = acc * b % p
        self.rows = rows

    def pow(self, e: int, p: int) -> int:
        """``base^e mod p`` for ``0 <= e < 2^(8 * len(rows))``."""
        result = 1
        for row in self.rows:
            d = e & 0xFF
            if d:
                result = result * row[d] % p
            e >>= 8
            if not e:
                break
        return result


def jacobi_symbol(a: int, n: int) -> int:
    """The Jacobi symbol ``(a/n)`` for odd ``n > 0`` (binary algorithm).

    Sits on the batch-verification precheck (one call per commitment), so
    the loop is tuned: all trailing zeros are stripped in one shift
    (``a & -a`` isolates the lowest set bit) — the factor-of-2 sign only
    depends on the *parity* of the zero count — and the reciprocity swap
    and reduction are fused into one statement.
    """
    a %= n
    result = 1
    while a:
        tz = (a & -a).bit_length() - 1
        if tz:
            a >>= tz
            if tz & 1 and n & 7 in (3, 5):
                result = -result
        if a & 3 == 3 and n & 3 == 3:
            result = -result
        a, n = n % a, a
    return result if n == 1 else 0


@dataclass(frozen=True)
class SchnorrGroup:
    """The quadratic-residue subgroup of ``Z_p^*`` for a safe prime ``p``."""

    p: int
    q: int
    g: int
    # Hot-path caches; excluded from equality/hash/repr (pure derivations of
    # the immutable (p, q, g) identity plus registered bases).
    _tables: Dict[int, Optional[_FixedBaseTable]] = field(
        default_factory=dict, compare=False, repr=False
    )
    _members: Set[int] = field(default_factory=set, compare=False, repr=False)
    # Bases whose comb table has actually been built; bounds memory at
    # ``_MAX_BUILT_TABLES`` tables regardless of how many are registered.
    _built: Set[int] = field(default_factory=set, compare=False, repr=False)

    def __post_init__(self) -> None:
        # The generator is hot in every scheme (signing, verification,
        # DLEQ); always treat it as registered.
        self._tables.setdefault(self.g, None)
        self._members.add(self.g)

    @classmethod
    def from_safe_prime(cls, sp: SafePrime) -> "SchnorrGroup":
        return cls(p=sp.p, q=sp.q, g=sp.g)

    # The group is a value object whose only mutable state is the
    # comb-table / membership caches — pure, positive-only derivations of
    # ``(p, q, g)``.  ``default_group`` hands out a process-wide singleton,
    # and simulator snapshots must preserve that: copying the group would
    # both fork tens of MiB of comb tables per branch and silently break
    # the "one group per (p, q, g)" identity the caches rely on.
    def __copy__(self) -> "SchnorrGroup":
        return self

    def __deepcopy__(self, memo) -> "SchnorrGroup":
        return self

    # -- fixed-base registration --------------------------------------------

    def register_fixed_base(self, base: int) -> None:
        """Mark ``base`` as hot: memoize its membership and earmark a comb
        table (built lazily on first use, so registration is ~free).

        Raises :class:`CryptoError` if ``base`` is not a subgroup member —
        a registered base is trusted by the fast paths, so the check cannot
        be skipped.
        """
        if base in self._tables:
            return
        self.ensure_member(base, "fixed base")
        self._members.add(base)
        self._tables[base] = None

    def has_fixed_base(self, base: int) -> bool:
        """Whether ``base`` has been registered for precomputation."""
        return base in self._tables

    def _table_for(self, base: int) -> Optional[_FixedBaseTable]:
        table = self._tables.get(base)
        if table is None and base in self._tables:
            if len(self._built) >= _MAX_BUILT_TABLES:
                return None  # over budget: plain pow for this base
            table = self._tables[base] = _FixedBaseTable(
                base, self.p, self.q.bit_length()
            )
            self._built.add(base)
        return table

    # -- element operations -------------------------------------------------

    def exp(self, base: int, e: int) -> int:
        """``base ** e mod p`` with the exponent reduced mod ``q``.

        Negative exponents are welcome — reduction maps them into
        ``[0, q)``, which is how verifiers compute ``x^{-c}`` without a
        modular inversion.
        """
        return self.exp_reduced(base, e % self.q)

    def exp_reduced(self, base: int, e: int) -> int:
        """``base ** e mod p`` for an exponent already in ``[0, q)``.

        The fast path for call sites whose scalars are born reduced
        (challenges, response scalars, Lagrange coefficients) — skipping
        the redundant ``% q`` of :meth:`exp`.  Uses the comb table when
        ``base`` is registered.
        """
        table = self._table_for(base)
        if table is not None:
            return table.pow(e, self.p)
        return pow(base, e, self.p)

    def mul(self, a: int, b: int) -> int:
        """Group multiplication."""
        return a * b % self.p

    def inv(self, a: int) -> int:
        """Multiplicative inverse in ``Z_p^*``."""
        return pow(a, -1, self.p)

    def multi_exp(self, pairs: Sequence[Tuple[int, int]]) -> int:
        """``Π base_i^{e_i} mod p`` in one interleaved pass (Shamir's trick).

        Exponents are reduced mod ``q``.  Each base gets a small 4-bit
        window table, then a single square-and-multiply scan shares all
        the squarings across every exponent simultaneously — one pass
        instead of ``k`` full exponentiations plus products.  Intended
        for small ``k`` (verification equations use k=2); beats ``k``
        separate modexps because the squaring chain, the dominant cost,
        is paid once.
        """
        p, q = self.p, self.q
        if not pairs:
            return 1
        tables: List[List[int]] = []
        hex_strings: List[str] = []
        ndigits = 1
        for base, e in pairs:
            base %= p
            row = [1] * 16
            acc = 1
            for d in range(1, 16):
                acc = acc * base % p
                row[d] = acc
            tables.append(row)
            # Hex digits give the 4-bit windows most-significant first
            # without per-position big-int shifts.
            h = "%x" % (e % q)
            hex_strings.append(h)
            if len(h) > ndigits:
                ndigits = len(h)
        # Scan only as wide as the largest exponent — small-exponent calls
        # (batch verification's 64-bit coefficients) pay 16 positions, not
        # the full scalar width.
        digit_strings = [h.rjust(ndigits, "0") for h in hex_strings]
        result = 1
        for pos in range(ndigits):
            if result != 1:  # skip the leading-zero squaring chain
                result = result * result % p
                result = result * result % p
                result = result * result % p
                result = result * result % p
            for row, digits in zip(tables, digit_strings):
                d = digits[pos]
                if d != "0":
                    result = result * row[int(d, 16)] % p
        return result

    def is_member(self, x: int) -> bool:
        """Subgroup membership test.

        For a safe prime the order-``q`` subgroup is exactly the quadratic
        residues, so a Jacobi symbol (no modexp) decides membership.
        Registered bases answer from the memo set without any arithmetic.
        """
        if x in self._members:
            return True
        return 0 < x < self.p and jacobi_symbol(x, self.p) == 1

    # -- scalars and encodings ----------------------------------------------

    def random_scalar(self, rng) -> int:
        """Uniform exponent in ``[1, q)`` from a ``random.Random``-like rng."""
        return rng.randrange(1, self.q)

    def scalar_from_hash(self, *fields) -> int:
        """Map arbitrary fields to a nonzero scalar in ``[1, q)``.

        Used for Fiat-Shamir challenges and deterministic nonces.  The
        modular reduction bias is negligible for q near a power of two and
        irrelevant at simulation-grade security.
        """
        return hash_to_int("scalar", *fields) % (self.q - 1) + 1

    def hash_to_group(self, *fields) -> int:
        """Map arbitrary fields to a subgroup element (square of a hash).

        Squaring lands the value in the quadratic-residue subgroup; a zero
        preimage (probability ~2^-256) is remapped by re-hashing.
        """
        counter = 0
        while True:
            x = hash_to_int("h2g", counter, *fields) % self.p
            if x not in (0, 1, self.p - 1):
                return x * x % self.p
            counter += 1

    def element_to_bytes(self, x: int) -> bytes:
        """Fixed-width big-endian encoding of a group element."""
        width = (self.p.bit_length() + 7) // 8
        return x.to_bytes(width, "big")

    def ensure_member(self, x: int, what: str = "element") -> int:
        """Return ``x`` if it is a subgroup member, else raise."""
        if not self.is_member(x):
            raise CryptoError(f"{what} {x!r} is not a member of the Schnorr group")
        return x

    def register_fixed_bases(self, bases: Iterable[int]) -> None:
        """Bulk :meth:`register_fixed_base` convenience."""
        for base in bases:
            self.register_fixed_base(base)


_DEFAULT_CACHE: dict[int, SchnorrGroup] = {}


def default_group(bits: int = 256) -> SchnorrGroup:
    """The library-wide default group for the given modulus size.

    A process-wide singleton per modulus size — which is what lets every
    replica of a deterministic deal share one set of fixed-base tables.
    """
    if bits not in _DEFAULT_CACHE:
        try:
            sp = SAFE_PRIMES[bits]
        except KeyError:
            raise CryptoError(
                f"no embedded safe prime of {bits} bits; available: "
                f"{sorted(SAFE_PRIMES)}"
            ) from None
        _DEFAULT_CACHE[bits] = SchnorrGroup.from_safe_prime(sp)
    return _DEFAULT_CACHE[bits]
