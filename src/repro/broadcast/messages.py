"""Wire messages exchanged by the broadcast layer and the protocols.

Each message is a frozen dataclass implementing
:meth:`~repro.net.interfaces.Message.wire_size`.  Authenticity of the
*sender* comes from the channel (the runtimes hand handlers a trusted
``src``, like authenticated TCP in the Golang prototype); *transferable*
authenticity — anything forwarded or used as a proof, i.e. blocks — is
covered by the author signature carried inside :class:`repro.dag.block.Block`.
Echo/ready messages still pay signature bytes in the size model to match
what a real deployment would send.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..crypto.coin import CoinShare
from ..crypto.hashing import Digest
from ..dag.block import Block
from ..net import sizes
from ..net.interfaces import Message, SizedMessage

#: Precomputed constant sizes — echo-class messages all cost the same
#: bytes, and the simulator asks per delivery (Θ(n²) per round).
_VOTE_SIZE = (
    sizes.HEADER_OVERHEAD
    + 2 * sizes.INT_SIZE
    + sizes.DIGEST_SIZE
    + sizes.SIGNATURE_SIZE
)
_COIN_SHARE_MSG_SIZE = sizes.HEADER_OVERHEAD + sizes.COIN_SHARE_SIZE
_COIN_REQ_SIZE = sizes.HEADER_OVERHEAD + sizes.INT_SIZE


@dataclass(frozen=True)
class BlockVal(SizedMessage):
    """First step of every broadcast: the proposer ships the block body.

    Serves as PBC's only message, CBC's VAL step, and RBC's initial send.
    """

    block: Block

    def _compute_wire_size(self) -> int:
        return sizes.HEADER_OVERHEAD + self.block.wire_size()


@dataclass(frozen=True)
class BlockEcho(Message):
    """CBC/RBC ECHO: endorse one block digest for a slot instance."""

    round: int
    author: int
    digest: Digest

    def wire_size(self) -> int:
        return _VOTE_SIZE


@dataclass(frozen=True)
class BlockReady(Message):
    """RBC READY: third-step amplification vote (Bracha)."""

    round: int
    author: int
    digest: Digest

    def wire_size(self) -> int:
        return _VOTE_SIZE


#: Hard bound on digests a responder will honor per RetrievalRequest.
#: Requests beyond it are clamped (and counted) at the responder, and the
#: wire codec refuses to decode messages claiming more — a Byzantine peer
#: cannot make an honest replica enumerate an unbounded digest list.
MAX_REQUEST_DIGESTS = 128


@dataclass(frozen=True)
class RetrievalRequest(Message):
    """§IV-A block retrieval: ask a peer for missing block bodies.

    Honest senders keep ``digests`` small (one incomplete block's missing
    parents); responders clamp anything above :data:`MAX_REQUEST_DIGESTS`.
    """

    digests: Tuple[Digest, ...]

    def wire_size(self) -> int:
        # Cheap closed form; not worth a memo slot.
        return sizes.HEADER_OVERHEAD + len(self.digests) * sizes.DIGEST_SIZE


@dataclass(frozen=True)
class RetrievalResponse(SizedMessage):
    """§IV-A block retrieval: the peer ships requested blocks it has.

    Responders chunk large answers — no single response carries more than
    ``max_response_blocks`` bodies (``SystemConfig.max_response_blocks``),
    bounding the burst a response injects into the bandwidth model and
    what a Byzantine "helper" can shove at a requester in one message.
    Requesters only accept bodies whose *recomputed* digest matches an
    open request (digest pinning; see ``RetrievalManager.on_response``).
    """

    blocks: Tuple[Block, ...]

    def _compute_wire_size(self) -> int:
        return sizes.HEADER_OVERHEAD + sum(b.wire_size() for b in self.blocks)


@dataclass(frozen=True)
class CoinShareMsg(Message):
    """A GPC partial for a wave, broadcast with the wave's last-round block.

    The paper embeds the partial threshold signature *inside* the block; we
    ship it as a companion message sent at the same instant — identical
    timing and (because blocks already budget ``COIN_SHARE_SIZE`` bytes) no
    bandwidth is double-charged beyond this small header.
    """

    share: CoinShare

    def wire_size(self) -> int:
        return _COIN_SHARE_MSG_SIZE

    @property
    def wave(self) -> int:
        return self.share.wave


@dataclass(frozen=True)
class CoinShareRequest(Message):
    """Ask peers to (re)send their GPC share for a wave.

    Shares normally ride with each wave's last-round blocks; a replica that
    was partitioned or crashed-slow misses them, and without the coin it
    can never place the wave's leader — its commit cascade would defer
    forever.  Peers answer with a fresh :class:`CoinShareMsg` (shares are
    deterministic per (replica, wave), so "resending" is recomputing).
    This plays the role block retrieval plays for share recovery in the
    paper's embedded-share design (see DESIGN.md §3).
    """

    wave: int

    def wire_size(self) -> int:
        return _COIN_REQ_SIZE


@dataclass(frozen=True)
class ContradictionNotice(SizedMessage):
    """LightDAG2 Rule 2: ``p_x`` tells proposer ``p_y`` that ``p_y``'s CBC
    block references a block contradicting one ``p_x`` already voted for.

    Carries the full conflicting block ``C⁰`` so ``p_y`` can assemble the
    Byzantine proof (``C⁰`` plus its own referenced ``C¹``).
    """

    #: Digest of the CBC block being objected to.
    objected: Digest
    #: The previously-voted-for conflicting block (C⁰ in Fig. 9).
    conflicting_block: Block

    def _compute_wire_size(self) -> int:
        return (
            sizes.HEADER_OVERHEAD
            + sizes.DIGEST_SIZE
            + self.conflicting_block.wire_size()
        )


@dataclass(frozen=True)
class ByzantineProofMsg(SizedMessage):
    """LightDAG2 Rule 3: forward a Byzantine proof to a CBC proposer whose
    block still references the culprit's blocks."""

    culprit: int
    block_a: Block
    block_b: Block
    #: Digest of the CBC block whose vote is being withheld (for context).
    objected: Digest

    def _compute_wire_size(self) -> int:
        return (
            sizes.HEADER_OVERHEAD
            + sizes.INT_SIZE
            + sizes.DIGEST_SIZE
            + self.block_a.wire_size()
            + self.block_b.wire_size()
        )
