"""Tests for repro.dag.block: block identity, payload modeling, sizes."""

import pytest

from repro.config import SystemConfig
from repro.crypto.backend import HmacBackend
from repro.dag.block import (
    EMPTY_BATCH,
    GENESIS_ROUND,
    TxBatch,
    genesis_block,
    make_block,
)


class TestTxBatch:
    def test_from_times_exact_sum(self):
        times = [1.0, 2.0, 3.0]
        tb = TxBatch.from_times(times, tx_size=128)
        assert tb.count == 3
        assert tb.submit_time_sum == 6.0
        assert tb.mean_submit_time() == 2.0

    def test_from_times_empty(self):
        tb = TxBatch.from_times([], tx_size=128)
        assert tb.count == 0
        assert tb.mean_submit_time() == 0.0

    def test_sample_capped(self):
        tb = TxBatch.from_times([float(i) for i in range(1000)], tx_size=1)
        assert len(tb.sample) <= 16

    def test_byte_size(self):
        tb = TxBatch(count=10, tx_size=128)
        assert tb.byte_size == 1280

    def test_items_default_empty(self):
        assert TxBatch(count=1, tx_size=8).items == ()


class TestBlockIdentity:
    def test_digest_deterministic(self):
        a = make_block(1, 0, [])
        b = make_block(1, 0, [])
        assert a.digest == b.digest

    def test_round_changes_digest(self):
        assert make_block(1, 0, []).digest != make_block(2, 0, []).digest

    def test_author_changes_digest(self):
        assert make_block(1, 0, []).digest != make_block(1, 1, []).digest

    def test_parents_change_digest(self):
        g = genesis_block(0)
        assert make_block(1, 0, []).digest != make_block(1, 0, [g.digest]).digest

    def test_parent_order_changes_digest(self):
        g0, g1 = genesis_block(0), genesis_block(1)
        a = make_block(1, 0, [g0.digest, g1.digest])
        b = make_block(1, 0, [g1.digest, g0.digest])
        assert a.digest != b.digest

    def test_payload_count_changes_digest(self):
        a = make_block(1, 0, [], payload=TxBatch(1, 128))
        b = make_block(1, 0, [], payload=TxBatch(2, 128))
        assert a.digest != b.digest

    def test_payload_timing_changes_digest(self):
        a = make_block(1, 0, [], payload=TxBatch(1, 128, submit_time_sum=1.0))
        b = make_block(1, 0, [], payload=TxBatch(1, 128, submit_time_sum=1.0 + 1e-9))
        assert a.digest != b.digest

    def test_payload_items_change_digest(self):
        a = make_block(1, 0, [], payload=TxBatch(1, 8, items=(b"x",)))
        b = make_block(1, 0, [], payload=TxBatch(1, 8, items=(b"y",)))
        assert a.digest != b.digest

    def test_repropose_index_changes_digest(self):
        a = make_block(1, 0, [])
        b = make_block(1, 0, [], repropose_index=1)
        assert a.digest != b.digest
        assert a.slot == b.slot  # same slot, different block — equivocation shape

    def test_determinations_change_digest(self):
        a = make_block(4, 0, [])
        b = make_block(4, 0, [], determinations=((3, 1, b"\x00" * 32),))
        assert a.digest != b.digest


class TestSigning:
    def test_signed_block_verifies(self):
        system = SystemConfig(n=4)
        backend = HmacBackend(2, system)
        block = make_block(1, 2, [], signer=backend)
        assert backend.verify(2, block.digest, block.signature)

    def test_unsigned_block_has_none(self):
        assert make_block(1, 0, []).signature is None


class TestGenesis:
    def test_round_zero(self):
        assert genesis_block(0).round == GENESIS_ROUND
        assert genesis_block(0).is_genesis

    def test_identical_across_calls(self):
        assert genesis_block(1).digest == genesis_block(1).digest

    def test_distinct_per_author(self):
        assert genesis_block(0).digest != genesis_block(1).digest

    def test_no_parents(self):
        assert genesis_block(3).parents == ()


class TestWireSize:
    def test_grows_with_parents(self):
        g = [genesis_block(i).digest for i in range(4)]
        small = make_block(1, 0, g[:2])
        large = make_block(1, 0, g)
        assert large.wire_size() == small.wire_size() + 2 * 32

    def test_grows_with_payload(self):
        a = make_block(1, 0, [], payload=TxBatch(10, 128))
        b = make_block(1, 0, [], payload=TxBatch(20, 128))
        assert b.wire_size() - a.wire_size() == 10 * 128

    def test_empty_batch_constant(self):
        assert EMPTY_BATCH.count == 0
        assert EMPTY_BATCH.byte_size == 0

    def test_slot_property(self):
        assert make_block(5, 2, []).slot == (5, 2)
