"""Bullshark baseline ([9], Spiegelman et al., CCS 2022) — the
partially-synchronous steady-state path.

Bullshark's defining feature is **predefined** leaders: every second RBC
round has a leader slot known in advance (no coin needed on the fast
path), and a leader block commits directly when ``2f + 1`` next-round
blocks reference it — 2 RBC rounds = 6 steps best case (Table I).

Two Bullshark-specific mechanisms matter for the evaluation:

* **Leader wait** — when a replica has an ``n − f`` quorum for the next
  round but the predefined leader's block is still missing, it waits up to
  ``leader_timeout`` before proposing, so that honest proposals reference
  the leader whenever the network cooperates.  This is the optimistic path
  the Fig. 15 adversary attacks: delaying just the leader's block forces
  every replica to burn the timeout *and* still miss the commit, which is
  why the paper finds "BullShark delivers the poorest performance" under
  attack ("the prolonged switch from the optimistic path to the
  pessimistic path").
* **Cascade fallback** — missed leaders commit indirectly through later
  committed leaders (the pessimistic path's effect, which is what bounds
  the damage; Table I's worst-case 30 steps reflects the full fallback
  wave structure we do not replicate step-for-step).

We model a wave as the 2-round leader/vote unit; leaders are derived from
the seeded sequence ``H(seed, wave) mod n`` (fixed before execution —
"predefined" — hence visible to the adversary, unlike a GPC output).
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from typing import Set

from ..broadcast.rbc import RbcManager
from ..crypto.hashing import Digest, hash_to_int
from ..dag.block import Block
from ..core.base import BaseDagNode

#: Timer tag for the optimistic leader wait.
LEADER_WAIT_TAG = "bullshark-leader-wait"


class BullsharkNode(BaseDagNode):
    """One Bullshark replica (steady-state path)."""

    WAVE_LENGTH = 2
    WAVE_OVERLAP = False
    SUPPORT_DEPTH = 1
    STRICT_STORE = True

    #: Base seconds to wait for the predefined leader before advancing.
    leader_timeout = 0.4

    #: Cap on the adaptive backoff exponent (timeout ≤ base · 2^cap).
    max_backoff_exponent = 6

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._waived_rounds: Set[int] = set()
        self._wait_armed: Set[int] = set()
        # Adaptive timeout (partial synchrony): each wave whose leader
        # missed the window doubles the wait; each leader that made it
        # decays it.  This is what eventually outwaits a fixed-delay
        # leader-delay adversary — the "prolonged switch from the
        # optimistic path to the pessimistic path" costs the doubling
        # ramp, after which commits resume at adversary-delay latency.
        self._timeout_misses = 0

    @property
    def current_leader_timeout(self) -> float:
        exponent = min(self._timeout_misses, self.max_backoff_exponent)
        return self.leader_timeout * (2 ** exponent)

    def _make_managers(self) -> None:
        self.rbc = RbcManager(
            self.net,
            quorum=self.system.quorum,
            amplify_threshold=self.system.validity_quorum,
            on_deliver=self._on_deliver,
            obs=self.obs,
        )

    def _manager_for_round(self, round_: int) -> RbcManager:
        return self.rbc

    def _broadcast_managers(self) -> tuple:
        return (self.rbc,)

    def _commit_threshold_value(self) -> int:
        return 2 * self.system.f + 1

    def _participate(self, block: Block, src: int) -> None:
        self.rbc.echo(block)

    def _holders_of(self, digest: Digest) -> AbstractSet:
        return self.rbc.echoers_of(digest)

    # ---------------------------------------------------- predefined leaders

    def predefined_leader(self, wave_num: int) -> int:
        """The leader slot of a wave, fixed before execution."""
        return hash_to_int("bullshark-leader", self.system.seed, wave_num) % self.system.n

    def _ensure_leaders_through(self, round_: int) -> None:
        """Populate ``revealed_leaders`` for every wave starting at or
        before ``round_`` (predefinition = instantly 'revealed')."""
        wave_num = 1
        while self.wave.first_round(wave_num) <= round_:
            if wave_num not in self.revealed_leaders:
                self.revealed_leaders[wave_num] = self.predefined_leader(wave_num)
            wave_num += 1

    def _broadcast_coin_shares(self, round_: int) -> None:
        """No coin on the steady-state path — leaders are predefined."""

    def _coin_sync_check(self) -> None:
        """Predefined leaders need no share recovery — just ensure the
        local table covers every round blocks have reached."""
        self._ensure_leaders_through(self.store.highest_round() + 1)

    def _recheck_commits_for(self, block: Block) -> None:
        self._ensure_leaders_through(block.round + 1)
        super()._recheck_commits_for(block)

    # ------------------------------------------------------- optimistic wait

    def _can_propose_extra(self, round_: int) -> bool:
        """Hold a vote-round proposal until the leader block arrives or the
        optimistic timeout burns off."""
        self._ensure_leaders_through(round_)
        wave_num = self.wave.wave_of_last_round(round_)
        if wave_num is None:
            return True  # proposing a leader round needs no wait
        leader_round = self.wave.first_round(wave_num)
        leader = self.revealed_leaders[wave_num]
        if self.store.block_in_slot(leader_round, leader) is not None:
            if round_ in self._wait_armed and round_ not in self._waived_rounds:
                # Leader made it within the window: decay the backoff.
                self._timeout_misses = max(0, self._timeout_misses - 1)
                self._waived_rounds.add(round_)  # timer already burned
            return True
        if round_ in self._waived_rounds:
            return True
        if round_ not in self._wait_armed:
            self._wait_armed.add(round_)
            self.net.set_timer(self.current_leader_timeout, LEADER_WAIT_TAG, round_)
        return False

    def on_timer(self, tag: str, data=None) -> None:
        if tag == LEADER_WAIT_TAG:
            if data not in self._waived_rounds:
                # The leader missed the window: double the next wait.
                self._waived_rounds.add(data)
                self._timeout_misses += 1
            self._try_advance()
        else:
            super().on_timer(tag, data)
