"""Micro-benchmarks: the cryptographic substrate.

Not a paper figure — these quantify the per-operation costs behind the
crypto-backend ablation (DESIGN.md §5.5) and justify the default choice of
the HMAC backend for large simulator sweeps.
"""

import random

import pytest

from repro.config import SystemConfig
from repro.crypto.backend import HmacBackend, NullBackend, SchnorrBackend
from repro.crypto.coin import ThresholdCoin
from repro.crypto.group import default_group
from repro.crypto.hashing import hash_fields
from repro.crypto.keys import TrustedDealer
from repro.crypto.shamir import recover_secret, split_secret

SYSTEM = SystemConfig(n=4, crypto="schnorr", seed=0)
CHAINS = TrustedDealer(SYSTEM).deal()
MSG = hash_fields("benchmark-message")


class TestSigningBackends:
    def test_schnorr_sign(self, benchmark):
        backend = SchnorrBackend(CHAINS[0])
        benchmark(backend.sign, MSG)

    def test_schnorr_verify(self, benchmark):
        # Steady-state: repeated claims hit the verify-once memo.
        backend = SchnorrBackend(CHAINS[0])
        sig = backend.sign(MSG)
        assert benchmark(backend.verify, 0, MSG, sig)

    def test_schnorr_verify_cold(self, benchmark):
        # The un-memoized equation check (first sight of a signature).
        from repro.crypto.group import default_group
        from repro.crypto.schnorr import schnorr_verify

        group = default_group(256)
        keypair = CHAINS[0].keypair
        sig = SchnorrBackend(CHAINS[0]).sign(MSG)
        assert benchmark(schnorr_verify, group, keypair.pk, MSG, sig)

    def test_hmac_sign(self, benchmark):
        backend = HmacBackend(0, SYSTEM)
        benchmark(backend.sign, MSG)

    def test_hmac_verify(self, benchmark):
        backend = HmacBackend(0, SYSTEM)
        sig = backend.sign(MSG)
        assert benchmark(backend.verify, 0, MSG, sig)

    def test_null_sign(self, benchmark):
        benchmark(NullBackend().sign, MSG)


class TestBatchVerification:
    """The intake hot path: n-1 echo-class signatures per round slot."""

    def _echo_items(self, count=16):
        items = []
        for i in range(count):
            signer = i % len(CHAINS)
            digest = hash_fields("echo", i)
            sig = SchnorrBackend(CHAINS[signer]).sign(digest)
            items.append((signer, digest, sig))
        return items

    def test_schnorr_verify_batch16(self, benchmark):
        items = self._echo_items(16)

        def batch():
            # Fresh backend per run so the memo never short-circuits the
            # batch equation itself.
            return SchnorrBackend(CHAINS[0]).verify_batch(items)

        assert benchmark(batch)

    def test_schnorr_verify_one_by_one16(self, benchmark):
        items = self._echo_items(16)

        def sweep():
            backend = SchnorrBackend(CHAINS[0])
            return all(backend.verify(*item) for item in items)

        assert benchmark(sweep)

    def test_schnorr_verify_memo_hit(self, benchmark):
        backend = SchnorrBackend(CHAINS[0])
        sig = backend.sign(MSG)
        assert backend.verify(0, MSG, sig)  # populate the memo
        assert benchmark(backend.verify, 0, MSG, sig)


class TestCoin:
    def test_threshold_coin_share(self, benchmark):
        coin = ThresholdCoin(CHAINS[0])
        benchmark(coin.make_share, 1)

    def test_threshold_coin_verify_share(self, benchmark):
        coins = [ThresholdCoin(c) for c in CHAINS]
        share = coins[1].make_share(1)

        def verify_cold():
            coin = ThresholdCoin(CHAINS[0])  # fresh memo: full DLEQ check
            return coin.verify_share(share)

        assert benchmark(verify_cold)

    def test_threshold_verify_partial(self, benchmark):
        coins = [ThresholdCoin(c) for c in CHAINS]
        share = coins[1].make_share(1)
        message = coins[0]._coin_input(1)

        def verify_cold():
            return ThresholdCoin(CHAINS[0]).prf.verify_partial(
                message, share.payload
            )

        assert benchmark(verify_cold)

    def test_threshold_coin_reveal(self, benchmark):
        shares = [ThresholdCoin(c).make_share(1) for c in CHAINS]

        def reveal():
            coin = ThresholdCoin(CHAINS[0])
            out = None
            for share in shares:
                result = coin.add_share(share)
                out = result if result is not None else out
            return out

        assert benchmark(reveal) is not None


class TestPrimitives:
    def test_hash_fields(self, benchmark):
        benchmark(hash_fields, "block", 12, 3, (b"\x00" * 32,) * 4)

    def test_group_exp(self, benchmark):
        # The generator is always a registered fixed base: comb-table path.
        group = default_group(256)
        benchmark(group.exp, group.g, 0xDEADBEEF12345678)

    def test_group_exp_unregistered(self, benchmark):
        # Arbitrary base: falls back to CPython pow (the pre-table cost).
        group = default_group(256)
        base = pow(group.g, 31337, group.p)
        benchmark(group.exp, base, 0xDEADBEEF12345678)

    def test_group_multi_exp2(self, benchmark):
        # The DLEQ verification shape: g^s * h^(q-c) in one pass.
        group = default_group(256)
        h = pow(group.g, 31337, group.p)
        pairs = ((group.g, 0xDEADBEEF12345678), (h, group.q - 12345))
        benchmark(group.multi_exp, pairs)

    def test_shamir_split(self, benchmark):
        group = default_group(256)
        rng = random.Random(1)
        benchmark(split_secret, 12345, 5, 7, group.q, rng)

    def test_shamir_recover(self, benchmark):
        group = default_group(256)
        shares = split_secret(12345, 5, 7, group.q, random.Random(1))
        assert benchmark(recover_secret, shares[:5], group.q) == 12345
