"""TCP transport: protocol nodes over real sockets.

The closest this repository gets to the paper's deployed prototype: each
replica runs an asyncio TCP server, dials every peer, and exchanges
length-prefixed frames of :mod:`repro.codec`-encoded messages.  The same
:class:`~repro.net.interfaces.Node` state machines run unmodified.

Framing: each frame is ``uvarint(length) || body``; each connection is
authenticated-by-configuration (the dialer announces its replica id in a
hello frame — a stand-in for the TLS/channel authentication a production
deployment would use; transferable authenticity still comes from the
block signatures inside the frames).

Scope: single-host multi-port by default (the test suite binds
``127.0.0.1``), but nothing in the implementation assumes it — hand
:class:`TcpCluster` a peer table of remote addresses and it will dial
them.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..codec.messages import decode_message, encoded_wire_bytes
from ..codec.primitives import CodecError
from ..errors import NetworkError
from .interfaces import Message, NetworkAPI, Node, NodeFactory

#: Maximum frame size accepted from a peer (matches codec MAX_LENGTH).
MAX_FRAME = 64 * 1024 * 1024


def _encode_frame(body: bytes) -> bytes:
    length = len(body)
    out = bytearray()
    while True:
        chunk = length & 0x7F
        length >>= 7
        out.append(chunk | 0x80 if length else chunk)
        if not length:
            break
    return bytes(out) + body


def _frame_for(msg: Message) -> bytes:
    """Complete framed encoding of a message, memoized on the instance.

    A broadcast writes the identical frame to every peer connection;
    encoding *and* length-prefixing once per message (instead of once per
    recipient) is the transport half of the encode-once fan-out.  Frozen
    messages make the memo permanently valid.
    """
    try:
        cached = msg.__dict__.get("_wire_frame")
    except AttributeError:
        return _encode_frame(encoded_wire_bytes(msg))
    if cached is None:
        cached = _encode_frame(encoded_wire_bytes(msg))
        object.__setattr__(msg, "_wire_frame", cached)
    return cached


async def _read_frame(reader: asyncio.StreamReader) -> bytes:
    shift = 0
    length = 0
    while True:
        byte = await reader.readexactly(1)
        b = byte[0]
        length |= (b & 0x7F) << shift
        if not b & 0x80:
            break
        shift += 7
        if shift > 35:
            raise NetworkError("frame length varint too long")
    if length > MAX_FRAME:
        raise NetworkError(f"frame too large: {length}")
    return await reader.readexactly(length)


class _TcpNetworkAPI(NetworkAPI):
    """Per-node facade over the TCP cluster."""

    def __init__(self, cluster: "TcpCluster", node_id: int) -> None:
        self._cluster = cluster
        self._node_id = node_id

    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def n(self) -> int:
        return self._cluster.n

    def now(self) -> float:
        return self._cluster.now()

    def send(self, dst: int, msg: Message) -> None:
        self._cluster.post(self._node_id, dst, msg)

    def set_timer(self, delay: float, tag: str, data: Any = None) -> None:
        self._cluster.post_timer(self._node_id, delay, tag, data)


class TcpCluster:
    """A replica set wired through real TCP connections.

    Parameters
    ----------
    factories:
        One node factory per *local* replica.  In single-host mode (the
        default), all replicas are local.
    host:
        Bind/dial address (default loopback).
    base_port:
        Replica ``i`` listens on ``base_port + i``; 0 picks free ports.
    """

    #: Write-buffer size (bytes) past which a background drain is scheduled.
    DRAIN_THRESHOLD = 1 << 20

    def __init__(
        self,
        factories: Sequence[NodeFactory],
        host: str = "127.0.0.1",
        base_port: int = 0,
    ) -> None:
        self.n = len(factories)
        self.host = host
        self.base_port = base_port
        self.nodes: List[Node] = [
            factory(_TcpNetworkAPI(self, i)) for i, factory in enumerate(factories)
        ]
        self._servers: List[asyncio.AbstractServer] = []
        self._ports: List[int] = [0] * self.n
        self._writers: Dict[Tuple[int, int], asyncio.StreamWriter] = {}
        self._draining: set = set()
        self._inboxes: List[asyncio.Queue] = []
        self._tasks: List[asyncio.Task] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._start_time = 0.0
        self._running = False
        self.frames_sent = 0
        self.frames_received = 0
        self.decode_errors = 0

    # -- time / posting --------------------------------------------------------

    def now(self) -> float:
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._start_time

    def post(self, src: int, dst: int, msg: Message) -> None:
        if not self._running:
            raise NetworkError("cluster is not running")
        if dst == src:
            self._inboxes[dst].put_nowait(("msg", src, msg))
            return
        writer = self._writers.get((src, dst))
        if writer is None:
            raise NetworkError(f"no connection {src} -> {dst}")
        frame = _frame_for(msg)
        self.frames_sent += 1
        writer.write(frame)
        # Backpressure: sends are fire-and-forget (protocol handlers are
        # synchronous), so a long run under load could otherwise grow the
        # transport's write buffer without bound.  Once the buffer passes
        # the high-water mark, schedule a drain in the background.
        transport = writer.transport
        if (
            transport.get_write_buffer_size() > self.DRAIN_THRESHOLD
            and (src, dst) not in self._draining
        ):
            self._draining.add((src, dst))
            assert self._loop is not None
            task = self._loop.create_task(self._drain(src, dst, writer))
            self._tasks.append(task)

    async def _drain(self, src: int, dst: int, writer: asyncio.StreamWriter) -> None:
        try:
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            self._draining.discard((src, dst))

    def post_timer(self, node_id: int, delay: float, tag: str, data: Any) -> None:
        if not self._running:
            raise NetworkError("cluster is not running")
        assert self._loop is not None
        item = ("timer", tag, data)
        if delay <= 0:
            self._inboxes[node_id].put_nowait(item)
        else:
            self._loop.call_later(delay, self._inboxes[node_id].put_nowait, item)

    # -- connection management ---------------------------------------------------

    async def _serve_node(self, node_id: int) -> None:
        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
            try:
                hello = await _read_frame(reader)
                src = int.from_bytes(hello, "big")
                if not 0 <= src < self.n:
                    writer.close()
                    return
                while True:
                    frame = await _read_frame(reader)
                    try:
                        msg = decode_message(frame)
                    except CodecError:
                        self.decode_errors += 1
                        continue  # a malformed peer frame never kills us
                    self.frames_received += 1
                    self._inboxes[node_id].put_nowait(("msg", src, msg))
            except (asyncio.IncompleteReadError, ConnectionError):
                return

        server = await asyncio.start_server(
            handle, host=self.host,
            port=self.base_port + node_id if self.base_port else 0,
        )
        self._servers.append(server)
        self._ports[node_id] = server.sockets[0].getsockname()[1]

    async def _dial_all(self) -> None:
        for src in range(self.n):
            for dst in range(self.n):
                if src == dst:
                    continue
                reader, writer = await asyncio.open_connection(
                    self.host, self._ports[dst]
                )
                writer.write(_encode_frame(src.to_bytes(4, "big")))
                self._writers[(src, dst)] = writer

    async def _consume(self, node_id: int) -> None:
        node = self.nodes[node_id]
        inbox = self._inboxes[node_id]
        while True:
            item = await inbox.get()
            if item[0] == "msg":
                _, src, msg = item
                node.on_message(src, msg)
            else:
                _, tag, data = item
                node.on_timer(tag, data)

    # -- lifecycle ---------------------------------------------------------------

    async def run(self, duration: float) -> None:
        """Start servers, dial peers, run the nodes for ``duration`` s."""
        self._loop = asyncio.get_running_loop()
        self._inboxes = [asyncio.Queue() for _ in range(self.n)]
        for i in range(self.n):
            await self._serve_node(i)
        await self._dial_all()
        self._start_time = self._loop.time()
        self._running = True
        try:
            for node in self.nodes:
                node.on_start()
            self._tasks = [
                asyncio.create_task(self._consume(i)) for i in range(self.n)
            ]
            await asyncio.sleep(duration)
        finally:
            self._running = False
            for task in self._tasks:
                task.cancel()
            await asyncio.gather(*self._tasks, return_exceptions=True)
            for writer in self._writers.values():
                writer.close()
            for server in self._servers:
                server.close()
            await asyncio.gather(
                *(s.wait_closed() for s in self._servers), return_exceptions=True
            )
            self._writers.clear()
            self._servers.clear()


def run_tcp_cluster(
    factories: Sequence[NodeFactory], duration: float, host: str = "127.0.0.1"
) -> TcpCluster:
    """Blocking convenience wrapper: build a TCP cluster and run it."""
    cluster = TcpCluster(factories, host=host)
    asyncio.run(cluster.run(duration))
    return cluster
