"""LightDAG2 whole-system tests: equivocation end-to-end, exclusion, liveness."""

import pytest

from repro.adversary.byzantine import EquivocatingLightDag2Node
from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag2 import LightDag2Node
from repro.crypto.keys import TrustedDealer
from repro.dag.ledger import check_prefix_consistency
from repro.net.latency import FixedLatency, UniformLatency
from repro.net.simulator import Simulation


def build_sim(n=4, byzantine=None, latency=None, seed=1, crypto="hmac", batch=10):
    byzantine = byzantine or {}
    system = SystemConfig(n=n, crypto=crypto, seed=seed)
    protocol = ProtocolConfig(batch_size=batch)
    chains = TrustedDealer(
        system, coin_threshold=protocol.resolve_coin_threshold(system)
    ).deal()

    def factory(i):
        if i in byzantine:
            start = byzantine[i]
            return lambda net: EquivocatingLightDag2Node(
                net, system, protocol, chains[i], start_wave=start
            )
        return lambda net: LightDag2Node(net, system, protocol, chains[i])

    return Simulation(
        [factory(i) for i in range(n)],
        latency_model=latency or UniformLatency(0.02, 0.08),
        seed=seed,
    )


def honest(sim, byzantine):
    return [node for i, node in enumerate(sim.nodes) if i not in byzantine]


class TestHonestRuns:
    def test_progress_and_safety(self):
        sim = build_sim(latency=FixedLatency(0.05))
        sim.run(until=3.0)
        check_prefix_consistency([n.ledger for n in sim.nodes])
        assert all(len(n.ledger) > 20 for n in sim.nodes)

    def test_no_reproposals_without_byzantine(self):
        sim = build_sim(latency=FixedLatency(0.05))
        sim.run(until=3.0)
        assert all(n.reproposals == 0 for n in sim.nodes)
        assert all(n.contradictions_sent == 0 for n in sim.nodes)
        assert all(not n.blacklist for n in sim.nodes)

    def test_schnorr_end_to_end(self):
        sim = build_sim(latency=FixedLatency(0.05), crypto="schnorr")
        sim.run(until=1.5)
        check_prefix_consistency([n.ledger for n in sim.nodes])
        assert all(len(n.ledger) > 0 for n in sim.nodes)

    def test_faster_than_three_steps_per_round(self):
        """A LightDAG2 wave is 4 steps for 3 rounds — rounds must tick
        faster than an all-CBC protocol's 2 steps per round."""
        sim = build_sim(latency=FixedLatency(0.05))
        sim.run(until=3.0)
        # 3.0s at 4 steps/wave × 0.05s = 15 waves = 45 rounds minimum.
        assert sim.nodes[0].current_round >= 40


class TestEquivocationEndToEnd:
    def test_single_equivocator_caught_and_excluded(self):
        byz = {3: 2}
        sim = build_sim(byzantine=byz, seed=7)
        sim.run(until=10.0)
        assert sim.nodes[3].caught
        for node in honest(sim, byz):
            assert node.blacklist == {3}
        check_prefix_consistency([n.ledger for n in honest(sim, byz)])

    def test_attack_stops_after_exposure(self):
        byz = {3: 2}
        sim = build_sim(byzantine=byz, seed=7)
        sim.run(until=10.0)
        # The self-limiting property: caught -> stops equivocating.
        assert sim.nodes[3].equivocations <= 3

    def test_liveness_resumes_after_exclusion(self):
        byz = {3: 2}
        sim = build_sim(byzantine=byz, seed=7)
        sim.run(until=10.0)
        node = honest(sim, byz)[0]
        # Commits continue well past the attack wave.
        assert max(node.committed_leader_waves) > 10

    def test_culprit_blocks_unreferenced_after_exposure(self):
        byz = {3: 2}
        sim = build_sim(byzantine=byz, seed=7)
        sim.run(until=10.0)
        node = honest(sim, byz)[0]
        exposure_round = None
        for record in node.ledger:
            if record.block.byz_proofs:
                exposure_round = record.block.round
                break
        assert exposure_round is not None
        late_culprit_blocks = [
            r for r in node.ledger
            if r.block.author == 3 and r.block.round > exposure_round + 3
        ]
        assert late_culprit_blocks == []

    def test_two_staggered_equivocators(self):
        byz = {2: 1, 3: 4}
        sim = build_sim(n=7, byzantine=byz, seed=11)
        sim.run(until=15.0)
        survivors = honest(sim, byz)
        check_prefix_consistency([n.ledger for n in survivors])
        for node in survivors:
            assert node.blacklist == {2, 3}
        assert all(len(n.ledger) > 100 for n in survivors)

    def test_equivocated_payload_not_double_counted(self):
        """Both copies may commit (digest-closure commit) but they occupy
        one slot — the metrics layer dedups; here we check the ledger
        level: duplicates are adjacent same-slot blocks at most."""
        byz = {3: 2}
        sim = build_sim(byzantine=byz, seed=7)
        sim.run(until=10.0)
        node = honest(sim, byz)[0]
        slots = {}
        for record in node.ledger:
            slots.setdefault(record.block.slot, []).append(record.block.digest)
        multi = {s: d for s, d in slots.items() if len(d) > 1}
        # Two committed blocks in a slot are legitimate in exactly two
        # places: the equivocator's PBC slots, and CBC slots where an honest
        # proposer's original + reproposal both delivered (Fig. 10b).
        for (round_, author) in multi:
            from repro.core.lightdag2 import LightDag2Node
            assert author == 3 or LightDag2Node.round_kind(round_) == 2, multi

    def test_determinism_under_attack(self):
        byz = {3: 2}
        a = build_sim(byzantine=byz, seed=13)
        a.run(until=6.0)
        b = build_sim(byzantine=byz, seed=13)
        b.run(until=6.0)
        assert (
            a.nodes[0].ledger.digest_sequence() == b.nodes[0].ledger.digest_sequence()
        )


class TestReproposalDynamics:
    def test_reproposals_follow_equivocation(self):
        byz = {3: 2}
        sim = build_sim(byzantine=byz, seed=7)
        sim.run(until=10.0)
        total = sum(n.reproposals for n in honest(sim, byz))
        assert total >= 1

    def test_second_round_can_exceed_n_blocks(self):
        """§VI-A: the attack entices reproposals, so more than n blocks are
        *generated* in some CBC round (n originals + ≥1 reproposal)."""
        byz = {3: 2}
        sim = build_sim(byzantine=byz, seed=7)
        sim.run(until=10.0)
        nodes = honest(sim, byz)
        generated_by_round = {}
        for node in nodes:
            for block in node.my_blocks.values():
                if LightDag2Node.round_kind(block.round) == LightDag2Node.CBC_E:
                    generated_by_round.setdefault(block.round, set()).add(block.digest)
        overloaded = [
            r for r, blocks in generated_by_round.items() if len(blocks) > len(nodes)
        ]
        assert sum(n.reproposals for n in nodes) >= 1
        assert overloaded  # some CBC round had more blocks than proposers
