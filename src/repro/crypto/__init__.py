"""Cryptographic substrate for the LightDAG reproduction.

The paper assumes a PKI (digital signatures on every message) and a
threshold-crypto infrastructure established by ADKG, used to build the
Global Perfect Coin.  This package implements both from scratch:

* :mod:`repro.crypto.group` — a Schnorr group over an embedded safe prime.
* :mod:`repro.crypto.schnorr` — Schnorr signatures (the PKI).
* :mod:`repro.crypto.shamir` — Shamir secret sharing over the group order.
* :mod:`repro.crypto.threshold` — a threshold PRF with Chaum-Pedersen share
  proofs, the primitive behind the coin.
* :mod:`repro.crypto.coin` — the Global Perfect Coin (GPC, §III-B.2).
* :mod:`repro.crypto.backend` — pluggable signing backends so large
  simulations can trade cryptographic realism for speed.
* :mod:`repro.crypto.keys` — trusted-dealer key generation standing in for
  the ADKG of [17], [18] (documented substitution, see DESIGN.md §2).

The default 256-bit group is **simulation-grade, not production security**;
it preserves the semantics (unforgeability within a run, threshold reveal)
while keeping pure-Python modular exponentiation cheap.
"""

from .backend import CryptoBackend, HmacBackend, NullBackend, SchnorrBackend, make_backend
from .coin import CoinShare, GlobalPerfectCoin
from .group import SchnorrGroup, default_group
from .hashing import Digest, hash_bytes, hash_fields
from .keys import KeyChain, TrustedDealer
from .schnorr import SchnorrKeyPair, schnorr_sign, schnorr_verify
from .shamir import ShamirShare, recover_secret, split_secret
from .threshold import PartialEval, ThresholdPRF, combine_partials

__all__ = [
    "CoinShare",
    "CryptoBackend",
    "Digest",
    "GlobalPerfectCoin",
    "HmacBackend",
    "KeyChain",
    "NullBackend",
    "PartialEval",
    "SchnorrBackend",
    "SchnorrGroup",
    "SchnorrKeyPair",
    "ShamirShare",
    "ThresholdPRF",
    "TrustedDealer",
    "combine_partials",
    "default_group",
    "hash_bytes",
    "hash_fields",
    "make_backend",
    "recover_secret",
    "schnorr_sign",
    "schnorr_verify",
    "split_secret",
]
