"""Consistent Broadcast (CBC) — two steps, consistency without totality.

Implementation follows §III-B.1 (after Dolev [14], Reiter [20]):

* **VAL step** — the broadcaster sends block ``B`` to every replica.
* **ECHO step** — a replica that accepts ``B`` broadcasts an ECHO for
  ``B``'s digest.  Accepting is the *protocol's* decision (LightDAG1: echo
  at most once per slot, after the ancestor gate; LightDAG2: Rules 2/3).
* **Delivery** — a replica delivers ``B`` once it holds the body and
  ``n - f`` ECHOes for ``B``'s digest (and the protocol marked it ready).

Consistency argument: two quorums of ``n - f`` echoes intersect in at least
``f + 1`` replicas, hence in one non-faulty replica; if that replica echoes
at most one digest per slot, no two distinct blocks of one slot can both be
delivered.  Note the *per-slot single echo* lives in the protocol's vote
policy — LightDAG2 deliberately relaxes it (a replica may echo an original
block and later a reproposal, Fig. 10b), trading slot-consistency for the
Rule-2 no-contradictory-references guarantee.

No totality: a replica that never receives the body (Byzantine broadcaster
sent VAL selectively) cannot deliver — the §IV-A retrieval mechanism exists
precisely to patch this.
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from typing import Dict, List, Optional, Tuple

from ..crypto.hashing import Digest
from ..dag.block import Block
from ..net.interfaces import NetworkAPI
from ..obs import NULL_OBS, Observability
from .base import DeliverCallback, InstanceTracker
from .messages import BlockEcho, BlockVal


class CbcManager:
    """All CBC instances of one replica."""

    #: Communication steps a full CBC takes (VAL + ECHO).
    STEPS = 2

    def __init__(
        self,
        net: NetworkAPI,
        quorum: int,
        on_deliver: DeliverCallback,
        obs: Optional[Observability] = None,
    ) -> None:
        self.net = net
        self.quorum = quorum
        obs = obs or NULL_OBS
        metrics = obs.metrics
        metrics.gauge("broadcast.steps", primitive="cbc").set(self.STEPS)
        self._vals_ctr = metrics.counter("broadcast.vals_sent", primitive="cbc")
        self._echoes_ctr = metrics.counter("broadcast.echoes_sent", primitive="cbc")
        self._refresh_ctr = metrics.counter("broadcast.vote_refreshes", primitive="cbc")
        self._retrieved_ctr = metrics.counter(
            "broadcast.retrieved_deliveries", primitive="cbc"
        )
        self.tracker = InstanceTracker(on_deliver, obs=obs, primitive="cbc")
        #: causal tracer (None unless tracing requested): emits the
        #: echo-quorum-crossed span, CBC's delivery predicate.
        self._trace = obs.trace if obs.trace.enabled else None
        #: digests this replica has echoed, per slot (vote bookkeeping for
        #: protocol policies; LightDAG1 allows one entry, LightDAG2 several).
        self.votes_by_slot: Dict[Tuple[int, int], List[Digest]] = {}

    # -- proposer side ---------------------------------------------------------

    def broadcast(self, block: Block) -> None:
        self._vals_ctr.inc()
        self.net.broadcast(BlockVal(block))

    # -- receiver side ---------------------------------------------------------

    def on_val(self, src: int, block: Block) -> None:
        """Record the body; echoing is a separate, protocol-driven act."""
        self.tracker.record_body(block)

    def vote(self, block: Block) -> None:
        """Broadcast an ECHO for ``block`` (the Rule-2 sense of *voting*).

        Idempotent per digest; the per-slot voting policy is enforced by
        the caller, this method only records what was voted.
        """
        voted = self.votes_by_slot.setdefault(block.slot, [])
        if block.digest in voted:
            return
        voted.append(block.digest)
        self._echoes_ctr.inc()
        self.net.broadcast(
            BlockEcho(round=block.round, author=block.author, digest=block.digest)
        )

    def has_voted_in_slot(self, slot: Tuple[int, int]) -> bool:
        return bool(self.votes_by_slot.get(slot))

    def votes_in_slot(self, slot: Tuple[int, int]) -> List[Digest]:
        return list(self.votes_by_slot.get(slot, ()))

    def refresh_vote(self, block: Block) -> None:
        """Re-broadcast our ECHO for a block we already voted for — the
        stall-recovery path after message loss (partition heal): echoes are
        idempotent at receivers, so this is safe to repeat."""
        if block.digest in self.votes_by_slot.get(block.slot, ()):
            self._refresh_ctr.inc()
            self.net.broadcast(
                BlockEcho(round=block.round, author=block.author, digest=block.digest)
            )

    def on_echo(self, src: int, echo: BlockEcho) -> bool:
        """Count an echo; returns True if this completed a delivery."""
        inst = self.tracker.state(echo.digest)
        inst.round = echo.round
        if self._trace is None:
            inst.echoers.add(src)
        else:
            before = len(inst.echoers)
            inst.echoers.add(src)
            if before < self.quorum <= len(inst.echoers):
                self._trace.emit(
                    self.net.now(), "trace.quorum", self.net.node_id,
                    digest=echo.digest.hex()[:8], round=echo.round,
                    author=echo.author, kind="echo", primitive="cbc",
                )
        return self.tracker.try_deliver(inst, self._predicate(inst))

    def mark_ready(self, digest: Digest) -> bool:
        """Protocol signal that validation + ancestor gate passed."""
        inst = self.tracker.mark_ready(digest)
        return self.tracker.try_deliver(inst, self._predicate(inst))

    def deliver_retrieved(self, digest: Digest) -> bool:
        """Deliver a digest-pinned retrieval response directly (§IV-A).

        A retrieved block was requested by its exact hash (taken from a
        parent reference), so its content is authenticated by the digest
        itself; the responder serving it asserts it was delivered there.
        Bypassing the local echo/ready quorum is what lets a replica that
        missed whole rounds of broadcast traffic catch back up."""
        inst = self.tracker.mark_ready(digest)
        delivered = self.tracker.try_deliver(inst, predicate_met=True)
        if delivered:
            self._retrieved_ctr.inc()
        return delivered

    def _predicate(self, inst) -> bool:
        return len(inst.echoers) >= self.quorum

    # -- memory ---------------------------------------------------------------

    def gc_below(self, horizon: int) -> int:
        """Drop per-instance state and vote bookkeeping for rounds below
        ``horizon`` (the protocol's commit-settled GC watermark)."""
        removed = self.tracker.gc_below(horizon)
        stale = [slot for slot in self.votes_by_slot if slot[0] < horizon]
        for slot in stale:
            del self.votes_by_slot[slot]
        return removed + len(stale)

    # -- introspection ---------------------------------------------------------

    def is_delivered(self, digest: Digest) -> bool:
        return self.tracker.is_delivered(digest)

    def body_of(self, digest: Digest):
        inst = self.tracker.peek(digest)
        return inst.body if inst else None

    def echo_complete(self, digest: Digest) -> bool:
        """True when the quorum of echoes exists (delivery may still be
        waiting on body or ancestors — the retrieval fallback trigger)."""
        inst = self.tracker.peek(digest)
        return inst is not None and len(inst.echoers) >= self.quorum

    def echoers_of(self, digest: Digest) -> AbstractSet:
        """Live read-only view of a digest's echoers (no copy)."""
        return self.tracker.echoers_of(digest)
