"""Unit tests for the shared engine (repro.core.base) driven by a FakeNet.

These tests poke one node directly — message by message — to pin down the
accept path, dedupe, signature gating, and reference counting.  Whole-
protocol behaviour is covered by the simulator-driven tests.
"""

import pytest

from repro.broadcast.messages import BlockVal, CoinShareMsg, RetrievalRequest
from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag1 import LightDag1Node
from repro.crypto.backend import HmacBackend
from repro.crypto.keys import TrustedDealer
from repro.dag.block import TxBatch, genesis_block, make_block

from ..conftest import FakeNet


@pytest.fixture
def system():
    return SystemConfig(n=4, crypto="hmac", seed=0)


@pytest.fixture
def chains(system):
    return TrustedDealer(system).deal()


@pytest.fixture
def node(system, chains):
    n = LightDag1Node(FakeNet(node_id=0, n=4), system, ProtocolConfig(batch_size=5), chains[0])
    n.on_start()
    n.net.clear()
    return n


def signed_block(system, author, round_, parents, j=0):
    backend = HmacBackend(author, system)
    return make_block(round_, author, parents, repropose_index=j, signer=backend)


def genesis_parents():
    return [genesis_block(a).digest for a in range(4)]


class TestStartup:
    def test_on_start_proposes_round_one(self, system, chains):
        net = FakeNet(node_id=0, n=4)
        node = LightDag1Node(net, system, ProtocolConfig(batch_size=5), chains[0])
        node.on_start()
        vals = [m for _, m in net.sent if isinstance(m, BlockVal)]
        assert len(vals) == 4  # broadcast to everyone incl. self
        assert vals[0].block.round == 1
        assert node.next_round == 2

    def test_round_one_references_genesis_quorum(self, system, chains):
        net = FakeNet(node_id=0, n=4)
        node = LightDag1Node(net, system, ProtocolConfig(batch_size=5), chains[0])
        node.on_start()
        block = next(m.block for _, m in net.sent if isinstance(m, BlockVal))
        assert len(block.parents) == 4  # references every genesis slot

    def test_no_coin_share_in_early_rounds(self, system, chains):
        net = FakeNet(node_id=0, n=4)
        node = LightDag1Node(net, system, ProtocolConfig(batch_size=5), chains[0])
        node.on_start()
        assert not any(isinstance(m, CoinShareMsg) for _, m in net.sent)


class TestAcceptPath:
    def test_valid_block_voted(self, system, node):
        block = signed_block(system, 1, 1, genesis_parents())
        node.on_message(1, BlockVal(block))
        assert node.cbc.has_voted_in_slot(block.slot)

    def test_bad_signature_ignored(self, system, node):
        backend = HmacBackend(2, system)  # wrong signer for author 1
        block = make_block(1, 1, genesis_parents(), signer=backend)
        node.on_message(1, BlockVal(block))
        assert not node.cbc.has_voted_in_slot(block.slot)

    def test_unknown_author_ignored(self, system, node):
        block = make_block(1, 9, genesis_parents())
        node.on_message(1, BlockVal(block))
        assert block.digest in node._invalid

    def test_structurally_invalid_marked(self, system, node):
        # Only 2 parents < quorum of 3.
        block = signed_block(system, 1, 1, genesis_parents()[:2])
        node.on_message(1, BlockVal(block))
        assert block.digest in node._invalid
        assert not node.cbc.has_voted_in_slot(block.slot)

    def test_duplicate_val_refreshes_echo_only(self, system, node):
        """A duplicate VAL (a peer's stall-recovery re-broadcast) may only
        re-send our existing ECHO — never a second vote or new state."""
        from repro.broadcast.messages import BlockEcho

        block = signed_block(system, 1, 1, genesis_parents())
        node.on_message(1, BlockVal(block))
        votes_after_first = node.cbc.votes_in_slot(block.slot)
        sent_after_first = len(node.net.sent)
        node.on_message(2, BlockVal(block))
        assert node.cbc.votes_in_slot(block.slot) == votes_after_first
        new_messages = [m for _, m in node.net.sent[sent_after_first:]]
        assert all(
            isinstance(m, BlockEcho) and m.digest == block.digest
            for m in new_messages
        )

    def test_missing_parents_trigger_retrieval(self, system, node):
        parent = signed_block(system, 1, 1, genesis_parents())
        child = signed_block(system, 1, 2, [parent.digest] + genesis_parents()[:2])
        node.net.clear()
        node.on_message(1, BlockVal(child))
        requests = [m for _, m in node.net.sent if isinstance(m, RetrievalRequest)]
        assert len(requests) == 1
        assert parent.digest in requests[0].digests
        assert node.retrieval.is_pending(child.digest)

    def test_one_vote_per_slot(self, system, node):
        a = signed_block(system, 1, 1, genesis_parents(), j=0)
        b = signed_block(system, 1, 1, genesis_parents(), j=1)
        node.on_message(1, BlockVal(a))
        node.on_message(1, BlockVal(b))
        assert node.cbc.votes_in_slot((1, 1)) == [a.digest]


class TestReferenceCounting:
    def test_references_within_depth_one(self, system, node):
        block = signed_block(system, 1, 1, genesis_parents())
        node.store.add(block)
        child = signed_block(system, 2, 2, [block.digest])
        node.store.add(child)
        assert node._references_within(child, block.digest, 1)
        assert not node._references_within(child, b"\x01" * 32, 1)

    def test_references_within_depth_two(self, system, node):
        a = signed_block(system, 1, 1, genesis_parents())
        node.store.add(a)
        b = signed_block(system, 2, 2, [a.digest])
        node.store.add(b)
        c = signed_block(system, 3, 3, [b.digest])
        node.store.add(c)
        assert not node._references_within(c, a.digest, 1)
        assert node._references_within(c, a.digest, 2)

    def test_genesis_reachable(self, system, node):
        block = signed_block(system, 1, 1, genesis_parents())
        node.store.add(block)
        assert node._references_within(block, genesis_block(0).digest, 1)


class TestCoinPlumbing:
    def test_share_for_unrevealed_wave_accumulates(self, system, chains, node):
        # Build shares from other replicas' coins for wave 1.
        from repro.crypto.coin import make_coin

        coins = [make_coin("hmac", chains[i], system.seed) for i in range(4)]
        node.on_message(1, CoinShareMsg(coins[1].make_share(1)))
        node.on_message(2, CoinShareMsg(coins[2].make_share(1)))
        assert 1 not in node.revealed_leaders  # threshold is 2f+1 = 3
        node.on_message(3, CoinShareMsg(coins[3].make_share(1)))
        assert 1 in node.revealed_leaders

    def test_duplicate_share_ignored(self, system, chains, node):
        from repro.crypto.coin import make_coin

        coin1 = make_coin("hmac", chains[1], system.seed)
        share = coin1.make_share(1)
        node.on_message(1, CoinShareMsg(share))
        node.on_message(1, CoinShareMsg(share))
        assert 1 not in node.revealed_leaders
