"""Tests for repro.broadcast.cbc: the two-step consistent broadcast."""

import pytest

from repro.broadcast.cbc import CbcManager
from repro.broadcast.messages import BlockEcho, BlockVal
from repro.dag.block import genesis_block, make_block

from ..conftest import FakeNet

QUORUM = 3  # n=4, f=1


def sample_block(author=0, round_=1, j=0):
    return make_block(round_, author, [genesis_block(a).digest for a in range(4)],
                      repropose_index=j)


def echo_for(block):
    return BlockEcho(round=block.round, author=block.author, digest=block.digest)


@pytest.fixture
def setup():
    net = FakeNet(node_id=0, n=4)
    delivered = []
    manager = CbcManager(net, quorum=QUORUM, on_deliver=delivered.append)
    return net, manager, delivered


class TestVoting:
    def test_vote_broadcasts_echo(self, setup):
        net, manager, _ = setup
        block = sample_block()
        manager.on_val(1, block)
        manager.vote(block)
        echoes = [m for _, m in net.sent if isinstance(m, BlockEcho)]
        assert len(echoes) == 4  # one per replica
        assert echoes[0].digest == block.digest

    def test_vote_idempotent_per_digest(self, setup):
        net, manager, _ = setup
        block = sample_block()
        manager.vote(block)
        sent_before = len(net.sent)
        manager.vote(block)
        assert len(net.sent) == sent_before

    def test_vote_bookkeeping_per_slot(self, setup):
        _, manager, _ = setup
        block = sample_block()
        assert not manager.has_voted_in_slot(block.slot)
        manager.vote(block)
        assert manager.has_voted_in_slot(block.slot)
        assert manager.votes_in_slot(block.slot) == [block.digest]

    def test_multiple_votes_per_slot_recorded(self, setup):
        """LightDAG2 may legitimately vote original + reproposal (Fig 10b)."""
        _, manager, _ = setup
        a, b = sample_block(j=0), sample_block(j=1)
        manager.vote(a)
        manager.vote(b)
        assert manager.votes_in_slot(a.slot) == [a.digest, b.digest]


class TestDeliveryPredicate:
    def test_quorum_echoes_plus_body_plus_ready(self, setup):
        _, manager, delivered = setup
        block = sample_block()
        manager.on_val(1, block)
        manager.mark_ready(block.digest)
        for src in range(QUORUM - 1):
            assert not manager.on_echo(src, echo_for(block))
        assert delivered == []
        assert manager.on_echo(QUORUM - 1, echo_for(block))
        assert delivered == [block]

    def test_no_delivery_without_ready(self, setup):
        _, manager, delivered = setup
        block = sample_block()
        manager.on_val(1, block)
        for src in range(4):
            manager.on_echo(src, echo_for(block))
        assert delivered == []
        assert manager.echo_complete(block.digest)
        manager.mark_ready(block.digest)
        assert delivered == [block]

    def test_no_delivery_without_body(self, setup):
        _, manager, delivered = setup
        block = sample_block()
        manager.mark_ready(block.digest)
        for src in range(4):
            manager.on_echo(src, echo_for(block))
        assert delivered == []  # echoes + ready, but no body yet
        manager.on_val(2, block)
        manager.mark_ready(block.digest)  # body arrived; re-drive
        assert delivered == [block]

    def test_duplicate_echoes_not_counted(self, setup):
        _, manager, delivered = setup
        block = sample_block()
        manager.on_val(1, block)
        manager.mark_ready(block.digest)
        for _ in range(5):
            manager.on_echo(1, echo_for(block))
        assert delivered == []

    def test_single_delivery(self, setup):
        _, manager, delivered = setup
        block = sample_block()
        manager.on_val(1, block)
        manager.mark_ready(block.digest)
        for src in range(4):
            manager.on_echo(src, echo_for(block))
        assert delivered == [block]

    def test_echoers_tracked(self, setup):
        _, manager, _ = setup
        block = sample_block()
        manager.on_echo(2, echo_for(block))
        manager.on_echo(3, echo_for(block))
        assert manager.echoers_of(block.digest) == {2, 3}


class TestConsistencyMechanics:
    def test_split_votes_no_quorum(self, setup):
        """If honest replicas split between two blocks of one slot, neither
        reaches quorum — the counting argument behind CBC consistency."""
        _, manager, delivered = setup
        a, b = sample_block(j=0), sample_block(j=1)
        manager.on_val(1, a)
        manager.on_val(1, b)
        manager.mark_ready(a.digest)
        manager.mark_ready(b.digest)
        manager.on_echo(0, echo_for(a))
        manager.on_echo(1, echo_for(a))
        manager.on_echo(2, echo_for(b))
        manager.on_echo(3, echo_for(b))
        assert delivered == []

    def test_echoes_accumulate_before_body(self, setup):
        """A replica that missed the VAL still counts everyone's echoes and
        delivers as soon as retrieval supplies the body."""
        _, manager, delivered = setup
        block = sample_block()
        for src in range(QUORUM):
            manager.on_echo(src, echo_for(block))
        assert manager.echo_complete(block.digest)
        manager.on_val(3, block)  # e.g. retrieval response
        manager.mark_ready(block.digest)
        assert delivered == [block]
