"""Deterministic discrete-event network simulator.

The simulator executes a set of :class:`~repro.net.interfaces.Node` state
machines over a modeled network and is the engine behind every benchmark
figure.  Design points:

* **Determinism** — one seeded ``random.Random`` drives all latency draws;
  the event queue breaks time ties by a monotone sequence number; node
  handlers run to completion.  Same seed → bit-identical run.
* **Bandwidth model** — each replica has a shared egress NIC of
  ``bandwidth_bps``; messages serialize through it FIFO
  (``egress_free[src]`` tracks when the NIC drains) and then propagate
  according to the latency model.  This is what produces the saturation
  plateaus of Fig. 12/14 and the throughput convergence of Fig. 13a.
* **Adversary hooks** — an :class:`~repro.adversary.base.Adversary` may
  delay or drop any message and crash replicas; Byzantine *behaviour*
  (equivocation and the like) is expressed as alternative Node
  implementations, matching the paper's threat model where the adversary
  controls up to ``f`` replicas and the message schedule.

The hot loop is kept allocation-light on purpose (the profiling-first guide:
the event loop dominates; everything else is protocol logic).  Three
engine-level choices carry the throughput:

* **Flat event records** — one 6-tuple ``(when, seq, kind, a, b, c)`` per
  event instead of a nested payload tuple; ``seq`` is a plain int bumped
  inline (no ``itertools.count`` indirection), and heap comparisons never
  get past ``(when, seq)`` because ``seq`` is unique.
* **Broadcast fast path** — :meth:`Simulation._enqueue_broadcast` draws
  all ``n − 1`` latencies and pushes all copies in one pass, with the
  crash check, stats accounting, and NIC serialization constant hoisted
  out of the per-copy loop (everything in these protocols is a
  broadcast).
* **Hoisted run loop** — :meth:`Simulation.run` binds the queue, node
  table, crash set, and the CPU/obs mode flags to locals once, and
  accumulates ``events_processed``/``messages_delivered`` in local ints
  that are flushed to :class:`SimulationStats` at observation points
  (``stop_when`` probes, budget exhaustion, loop exit) rather than per
  event.
"""

from __future__ import annotations

import copy
import heapq
import io
import math
import os
import pickle
import random
from dataclasses import dataclass
from heapq import heappush as _heappush
from typing import Any, Callable, List, Optional, Sequence

from ..errors import SimulationError
from ..obs import NULL_OBS, Observability
from .interfaces import Message, NetworkAPI, Node, NodeFactory
from .latency import FactoredLatency, FixedLatency, LatencyModel

_DELIVER = 0
_TIMER = 1
_PROCESS = 2
#: A whole broadcast fan-out as ONE heap entry: ``(when, seq, _BATCH,
#: src, idx, (arrivals, seqs, dsts, msg))`` where the payload lists are
#: sorted by ``(arrival, seq)``.  The run loop delivers ``idx`` and
#: re-keys the entry to ``idx + 1`` with a single ``heapreplace`` sift.
#: The heap holds O(broadcasts-in-flight) entries instead of O(n²)
#: copies, which shrinks every sift at large n; the pop order is exactly
#: the per-copy order because each batch's head is always its
#: ``(when, seq)``-minimal remaining element.
_BATCH = 3

#: Valid values for the ``engine`` knob (see :class:`Simulation`).
_ENGINES = ("auto", "flat", "generic", "numpy")

#: Below this fan-out the numpy batch path costs more than it saves.
_NUMPY_MIN_FANOUT = 32

_NUMPY_UNSET = object()
_numpy_mod: Any = _NUMPY_UNSET


def _numpy():
    """The numpy module, or ``None`` — resolved once, never a hard dep.

    Kept out of instance state on purpose: a module object would poison
    snapshot pickling, and the fallback must stay zero-dependency.
    """
    global _numpy_mod
    if _numpy_mod is _NUMPY_UNSET:
        try:
            import numpy  # noqa: PLC0415 - optional accelerator

            _numpy_mod = numpy
        except ImportError:  # pragma: no cover - numpy present in CI image
            _numpy_mod = None
    return _numpy_mod


@dataclass(frozen=True)
class CpuCost:
    """Per-node message-processing cost model.

    Real deployments saturate replica CPUs on per-message work (signature
    verification, deserialization, hashing) long before links fill — this
    is what makes throughput *decline* as the replica set grows (Fig. 13a):
    every node processes Θ(n²) echo-class messages per round.  Messages
    arriving at a node serialize through a single CPU queue with cost
    ``fixed_s + per_byte_s × size``.

    Defaults approximate a prototype-grade stack: ~250 µs per message
    (ed25519-class verify, deserialization, handling, GC pressure) and
    20 ns/byte (~50 MB/s effective decode+hash+copy).
    """

    fixed_s: float = 250e-6
    per_byte_s: float = 20e-9

    def cost(self, size: int) -> float:
        return self.fixed_s + size * self.per_byte_s


class SimulationStats:
    """Counters accumulated over a run.

    A slotted plain class, not a dataclass: the send path bumps three of
    these counters per wire copy, and slotted attribute stores are the
    cheapest instance mutation CPython offers.  ``per_node_bytes`` is a
    list indexed by sender id (the simulator sizes it to the replica set
    at construction); a bare ``SimulationStats()`` grows it on demand in
    :meth:`record_send`.
    """

    __slots__ = (
        "events_processed", "messages_sent", "messages_delivered",
        "messages_dropped", "bytes_sent", "final_time", "per_node_bytes",
    )

    def __init__(
        self,
        events_processed: int = 0,
        messages_sent: int = 0,
        messages_delivered: int = 0,
        messages_dropped: int = 0,
        bytes_sent: int = 0,
        final_time: float = 0.0,
        per_node_bytes: Optional[List[int]] = None,
    ) -> None:
        self.events_processed = events_processed
        self.messages_sent = messages_sent
        self.messages_delivered = messages_delivered
        self.messages_dropped = messages_dropped
        self.bytes_sent = bytes_sent
        self.final_time = final_time
        self.per_node_bytes = per_node_bytes if per_node_bytes is not None else []

    def record_send(self, src: int, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        per_node = self.per_node_bytes
        if src >= len(per_node):
            per_node.extend([0] * (src + 1 - len(per_node)))
        per_node[src] += size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationStats(events_processed={self.events_processed}, "
            f"messages_sent={self.messages_sent}, "
            f"messages_delivered={self.messages_delivered}, "
            f"messages_dropped={self.messages_dropped}, "
            f"bytes_sent={self.bytes_sent}, final_time={self.final_time})"
        )


class _SimNetworkAPI(NetworkAPI):
    """Per-node facade over the simulator."""

    __slots__ = ("_sim", "_node_id")

    def __init__(self, sim: "Simulation", node_id: int) -> None:
        self._sim = sim
        self._node_id = node_id

    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def n(self) -> int:
        return len(self._sim.nodes)

    def now(self) -> float:
        return self._sim.now

    def send(self, dst: int, msg: Message) -> None:
        sim = self._sim
        src = self._node_id
        if sim.adversary is not None:
            # Adversarial runs take the general path; the obs per-type
            # staging lives here (one op per send).
            if sim._obs_on and dst != src and src not in sim._crashed:
                size = msg.wire_size()
                counts = sim._obs_msg_counts.get(msg.__class__)
                if counts is None:
                    counts = sim._obs_counts(msg.__class__)
                counts[0] += 1
                counts[1] += size
                sim._enqueue_send(src, dst, msg, size)
            else:
                sim._enqueue_send(src, dst, msg)
            return
        # Fast path: no adversary — the configuration every favorable-case
        # figure sweep runs in.  One function frame for the whole send
        # instead of facade → _enqueue_send; obs staging (when enabled) is
        # a dict lookup and three int bumps inline.
        if src in sim._crashed:
            return
        now = sim.now
        if dst == src:
            seq = sim._seq
            sim._seq = seq + 1
            _heappush(sim._queue, (now, seq, _DELIVER, src, dst, msg))
            return
        size = msg.wire_size()
        stats = sim.stats
        stats.messages_sent += 1
        stats.bytes_sent += size
        stats.per_node_bytes[src] += size
        obs_on = sim._obs_on
        if obs_on:
            counts = sim._obs_msg_counts.get(msg.__class__)
            if counts is None:
                counts = sim._obs_counts(msg.__class__)
            counts[0] += 1
            counts[1] += size
        node_bw = sim._node_bw
        if node_bw is not None:
            egress = sim._egress_free
            free = egress[src]
            start = free if free > now else now
            finish = start + size * 8.0 / node_bw[src]
            egress[src] = finish
            if obs_on:
                if start > now:
                    sim._obs_egress_waits.append(start - now)
                else:
                    sim._obs_egress_zero += 1
        else:
            finish = now
        if sim._lossy:
            d = sim.latency.sample(src, dst, sim.rng, now)
            if d is None:
                # Link loss: NIC time was spent (the packet went out),
                # recovery rides the §IV-A retrieval path.
                stats.messages_dropped += 1
                if obs_on:
                    sim._obs_counts(msg.__class__)[3] += 1
                return
        else:
            d = sim.latency.delay(src, dst, sim.rng)
        arrival = finish + d
        seq = sim._seq
        sim._seq = seq + 1
        _heappush(sim._queue, (arrival, seq, _DELIVER, src, dst, msg))

    def broadcast(self, msg: Message, include_self: bool = True) -> None:
        """Fan-out with one obs staging op and one wire_size for the batch.

        Everything in these protocols is a broadcast, so counting the
        n-1 wire copies here (instead of once per copy in
        ``_enqueue_send``) removes most of the per-message staging from
        the engine hot loop.  Self-delivery is never a wire copy, hence
        ``n - 1`` regardless of ``include_self`` — matching
        ``SimulationStats``, which only records non-self sends.  The
        copies themselves go through :meth:`Simulation._enqueue_broadcast`,
        which pushes the whole fan-out in one pass.
        """
        sim = self._sim
        src = self._node_id
        n = len(sim.nodes)
        size = msg.wire_size()
        if sim._obs_on and n > 1 and src not in sim._crashed:
            counts = sim._obs_msg_counts.get(msg.__class__)
            if counts is None:
                counts = sim._obs_counts(msg.__class__)
            counts[0] += n - 1
            counts[1] += (n - 1) * size
        sim._enqueue_broadcast(src, msg, size, include_self)

    def set_timer(self, delay: float, tag: str, data: Any = None) -> None:
        self._sim._enqueue_timer(self._node_id, delay, tag, data)


class Simulation:
    """Builds and runs a replica set over the modeled network.

    Parameters
    ----------
    factories:
        One node factory per replica; ``factories[i]`` receives the
        :class:`NetworkAPI` for replica ``i``.  Byzantine replicas are
        simply factories producing malicious Node subclasses.
    latency_model:
        Propagation model (defaults to 50 ms fixed).
    bandwidth_bps:
        Shared egress NIC capacity per replica; ``None`` disables the
        serialization model entirely (pure propagation — used by the
        step-count experiments).
    adversary:
        Optional message-schedule adversary (see :mod:`repro.adversary`).
    seed:
        Seed for all latency jitter and adversary randomness.
    obs:
        Optional :class:`~repro.obs.Observability`.  When given, the
        simulator records per-message-type send/deliver/drop counts and
        bytes, egress-NIC and CPU-queue wait histograms, and attributes
        adversary interference (delay/drop) in both the registry and the
        journal.  Defaults to the shared no-op instance, which costs the
        hot loop a single branch.
    """

    def __init__(
        self,
        factories: Sequence[NodeFactory],
        latency_model: LatencyModel | None = None,
        bandwidth_bps: "float | Sequence[float] | None" = None,
        adversary: Optional["AdversaryProtocol"] = None,
        cpu: CpuCost | None = None,
        seed: int = 0,
        obs: Observability | None = None,
        engine: str | None = None,
    ) -> None:
        self.latency = latency_model or FixedLatency()
        self.bandwidth_bps = bandwidth_bps
        if bandwidth_bps is None:
            self._node_bw: Optional[List[float]] = None
        else:
            # Scalar = homogeneous NICs (the paper's testbed); a sequence
            # gives each replica its own egress rate (TopologyLatency's
            # bandwidth_spread — the harness builds the list).
            try:
                rates = [float(b) for b in bandwidth_bps]  # type: ignore[union-attr]
            except TypeError:
                rates = [float(bandwidth_bps)] * len(factories)
            if len(rates) != len(factories):
                raise SimulationError(
                    f"bandwidth_bps has {len(rates)} entries for "
                    f"{len(factories)} replicas"
                )
            if any(rate <= 0 for rate in rates):
                raise SimulationError("per-node bandwidth must be positive")
            self._node_bw = rates
        self.adversary = adversary
        self.cpu = cpu
        self.rng = random.Random(f"sim:{seed}")
        self.now = 0.0
        # --- engine selection (see module docstring) ---------------------
        # "auto"/"flat": inline the factored-latency fast path on the
        # broadcast fan-out when the model supports it; "generic" keeps the
        # per-copy latency.delay() path (the pre-flat engine — benchmarks
        # compare against it); "numpy" additionally vectorizes large
        # fan-outs (bit-identical, pure-python fallback when numpy is
        # missing).  Lossy models always sample per copy.
        if engine is None:
            engine = os.environ.get("REPRO_SIM_ENGINE", "auto")
        if engine not in _ENGINES:
            raise SimulationError(
                f"unknown engine {engine!r} (one of {_ENGINES})"
            )
        self.engine = engine
        self._lossy = bool(getattr(self.latency, "lossy", False))
        flat_ok = (
            engine != "generic"
            and isinstance(self.latency, FactoredLatency)
            and not self._lossy
        )
        #: src -> per-destination base-delay row (lazily built); None when
        #: the flat fast path is off.  A pure function of the pinned
        #: latency model, so snapshot/restore may capture it freely.
        self._flat_rows: Optional[dict] = {} if flat_ok else None
        self._flat_jitter = (
            float(getattr(self.latency, "jitter_frac", 0.0)) if flat_ok else 0.0
        )
        #: src -> (bases, dsts, arange, draw?) arrays for the vectorized
        #: delivery-batch path, or ``()`` for rows it cannot serve (mixed
        #: zero/non-zero bases would change the RNG draw count).  Only
        #: populated under engine="numpy"; a pure function of the pinned
        #: latency model, so snapshots may capture it freely.
        self._np_rows: Optional[dict] = (
            {} if flat_ok and engine == "numpy" and _numpy() is not None else None
        )
        self.stats = SimulationStats(per_node_bytes=[0] * len(factories))
        self.obs = obs if obs is not None else NULL_OBS
        self._obs_on = self.obs.enabled
        #: message-type name -> (sent, bytes, delivered, dropped) counters;
        #: resolved once per type so the hot loop never re-hashes labels.
        self._obs_msg: dict = {}
        #: hot-loop staging as plain ints, keyed by message *class*
        #: (pointer hash beats string hash): [sent, bytes, suppressed,
        #: dropped].  Delivered is *derived* at flush by conservation —
        #: see ``_obs_flush`` — so the per-delivery path stays clean.
        self._obs_msg_counts: dict = {}
        #: per-class queue backlog at the previous flush (the conservation
        #: checkpoint, so repeated ``run()`` calls stay exact).
        self._obs_inflight_prev: dict = {}
        #: raw queue-wait samples, bulk-folded into the histograms at flush
        #: (list.append is ~4x cheaper than a per-event observe); the
        #: common NIC-idle case (wait 0) stays a plain int.
        self._obs_egress_waits: list = []
        #: broadcast fan-out waits staged as (first, step, count)
        #: arithmetic progressions — one tuple per broadcast from the
        #: flat path, expanded into ``_obs_egress_waits`` at flush.
        self._obs_egress_runs: list = []
        self._obs_egress_zero = 0
        self._obs_cpu_waits: list = []
        metrics = self.obs.metrics
        self._h_egress_wait = metrics.histogram("net.egress_wait_seconds")
        self._h_cpu_wait = metrics.histogram("net.cpu_queue_wait_seconds")
        self._h_adv_delay = metrics.histogram("net.adversary_delay_seconds")
        #: flat event records ``(when, seq, kind, a, b, c)``; deliveries
        #: carry (src, dst, msg), timers (node_id, tag, data).  ``seq`` is
        #: unique, so heap comparisons never reach the payload slots.
        self._queue: list = []
        self._seq = 0
        self._egress_free = [0.0] * len(factories)
        self._cpu_free = [0.0] * len(factories)
        self._crashed: set[int] = set()
        self.nodes: list[Node] = []
        for i, factory in enumerate(factories):
            self.nodes.append(factory(_SimNetworkAPI(self, i)))
        if self.adversary is not None:
            self.adversary.attach(self)
        self._started = False

    # -- event scheduling ----------------------------------------------------

    def _obs_msg_counters(self, tname: str) -> tuple:
        """(sent, bytes, delivered, dropped) counters for one message type."""
        counters = self._obs_msg.get(tname)
        if counters is None:
            metrics = self.obs.metrics
            counters = self._obs_msg[tname] = (
                metrics.counter("net.messages_sent", type=tname),
                metrics.counter("net.bytes_sent", type=tname),
                metrics.counter("net.messages_delivered", type=tname),
                metrics.counter("net.messages_dropped", type=tname),
            )
        return counters

    def _obs_counts(self, msg_cls: type) -> list:
        """The staged [sent, bytes, suppressed, dropped] ints for one type."""
        counts = self._obs_msg_counts.get(msg_cls)
        if counts is None:
            counts = self._obs_msg_counts[msg_cls] = [0, 0, 0, 0]
        return counts

    def _obs_flush(self) -> None:
        """Fold staged per-type counts and wait samples into the registry
        (idempotent — staging is zeroed / checkpointed as it drains).

        Delivered counts are *derived*, not staged: every non-self wire
        copy was either dropped by the adversary, suppressed at a crashed
        receiver, is still sitting in the event queue, or reached a node.
        Counting the first three (all cold paths) plus one queue scan per
        flush keeps the per-delivery hot path free of bookkeeping.  When
        nothing was ever staged (obs enabled but no wire traffic yet) the
        queue scan and the fold are skipped entirely.
        """
        if self._obs_msg_counts or self._obs_inflight_prev:
            inflight: dict = {}
            for ev in self._queue:
                kind = ev[2]
                if kind == _BATCH:
                    # One entry, many copies: all undelivered arrivals of
                    # the batch (the enqueue path currently declines when
                    # obs is on, but the accounting must not depend on
                    # that).
                    payload = ev[5]
                    cls = payload[3].__class__
                    inflight[cls] = inflight.get(cls, 0) + len(payload[0]) - ev[4]
                elif kind != _TIMER and ev[3] != ev[4]:
                    # a delivery/process record (src, dst, msg)
                    cls = ev[5].__class__
                    inflight[cls] = inflight.get(cls, 0) + 1
            for msg_cls in {
                *self._obs_msg_counts, *inflight, *self._obs_inflight_prev
            }:
                counts = self._obs_counts(msg_cls)
                backlog = inflight.get(msg_cls, 0)
                delivered = (
                    counts[0] - counts[2] - counts[3]
                    - backlog + self._obs_inflight_prev.get(msg_cls, 0)
                )
                sent_c, bytes_c, delivered_c, dropped_c = self._obs_msg_counters(
                    msg_cls.__name__
                )
                if counts[0]:
                    sent_c.inc(counts[0])
                if counts[1]:
                    bytes_c.inc(counts[1])
                if delivered:
                    delivered_c.inc(delivered)
                if counts[3]:
                    dropped_c.inc(counts[3])
                counts[0] = counts[1] = counts[2] = counts[3] = 0
                self._obs_inflight_prev[msg_cls] = backlog
        if self._obs_egress_runs:
            # Expand the staged (first, step, count) progressions from the
            # broadcast fast path.  Values are reconstructed by closed
            # form (first + step*k), which can differ from the per-copy
            # iterative sum in the last ulp — telemetry only, never fed
            # back into the schedule.
            waits = self._obs_egress_waits
            for first, step, count in self._obs_egress_runs:
                if count == 1:
                    waits.append(first)
                else:
                    waits.extend([first + step * k for k in range(count)])
            self._obs_egress_runs.clear()
        self._h_egress_wait.observe_bulk(self._obs_egress_waits)
        self._obs_egress_waits.clear()
        if self._obs_egress_zero:
            self._h_egress_wait.observe_zeros(self._obs_egress_zero)
            self._obs_egress_zero = 0
        self._h_cpu_wait.observe_bulk(self._obs_cpu_waits)
        self._obs_cpu_waits.clear()

    def _enqueue_send(self, src: int, dst: int, msg: Message, size: int = -1) -> None:
        if src in self._crashed:
            return
        if dst == src:
            # Local delivery: no propagation, no serialization, but still an
            # event so handler atomicity is preserved.
            seq = self._seq
            self._seq = seq + 1
            heapq.heappush(self._queue, (self.now, seq, _DELIVER, src, dst, msg))
            return
        if size < 0:
            size = msg.wire_size()
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size
        stats.per_node_bytes[src] += size
        # per-type sent/bytes staging lives in _SimNetworkAPI.send/broadcast
        # (one op per fan-out, not per copy); drops stay here.
        if self.adversary is not None:
            verdict = self.adversary.on_send(src, dst, msg, self.now)
            if verdict is None:
                stats.messages_dropped += 1
                if self._obs_on:
                    self._obs_counts(msg.__class__)[3] += 1
                    self.obs.journal.emit(
                        self.now, "adversary.drop", src,
                        dst=dst, msg=type(msg).__name__,
                    )
                return
            extra_delay = verdict
            if extra_delay > 0.0 and self._obs_on:
                self._h_adv_delay.observe(extra_delay)
                self.obs.journal.emit(
                    self.now, "adversary.delay", src,
                    dst=dst, msg=type(msg).__name__, delay_s=extra_delay,
                )
        else:
            extra_delay = 0.0

        if self._node_bw is not None:
            start = max(self.now, self._egress_free[src])
            finish = start + size * 8.0 / self._node_bw[src]
            self._egress_free[src] = finish
            if self._obs_on:
                if start > self.now:
                    self._obs_egress_waits.append(start - self.now)
                else:
                    self._obs_egress_zero += 1
        else:
            finish = self.now
        if self._lossy:
            d = self.latency.sample(src, dst, self.rng, self.now)
            if d is None:
                stats.messages_dropped += 1
                if self._obs_on:
                    self._obs_counts(msg.__class__)[3] += 1
                return
        else:
            d = self.latency.delay(src, dst, self.rng)
        arrival = finish + d + extra_delay
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (arrival, seq, _DELIVER, src, dst, msg))

    def _enqueue_broadcast(
        self, src: int, msg: Message, size: int, include_self: bool
    ) -> None:
        """Push the whole fan-out in one pass.

        Event-for-event (and RNG-draw-for-draw) equivalent to calling
        :meth:`_enqueue_send` once per destination in ascending ``dst``
        order, but with the crash check, stats accounting, and the NIC
        serialization term hoisted out of the per-copy loop.

        With a :class:`~repro.net.latency.FactoredLatency` model and no
        adversary, the per-copy latency call is inlined against a
        precomputed base-delay row (the *flat* engine): one uniform draw
        and three float ops per copy instead of a four-call tower through
        ``latency.delay``.  Bit-identical to the generic path by
        construction — CPython's ``Random.uniform(a, b)`` is
        ``a + (b - a) * random()``, the exact expression inlined here.
        """
        if src in self._crashed:
            return
        queue = self._queue
        push = heapq.heappush
        seq = self._seq
        now = self.now
        n = len(self.nodes)
        copies = n - 1
        if copies > 0:
            stats = self.stats
            stats.messages_sent += copies
            stats.bytes_sent += copies * size
            stats.per_node_bytes[src] += copies * size
        adversary = self.adversary
        node_bw = self._node_bw
        egress = self._egress_free
        rng = self.rng
        obs_on = self._obs_on
        rows = self._flat_rows
        if adversary is None and rows is not None:
            # ---- flat fast path (factored latency, reliable links) ----
            row = rows.get(src)
            if row is None:
                row = rows[src] = self.latency.base_row(src, n)
            np_rows = self._np_rows
            if (
                np_rows is not None
                and copies >= _NUMPY_MIN_FANOUT
                and not obs_on
                and self._enqueue_broadcast_numpy(
                    src, msg, size, include_self, row, np_rows
                )
            ):
                return
            if node_bw is not None:
                ser = size * 8.0 / node_bw[src]
                free = egress[src]
            else:
                ser = 0.0
                free = now
            free0 = free
            jfrac = self._flat_jitter
            neg = -jfrac
            uniform = rng.uniform
            for dst in range(n):
                if dst == src:
                    if include_self:
                        push(queue, (now, seq, _DELIVER, src, dst, msg))
                        seq += 1
                    continue
                if node_bw is not None:
                    start = free if free > now else now
                    finish = start + ser
                    free = finish
                else:
                    finish = now
                base = row[dst]
                if base != 0.0 and jfrac != 0.0:
                    arrival = finish + base * (1.0 + uniform(neg, jfrac))
                else:
                    arrival = finish + base
                push(queue, (arrival, seq, _DELIVER, src, dst, msg))
                seq += 1
            if node_bw is not None:
                egress[src] = free
            self._seq = seq
            if obs_on and node_bw is not None and copies > 0:
                # Egress waits staged as one arithmetic progression per
                # broadcast: the NIC drains FIFO, so the k-th wire copy
                # starts at max(free0, now) + k*ser.  One tuple append
                # here, expanded at flush time (``_obs_flush``) — the
                # per-copy staging branch stays off the hot loop (the
                # <5% engine-loop budget in bench_micro_obs needs the
                # headroom at small n, and at n=100 this is 1 op vs 99).
                wait0 = free0 - now
                if wait0 > 0.0:
                    self._obs_egress_runs.append((wait0, ser, copies))
                elif ser > 0.0:
                    self._obs_egress_zero += 1
                    if copies > 1:
                        self._obs_egress_runs.append((ser, ser, copies - 1))
                else:
                    self._obs_egress_zero += copies
            return
        # ---- generic path: adversary, lossy links, or engine="generic" ----
        latency = self.latency
        latency_delay = latency.delay
        latency_sample = latency.sample if self._lossy else None
        ser = size * 8.0 / node_bw[src] if node_bw is not None else 0.0
        if obs_on:
            obs_waits_append = self._obs_egress_waits.append
            obs_zero = 0
        for dst in range(n):
            if dst == src:
                if include_self:
                    push(queue, (now, seq, _DELIVER, src, dst, msg))
                    seq += 1
                continue
            if adversary is not None:
                verdict = adversary.on_send(src, dst, msg, now)
                if verdict is None:
                    self.stats.messages_dropped += 1
                    if obs_on:
                        self._obs_counts(msg.__class__)[3] += 1
                        self.obs.journal.emit(
                            now, "adversary.drop", src,
                            dst=dst, msg=type(msg).__name__,
                        )
                    continue
                extra_delay = verdict
                if extra_delay > 0.0 and obs_on:
                    self._h_adv_delay.observe(extra_delay)
                    self.obs.journal.emit(
                        now, "adversary.delay", src,
                        dst=dst, msg=type(msg).__name__, delay_s=extra_delay,
                    )
            else:
                extra_delay = 0.0
            if node_bw is not None:
                free = egress[src]
                start = free if free > now else now
                finish = start + ser
                egress[src] = finish
                if obs_on:
                    if start > now:
                        obs_waits_append(start - now)
                    else:
                        obs_zero += 1
            else:
                finish = now
            if latency_sample is not None:
                d = latency_sample(src, dst, rng, now)
                if d is None:
                    self.stats.messages_dropped += 1
                    if obs_on:
                        self._obs_counts(msg.__class__)[3] += 1
                    continue
            else:
                d = latency_delay(src, dst, rng)
            arrival = finish + d + extra_delay
            push(queue, (arrival, seq, _DELIVER, src, dst, msg))
            seq += 1
        self._seq = seq
        if obs_on and obs_zero:
            self._obs_egress_zero += obs_zero

    def _enqueue_broadcast_numpy(
        self,
        src: int,
        msg: Message,
        size: int,
        include_self: bool,
        row: List[float],
        np_rows: dict,
    ) -> bool:
        """Vectorized delivery batch (engine="numpy"): False to decline.

        Builds the whole fan-out as arrays — jitter draws, NIC chain,
        arrival sort — and pushes a single ``_BATCH`` heap entry instead
        of n − 1 copies.  Bit-identical to the flat loop by construction:

        * the uniforms come from the same ``rng.random()`` stream in the
          same order, and ``uniform(a, b) == a + (b − a) * random()`` is
          applied elementwise in the scalar path's exact op order;
        * the NIC serialization chain is ``cumsum`` over per-copy service
          times (sequential adds — exactly the loop's running sum);
        * the batch is sorted by arrival with a *stable* sort (seqs are
          ascending pre-sort), so its pop order is the heap's
          ``(when, seq)`` order.

        Declines rows that mix zero and non-zero bases under non-zero
        jitter: the scalar path skips the draw for zero-base copies, so
        vectorizing would desynchronize the RNG stream.  All-zero rows
        and zero-jitter models draw nothing and vectorize fine.
        """
        np = _numpy()
        entry = np_rows.get(src)
        if entry is None:
            n = len(row)
            jfrac = self._flat_jitter
            bases = [b for dst, b in enumerate(row) if dst != src]
            nonzero = sum(1 for b in bases if b != 0.0)
            if jfrac != 0.0 and 0 < nonzero < len(bases):
                entry = np_rows[src] = ()
            else:
                dsts = [d for d in range(n) if d != src]
                entry = np_rows[src] = (
                    np.asarray(bases, dtype=np.float64),
                    np.asarray(dsts, dtype=np.int64),
                    np.arange(len(dsts), dtype=np.int64),
                    jfrac != 0.0 and nonzero == len(bases),
                )
        if not entry:
            return False
        base_arr, dst_arr, arange_k, draw = entry
        k = len(dst_arr)
        if draw:
            rnd = self.rng.random
            draws = np.asarray([rnd() for _ in range(k)], dtype=np.float64)
            jfrac = self._flat_jitter
            neg = -jfrac
            jitters = neg + (jfrac - neg) * draws
            delays = base_arr * (1.0 + jitters)
        else:
            # jfrac == 0 or every base is 0: delay == base, no draws.
            delays = base_arr
        now = self.now
        node_bw = self._node_bw
        if node_bw is not None:
            egress = self._egress_free
            ser = size * 8.0 / node_bw[src]
            free = egress[src]
            start0 = free if free > now else now
            chain = np.full(k, ser, dtype=np.float64)
            chain[0] = start0 + ser
            finishes = np.cumsum(chain)
            arrivals = finishes + delays
            egress[src] = float(finishes[-1])
        else:
            arrivals = now + delays
        # Seq assignment matches the scalar loop: one seq per destination
        # in ascending dst order, with src's position consumed by the
        # self-delivery (when included) or skipped entirely.
        seq = self._seq
        seqs = (seq + dst_arr) if include_self else (seq + arange_k)
        order = np.argsort(arrivals, kind="stable")
        payload = (
            arrivals[order].tolist(),
            seqs[order].tolist(),
            dst_arr[order].tolist(),
            msg,
        )
        queue = self._queue
        if include_self:
            _heappush(queue, (now, seq + src, _DELIVER, src, src, msg))
            self._seq = seq + k + 1
        else:
            self._seq = seq + k
        _heappush(queue, (payload[0][0], payload[1][0], _BATCH, src, 0, payload))
        return True

    def _enqueue_timer(self, node_id: int, delay: float, tag: str, data: Any) -> None:
        if delay < 0:
            raise SimulationError(f"negative timer delay {delay}")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._queue, (self.now + delay, seq, _TIMER, node_id, tag, data)
        )

    def call_at(self, at: float, fn: Callable[["Simulation"], None]) -> None:
        """Schedule ``fn(self)`` at absolute simulated time ``at``.

        The hook external drivers (client populations, workload injectors)
        use to act at exact simulated instants without owning a replica:
        the callback runs inside the event loop, interleaved deterministically
        with deliveries and timers, and may submit work, read state, or
        schedule further callbacks.  Callbacks survive crashes (they belong
        to the harness, not to any node).
        """
        if at < self.now:
            raise SimulationError(
                f"callback scheduled in the past ({at} < now={self.now})"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (at, seq, _TIMER, -1, "__call__", fn))

    # -- fault injection -----------------------------------------------------

    def crash(self, node_id: int, at: float | None = None) -> None:
        """Crash a replica now or at a future time.

        A crashed replica stops sending, receiving, and firing timers; its
        state is left intact (crash-stop, not crash-recovery).
        """
        if at is None or at <= self.now:
            self._crashed.add(node_id)
        else:
            seq = self._seq
            self._seq = seq + 1
            heapq.heappush(
                self._queue, (at, seq, _TIMER, node_id, "__crash__", None)
            )

    @property
    def crashed(self) -> frozenset:
        return frozenset(self._crashed)

    # -- run loop --------------------------------------------------------------

    def start(self) -> None:
        """Invoke every node's ``on_start`` (idempotent)."""
        if self._started:
            return
        self._started = True
        for node in self.nodes:
            if node.node_id not in self._crashed:
                node.on_start()

    def run(
        self,
        until: float | None = None,
        max_events: int = 50_000_000,
        stop_when: Callable[["Simulation"], bool] | None = None,
    ) -> SimulationStats:
        """Process events until the queue drains, time passes ``until``,
        the event budget is hit, or ``stop_when(sim)`` returns True.

        ``stop_when`` is evaluated after each event — use it for
        "run until every replica committed k blocks" style experiments.
        ``events_processed``/``messages_delivered`` are accumulated in
        loop locals and flushed to :attr:`stats` before every
        ``stop_when`` probe, on budget exhaustion, and at loop exit —
        the counters are exact at every point foreign code can observe
        them.
        """
        self.start()
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        replace = heapq.heapreplace
        crashed = self._crashed
        stats = self.stats
        cpu = self.cpu
        cpu_cost = cpu.cost if cpu is not None else None
        cpu_free = self._cpu_free
        cpu_waits = self._obs_cpu_waits
        obs_on = self._obs_on
        # Causal tracer (None unless requested): trace.enabled implies
        # obs_on, so the emit below hides inside the staged-obs branch and
        # the tracing-off run loop pays nothing beyond that branch.
        trace = self.obs.trace if self.obs.trace.enabled else None
        limit = until if until is not None else math.inf
        deliver, process, batch = _DELIVER, _PROCESS, _BATCH
        # Handlers prebound once per run(): one attribute hop per event
        # instead of two.  Crash-stop goes through ``crashed``, never
        # through the node table, so the bindings stay valid all run.
        on_message = [node.on_message for node in self.nodes]
        on_timer = [node.on_timer for node in self.nodes]
        processed = 0
        flushed = 0
        delivered = 0
        while queue:
            head = queue[0]
            when = head[0]
            if when > limit:
                # Beyond the horizon: leave the event queued and stop.
                self.now = until
                break
            self.now = when
            kind = head[2]
            if kind == deliver:
                pop(queue)
                dst = head[4]
                src = head[3]
                if dst in crashed:
                    if obs_on and src != dst:
                        self._obs_counts(head[5].__class__)[2] += 1
                elif cpu_cost is not None and src != dst:
                    msg = head[5]
                    cost = cpu_cost(msg.wire_size())
                    free = cpu_free[dst]
                    if free <= when:
                        # CPU idle: hand over now; this message's cost
                        # delays whatever arrives next.
                        cpu_free[dst] = when + cost
                        delivered += 1
                        on_message[dst](src, msg)
                    else:
                        # CPU busy: requeue behind the backlog.
                        if obs_on:
                            cpu_waits.append(free - when)
                            if trace is not None:
                                trace.emit(
                                    when, "trace.cpu_wait", dst,
                                    wait=free - when,
                                    msg=msg.__class__.__name__,
                                )
                        ready = free + cost
                        cpu_free[dst] = ready
                        seq = self._seq
                        self._seq = seq + 1
                        push(queue, (ready, seq, process, src, dst, msg))
                else:
                    delivered += 1
                    on_message[dst](src, head[5])
            elif kind == batch:
                # One broadcast, one heap entry: deliver arrivals[idx],
                # then advance the cursor with a single heapreplace sift
                # (cheaper than pop + push).  Batches never contain the
                # self-delivery, so src != dst throughout.
                payload = head[5]
                idx = head[4]
                src = head[3]
                arrivals = payload[0]
                nxt = idx + 1
                if nxt < len(arrivals):
                    replace(
                        queue,
                        (arrivals[nxt], payload[1][nxt], batch, src, nxt, payload),
                    )
                else:
                    pop(queue)
                dst = payload[2][idx]
                if dst in crashed:
                    if obs_on:
                        self._obs_counts(payload[3].__class__)[2] += 1
                elif cpu_cost is not None:
                    msg = payload[3]
                    cost = cpu_cost(msg.wire_size())
                    free = cpu_free[dst]
                    if free <= when:
                        cpu_free[dst] = when + cost
                        delivered += 1
                        on_message[dst](src, msg)
                    else:
                        if obs_on:
                            cpu_waits.append(free - when)
                            if trace is not None:
                                trace.emit(
                                    when, "trace.cpu_wait", dst,
                                    wait=free - when,
                                    msg=msg.__class__.__name__,
                                )
                        ready = free + cost
                        cpu_free[dst] = ready
                        seq = self._seq
                        self._seq = seq + 1
                        push(queue, (ready, seq, process, src, dst, msg))
                else:
                    delivered += 1
                    on_message[dst](src, payload[3])
            elif kind == process:
                pop(queue)
                dst = head[4]
                if dst in crashed:
                    if obs_on and head[3] != dst:
                        self._obs_counts(head[5].__class__)[2] += 1
                else:
                    delivered += 1
                    on_message[dst](head[3], head[5])
            else:  # timer
                pop(queue)
                node_id = head[3]
                tag = head[4]
                if tag == "__crash__":
                    crashed.add(node_id)
                elif node_id < 0:
                    # Harness callback (call_at): no owning replica.
                    head[5](self)
                elif node_id not in crashed:
                    on_timer[node_id](tag, head[5])
            processed += 1
            if processed >= max_events:
                stats.events_processed += processed - flushed
                stats.messages_delivered += delivered
                raise SimulationError(
                    f"event budget {max_events} exhausted at t={self.now:.3f}s "
                    f"({len(queue)} events pending) — runaway protocol?"
                )
            if stop_when is not None:
                stats.events_processed += processed - flushed
                flushed = processed
                stats.messages_delivered += delivered
                delivered = 0
                if stop_when(self):
                    break
        stats.events_processed += processed - flushed
        stats.messages_delivered += delivered
        stats.final_time = self.now
        if obs_on:
            self._obs_flush()
        return stats

    def _dispatch(self, kind: int, payload: tuple) -> None:
        """Process one event given as ``(kind, (a, b, c))``.

        Compatibility shim over the inlined run-loop logic — tests and
        tools that single-step events use it; :meth:`run` does not.
        """
        a, b, c = payload
        if kind == _DELIVER:
            src, dst, msg = a, b, c
            if dst in self._crashed:
                if self._obs_on and src != dst:
                    self._obs_counts(msg.__class__)[2] += 1
                return
            if self.cpu is not None and src != dst:
                cost = self.cpu.cost(msg.wire_size())
                if self._cpu_free[dst] <= self.now:
                    self._cpu_free[dst] = self.now + cost
                else:
                    if self._obs_on:
                        self._obs_cpu_waits.append(self._cpu_free[dst] - self.now)
                        if self.obs.trace.enabled:
                            self.obs.trace.emit(
                                self.now, "trace.cpu_wait", dst,
                                wait=self._cpu_free[dst] - self.now,
                                msg=msg.__class__.__name__,
                            )
                    ready = self._cpu_free[dst] + cost
                    self._cpu_free[dst] = ready
                    seq = self._seq
                    self._seq = seq + 1
                    heapq.heappush(self._queue, (ready, seq, _PROCESS, src, dst, msg))
                    return
            self.stats.messages_delivered += 1
            self.nodes[dst].on_message(src, msg)
        elif kind == _PROCESS:
            src, dst, msg = a, b, c
            if dst in self._crashed:
                if self._obs_on and src != dst:
                    self._obs_counts(msg.__class__)[2] += 1
                return
            self.stats.messages_delivered += 1
            self.nodes[dst].on_message(src, msg)
        else:
            node_id, tag, data = a, b, c
            if tag == "__crash__":
                self._crashed.add(node_id)
                return
            if node_id < 0:
                data(self)
                return
            if node_id in self._crashed:
                return
            self.nodes[node_id].on_timer(tag, data)

    @property
    def pending_events(self) -> int:
        """Undelivered events in the queue (batch entries count each
        remaining arrival, so the number is representation-independent)."""
        extra = 0
        for ev in self._queue:
            if ev[2] == _BATCH:
                extra += len(ev[5][0]) - ev[4] - 1
        return len(self._queue) + extra

    def snapshot(self, extra_roots: Sequence[object] = ()) -> "SimulatorSnapshot":
        """Capture a restorable snapshot of the whole world (see
        :class:`SimulatorSnapshot`).  ``extra_roots`` adds harness-side
        stateful objects (invariant monitor, metrics collector, mempools)
        whose state must travel with the simulation."""
        return SimulatorSnapshot(self, extra_roots=extra_roots)


class SimulatorSnapshot:
    """Copy-on-branch snapshot/restore of a :class:`Simulation` world.

    The model-checking explorer (:mod:`repro.check.explorer`) branches a
    run at every scheduling decision: capture once, execute one candidate
    event, recurse, restore, execute the next.  That forces a precise
    definition of "the world":

    * **Roots** — objects whose ``__dict__`` is captured and written back
      in place on restore: the simulation itself, every node, the attached
      adversary, and caller-supplied ``extra_roots`` (invariant monitor,
      metrics collector, mempools).  Restoring *in place* is what keeps
      closures and bound methods alive — the harness wires callbacks like
      ``monitor.wrap_commit`` and ``tracker._on_deliver`` (a node's bound
      method) at construction time, and those references must stay valid
      across every restore.
    * **Pins** — objects deep-copied *by identity* (the memo maps them to
      themselves): the roots, each node's network facade, and the
      immutable environment (configs, wave geometry, latency model, crypto
      backend).  A bound method found in captured state re-binds to the
      pinned live object, not to a stale private copy.
    * **Values** — blocks, batches, messages, and the Schnorr group define
      ``__deepcopy__ = self`` (they are frozen), and observability objects
      are shared sinks that alias themselves; both fall out of the copy
      automatically.

    Two deliberate exclusions keep snapshots cheap without affecting
    behaviour: the crypto backend's verification memo is shared across
    branches (it caches only *successful* verifications of immutable
    signatures — a branch can observe speed, never a different verdict),
    and observability counters keep accumulating across restores (they are
    telemetry about the exploration, not simulation state).

    One snapshot may be restored any number of times: every restore
    materializes the captured state afresh, so branches never alias each
    other's mutable state.

    Mechanically, capture pickles the root ``__dict__``s with a
    ``persistent_id`` hook that swaps every pinned object, callable, and
    self-aliasing value (``__deepcopy__`` returning ``self``) for an index
    into a live-object table — the C pickler walks the mutable state an
    order of magnitude faster than ``copy.deepcopy``, which profiling
    shows is where a model-checking run otherwise spends ~90% of its
    time.  State that refuses to pickle falls back to the original
    deepcopy-with-memo path; both produce bit-identical restores (the
    snapshot property suite exercises whichever path is active).
    """

    #: Per-node attributes pinned by identity (immutable environment).
    _NODE_PINS = ("obs", "system", "protocol", "backend", "wave")

    __slots__ = ("_roots", "_pins", "_table", "_table_ids", "_state", "_blob")

    def __init__(
        self, sim: Simulation, extra_roots: Sequence[object] = ()
    ) -> None:
        roots: List[object] = [sim]
        roots.extend(sim.nodes)
        if sim.adversary is not None:
            roots.append(sim.adversary)
        for root in extra_roots:
            if root is not None:
                roots.append(root)
        pins: dict = {}

        def pin(obj: object) -> None:
            if obj is not None:
                pins[id(obj)] = obj

        for root in roots:
            if not hasattr(root, "__dict__"):
                raise SimulationError(
                    f"snapshot root {root!r} has no __dict__ to capture "
                    "(slotted objects must be reached through a pin instead)"
                )
            pin(root)
        pin(sim.latency)
        pin(sim.obs)
        pin(NULL_OBS)
        for node in sim.nodes:
            pin(getattr(node, "net", None))
            for name in self._NODE_PINS:
                pin(getattr(node, name, None))
        self._roots = roots
        self._pins = pins
        self._table: List[object] = list(pins.values())
        self._table_ids: dict = {
            id(obj): i for i, obj in enumerate(self._table)
        }
        self._state: Optional[list] = None
        self._blob: Optional[bytes] = None
        try:
            buf = io.BytesIO()
            _SnapshotPickler(buf, self).dump(
                [root.__dict__ for root in roots]
            )
            self._blob = buf.getvalue()
        except (pickle.PicklingError, TypeError, AttributeError):
            # One shared memo across all roots so aliasing *between* roots
            # (e.g. a monitor holding the node list) is preserved exactly.
            memo = dict(pins)
            self._state = [
                copy.deepcopy(root.__dict__, memo) for root in roots
            ]

    def _persistent_id(self, obj: object) -> Optional[int]:
        """Swap shared identities out of the pickled graph.

        Pinned objects, callables (closures and bound methods capture only
        roots or immutable values — exactly the contract the deepcopy path
        relies on, which treats functions as atoms), and frozen values
        whose ``__deepcopy__`` returns ``self`` are stored as indexes into
        the live-object table and resolved back by identity on restore.

        The pickler consults this hook for *every* object it encounters,
        so the type-level verdict is cached in :data:`_PIN_BY_TYPE` — the
        common case (plain data) costs two dict lookups.
        """
        idx = self._table_ids.get(id(obj))
        if idx is not None:
            return idx
        cls = obj.__class__
        pin = _PIN_BY_TYPE.get(cls)
        if pin is None:
            pin = _PIN_BY_TYPE[cls] = bool(
                callable(obj) or getattr(cls, "__deepcopy__", None)
            )
        if pin:
            idx = len(self._table)
            self._table.append(obj)
            self._table_ids[id(obj)] = idx
            return idx
        return None

    def restore(self) -> None:
        """Rewind every root to the captured state, in place."""
        if self._blob is not None:
            unpickler = _SnapshotUnpickler(io.BytesIO(self._blob), self)
            fresh = unpickler.load()
        else:
            memo = dict(self._pins)
            fresh = [copy.deepcopy(state, memo) for state in self._state]
        for root, state in zip(self._roots, fresh):
            root.__dict__.clear()
            root.__dict__.update(state)


#: class → "pin by identity" verdict: callables and self-aliasing frozen
#: values (types defining ``__deepcopy__``, which in this codebase always
#: return ``self``).  Shared across snapshots — it is a property of the
#: type, not of the run.
_PIN_BY_TYPE: dict = {}


class _SnapshotPickler(pickle.Pickler):
    def __init__(self, buf: io.BytesIO, snap: SimulatorSnapshot) -> None:
        super().__init__(buf, protocol=pickle.HIGHEST_PROTOCOL)
        self._snap = snap

    def persistent_id(self, obj: object) -> Optional[int]:
        return self._snap._persistent_id(obj)


class _SnapshotUnpickler(pickle.Unpickler):
    def __init__(self, buf: io.BytesIO, snap: SimulatorSnapshot) -> None:
        super().__init__(buf)
        self._snap = snap

    def persistent_load(self, pid: int) -> object:
        return self._snap._table[pid]


class AdversaryProtocol:
    """Structural interface the simulator expects from adversaries.

    Kept here (rather than in :mod:`repro.adversary`) to avoid an import
    cycle; real adversaries subclass :class:`repro.adversary.base.Adversary`
    which conforms to this.
    """

    def attach(self, sim: Simulation) -> None:  # pragma: no cover - interface
        """Called once after nodes are constructed."""

    def on_send(
        self, src: int, dst: int, msg: Message, now: float
    ) -> float | None:  # pragma: no cover - interface
        """Return extra delay in seconds, or ``None`` to drop the message."""
        return 0.0
