"""Tests for repro.net.sizes: the wire-size model."""

from repro.net import sizes


class TestBlockWireSize:
    def test_monotone_in_parents(self):
        a = sizes.block_wire_size(3, 0, 128)
        b = sizes.block_wire_size(4, 0, 128)
        assert b - a == sizes.DIGEST_SIZE

    def test_monotone_in_txs(self):
        a = sizes.block_wire_size(3, 100, 128)
        b = sizes.block_wire_size(3, 101, 128)
        assert b - a == 128

    def test_proof_cost(self):
        a = sizes.block_wire_size(3, 0, 128, num_proofs=0)
        b = sizes.block_wire_size(3, 0, 128, num_proofs=1)
        assert b > a

    def test_determination_cost(self):
        a = sizes.block_wire_size(3, 0, 128)
        b = sizes.block_wire_size(3, 0, 128, num_determinations=2)
        assert b - a == 2 * (2 * sizes.INT_SIZE + sizes.DIGEST_SIZE)

    def test_header_floor(self):
        assert sizes.block_wire_size(0, 0, 0) >= sizes.HEADER_OVERHEAD

    def test_batch_dominates_large_blocks(self):
        # A 1000-tx batch at 128B dwarfs everything else — the regime the
        # paper's batch-size sweep operates in.
        total = sizes.block_wire_size(22, 1000, 128)
        assert 1000 * 128 / total > 0.9
