"""Network substrate: message model, latency models, simulator, asyncio runtime.

The paper's testbed is 4-continent Alibaba Cloud VMs on 100 Mbps
peer-to-peer links.  This package reproduces that environment two ways:

* :mod:`repro.net.simulator` — a deterministic discrete-event simulator
  with WAN propagation delays and a shared-egress bandwidth model.  All
  benchmark figures are produced here (reproducible, seedable, fast).
* :mod:`repro.net.asyncnet` — an asyncio runtime that runs the very same
  protocol ``Node`` objects over real in-process (or TCP) channels — the
  "prototype system" flavour of §VI.

Protocols never import either runtime; they are written against the
:class:`repro.net.interfaces.NetworkAPI` abstraction.
"""

from .interfaces import BROADCAST, Message, NetworkAPI, Node
from .latency import (
    FactoredLatency,
    FixedLatency,
    LatencyModel,
    TopologyLatency,
    UniformLatency,
    WanLatency,
    make_latency_model,
    parse_latency_spec,
    register_latency_model,
)
from .simulator import Simulation, SimulationStats

__all__ = [
    "BROADCAST",
    "FactoredLatency",
    "FixedLatency",
    "LatencyModel",
    "Message",
    "NetworkAPI",
    "Node",
    "Simulation",
    "SimulationStats",
    "TopologyLatency",
    "UniformLatency",
    "WanLatency",
    "make_latency_model",
    "parse_latency_spec",
    "register_latency_model",
]
