# LightDAG reproduction — developer entry points.

PYTHON ?= python

.PHONY: install test bench bench-full examples table1 figs clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

bench-full:
	REPRO_BENCH_SCALE=full $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/byzantine_equivocation.py
	$(PYTHON) examples/kv_store.py
	$(PYTHON) examples/wan_prototype.py
	$(PYTHON) examples/smr_service.py

table1:
	$(PYTHON) -m repro table1

figs:
	$(PYTHON) -m repro fig 12 --small
	$(PYTHON) -m repro fig 13 --small

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
