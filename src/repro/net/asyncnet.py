"""Asyncio runtime: the same protocol nodes over real async channels.

The discrete-event simulator is the measurement instrument; this module is
the *prototype system* (§VI implements one in Golang): every replica runs
as an asyncio task with an inbox queue, messages travel through the event
loop with optional injected latency, and handlers execute on wall-clock
time.  Because protocols are sans-I/O :class:`~repro.net.interfaces.Node`
state machines, **exactly the same protocol code** runs here and under the
simulator — the property the whole layering exists for.

Scope: in-process channels (queues) — the paper's distributed deployment
is reproduced by the simulator's WAN model instead, per DESIGN.md §2.  The
runtime still exercises everything a multi-process deployment would except
serialization: concurrency, reordering, backpressure, and real time.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, List, Optional, Sequence

from ..errors import NetworkError
from .interfaces import Message, NetworkAPI, Node, NodeFactory
from .latency import LatencyModel


class _AsyncNetworkAPI(NetworkAPI):
    """Per-node facade over the cluster."""

    def __init__(self, cluster: "AsyncCluster", node_id: int) -> None:
        self._cluster = cluster
        self._node_id = node_id

    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def n(self) -> int:
        return len(self._cluster.inboxes)

    def now(self) -> float:
        return self._cluster.now()

    def send(self, dst: int, msg: Message) -> None:
        self._cluster.post(self._node_id, dst, msg)

    def set_timer(self, delay: float, tag: str, data: Any = None) -> None:
        self._cluster.post_timer(self._node_id, delay, tag, data)


class AsyncCluster:
    """A set of protocol nodes wired through asyncio queues.

    Parameters
    ----------
    factories:
        One node factory per replica (same signature as the simulator's).
    latency_model:
        Optional injected propagation delay per message (None = deliver on
        the next loop tick).  Useful to make the prototype behave like a
        WAN without leaving the process.
    seed:
        Seed for latency jitter.
    """

    def __init__(
        self,
        factories: Sequence[NodeFactory],
        latency_model: Optional[LatencyModel] = None,
        seed: int = 0,
    ) -> None:
        self.latency = latency_model
        self.rng = random.Random(f"asyncnet:{seed}")
        self.inboxes: List[asyncio.Queue] = [asyncio.Queue() for _ in factories]
        self.nodes: List[Node] = [
            factory(_AsyncNetworkAPI(self, i)) for i, factory in enumerate(factories)
        ]
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._start_time = 0.0
        self._tasks: List[asyncio.Task] = []
        self._running = False
        self.messages_delivered = 0

    # -- time ----------------------------------------------------------------

    def now(self) -> float:
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._start_time

    # -- posting -------------------------------------------------------------

    def post(self, src: int, dst: int, msg: Message) -> None:
        if not self._running:
            raise NetworkError("cluster is not running")
        if not 0 <= dst < len(self.inboxes):
            raise NetworkError(f"invalid destination {dst}")
        delay = 0.0
        if self.latency is not None and src != dst:
            delay = self.latency.delay(src, dst, self.rng)
        item = ("msg", src, msg)
        if delay <= 0:
            self.inboxes[dst].put_nowait(item)
        else:
            assert self._loop is not None
            self._loop.call_later(delay, self.inboxes[dst].put_nowait, item)

    def post_timer(self, node_id: int, delay: float, tag: str, data: Any) -> None:
        if not self._running:
            raise NetworkError("cluster is not running")
        assert self._loop is not None
        item = ("timer", tag, data)
        if delay <= 0:
            self.inboxes[node_id].put_nowait(item)
        else:
            self._loop.call_later(delay, self.inboxes[node_id].put_nowait, item)

    # -- run loop --------------------------------------------------------------

    async def _consume(self, node_id: int) -> None:
        node = self.nodes[node_id]
        inbox = self.inboxes[node_id]
        while True:
            item = await inbox.get()
            kind = item[0]
            if kind == "msg":
                _, src, msg = item
                self.messages_delivered += 1
                node.on_message(src, msg)
            elif kind == "timer":
                _, tag, data = item
                node.on_timer(tag, data)
            else:  # pragma: no cover - defensive
                raise NetworkError(f"unknown inbox item {kind!r}")

    async def run(self, duration: float) -> None:
        """Start every node and run for ``duration`` wall-clock seconds."""
        self._loop = asyncio.get_running_loop()
        self._start_time = self._loop.time()
        self._running = True
        try:
            for node in self.nodes:
                node.on_start()
            self._tasks = [
                asyncio.create_task(self._consume(i)) for i in range(len(self.nodes))
            ]
            await asyncio.sleep(duration)
        finally:
            self._running = False
            for task in self._tasks:
                task.cancel()
            await asyncio.gather(*self._tasks, return_exceptions=True)
            self._tasks = []


def run_cluster(
    factories: Sequence[NodeFactory],
    duration: float,
    latency_model: Optional[LatencyModel] = None,
    seed: int = 0,
) -> AsyncCluster:
    """Blocking convenience wrapper: build a cluster and run it."""
    cluster = AsyncCluster(factories, latency_model=latency_model, seed=seed)
    asyncio.run(cluster.run(duration))
    return cluster
