"""Integration tests for the asyncio prototype runtime.

The same protocol Node classes must behave correctly over real async
channels — this is the cross-runtime guarantee the sans-I/O layering buys.
"""

import asyncio

import pytest

from repro.config import ExperimentConfig, ProtocolConfig, SystemConfig
from repro.errors import ConfigError
from repro.replica.runtime import build_async_experiment, run_async_experiment


def config(protocol="lightdag2", n=4, duration=1.5, latency="lan", batch=20):
    return ExperimentConfig(
        system=SystemConfig(n=n, crypto="hmac", seed=1),
        protocol=ProtocolConfig(batch_size=batch),
        protocol_name=protocol,
        duration=duration,
        warmup=0.3,
        latency_model=latency,
        seed=1,
    )


class TestAsyncExperiments:
    @pytest.mark.parametrize("protocol", ["lightdag1", "lightdag2", "tusk"])
    def test_protocols_commit_over_asyncio(self, protocol):
        summary = run_async_experiment(config(protocol))
        assert summary["throughput_tps"] > 0
        assert summary["committed_txs"] > 0

    def test_safety_verified_across_replicas(self):
        experiment = build_async_experiment(config())
        asyncio.run(experiment.run())
        experiment.verify_safety()  # raises on divergence
        ledgers = experiment.ledgers()
        assert all(len(ledger) > 0 for ledger in ledgers)

    def test_summary_fields(self):
        summary = run_async_experiment(config())
        assert set(summary) == {
            "throughput_tps", "mean_latency_s", "committed_txs", "messages",
        }
        assert summary["mean_latency_s"] > 0

    def test_adversarial_configs_rejected(self):
        cfg = config().with_updates(adversary_name="crash")
        with pytest.raises(ConfigError, match="favorable"):
            build_async_experiment(cfg)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigError):
            build_async_experiment(config().with_updates(protocol_name="raft"))

    def test_injected_wan_latency_slows_commits(self):
        fast = run_async_experiment(config(latency="lan", duration=1.5))
        slow = run_async_experiment(config(latency="wan4", duration=1.5))
        assert slow["mean_latency_s"] > fast["mean_latency_s"]
