"""System- and protocol-level configuration objects.

Two dataclasses cover everything an experiment needs:

* :class:`SystemConfig` — the replica set: ``n``, ``f``, crypto backend
  selection, and the quorum helpers shared by every protocol in the family
  (``n - f`` availability quorum, ``f + 1`` honest-intersection quorum).

* :class:`ProtocolConfig` — the knobs the paper either fixes or leaves
  ambiguous: the direct-commit threshold (f+1 in the main text, 2f+1 in
  Algorithm 1), the GPC reveal threshold ("typically larger than f+1"),
  batch size, and retrieval behaviour.  Defaults follow the main text; the
  ablation benches sweep the alternatives.

Both classes validate eagerly at construction so a bad experiment fails at
setup time instead of deep inside a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from .errors import ConfigError

#: Transaction size used throughout the paper's evaluation (bytes, §VI-A).
DEFAULT_TX_SIZE = 128

#: Link bandwidth used in the paper's testbed (bits/second, §VI-A).
DEFAULT_BANDWIDTH_BPS = 100_000_000


def quorum_for(n: int, f: int) -> int:
    """Availability quorum ``n - f``: messages a replica can always await."""
    return n - f


def validity_quorum_for(n: int, f: int) -> int:
    """Honest-intersection quorum ``f + 1``: at least one non-faulty member."""
    return f + 1


@dataclass(frozen=True)
class SystemConfig:
    """Static description of the replica set.

    Parameters
    ----------
    n:
        Total number of replicas.  Must satisfy ``n >= 3f + 1``.
    f:
        Maximum number of Byzantine replicas tolerated.  If omitted it is
        derived as ``(n - 1) // 3``, the largest tolerable value.
    crypto:
        Crypto backend name: ``"schnorr"`` (real signatures over a safe-prime
        group), ``"hmac"`` (keyed-MAC stand-in, fast), or ``"null"``
        (size-accounted no-op, for very large simulations).
    seed:
        Master seed for deterministic key generation and coin setup.
    retry_base:
        §IV-A retrieval: base retry delay in seconds.  Retry ``k`` of a
        missing block waits ``retry_base * 2^k`` (exponent capped) plus
        deterministic jitter.
    retry_cap:
        §IV-A retrieval: retries per missing block before the request is
        abandoned (revivable on fresh evidence) — the bound the
        no-infinite-retry-loop guarantee rests on.
    fanout_after:
        §IV-A retrieval: single-target retries before escalating to an
        ``f + 1`` fan-out, so at least one honest holder is asked even if
        every earlier target was Byzantine.
    max_response_blocks:
        §IV-A retrieval: responder-side cap on blocks per
        ``RetrievalResponse``; larger answers are chunked across messages.
    """

    n: int
    f: int = -1
    crypto: str = "hmac"
    seed: int = 0
    retry_base: float = 0.5
    retry_cap: int = 8
    fanout_after: int = 3
    max_response_blocks: int = 16

    def __post_init__(self) -> None:
        if self.f < 0:
            object.__setattr__(self, "f", (self.n - 1) // 3)
        if self.n < 1:
            raise ConfigError(f"need at least one replica, got n={self.n}")
        if self.n < 3 * self.f + 1:
            raise ConfigError(
                f"n={self.n} cannot tolerate f={self.f} Byzantine replicas "
                f"(requires n >= 3f + 1 = {3 * self.f + 1})"
            )
        if self.crypto not in ("schnorr", "hmac", "null"):
            raise ConfigError(f"unknown crypto backend {self.crypto!r}")
        if self.retry_base <= 0:
            raise ConfigError(f"retry_base must be positive, got {self.retry_base}")
        if self.retry_cap < 1:
            raise ConfigError(f"retry_cap must be >= 1, got {self.retry_cap}")
        if self.fanout_after < 1:
            raise ConfigError(
                f"fanout_after must be >= 1, got {self.fanout_after}"
            )
        if self.max_response_blocks < 1:
            raise ConfigError(
                f"max_response_blocks must be >= 1, got {self.max_response_blocks}"
            )

    @property
    def quorum(self) -> int:
        """``n - f``: blocks/echoes a replica waits for before progressing."""
        return quorum_for(self.n, self.f)

    @property
    def validity_quorum(self) -> int:
        """``f + 1``: smallest set guaranteed to contain a non-faulty replica."""
        return validity_quorum_for(self.n, self.f)

    @property
    def replica_ids(self) -> range:
        """Identifiers ``0 .. n-1``."""
        return range(self.n)

    def with_updates(self, **kwargs: Any) -> "SystemConfig":
        """Return a copy with the given fields replaced (validated again)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunable protocol parameters shared by LightDAG and the baselines.

    Attributes
    ----------
    batch_size:
        Transactions per block; the paper sweeps 100..1000 (Fig. 12/14).
    tx_size:
        Bytes per transaction (128 in the paper, §VI-A).
    commit_threshold:
        Direct-commit support for LightDAG1 / Tusk-style rules, expressed as
        one of ``"f+1"`` or ``"2f+1"``.  The paper's main text uses f+1 for
        LightDAG1; Algorithm 1 in the appendix says 2f+1 — we default to the
        main text and expose the alternative for the ablation bench.
    coin_threshold:
        GPC reveal threshold, ``"f+1"`` or ``"2f+1"`` (paper: "typically set
        to a value larger than f+1"; default 2f+1).
    merge_wave_boundary:
        LightDAG1 only: share round ⟨w,3⟩ with ⟨w+1,1⟩ as in §III-C.  The
        ablation bench disables it to measure its latency contribution.
    retrieval_enabled:
        Enable the §IV-A block retrieval mechanism.  Disabling it is only
        safe in failure-free synchronous runs (used by one ablation).
    max_block_txs:
        Hard cap on transactions a single block may carry (back-pressure).
    gc_depth:
        DAG garbage collection horizon in rounds, or ``None`` (keep
        everything — the paper's prototype behaviour).  When set, a
        committing leader only sweeps in uncommitted ancestors within
        ``gc_depth`` rounds below its own round (a *deterministic* cutoff,
        so all replicas commit identical sets), and blocks older than the
        settled frontier minus the depth are physically pruned.  This is
        the Narwhal-style memory bound a long-running deployment needs.
    """

    batch_size: int = 400
    tx_size: int = DEFAULT_TX_SIZE
    commit_threshold: str = "f+1"
    coin_threshold: str = "2f+1"
    merge_wave_boundary: bool = True
    retrieval_enabled: bool = True
    max_block_txs: int = 100_000
    gc_depth: "int | None" = None
    #: DAG-Rider-style *weak links*: in addition to its n−f previous-round
    #: parents, a block may reference delivered blocks from older rounds
    #: that are not yet in the proposer's own ancestry — so a slow
    #: replica's orphaned blocks (and their transactions) eventually
    #: commit instead of being dropped.  Fairness extension; strict-store
    #: protocols only (LightDAG2's Rule 2 assumes previous-round parents).
    weak_links: bool = False
    #: Cap on weak references per block (bandwidth bound).
    max_weak_refs: int = 8

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.tx_size < 1:
            raise ConfigError(f"tx_size must be >= 1, got {self.tx_size}")
        for name in ("commit_threshold", "coin_threshold"):
            value = getattr(self, name)
            if value not in ("f+1", "2f+1"):
                raise ConfigError(f"{name} must be 'f+1' or '2f+1', got {value!r}")
        if self.max_block_txs < self.batch_size:
            raise ConfigError(
                f"max_block_txs={self.max_block_txs} smaller than "
                f"batch_size={self.batch_size}"
            )
        if self.gc_depth is not None and self.gc_depth < 4:
            raise ConfigError(
                "gc_depth below 4 rounds would garbage-collect live waves"
            )
        if self.max_weak_refs < 0:
            raise ConfigError("max_weak_refs cannot be negative")

    def resolve_commit_threshold(self, system: SystemConfig) -> int:
        """Concrete replica count behind :attr:`commit_threshold`."""
        return _resolve(self.commit_threshold, system)

    def resolve_coin_threshold(self, system: SystemConfig) -> int:
        """Concrete replica count behind :attr:`coin_threshold`."""
        return _resolve(self.coin_threshold, system)

    def with_updates(self, **kwargs: Any) -> "ProtocolConfig":
        """Return a copy with the given fields replaced (validated again)."""
        return replace(self, **kwargs)


def _resolve(spec: str, system: SystemConfig) -> int:
    if spec == "f+1":
        return system.f + 1
    if spec == "2f+1":
        return 2 * system.f + 1
    raise ConfigError(f"unknown threshold spec {spec!r}")


@dataclass(frozen=True)
class ExperimentConfig:
    """Bundle of everything a single simulated run needs.

    This is the unit the harness sweeps over: a system, protocol knobs, the
    workload intensity, network parameters, and the run duration.  Fault
    configuration lives with the adversary objects (``repro.adversary``),
    which are constructed per-run by the harness from ``adversary_name``.
    """

    system: SystemConfig
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    protocol_name: str = "lightdag2"
    adversary_name: str = "none"
    duration: float = 20.0
    warmup: float = 2.0
    tx_rate_per_replica: float = 0.0  # 0 = saturating (always-full batches)
    #: Mempool backlog cap in transactions (open-loop mode); 0 = unbounded.
    #: With a cap, arrivals past it are shed and counted (``mempool.dropped``
    #: metric, ``mempool_dropped`` extra) instead of queued forever — the
    #: admission-control behaviour of :mod:`repro.workload.admission`.
    mempool_cap: int = 0
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    latency_model: str = "wan4"
    #: Per-message CPU cost at the receiver (µs); 0 disables the CPU model.
    #: Replica CPUs, not links, are what saturate first in real BFT
    #: deployments (every node processes Θ(n²) echo-class messages per
    #: round) — this term produces Fig. 13a's throughput decline at scale.
    cpu_fixed_us: float = 250.0
    #: Per-byte CPU cost at the receiver (ns/byte); hashing + copying.
    cpu_per_byte_ns: float = 20.0
    seed: int = 0
    #: How hard the harness checks the run (``repro.check``):
    #: ``"off"`` — no checks; ``"prefix"`` — post-run digest-prefix
    #: consistency only (historical default); ``"final"`` — prefix plus
    #: the post-run deep audit (per-node + cross-replica oracles);
    #: ``"full"`` — all of the above plus the mid-run invariant monitor
    #: on every honest replica's commit/deliver hooks.
    check_level: str = "prefix"
    #: Record the run's peak Python heap (``tracemalloc``) as the
    #: ``peak_mem_mb`` extra.  Off by default: the tracemalloc hooks tax
    #: every allocation, so this is for scalability studies (memory
    #: ceilings alongside wall-clock), not routine sweeps.
    track_memory: bool = False

    def __post_init__(self) -> None:
        if self.check_level not in ("off", "prefix", "final", "full"):
            raise ConfigError(
                f"check_level must be one of off/prefix/final/full, "
                f"got {self.check_level!r}"
            )
        if self.duration <= 0:
            raise ConfigError("duration must be positive")
        if not 0 <= self.warmup < self.duration:
            raise ConfigError("warmup must be in [0, duration)")
        if self.bandwidth_bps <= 0:
            raise ConfigError("bandwidth must be positive")
        if self.cpu_fixed_us < 0 or self.cpu_per_byte_ns < 0:
            raise ConfigError("CPU costs cannot be negative")
        if self.mempool_cap < 0:
            raise ConfigError("mempool_cap cannot be negative")

    def with_updates(self, **kwargs: Any) -> "ExperimentConfig":
        """Return a copy with the given fields replaced (validated again)."""
        return replace(self, **kwargs)
