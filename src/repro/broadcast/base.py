"""Shared machinery for the per-replica broadcast managers.

Each manager tracks one *kind* of broadcast (PBC/CBC/RBC) across all its
instances (one instance per proposed block).  The split of responsibilities
with the owning protocol node is:

* the **manager** counts messages and decides when an instance's *delivery
  predicate* is met (body present, enough echoes/readies);
* the **protocol** decides when a block is *acceptable* — structural
  validity and the §IV-A ancestor gate — and signals it by calling
  :meth:`InstanceTracker.mark_ready`.  Only blocks that are both ready and
  predicate-complete are delivered, exactly once, via the ``on_deliver``
  callback.

This keeps every protocol rule (LightDAG2's Rules 2/3 voting policy, the
retrieval gate) out of the broadcast layer, matching the paper's layering.
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Set

from ..crypto.hashing import Digest
from ..dag.block import Block
from ..obs import NULL_OBS, Observability

DeliverCallback = Callable[[Block], None]


class SetView(AbstractSet):
    """Read-only, copy-free view over a live ``set``.

    ``echoers_of`` sits on the retrieval-fallback hot path (consulted per
    retry timer and per accepted block); copying the echoer set each call
    is Θ(n) garbage per query.  The view supports membership, iteration,
    length, and the standard set algebra via :class:`collections.abc.Set`,
    but exposes no mutators — callers cannot corrupt broadcast state.  It
    is *live*: membership and length reflect later echoes, which is
    exactly what a retrying retriever wants.  Iteration snapshots the
    target when it starts, so a caller that holds the view while echoes
    arrive iterates a consistent point-in-time set rather than raising
    ``set changed size during iteration``.
    """

    __slots__ = ("_target",)

    def __init__(self, target: "Set[int] | frozenset") -> None:
        self._target = target

    def __contains__(self, item: object) -> bool:
        return item in self._target

    def __iter__(self) -> Iterator:
        # Iteration is Θ(n) regardless; the tuple snapshot only adds a
        # constant factor while making held views safe to iterate across
        # mutations of the underlying echoer set.
        return iter(tuple(self._target))

    def __len__(self) -> int:
        return len(self._target)

    @classmethod
    def _from_iterable(cls, it) -> frozenset:
        # Set-algebra results (view & other, view | other, ...) are new
        # collections, not views — materialize them.
        return frozenset(it)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SetView({set(self._target)!r})"


#: Shared empty view for digests with no instance state.
EMPTY_SET_VIEW = SetView(frozenset())


@dataclass
class InstanceState:
    """Per-block broadcast state."""

    body: Optional[Block] = None
    ready: bool = False  # protocol accepted it (ancestors present, valid)
    delivered: bool = False
    echoers: Set[int] = field(default_factory=set)
    readiers: Set[int] = field(default_factory=set)
    sent_ready: bool = False
    #: DAG round of the block, stamped opportunistically from whichever
    #: message first reveals it (body, echo, ready); -1 = not yet known.
    #: Drives :meth:`InstanceTracker.gc_below` — without it the tracker
    #: retains every instance ever seen, which is what unbounds memory on
    #: long large-n runs.
    round: int = -1


class InstanceTracker:
    """Digest-keyed instance states plus the single-delivery discipline."""

    def __init__(
        self,
        on_deliver: DeliverCallback,
        obs: Optional[Observability] = None,
        primitive: str = "",
    ) -> None:
        self._instances: Dict[Digest, InstanceState] = {}
        self._on_deliver = on_deliver
        # Per-primitive delivery accounting (no-op when uninstrumented).
        self._delivered_ctr = (obs or NULL_OBS).metrics.counter(
            "broadcast.delivered", primitive=primitive
        )

    def state(self, digest: Digest) -> InstanceState:
        inst = self._instances.get(digest)
        if inst is None:
            inst = self._instances[digest] = InstanceState()
        return inst

    def peek(self, digest: Digest) -> Optional[InstanceState]:
        return self._instances.get(digest)

    def record_body(self, block: Block) -> InstanceState:
        inst = self.state(block.digest)
        if inst.body is None:
            inst.body = block
        inst.round = block.round
        return inst

    def gc_below(self, horizon: int) -> int:
        """Drop instances of rounds below ``horizon``; returns the count.

        Safety: the caller's horizon sits ``gc_depth`` + a wave below the
        settled commit frontier, so those instances can never influence a
        future delivery decision here.  A straggler message for a pruned
        digest merely recreates an empty stub (no body, not ready — it
        cannot deliver), which the next sweep removes again because the
        message stamps the same old round.  Instances whose round is
        still unknown (-1) are kept — they are transient, bounded by the
        in-flight message population.
        """
        instances = self._instances
        stale = [
            digest
            for digest, inst in instances.items()
            if 0 <= inst.round < horizon
        ]
        for digest in stale:
            del instances[digest]
        return len(stale)

    def mark_ready(self, digest: Digest) -> InstanceState:
        """Protocol signal: the block passed validation and the ancestor
        gate.  Triggers delivery if the predicate is already met."""
        inst = self.state(digest)
        inst.ready = True
        return inst

    def try_deliver(self, inst: InstanceState, predicate_met: bool) -> bool:
        """Deliver exactly once when ready + body + predicate all hold."""
        if inst.delivered or not inst.ready or inst.body is None or not predicate_met:
            return False
        inst.delivered = True
        self._delivered_ctr.inc()
        self._on_deliver(inst.body)
        return True

    def is_delivered(self, digest: Digest) -> bool:
        inst = self._instances.get(digest)
        return inst is not None and inst.delivered

    def echoers_of(self, digest: Digest) -> AbstractSet:
        """Replicas that echoed a digest — retrieval fallback targets: they
        are guaranteed (if non-faulty) to hold the body and its ancestors.

        Returns a live read-only :class:`SetView` (no per-call copy):
        membership/length track echoes as they arrive, and iteration
        snapshots at its start, so the view is safe to hold across
        message processing."""
        inst = self._instances.get(digest)
        return SetView(inst.echoers) if inst else EMPTY_SET_VIEW
