"""Causal lifecycle tracing: ``trace.*`` span events over the journal.

The metrics registry says how many and how long; the journal says what
happened; tracing says **why then** — it pins the causal milestones of a
block's (and its transactions') life so :mod:`repro.analysis.latency`
can decompose end-to-end commit latency into stages and walk the
blocking ancestry of any committed block.

A :class:`Tracer` is a thin facade over an :class:`~repro.obs.journal.
EventJournal`: every span milestone is just a journal event whose type
starts with ``trace.``, so the existing exporters (JSONL, Chrome trace)
and the determinism guarantees apply unchanged.  The milestones:

=====================  ======================================================
``trace.batch``        mempool drained into a proposal (count, mean submit t)
``trace.body``         first valid body for a block arrived at a replica
``trace.quorum``       the broadcast vote/echo (or ready) quorum crossed
``trace.unblocked``    a §IV-A retrieval response unblocked pending blocks
``trace.ordered``      the ledger appended the block (position, leader)
``trace.execute``      the SMR replica applied the block's commands
``trace.cpu_wait``     the CPU model queued a message behind earlier work
``trace.repropose``    LightDAG2 Rule 2 re-proposal of an uncommitted slot
=====================  ======================================================

(``block.propose`` / ``block.deliver`` / ``block.commit`` / ``coin.reveal``
remain the journal's own milestones; the analysis layer reads both.)

Cost discipline: tracing follows the same off-by-default idiom as the
rest of ``repro.obs`` — components resolve ``obs.trace`` once in
``__init__`` into ``self._trace = obs.trace if obs.trace.enabled else
None`` and hot paths pay a single ``is not None`` branch when tracing is
compiled in but disabled (the <5% engine-overhead guard covers this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .journal import EventJournal


class Tracer:
    """Emits ``trace.*`` lifecycle events into a journal."""

    __slots__ = ("journal",)

    enabled = True

    def __init__(self, journal: "EventJournal") -> None:
        self.journal = journal

    # Shared sink: snapshots alias the tracer, never fork it.
    def __copy__(self) -> "Tracer":
        return self

    def __deepcopy__(self, memo) -> "Tracer":
        return self

    def emit(self, t: float, type_: str, node: int = -1, **data: object) -> None:
        # Deliberately *not* pre-bound: journal.emit is swapped when a
        # listener (e.g. the health watchdog) is installed, and the
        # tracer must follow.  Trace emits only fire when tracing is on,
        # so the extra attribute hop is off the disabled-path budget.
        self.journal.emit(t, type_, node, **data)


class NullTracer:
    """Do-nothing twin: the default when tracing is not requested."""

    __slots__ = ()

    enabled = False

    def __copy__(self) -> "NullTracer":
        return self

    def __deepcopy__(self, memo) -> "NullTracer":
        return self

    def emit(self, t: float, type_: str, node: int = -1, **data: object) -> None:
        pass


#: Shared inert instance — the default everywhere tracing is optional.
NULL_TRACER = NullTracer()
