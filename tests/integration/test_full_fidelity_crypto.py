"""Maximal-fidelity runs: real crypto end to end.

The benchmarks use the fast HMAC backend; these tests run the *real*
stack — Schnorr signatures on every block, the DLEQ-verified threshold-PRF
coin for leader election — under the equivocation attack, so the
Byzantine-proof path exercises genuine signature verification (a forged
or mismatched proof must be rejected by mathematics, not by simulation
convention).
"""

import pytest

from repro.adversary.byzantine import EquivocatingLightDag2Node
from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag2 import LightDag2Node
from repro.core.proofs import ByzantineProof
from repro.crypto.coin import ThresholdCoin
from repro.crypto.keys import TrustedDealer
from repro.dag.ledger import check_prefix_consistency
from repro.net.latency import UniformLatency
from repro.net.simulator import Simulation


@pytest.fixture(scope="module")
def attacked_run():
    system = SystemConfig(n=4, crypto="schnorr", seed=3)
    protocol = ProtocolConfig(batch_size=5)
    chains = TrustedDealer(
        system, coin_threshold=protocol.resolve_coin_threshold(system)
    ).deal()

    def factory(i):
        if i == 3:
            return lambda net: EquivocatingLightDag2Node(
                net, system, protocol, chains[i], start_wave=2
            )
        return lambda net: LightDag2Node(net, system, protocol, chains[i])

    sim = Simulation(
        [factory(i) for i in range(4)],
        latency_model=UniformLatency(0.02, 0.07),
        seed=3,
    )
    sim.run(until=8.0)
    return sim


class TestSchnorrEquivocationEndToEnd:
    def test_real_coin_used(self, attacked_run):
        assert isinstance(attacked_run.nodes[0].coin, ThresholdCoin)

    def test_safety_with_real_crypto(self, attacked_run):
        honest = attacked_run.nodes[:3]
        check_prefix_consistency([n.ledger for n in honest])
        assert all(len(n.ledger) > 20 for n in honest)

    def test_equivocator_exposed_by_real_proofs(self, attacked_run):
        assert attacked_run.nodes[3].caught
        for node in attacked_run.nodes[:3]:
            assert node.blacklist == {3}
            proof = node.proofs[3]
            # The adopted proof verifies under real Schnorr signatures.
            assert proof.verify(node.backend)

    def test_forged_proof_rejected_by_real_backend(self, attacked_run):
        """Framing replica 0 with blocks the framer signed itself must fail
        real signature verification."""
        node = attacked_run.nodes[1]
        victim_block = node.store.block_in_slot(1, 0)
        twin = node.store.block_in_slot(1, 1)
        forged = ByzantineProof(culprit=0, block_a=victim_block, block_b=twin)
        assert not forged.verify(node.backend)
        assert not node._register_proof(forged)
        assert 0 not in node.blacklist

    def test_coin_agreement_across_replicas(self, attacked_run):
        reference = attacked_run.nodes[0].revealed_leaders
        for node in attacked_run.nodes[1:3]:
            common = set(reference) & set(node.revealed_leaders)
            assert common
            for wave in common:
                assert node.revealed_leaders[wave] == reference[wave]
