"""Fuzzer end-to-end tests, including the oracle self-test.

The self-test is the core of the tentpole: deliberately broken protocol
variants (``repro.check.mutants``) must be caught *and shrunk* by the
fuzzer, proving the oracles can actually fire.  The seeds used here were
found by sweeping; the generator is a pure function of (seed, n,
protocol, duration), so they stay stable.
"""

import pytest

from repro.check.fuzzer import (
    FuzzCase,
    build_config,
    fuzz,
    make_case,
    probe_health,
    run_case,
    shrink,
)
from repro.check.mutants import MUTANT_REGISTRY
from repro.errors import ConfigError
from repro.harness.runner import PROTOCOL_REGISTRY

REGISTRY = {**PROTOCOL_REGISTRY, **MUTANT_REGISTRY}

#: (protocol, seed, duration) cells known to trip the oracles — found by
#: sweeping seeds 0-99 against each mutant.
KNOWN_BAD = {
    "lightdag1-unsafe-support": (7, 8.0),
    "lightdag1-no-cascade": (92, 10.0),
}


class TestCasePlumbing:
    def test_make_case_deterministic(self):
        a = make_case("lightdag2", 5)
        b = make_case("lightdag2", 5)
        assert a == b
        assert a.schedule  # non-empty generated schedule

    def test_command_round_trips_through_cli_grammar(self):
        case = make_case("lightdag1", 3, n=7, duration=5.0)
        command = case.command()
        assert f"--schedule '{case.schedule}'" in command
        assert "--protocol lightdag1" in command
        assert "-n 7" in command

    def test_build_config_enables_full_checks(self):
        case = make_case("lightdag2", 1)
        cfg = build_config(case)
        assert cfg.check_level == "full"
        assert cfg.adversary_name == f"schedule:{case.schedule}"

    def test_gc_depth_rotation(self):
        assert make_case("lightdag2", 0).gc_depth is not None
        assert make_case("lightdag2", 1).gc_depth is None

    def test_run_case_clean(self):
        assert run_case(make_case("lightdag2", 1, duration=4.0)) is None

    def test_invalid_case_raises_config_error(self):
        case = FuzzCase(
            protocol="lightdag1", seed=0, n=4, duration=4.0,
            schedule="crash@0+0:victims=9",
        )
        with pytest.raises(ConfigError):
            run_case(case)


class TestMutantSelfTest:
    @pytest.mark.parametrize("mutant", sorted(MUTANT_REGISTRY))
    def test_mutant_caught(self, mutant):
        seed, duration = KNOWN_BAD[mutant]
        case = make_case(mutant, seed, n=4, duration=duration)
        error = run_case(case, registry=REGISTRY)
        assert error is not None
        assert "InvariantViolation" in error

    def test_mutant_shrunk_and_still_failing(self):
        seed, duration = KNOWN_BAD["lightdag1-unsafe-support"]
        case = make_case("lightdag1-unsafe-support", seed, n=4, duration=duration)
        shrunk, attempts = shrink(case, registry=REGISTRY, budget_s=30.0)
        assert attempts > 0
        assert run_case(shrunk, registry=REGISTRY) is not None
        # The shrunk case is no larger than the original on every axis.
        assert shrunk.n <= case.n
        assert shrunk.duration <= case.duration
        assert len(shrunk.schedule) <= len(case.schedule)

    def test_fuzz_reports_mutant_failure(self):
        seed, duration = KNOWN_BAD["lightdag1-unsafe-support"]
        report = fuzz(
            protocols=["lightdag1-unsafe-support"],
            seeds=[seed],
            duration=duration,
            registry=REGISTRY,
            shrink_failures=False,
        )
        assert report.runs == 1
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert "InvariantViolation" in failure.error
        assert failure.minimal().command().startswith("python -m repro fuzz")
        # Every failure carries the watchdog's verdict from a replay of
        # its minimal case.
        assert failure.health is not None
        assert failure.health["verdict"] in (
            "healthy", "degraded", "stalled", "no-progress"
        )


class TestHealthProbe:
    def test_clean_case_is_healthy(self):
        summary = probe_health(make_case("lightdag2", 1, duration=4.0))
        assert summary["verdict"] == "healthy"
        assert sum(summary["commits_by_node"].values()) > 0

    def test_probe_survives_oracle_violation(self):
        seed, duration = KNOWN_BAD["lightdag1-unsafe-support"]
        case = make_case("lightdag1-unsafe-support", seed, n=4,
                         duration=duration)
        summary = probe_health(case, registry=REGISTRY)
        # The run dies on an InvariantViolation mid-flight; the watchdog
        # still reports the vitals it saw up to that point.
        assert "verdict" in summary and "alerts" in summary


class TestSweep:
    def test_small_clean_sweep(self):
        report = fuzz(
            protocols=["lightdag1", "lightdag2"],
            seeds=range(2),
            duration=4.0,
        )
        assert report.ok
        assert report.runs == 4
        assert report.runs_by_protocol == {"lightdag1": 2, "lightdag2": 2}

    def test_time_box_degrades_gracefully(self):
        report = fuzz(
            protocols=["lightdag1", "lightdag2"],
            seeds=range(50),
            duration=4.0,
            time_box=0.0,
        )
        assert report.timed_out
        assert report.runs <= 1


class TestShrinkMemoization:
    def test_shrink_never_replays_a_rejected_candidate(self):
        """Regression: the move set regenerates candidates verbatim — the
        n=4 reduction rejected at n=6 reappears identically once n=6->5
        lands — and each replay used to burn a full simulation run from
        the attempt counter.  With the memo, every executed candidate is
        distinct."""
        from repro.adversary.schedule import FaultSchedule

        full = FaultSchedule.from_spec(
            "partition@1+1.5:group=1;crash@2+0:victims=2"
        ).to_spec()
        # duration=3.0 disables the halving move, so the only moves are
        # phase drops and replica reduction — the regeneration scenario.
        base = FuzzCase(
            protocol="lightdag1", seed=0, n=6, duration=3.0, schedule=full
        )
        calls = []

        def runner(candidate, registry=None):
            calls.append(candidate)
            failing = candidate.n >= 5 and candidate.schedule == full
            return "InvariantViolation: synthetic" if failing else None

        shrunk, attempts = shrink(base, runner=runner, budget_s=60.0)
        # The stub's fixed point: n=5 with the full schedule.
        assert shrunk.n == 5
        assert shrunk.schedule == full
        # Every runner call burned one attempt, and the n=4 candidate —
        # regenerated at n=5 after its rejection at n=6 — came from the
        # memo, so no candidate ever executed twice.
        assert attempts == len(calls)
        assert len(calls) == len(set(calls))
        assert base not in calls  # the seed verdict is pre-memoized
