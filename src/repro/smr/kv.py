"""The reference state machine: a string key-value store.

Command grammar (UTF-8, space-separated, values may contain spaces):

* ``SET <key> <value>``   → ``OK``
* ``GET <key>``           → ``VAL <value>``, or ``NIL`` when absent
* ``DEL <key>``           → ``OK`` if present, ``NIL`` otherwise
* ``CAS <key> <expected> <new>`` → ``OK`` on swap, ``FAIL`` otherwise

GET responses are *tagged*: a present value comes back as ``VAL <value>``
so that a stored literal ``"NIL"`` is distinguishable from a missing key
(``VAL NIL`` vs ``NIL``).  Closed-loop clients that read their own writes
depend on this — an untagged response made ``SET k NIL; GET k`` look like
a lost write.

Unknown verbs and malformed commands return ``ERR <reason>`` rather than
raising: a malformed committed command must not halt replication (it was
ordered; the application answer is simply "that was garbage"), and the
answer must be identical at every replica.
"""

from __future__ import annotations

from typing import Dict

from .machine import Command, StateMachine


class KvStateMachine(StateMachine):
    """Deterministic dictionary with compare-and-swap."""

    def __init__(self) -> None:
        self.data: Dict[str, str] = {}
        self.applied_count = 0

    def apply(self, command: Command) -> bytes:
        self.applied_count += 1
        try:
            text = command.payload.decode("utf-8")
        except UnicodeDecodeError:
            return b"ERR not-utf8"
        parts = text.split(" ")
        verb = parts[0] if parts else ""

        if verb == "SET":
            if len(parts) < 3:
                return b"ERR SET needs key and value"
            key, value = parts[1], " ".join(parts[2:])
            self.data[key] = value
            return b"OK"

        if verb == "GET":
            if len(parts) != 2:
                return b"ERR GET needs exactly one key"
            value = self.data.get(parts[1])
            if value is None:
                return b"NIL"
            return b"VAL " + value.encode("utf-8")

        if verb == "DEL":
            if len(parts) != 2:
                return b"ERR DEL needs exactly one key"
            return b"OK" if self.data.pop(parts[1], None) is not None else b"NIL"

        if verb == "CAS":
            if len(parts) < 4:
                return b"ERR CAS needs key, expected, new"
            key, expected, new = parts[1], parts[2], " ".join(parts[3:])
            if self.data.get(key) == expected:
                self.data[key] = new
                return b"OK"
            return b"FAIL"

        return f"ERR unknown verb {verb!r}".encode("utf-8")

    def snapshot(self) -> bytes:
        items = sorted(self.data.items())
        return "\n".join(f"{k}\x00{v}" for k, v in items).encode("utf-8")
