"""Structured event journal: append-only, sim-time-stamped records.

Where the registry answers "how many / how long", the journal answers
"what happened, in order": one :class:`Event` per protocol-level
occurrence (block proposed, delivered, committed; coin revealed; wave
committed; retrieval issued; adversary interference), each carrying the
simulated timestamp, the acting replica, an event type, and a small
payload dict.

The journal is the source every exporter reads — JSONL dumps for ad-hoc
grepping, Chrome ``trace_event`` JSON for Perfetto timelines (see
:mod:`repro.analysis.obs_export`).  Because the simulator is
deterministic, the journal is too: same seed → identical event sequence,
which the test suite asserts.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple


class Event(NamedTuple):
    """One journal record."""

    t: float  #: simulated seconds
    node: int  #: acting replica (-1 = the network/simulator itself)
    type: str  #: dotted event type, e.g. ``"block.deliver"``
    data: Dict[str, object]  #: small, JSON-able payload

    def as_dict(self) -> Dict[str, object]:
        return {"t": self.t, "node": self.node, "type": self.type, **self.data}


class EventJournal:
    """Append-only event log for one run."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[Event] = []

    def emit(self, t: float, type_: str, node: int = -1, **data: object) -> None:
        self.events.append(Event(t, node, type_, data))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def counts_by_type(self) -> Dict[str, int]:
        """Event-type histogram (for summaries and sanity tests)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.type] = counts.get(event.type, 0) + 1
        return dict(sorted(counts.items()))


class NullJournal(EventJournal):
    """Do-nothing journal (the off-by-default path)."""

    enabled = False

    def emit(self, t: float, type_: str, node: int = -1, **data: object) -> None:
        pass
