"""The sweeps behind every evaluation figure (Figs. 12-15).

Each function returns a list of :class:`~repro.harness.runner.ExperimentResult`
— one per (protocol, x-axis point) — which the benches and EXPERIMENTS.md
render as the paper's series.  Defaults follow §VI; the ``duration`` and
axis arguments let CI runs scale down (a full Fig. 13 at n=61 simulates
millions of events).

Paper settings reference:
  * Fig. 12 — batch size 100→1000, n ∈ {7, 22}, favorable.
  * Fig. 13 — n = 7→61, batch 400, favorable.
  * Fig. 14 — latency-vs-throughput to saturation, n ∈ {7, 22}, favorable.
  * Fig. 15 — same under each protocol's §VI-A strongest attack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.stats import aggregate_results
from ..config import ExperimentConfig, ProtocolConfig, SystemConfig
from .parallel import run_sweep
from .runner import ExperimentResult, run_experiment

__all__ = [
    "DEFAULT_PROTOCOLS",
    "FIG12_BATCH_SIZES",
    "FIG13_REPLICAS",
    "FIG14_BATCH_RAMP",
    "batch_size_sweep",
    "scalability_sweep",
    "tradeoff_curve",
    "unfavorable_curve",
    "peak_throughput",
    "headline_comparison",
    "run_experiment",
    "saturation_sweep",
]

#: The protocols every comparison figure plots.
DEFAULT_PROTOCOLS = ("tusk", "bullshark", "lightdag1", "lightdag2")

#: Paper axes.
FIG12_BATCH_SIZES = (100, 200, 400, 600, 800, 1000)
FIG13_REPLICAS = (7, 13, 22, 31, 43, 52, 61)
FIG14_BATCH_RAMP = (50, 100, 200, 400, 800, 1200, 1600, 2000)


def _base_config(
    protocol_name: str,
    n: int,
    batch_size: int,
    adversary: str = "none",
    duration: float = 20.0,
    warmup: float = 4.0,
    seed: int = 0,
    crypto: str = "hmac",
    check_level: str = "prefix",
) -> ExperimentConfig:
    warmup = min(warmup, duration * 0.25)
    return ExperimentConfig(
        system=SystemConfig(n=n, crypto=crypto, seed=seed),
        protocol=ProtocolConfig(batch_size=batch_size),
        protocol_name=protocol_name,
        adversary_name=adversary,
        duration=duration,
        warmup=warmup,
        seed=seed,
        check_level=check_level,
    )


def _sweep(
    configs: Sequence[ExperimentConfig],
    jobs: Optional[int],
    seeds: Optional[Sequence[int]],
) -> List[ExperimentResult]:
    """Run sweep-point configs (optionally × seeds) and return one result
    per point.

    With ``seeds``, each point expands into one run per seed — all of them
    fed to the pool together, so parallelism spans the full (point, seed)
    grid — and collapses back through
    :func:`~repro.analysis.stats.aggregate_results` (mean metrics,
    ``tps_stddev`` / ``latency_stddev`` / ``seed_count`` in ``extras``).
    Any failed run raises :class:`~repro.errors.SweepError` with replay
    commands for exactly the runs that failed.
    """
    if not seeds:
        return run_sweep(configs, jobs=jobs).require()
    expanded = [
        cfg.with_updates(seed=s, system=cfg.system.with_updates(seed=s))
        for cfg in configs
        for s in seeds
    ]
    runs = run_sweep(expanded, jobs=jobs).require()
    width = len(seeds)
    return [
        aggregate_results(runs[i : i + width]) for i in range(0, len(runs), width)
    ]


def batch_size_sweep(
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    replica_counts: Sequence[int] = (7, 22),
    batch_sizes: Sequence[int] = FIG12_BATCH_SIZES,
    duration: float = 20.0,
    seed: int = 0,
    jobs: Optional[int] = 1,
    seeds: Optional[Sequence[int]] = None,
) -> List[ExperimentResult]:
    """Fig. 12: throughput (a) and latency (b) as batch size grows.

    ``jobs`` fans the grid out over the parallel harness (``jobs=1``
    stays in-process; results are identical).  ``seeds`` runs every point
    under each seed and reports mean ± stddev instead of a single draw.
    """
    configs = [
        _base_config(protocol, n, batch, duration=duration, seed=seed)
        for n in replica_counts
        for protocol in protocols
        for batch in batch_sizes
    ]
    return _sweep(configs, jobs, seeds)


def scalability_sweep(
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    replica_counts: Sequence[int] = FIG13_REPLICAS,
    batch_size: int = 400,
    duration: float = 20.0,
    seed: int = 0,
    crypto: str = "hmac",
    jobs: Optional[int] = 1,
    seeds: Optional[Sequence[int]] = None,
) -> List[ExperimentResult]:
    """Fig. 13: throughput (a) and latency (b) as the replica set grows.

    The horizon scales with ``n``: at n=61 an RBC wave takes seconds (the
    Θ(n²) per-node CPU load), and the measurement window must hold several
    multiples of the commit latency to be meaningful.

    ``crypto`` selects the signing backend; ``"schnorr"`` makes the sweep
    exercise the real signature/coin hot path (the configuration the
    crypto micro-optimizations are benchmarked against), at the price of
    wall-clock.  ``jobs`` fans the grid out over the parallel harness;
    ``seeds`` runs every point under each seed and reports mean ± stddev.
    """
    configs = [
        _base_config(
            protocol, n, batch_size,
            duration=duration * max(1.0, n / 22), seed=seed, crypto=crypto,
        )
        for protocol in protocols
        for n in replica_counts
    ]
    return _sweep(configs, jobs, seeds)


def tradeoff_curve(
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    replica_counts: Sequence[int] = (7, 22),
    batch_ramp: Sequence[int] = FIG14_BATCH_RAMP,
    adversary: str = "none",
    duration: float = 20.0,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> List[ExperimentResult]:
    """Fig. 14 (favorable) / Fig. 15 (``adversary="worst"``): the
    latency-vs-throughput frontier, ramping batch size to saturation.

    Horizons scale with the batch size so the window always holds several
    commit latencies even deep into saturation.
    """
    configs = [
        _base_config(
            protocol,
            n,
            batch,
            adversary=adversary,
            duration=duration * min(3.0, max(1.0, batch / 800)),
            seed=seed,
        )
        for n in replica_counts
        for protocol in protocols
        for batch in batch_ramp
    ]
    return _sweep(configs, jobs, None)


def unfavorable_curve(
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    replica_counts: Sequence[int] = (7, 22),
    batch_ramp: Sequence[int] = FIG14_BATCH_RAMP,
    duration: float = 20.0,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> List[ExperimentResult]:
    """Fig. 15: the trade-off under each protocol's strongest attack."""
    return tradeoff_curve(
        protocols=protocols,
        replica_counts=replica_counts,
        batch_ramp=batch_ramp,
        adversary="worst",
        duration=duration,
        seed=seed,
        jobs=jobs,
    )


def saturation_sweep(
    rates: Sequence[float],
    clients: int = 100,
    n: int = 4,
    protocol: str = "lightdag2",
    batch_size: int = 64,
    duration: float = 12.0,
    warmup: float = 2.0,
    max_pending: int = 2048,
    admission_policy: str = "reject",
    arrival: str = "poisson",
    seed: int = 0,
    jobs: Optional[int] = 1,
):
    """Offered rate vs end-to-end latency: the client-side knee.

    Unlike :func:`tradeoff_curve` (consensus-side, analytic mempool), this
    ramps an *open-loop client population* against the replicated KV — the
    x-axis is the offered rate, and each point reports consensus latency
    and client-observed p50/p99/p999 side by side.  Past the knee the
    bounded admission queue sheds/rejects (visible in the results) instead
    of growing without bound.  One :class:`~repro.harness.loadtest
    .LoadtestResult` per rate, fanned over the ``jobs`` pool.
    """
    from ..workload.admission import AdmissionConfig
    from ..workload.clients import WorkloadSpec
    from .loadtest import LoadtestConfig, run_loadtest_sweep

    base = LoadtestConfig(
        n=n,
        protocol_name=protocol,
        batch_size=batch_size,
        duration=duration,
        warmup=min(warmup, duration * 0.25),
        seed=seed,
        workload=WorkloadSpec(
            clients=clients, mode="open", rate=1.0, arrival=arrival, seed=seed
        ),
        admission=AdmissionConfig(max_pending=max_pending, policy=admission_policy),
    )
    configs = [base.with_rate(rate) for rate in rates]
    return run_loadtest_sweep(configs, jobs=jobs)


def peak_throughput(results: List[ExperimentResult]) -> Dict[str, ExperimentResult]:
    """The saturation point per (protocol, n) — the Fig. 14 headline values
    (e.g. "Tusk and BullShark achieve a peak throughput of 13.0k and 20.5k
    TPS, while LightDAG1 and LightDAG2 achieve 21.2k and 24.1k")."""
    best: Dict[str, ExperimentResult] = {}
    for result in results:
        key = f"{result.config.protocol_name}@n={result.config.system.n}"
        if key not in best or result.throughput_tps > best[key].throughput_tps:
            best[key] = result
    return best


def headline_comparison(
    n: int = 22,
    batch_size: int = 1000,
    duration: float = 20.0,
    seed: int = 0,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    jobs: Optional[int] = 1,
) -> Dict[str, Dict[str, float]]:
    """The §VI-B headline claim: at n=22, batch 1000, LightDAG1/LightDAG2
    deliver 1.69×/1.91× Tusk's throughput and cut its latency 41%/45%."""
    configs = [
        _base_config(protocol, n, batch_size, duration=duration, seed=seed)
        for protocol in protocols
    ]
    measured: Dict[str, ExperimentResult] = dict(
        zip(protocols, run_sweep(configs, jobs=jobs).require())
    )
    tusk = measured["tusk"]
    out: Dict[str, Dict[str, float]] = {}
    for protocol, result in measured.items():
        out[protocol] = {
            "tps": result.throughput_tps,
            "latency_s": result.mean_latency,
            "tps_vs_tusk": result.throughput_tps / tusk.throughput_tps,
            "latency_reduction_vs_tusk": 1 - result.mean_latency / tusk.mean_latency,
        }
    return out
