"""Tests for repro.broadcast.rbc: Bracha reliable broadcast."""

import pytest

from repro.broadcast.messages import BlockEcho, BlockReady, BlockVal
from repro.broadcast.rbc import RbcManager
from repro.dag.block import genesis_block, make_block

from ..conftest import FakeNet

QUORUM = 3  # n - f for n=4
AMPLIFY = 2  # f + 1


def sample_block(author=0, round_=1, j=0):
    return make_block(round_, author, [genesis_block(a).digest for a in range(4)],
                      repropose_index=j)


def echo_for(block):
    return BlockEcho(block.round, block.author, block.digest)


def ready_for(block):
    return BlockReady(block.round, block.author, block.digest)


@pytest.fixture
def setup():
    net = FakeNet(node_id=0, n=4)
    delivered = []
    manager = RbcManager(net, quorum=QUORUM, amplify_threshold=AMPLIFY,
                         on_deliver=delivered.append)
    return net, manager, delivered


class TestEchoDiscipline:
    def test_echo_once_per_slot(self, setup):
        net, manager, _ = setup
        a, b = sample_block(j=0), sample_block(j=1)
        manager.on_val(1, a)
        manager.echo(a)
        echoes_before = sum(isinstance(m, BlockEcho) for _, m in net.sent)
        manager.on_val(1, b)
        manager.echo(b)  # same slot: suppressed — RBC consistency
        echoes_after = sum(isinstance(m, BlockEcho) for _, m in net.sent)
        assert echoes_before == echoes_after == 4

    def test_echo_distinct_slots(self, setup):
        net, manager, _ = setup
        a, b = sample_block(author=0), sample_block(author=1)
        manager.echo(a)
        manager.echo(b)
        assert sum(isinstance(m, BlockEcho) for _, m in net.sent) == 8


class TestReadyTransitions:
    def test_ready_on_echo_quorum(self, setup):
        net, manager, _ = setup
        block = sample_block()
        for src in range(QUORUM):
            manager.on_echo(src, echo_for(block))
        readys = [m for _, m in net.sent if isinstance(m, BlockReady)]
        assert len(readys) == 4  # broadcast once

    def test_no_ready_below_quorum(self, setup):
        net, manager, _ = setup
        block = sample_block()
        for src in range(QUORUM - 1):
            manager.on_echo(src, echo_for(block))
        assert not any(isinstance(m, BlockReady) for _, m in net.sent)

    def test_ready_amplification(self, setup):
        """f+1 READYs trigger our own READY even without echo quorum —
        the Bracha amplification that buys totality."""
        net, manager, _ = setup
        block = sample_block()
        for src in (1, 2):  # f + 1 = 2
            manager.on_ready(src, ready_for(block))
        readys = [m for _, m in net.sent if isinstance(m, BlockReady)]
        assert len(readys) == 4

    def test_ready_sent_once(self, setup):
        net, manager, _ = setup
        block = sample_block()
        for src in range(4):
            manager.on_echo(src, echo_for(block))
        for src in range(4):
            manager.on_ready(src, ready_for(block))
        readys = [m for _, m in net.sent if isinstance(m, BlockReady)]
        assert len(readys) == 4


class TestDelivery:
    def drive_to_quorum(self, manager, block):
        for src in range(QUORUM):
            manager.on_ready(src, ready_for(block))

    def test_full_predicate(self, setup):
        _, manager, delivered = setup
        block = sample_block()
        manager.on_val(1, block)
        manager.mark_ready(block.digest)
        self.drive_to_quorum(manager, block)
        assert delivered == [block]

    def test_no_delivery_without_ready_quorum(self, setup):
        _, manager, delivered = setup
        block = sample_block()
        manager.on_val(1, block)
        manager.mark_ready(block.digest)
        for src in range(QUORUM - 1):
            manager.on_ready(src, ready_for(block))
        assert delivered == []

    def test_no_delivery_without_gate(self, setup):
        _, manager, delivered = setup
        block = sample_block()
        manager.on_val(1, block)
        self.drive_to_quorum(manager, block)
        assert delivered == []
        assert manager.ready_complete(block.digest)
        manager.mark_ready(block.digest)
        assert delivered == [block]

    def test_single_delivery(self, setup):
        _, manager, delivered = setup
        block = sample_block()
        manager.on_val(1, block)
        manager.mark_ready(block.digest)
        for src in range(4):
            manager.on_ready(src, ready_for(block))
        assert delivered == [block]

    def test_body_via_retrieval_path(self, setup):
        _, manager, delivered = setup
        block = sample_block()
        self.drive_to_quorum(manager, block)
        manager.on_val(2, block)
        manager.mark_ready(block.digest)
        assert delivered == [block]

    def test_introspection(self, setup):
        _, manager, _ = setup
        block = sample_block()
        assert manager.body_of(block.digest) is None
        manager.on_val(1, block)
        assert manager.body_of(block.digest) is block
        manager.on_echo(2, echo_for(block))
        assert manager.echoers_of(block.digest) == {2}
        assert not manager.is_delivered(block.digest)
