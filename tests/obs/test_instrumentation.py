"""End-to-end instrumentation tests: real runs with an Observability.

Cross-checks the recorded per-primitive traffic against Table I's step
structure — PBC is 1 step (VAL only), CBC is 2 (VAL + ECHO), RBC is 3
(VAL + ECHO + READY) — and asserts the journal is deterministic per seed.
"""

import pytest

from repro.config import ExperimentConfig, ProtocolConfig, SystemConfig
from repro.harness.runner import run_experiment
from repro.obs import EventJournal, MetricsRegistry, Observability


def run_instrumented(protocol, seed=1, duration=4.0, **kw):
    cfg = ExperimentConfig(
        system=SystemConfig(n=4, crypto="hmac", seed=seed),
        protocol=ProtocolConfig(batch_size=20),
        protocol_name=protocol,
        duration=duration,
        warmup=1.0,
        seed=seed,
        **kw,
    )
    obs = Observability(MetricsRegistry(), EventJournal())
    return run_experiment(cfg, obs=obs), obs


def primitive_counter(obs, name, primitive):
    return obs.metrics.counter(name, primitive=primitive).value


class TestTableICrossCheck:
    """The recorded message mix must match each primitive's step count."""

    def test_lightdag1_uses_cbc_only(self):
        _, obs = run_instrumented("lightdag1")
        assert primitive_counter(obs, "broadcast.vals_sent", "cbc") > 0
        assert primitive_counter(obs, "broadcast.echoes_sent", "cbc") > 0
        # 2-step CBC never sends READY, and no other primitive runs.
        assert obs.metrics.counter_total("broadcast.readies_sent") == 0
        assert primitive_counter(obs, "broadcast.vals_sent", "pbc") == 0
        assert obs.metrics.gauge("broadcast.steps", primitive="cbc").value == 2

    def test_lightdag2_mixes_pbc_and_cbc(self):
        _, obs = run_instrumented("lightdag2")
        # PBC (1 step) carries non-leader slots: VALs but never echoes.
        assert primitive_counter(obs, "broadcast.vals_sent", "pbc") > 0
        assert primitive_counter(obs, "broadcast.echoes_sent", "pbc") == 0
        # CBC (2 steps) carries leader slots: VALs and echoes.
        assert primitive_counter(obs, "broadcast.vals_sent", "cbc") > 0
        assert primitive_counter(obs, "broadcast.echoes_sent", "cbc") > 0
        assert obs.metrics.counter_total("broadcast.readies_sent") == 0
        assert obs.metrics.gauge("broadcast.steps", primitive="pbc").value == 1

    def test_tusk_uses_3_step_rbc(self):
        _, obs = run_instrumented("tusk")
        assert primitive_counter(obs, "broadcast.vals_sent", "rbc") > 0
        assert primitive_counter(obs, "broadcast.echoes_sent", "rbc") > 0
        assert primitive_counter(obs, "broadcast.readies_sent", "rbc") > 0
        assert obs.metrics.gauge("broadcast.steps", primitive="rbc").value == 3

    def test_deliveries_attributed_to_primitive(self):
        _, obs = run_instrumented("lightdag1")
        assert primitive_counter(obs, "broadcast.delivered", "cbc") > 0


class TestCoreAccounting:
    def test_wave_commits_and_rounds(self):
        result, obs = run_instrumented("lightdag1")
        commits = obs.metrics.counter_total("core.wave_commits")
        assert commits > 0
        direct = obs.metrics.counter("core.wave_commits", kind="direct").value
        cascade = obs.metrics.counter("core.wave_commits", kind="cascade").value
        assert direct + cascade == commits
        # Every replica advanced at least as far as the max round observed.
        rounds = obs.metrics.counter_total("core.rounds_advanced")
        assert rounds >= result.rounds_reached

    def test_journal_matches_counters(self):
        _, obs = run_instrumented("lightdag1")
        counts = obs.journal.counts_by_type()
        assert counts["wave.commit"] == obs.metrics.counter_total("core.wave_commits")
        assert counts["block.propose"] == obs.metrics.counter_total(
            "broadcast.vals_sent"
        )

    def test_network_counters_match_sim_stats(self):
        result, obs = run_instrumented("lightdag1")
        assert obs.metrics.counter_total("net.messages_sent") == (
            result.messages_sent
        )
        assert obs.metrics.counter_total("net.bytes_sent") == result.bytes_sent


class TestAdversaryAttribution:
    def test_partition_drops_are_counted(self):
        from repro.adversary.partition import PartitionAdversary
        from repro.core.lightdag1 import LightDag1Node
        from repro.crypto.keys import TrustedDealer
        from repro.net.latency import FixedLatency
        from repro.net.simulator import Simulation

        system = SystemConfig(n=4, crypto="hmac", seed=1)
        protocol = ProtocolConfig(batch_size=5)
        chains = TrustedDealer(
            system, coin_threshold=protocol.resolve_coin_threshold(system)
        ).deal()
        adversary = PartitionAdversary(group_a=[3], start=0.0, end=2.0)
        obs = Observability(MetricsRegistry(), EventJournal())
        sim = Simulation(
            [
                (lambda net, i=i: LightDag1Node(net, system, protocol,
                                                chains[i], obs=obs))
                for i in range(4)
            ],
            latency_model=FixedLatency(0.05),
            adversary=adversary,
            seed=1,
            obs=obs,
        )
        sim.run(until=3.0)
        dropped = obs.metrics.counter_total("net.messages_dropped")
        assert dropped == adversary.dropped > 0
        assert obs.journal.counts_by_type()["adversary.drop"] == dropped

    def test_leader_delay_is_attributed(self):
        _, obs = run_instrumented("bullshark", adversary_name="leader-delay",
                                  duration=6.0)
        delays = obs.metrics.histogram("net.adversary_delay_seconds")
        assert delays.count > 0
        assert obs.journal.counts_by_type().get("adversary.delay", 0) == delays.count


class TestDeterminism:
    def test_same_seed_identical_journal(self):
        _, obs_a = run_instrumented("lightdag2", seed=3)
        _, obs_b = run_instrumented("lightdag2", seed=3)
        assert obs_a.journal.events == obs_b.journal.events
        assert obs_a.metrics.snapshot() == obs_b.metrics.snapshot()

    def test_different_seed_differs(self):
        _, obs_a = run_instrumented("lightdag2", seed=3, duration=3.0)
        _, obs_b = run_instrumented("lightdag2", seed=4, duration=3.0)
        assert obs_a.journal.events != obs_b.journal.events


class TestResultIntegration:
    def test_row_folds_summary(self):
        result, obs = run_instrumented("lightdag1")
        assert result.obs is obs
        row = result.row()
        assert row["msgs_sent"] == int(obs.metrics.counter_total(
            "net.messages_sent"
        ))
        assert row["journal_events"] == len(obs.journal)

    def test_uninstrumented_run_attaches_nothing(self):
        cfg = ExperimentConfig(
            system=SystemConfig(n=4, crypto="hmac", seed=1),
            protocol=ProtocolConfig(batch_size=20),
            protocol_name="lightdag1",
            duration=2.0,
            warmup=0.5,
            seed=1,
        )
        result = run_experiment(cfg)
        assert result.obs is None
        assert "msgs_sent" not in result.row()


class TestRetrievalAccounting:
    def test_crash_run_records_retrievals(self):
        result, obs = run_instrumented("lightdag1", adversary_name="crash",
                                       duration=6.0)
        requests = obs.metrics.counter_total("retrieval.requests")
        assert requests == pytest.approx(result.extras["retrieval_requests"])
