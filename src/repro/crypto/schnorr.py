"""Schnorr signatures over the library's safe-prime group.

This is the concrete PKI the paper assumes (§III-A): every replica holds a
key pair, every protocol message that needs authentication carries a
signature, and the adversary cannot forge signatures of non-faulty replicas.

The scheme is textbook Schnorr with deterministic (RFC-6979-style) nonces so
signing is side-effect free and reproducible.  Signatures carry the
*commitment* ``R`` (rather than the challenge ``c``), the form batch
verification requires:

* key: ``sk ∈ Z_q``, ``pk = g^sk``
* sign(m): ``k = H(sk, m)``; ``R = g^k``; ``c = H(R, pk, m)``;
  ``s = k + c·sk mod q``; signature = ``(R, s)``
* verify: recompute ``c = H(R, pk, m)`` and check ``g^s == R · pk^c``.

Verification never inverts: with ``g`` and registered public keys backed by
fixed-base comb tables (:mod:`repro.crypto.group`), both exponentiations
are ~32 modular multiplications each.

Batch verification
------------------
:func:`schnorr_verify_batch` checks ``k`` signatures with *one* fixed-base
exponentiation of ``g``, one per distinct signer, and one small (64-bit)
exponentiation per signature, via the standard random-linear-combination
test: draw small coefficients ``z_i`` and accept iff

    ``g^{Σ z_i s_i} == Π R_i^{z_i} · Π pk^{Σ_{i: pk_i=pk} z_i c_i}``.

Each valid signature contributes identically to both sides; an invalid one
survives only if its error cancels against the ``z_i``'s — probability
``2^-64`` per trial.  The coefficients are derived by hashing the entire
batch (Fiat-Shamir-style derandomization), which keeps runs bit-exact
deterministic and denies the adversary any influence after the fact.  On
rejection, :func:`schnorr_batch_invalid` bisects to the exact forged
entries, so a Byzantine replica is attributed just as under one-by-one
verification.

The soundness argument requires every ``R_i`` to lie in the order-``q``
subgroup — the equation only sees the product of the commitments, so the
small-order component of, say, paired ``R_i = -g^{k_i}`` commitments
cancels.  The batch therefore subgroup-checks each ``R_i`` (a Jacobi
symbol, no modexp) before the combined equation; single verification
needs no such check because its equation pins ``R`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import SignatureError
from .group import SchnorrGroup
from .hashing import Digest, hash_fields, hash_to_int

#: Modeled wire size of a Schnorr signature: a 32-byte group-element
#: commitment plus a 32-byte response scalar.
SIGNATURE_SIZE = 64

#: Bits per small batch coefficient; soundness error is 2^-64 per batch.
_BATCH_COEFF_BITS = 64
_BATCH_COEFF_MASK = (1 << _BATCH_COEFF_BITS) - 1


@dataclass(frozen=True)
class SchnorrSignature:
    """An ``(R, s)`` Schnorr signature: commitment and response scalar."""

    R: int
    s: int


@dataclass(frozen=True)
class SchnorrKeyPair:
    """A replica's signing key pair."""

    sk: int
    pk: int

    @classmethod
    def generate(cls, group: SchnorrGroup, rng) -> "SchnorrKeyPair":
        sk = group.random_scalar(rng)
        return cls(sk=sk, pk=group.exp_reduced(group.g, sk))

    @classmethod
    def from_seed(cls, group: SchnorrGroup, *seed_fields) -> "SchnorrKeyPair":
        """Deterministic key derivation (used by the trusted dealer)."""
        sk = group.scalar_from_hash("keygen", *seed_fields)
        return cls(sk=sk, pk=group.exp_reduced(group.g, sk))


def _challenge(group: SchnorrGroup, commitment: int, pk: int, message: Digest) -> int:
    return group.scalar_from_hash("schnorr-c", commitment, pk, message)


def schnorr_sign(group: SchnorrGroup, keypair: SchnorrKeyPair, message: Digest) -> SchnorrSignature:
    """Sign a 32-byte message digest with a deterministic nonce."""
    k = group.scalar_from_hash("schnorr-k", keypair.sk, message)
    commitment = group.exp_reduced(group.g, k)
    c = _challenge(group, commitment, keypair.pk, message)
    s = (k + c * keypair.sk) % group.q
    return SchnorrSignature(R=commitment, s=s)


def schnorr_verify(
    group: SchnorrGroup, pk: int, message: Digest, sig: SchnorrSignature
) -> bool:
    """Verify a signature; returns False rather than raising on bad input."""
    if not (0 < sig.R < group.p and 0 <= sig.s < group.q):
        return False
    if not group.is_member(pk):
        return False
    c = _challenge(group, sig.R, pk, message)
    # g^s == R · pk^c  ⟺  R == g^s · pk^{-c}; both exponents are already
    # reduced (s by range check, c by construction), and the equation form
    # avoids the inversion entirely.  If it holds, R is a subgroup member
    # by construction, so no separate membership test on R is needed.
    lhs = group.exp_reduced(group.g, sig.s)
    rhs = group.mul(sig.R, group.exp_reduced(pk, c))
    return lhs == rhs


#: One batch entry: (public key, message digest, signature).
BatchItem = Tuple[int, Digest, SchnorrSignature]


def _batch_coefficients(
    group: SchnorrGroup, items: Sequence[BatchItem]
) -> List[int]:
    """Deterministic nonzero 64-bit coefficients bound to the whole batch."""
    seed = hash_fields(
        "schnorr-batch",
        tuple((pk, message, sig.R, sig.s) for pk, message, sig in items),
    )
    return [
        (hash_to_int("schnorr-batch-z", seed, i) & _BATCH_COEFF_MASK) | 1
        for i in range(len(items))
    ]


def schnorr_batch_equation(group: SchnorrGroup, items: Sequence[BatchItem]) -> bool:
    """The combined random-linear-combination check, *without* prechecks.

    Callers MUST already have validated every item: scalars in range
    (``0 < R < p``, ``0 <= s < q``) and both ``R`` and ``pk`` members of
    the order-``q`` subgroup — on unchecked input the soundness argument
    does not hold (see :func:`schnorr_verify_batch`).  Exists so
    ``SchnorrBackend``, whose intake filter performs those checks while
    classifying claims, does not pay the per-item Jacobi symbol twice.
    """
    if not items:
        return True
    if len(items) == 1:
        # schnorr_verify's own prechecks are O(1) here (no Jacobi on R;
        # pk membership is memoized for dealt keys).
        pk, message, sig = items[0]
        return schnorr_verify(group, pk, message, sig)
    p, q = group.p, group.q
    zs = _batch_coefficients(group, items)
    s_combined = 0
    pk_exponents: dict[int, int] = {}
    commitment_pairs = []
    for (pk, message, sig), z in zip(items, zs):
        c = _challenge(group, sig.R, pk, message)
        s_combined = (s_combined + z * sig.s) % q
        pk_exponents[pk] = (pk_exponents.get(pk, 0) + z * c) % q
        commitment_pairs.append((sig.R, z))
    # The z_i are 64-bit, so the interleaved scan is ~16 window positions
    # — one shared squaring chain for every commitment at once.
    rhs = group.multi_exp(commitment_pairs)
    for pk, e in pk_exponents.items():
        rhs = rhs * group.exp_reduced(pk, e) % p
    return group.exp_reduced(group.g, s_combined) == rhs


def schnorr_verify_batch(group: SchnorrGroup, items: Sequence[BatchItem]) -> bool:
    """True iff every signature in the batch verifies (w.h.p.; see module
    docstring for the 2^-64 soundness bound).

    An empty batch is vacuously valid; a singleton falls through to
    :func:`schnorr_verify` (identical semantics, no coefficient overhead).
    """
    if not items:
        return True
    if len(items) == 1:
        pk, message, sig = items[0]
        return schnorr_verify(group, pk, message, sig)
    p, q = group.p, group.q
    for pk, _message, sig in items:
        if not (0 < sig.R < p and 0 <= sig.s < q):
            return False
        # The commitment must be checked for subgroup membership here even
        # though single verification needs no such check (its equation
        # forces R into the subgroup).  The batch equation constrains only
        # the *product* of the R_i^{z_i}: since every z_i is odd, a signer
        # who knows its own sk can emit a pair of signatures with negated
        # commitments R_i = -g^{k_i} whose signs cancel across the pair —
        # each fails schnorr_verify individually, yet the pair would pass
        # the combined check.  A Jacobi symbol (no modexp) closes this.
        if not group.is_member(sig.R):
            return False
        if not group.is_member(pk):
            return False
    return schnorr_batch_equation(group, items)


def schnorr_batch_invalid(
    group: SchnorrGroup, items: Sequence[BatchItem]
) -> List[int]:
    """Indices of the invalid signatures, localized by bisection.

    Cost is logarithmic in the batch size per forged entry; a clean batch
    costs one combined check.  The returned indices are exactly those an
    item-by-item :func:`schnorr_verify` sweep would reject, so Byzantine
    attribution is unchanged by batching.
    """

    def bisect(lo: int, hi: int) -> List[int]:
        if schnorr_verify_batch(group, items[lo:hi]):
            return []
        if hi - lo == 1:
            return [lo]
        mid = (lo + hi) // 2
        return bisect(lo, mid) + bisect(mid, hi)

    return bisect(0, len(items))


def require_valid(
    group: SchnorrGroup, pk: int, message: Digest, sig: SchnorrSignature, what: str
) -> None:
    """Verify and raise :class:`SignatureError` with context on failure."""
    if not schnorr_verify(group, pk, message, sig):
        raise SignatureError(f"invalid signature on {what}")


def signature_digest(sig: SchnorrSignature) -> Digest:
    """Stable digest of a signature, for inclusion in hashed structures."""
    return hash_fields("sigdig", sig.R, sig.s)
