"""State-machine replication on top of LightDAG.

The consensus core orders opaque byte commands; this package turns that
total order into the application-facing abstraction a downstream user
actually wants (the blockchain framing of §II-A: clients submit
transactions, replicas apply them to identical state):

* :class:`~repro.smr.machine.StateMachine` — the deterministic application
  interface (``apply(command) -> result``).
* :class:`~repro.smr.replica.SmrReplica` — glues a protocol node to a
  state machine: queues client commands into block payloads, applies the
  committed sequence in ledger order, deduplicates by command id (a
  LightDAG2 reproposal may commit the same payload twice in one slot —
  exactly-once application is the SMR layer's job), and resolves client
  futures with results.
* :class:`~repro.smr.kv.KvStateMachine` — the reference application: a
  string key-value store with SET/GET/DEL/CAS.
"""

from .kv import KvStateMachine
from .machine import Command, StateMachine
from .replica import SmrCluster, SmrReplica

__all__ = ["Command", "KvStateMachine", "SmrCluster", "SmrReplica", "StateMachine"]
