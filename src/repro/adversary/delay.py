"""Targeted message-delay adversaries.

§VI-A: "BullShark, on the other hand, can be targeted by delaying blocks
from leaders to disrupt the optimistic path."

Bullshark's leaders are *predefined* (that is the point of its fast path),
so the adversary knows exactly which VAL messages to sit on: the leader's
block in each leader round.  Delaying them past the other replicas' leader
timeout means (a) every replica burns the timeout, and (b) the next-round
blocks do not reference the leader, so the fast-path commit fails and the
wave's payload must wait for a later leader's cascade — the "prolonged
switch from the optimistic path to the pessimistic path" behind
Bullshark's poor showing in Fig. 15.
"""

from __future__ import annotations

from typing import Optional

from ..broadcast.messages import BlockVal
from ..config import SystemConfig
from ..crypto.hashing import hash_to_int
from ..net.interfaces import Message
from .base import Adversary


class TargetedDelayAdversary(Adversary):
    """Delay every message matching a predicate by a fixed amount."""

    def __init__(self, predicate, delay: float, seed: int = 0) -> None:
        super().__init__(seed)
        self.predicate = predicate
        self.delay = delay
        self.delayed_count = 0

    def on_send(self, src: int, dst: int, msg: Message, now: float) -> Optional[float]:
        if self.predicate(src, dst, msg):
            self.delayed_count += 1
            return self.delay
        return 0.0


class BullsharkLeaderDelayAdversary(TargetedDelayAdversary):
    """Delay the predefined Bullshark leaders' leader-round blocks.

    Mirrors :meth:`repro.baselines.bullshark.BullsharkNode.predefined_leader`
    — the adversary can compute the schedule because it is public.  Only
    VAL messages are touched (delaying echoes/readies of an already-spread
    block buys the adversary nothing).
    """

    def __init__(self, system: SystemConfig, delay: float = 1.0, seed: int = 0) -> None:
        self.system = system

        def is_leader_block(src: int, dst: int, msg: Message) -> bool:
            if not isinstance(msg, BlockVal):
                return False
            block = msg.block
            if block.round < 1 or block.round % 2 == 0:
                return False  # leader rounds are the odd (wave-first) rounds
            wave = (block.round - 1) // 2 + 1
            leader = (
                hash_to_int("bullshark-leader", system.seed, wave) % system.n
            )
            return block.author == leader

        super().__init__(predicate=is_leader_block, delay=delay, seed=seed)
