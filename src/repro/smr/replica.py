"""The replication glue: protocol node + state machine + clients.

:class:`SmrReplica` owns one consensus node and one state machine.  Client
commands enter through :meth:`submit`; the replica batches them into block
payloads (the node's ``payload_source`` hook), and the node's ``on_commit``
hook feeds committed blocks back in ledger order, where commands are
applied **exactly once** (dedup by command id — consensus may commit the
same payload twice through a LightDAG2 reproposal, and clients may retry).

:class:`SmrCluster` assembles a full replicated service over any runtime
(simulator or asyncio) and exposes the cross-replica invariant checks the
tests rely on: identical applied sequences and identical state digests.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Type

from ..codec.primitives import CodecError
from ..config import ProtocolConfig, SystemConfig
from ..crypto.hashing import Digest
from ..crypto.keys import TrustedDealer
from ..dag.block import TxBatch
from ..dag.ledger import CommitRecord, check_prefix_consistency
from ..errors import ProtocolError
from .machine import Command, StateMachine


class SmrReplica:
    """One application replica."""

    def __init__(self, replica_id: int, machine: StateMachine) -> None:
        self.replica_id = replica_id
        self.machine = machine
        self._pending: List[Command] = []
        self._applied_ids: set = set()
        self.applied_order: List[Digest] = []
        self.results: Dict[Digest, bytes] = {}
        self._nonce = itertools.count()
        self._result_listeners: List[Callable[[Command, bytes], None]] = []
        self._trace = None

    def bind_trace(self, trace) -> None:
        """Attach a tracer so applies emit ``trace.execute`` spans — the
        committed → executed milestone of the lifecycle."""
        self._trace = trace

    # -- client side -------------------------------------------------------------

    def submit(self, payload: bytes, client: str = "local") -> Digest:
        """Queue a command for ordering; returns its id for result lookup."""
        command = Command.create(client=client, payload=payload, nonce=next(self._nonce))
        self._pending.append(command)
        return command.command_id

    def submit_command(self, command: Command) -> None:
        """Queue a pre-built command (client retries re-submit the same id)."""
        self._pending.append(command)

    def result_of(self, command_id: Digest) -> Optional[bytes]:
        return self.results.get(command_id)

    def on_result(self, listener: Callable[[Command, bytes], None]) -> None:
        self._result_listeners.append(listener)

    # -- protocol hooks -----------------------------------------------------------

    def payload_source(self, now: float) -> TxBatch:
        """Drain pending commands into the next block's payload."""
        if not self._pending:
            return TxBatch(count=0, tx_size=0)
        commands, self._pending = self._pending, []
        items = tuple(c.to_bytes() for c in commands)
        return TxBatch(
            count=len(items),
            tx_size=max(len(i) for i in items),
            submit_time_sum=len(items) * now,
            sample=(now,),
            items=items,
        )

    def on_commit(self, record: CommitRecord) -> None:
        """Apply a committed block's commands in order, exactly once."""
        applied_before = len(self.applied_order)
        for raw in record.block.payload.items:
            try:
                command = Command.from_bytes(raw)
            except CodecError:
                continue  # non-command payload (foreign app); skip deterministically
            if command.command_id in self._applied_ids:
                continue
            self._applied_ids.add(command.command_id)
            result = self.machine.apply(command)
            self.applied_order.append(command.command_id)
            self.results[command.command_id] = result
            for listener in self._result_listeners:
                listener(command, result)
        if self._trace is not None:
            self._trace.emit(
                record.commit_time, "trace.execute", self.replica_id,
                digest=record.block.digest.hex()[:8],
                position=record.position,
                commands=len(self.applied_order) - applied_before,
            )


class SmrCluster:
    """A fully wired replicated service (simulator runtime).

    >>> cluster = SmrCluster.build(SystemConfig(n=4), machine_factory=KvStateMachine)
    >>> cluster.replicas[0].submit(b"SET x 1")
    >>> cluster.run(5.0)
    >>> cluster.verify_convergence()
    """

    def __init__(self, replicas: List[SmrReplica], sim) -> None:
        self.replicas = replicas
        self.sim = sim

    @classmethod
    def build(
        cls,
        system: SystemConfig,
        machine_factory: Callable[[], StateMachine],
        protocol: Optional[ProtocolConfig] = None,
        protocol_name: str = "lightdag2",
        latency_model=None,
        seed: int = 0,
        obs=None,
    ) -> "SmrCluster":
        from ..harness.runner import PROTOCOL_REGISTRY
        from ..net.latency import UniformLatency
        from ..net.simulator import Simulation
        from ..obs import NULL_OBS

        obs = obs if obs is not None else NULL_OBS
        protocol = protocol or ProtocolConfig(batch_size=64)
        node_cls: Type = PROTOCOL_REGISTRY[protocol_name]
        chains = TrustedDealer(
            system, coin_threshold=protocol.resolve_coin_threshold(system)
        ).deal()
        replicas = [SmrReplica(i, machine_factory()) for i in range(system.n)]
        if obs.trace.enabled:
            for replica in replicas:
                replica.bind_trace(obs.trace)

        def factory(i: int):
            return lambda net: node_cls(
                net,
                system=system,
                protocol=protocol,
                keychain=chains[i],
                payload_source=replicas[i].payload_source,
                on_commit=replicas[i].on_commit,
                obs=obs,
            )

        sim = Simulation(
            [factory(i) for i in range(system.n)],
            latency_model=latency_model or UniformLatency(0.01, 0.05),
            seed=seed,
            obs=obs,
        )
        return cls(replicas=replicas, sim=sim)

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    # -- invariants ----------------------------------------------------------------

    def verify_convergence(self) -> None:
        """Every pair of replicas agrees on the applied prefix and, where
        both applied equally much, on the exact state digest."""
        check_prefix_consistency([node.ledger for node in self.sim.nodes])
        orders = [replica.applied_order for replica in self.replicas]
        for a in range(len(orders)):
            for b in range(a + 1, len(orders)):
                common = min(len(orders[a]), len(orders[b]))
                if orders[a][:common] != orders[b][:common]:
                    raise ProtocolError(
                        f"replicas {a} and {b} applied different command "
                        f"prefixes"
                    )
                if len(orders[a]) == len(orders[b]):
                    da = self.replicas[a].machine.state_digest()
                    db = self.replicas[b].machine.state_digest()
                    if da != db:
                        raise ProtocolError(
                            f"replicas {a} and {b} applied the same commands "
                            f"but diverged in state"
                        )
