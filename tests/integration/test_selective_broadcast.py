"""Selective-VAL Byzantine broadcasters: the attack §IV-A exists for.

CBC has no totality: a Byzantine broadcaster can send its VAL to just
enough replicas to complete the echo quorum, leaving the rest without the
body.  The deprived replicas must not diverge — when a descendant block
arrives referencing the withheld block, the parent-missing path retrieves
it (digest-pinned) before anything is accepted, so commits stay identical.
"""

import pytest

from repro.broadcast.messages import BlockVal
from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag1 import LightDag1Node
from repro.core.lightdag2 import LightDag2Node
from repro.crypto.keys import TrustedDealer
from repro.dag.ledger import check_prefix_consistency
from repro.net.latency import FixedLatency
from repro.net.simulator import Simulation


class SelectiveValNode(LightDag1Node):
    """Byzantine: sends block bodies to a quorum only (echoes still flow).

    The chosen quorum excludes the lowest-id honest replicas, so those
    replicas repeatedly face echo-complete-but-no-body slots and must rely
    on retrieval through descendants.
    """

    def _broadcast_block(self, block):
        # The broadcaster votes for its own block, so quorum-1 other
        # recipients suffice — replica 1 never gets the body.
        n = self.net.n
        recipients = set(range(n - (self.system.quorum - 1), n)) | {self.node_id}
        for dst in range(n):
            if dst in recipients:
                self.net.send(dst, BlockVal(block))


class SelectiveValNode2(LightDag2Node):
    """Same behaviour for LightDAG2 (PBC and CBC rounds alike)."""

    def _broadcast_block(self, block):
        n = self.net.n
        recipients = set(range(n - (self.system.quorum - 1), n)) | {self.node_id}
        for dst in range(n):
            if dst in recipients:
                self.net.send(dst, BlockVal(block))


def build_sim(byz_cls, honest_cls, n=4, seed=3):
    system = SystemConfig(n=n, crypto="hmac", seed=seed)
    protocol = ProtocolConfig(batch_size=5)
    chains = TrustedDealer(
        system, coin_threshold=protocol.resolve_coin_threshold(system)
    ).deal()

    def factory(i):
        cls = byz_cls if i == 0 else honest_cls
        return lambda net: cls(net, system, protocol, chains[i])

    return Simulation(
        [factory(i) for i in range(n)],
        latency_model=FixedLatency(0.05),
        seed=seed,
    )


@pytest.mark.parametrize(
    "byz_cls,honest_cls",
    [(SelectiveValNode, LightDag1Node), (SelectiveValNode2, LightDag2Node)],
)
class TestSelectiveBroadcast:
    def test_deprived_replicas_stay_consistent(self, byz_cls, honest_cls):
        sim = build_sim(byz_cls, honest_cls)
        sim.run(until=6.0)
        honest = sim.nodes[1:]
        check_prefix_consistency([n.ledger for n in honest])
        assert all(len(n.ledger) > 20 for n in honest)

    def test_withheld_blocks_retrieved_through_descendants(self, byz_cls, honest_cls):
        sim = build_sim(byz_cls, honest_cls)
        sim.run(until=6.0)
        # Replica 1 never receives node 0's VALs directly (recipients are
        # {0, 2, 3}) and must retrieve them through descendants.
        deprived = [
            node for node in sim.nodes[1:]
            if node.retrieval.requests_sent > 0
        ]
        assert deprived, "no replica ever needed retrieval — attack not exercised"
        # And the withheld author's committed blocks are present everywhere.
        reference = sim.nodes[3]
        byz_committed = [
            r.block.digest for r in reference.ledger if r.block.author == 0
        ]
        assert byz_committed, "the selective broadcaster's blocks never committed"
        for node in sim.nodes[1:]:
            for digest in byz_committed[: len(node.ledger)]:
                if digest in node.ledger.committed_digests:
                    assert digest in node.store

    def test_commit_rate_not_collapsed(self, byz_cls, honest_cls):
        attacked = build_sim(byz_cls, honest_cls)
        attacked.run(until=6.0)
        clean = build_sim(honest_cls, honest_cls)
        clean.run(until=6.0)
        assert (
            len(attacked.nodes[1].ledger) > 0.5 * len(clean.nodes[1].ledger)
        )
