"""Table I: latency measured in communication steps.

The paper's Table I compares protocols by *communication steps* — network
traversals between a leader block's proposal and its commitment.  We
measure this directly: run each protocol on a unit-latency network
(every link exactly 1 time unit, no bandwidth term), stamp every block's
payload at proposal time, and read the **minimum committed-transaction
latency** — which is exactly the leader-block best case, because the
leader is the youngest block in its own commit batch.

The coin shares ride with the wave's last-round VALs, so the measured
figures are Table I's *bracketed* values (count only the first step of the
reveal round): LightDAG1 → 5, Tusk → 7, DAG-Rider → 10; LightDAG2 → 4 and
Bullshark → 6 (no brackets apply).  The unbracketed and worst-case values
are analytic properties of the wave structure and are reproduced as
formulas in :data:`TABLE1_ANALYTIC`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import ProtocolConfig, SystemConfig
from ..crypto.keys import TrustedDealer
from ..dag.ledger import check_prefix_consistency
from ..net.latency import FixedLatency
from ..net.simulator import Simulation
from .runner import PROTOCOL_REGISTRY


@dataclass(frozen=True)
class AnalyticRow:
    """One Table I row as the paper states it."""

    wave_length: int
    broadcast: str
    best_steps: int
    best_steps_early_reveal: Optional[int]
    worst_steps: str  # formulas like "12(t+1)" stay symbolic


#: Table I verbatim (the claims under reproduction).
TABLE1_ANALYTIC: Dict[str, AnalyticRow] = {
    "dagrider": AnalyticRow(4, "RBC", 12, 10, "18"),
    "tusk": AnalyticRow(3, "RBC", 9, 7, "21"),
    "bullshark": AnalyticRow(4, "RBC", 6, None, "30"),
    "lightdag1": AnalyticRow(3, "CBC", 6, 5, "14"),
    "lightdag2": AnalyticRow(3, "CBC & PBC", 4, None, "12(t+1)"),
}


@dataclass
class StepMeasurement:
    """Measured step latencies for one protocol."""

    protocol: str
    best_steps: float
    mean_steps: float
    waves_committed: int


def measure_commit_steps(
    protocol_name: str,
    n: int = 4,
    sim_steps: float = 60.0,
    seed: int = 0,
) -> StepMeasurement:
    """Run ``protocol_name`` on a unit-latency network and measure commit
    latency in steps.

    Every payload transaction is stamped at block-proposal time, so a
    committed transaction's latency *is* the number of unit-steps between
    its block's proposal and commitment; the minimum over all commits is
    the protocol's best-case step count.
    """
    system = SystemConfig(n=n, crypto="hmac", seed=seed)
    protocol = ProtocolConfig(batch_size=1)
    chains = TrustedDealer(
        system, coin_threshold=protocol.resolve_coin_threshold(system)
    ).deal()
    node_cls = PROTOCOL_REGISTRY[protocol_name]

    latencies: List[float] = []

    def payload_source(now: float):
        from ..dag.block import TxBatch

        return TxBatch(count=1, tx_size=1, submit_time_sum=now, sample=(now,))

    def on_commit(record) -> None:
        payload = record.block.payload
        if payload.count:
            latencies.append(record.commit_time - payload.mean_submit_time())

    def factory_for(i: int):
        def make(net):
            return node_cls(
                net,
                system=system,
                protocol=protocol,
                keychain=chains[i],
                payload_source=payload_source,
                on_commit=on_commit if i == 0 else None,
            )

        return make

    sim = Simulation(
        [factory_for(i) for i in range(n)],
        latency_model=FixedLatency(1.0),
        bandwidth_bps=None,  # pure step counting — no serialization term
        seed=seed,
    )
    sim.run(until=sim_steps)
    check_prefix_consistency([node.ledger for node in sim.nodes])
    if not latencies:
        return StepMeasurement(protocol_name, math.nan, math.nan, 0)
    return StepMeasurement(
        protocol=protocol_name,
        best_steps=min(latencies),
        mean_steps=sum(latencies) / len(latencies),
        waves_committed=len(sim.nodes[0].committed_leader_waves),
    )


def table1_rows(n: int = 4, seed: int = 0) -> List[Dict[str, object]]:
    """Measured-vs-paper rows for every protocol in Table I."""
    rows: List[Dict[str, object]] = []
    for name, analytic in TABLE1_ANALYTIC.items():
        measured = measure_commit_steps(name, n=n, seed=seed)
        expected = (
            analytic.best_steps_early_reveal
            if analytic.best_steps_early_reveal is not None
            else analytic.best_steps
        )
        rows.append(
            {
                "protocol": name,
                "wave_length": analytic.wave_length,
                "broadcast": analytic.broadcast,
                "paper_best": analytic.best_steps,
                "paper_best_early": analytic.best_steps_early_reveal,
                "paper_worst": analytic.worst_steps,
                "measured_best": round(measured.best_steps, 2),
                "measured_mean": round(measured.mean_steps, 2),
                "expected_measured": expected,
            }
        )
    return rows
