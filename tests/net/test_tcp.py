"""Tests for repro.net.tcp: consensus over real loopback sockets."""

import asyncio

import pytest

from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag2 import LightDag2Node
from repro.core.lightdag1 import LightDag1Node
from repro.crypto.keys import TrustedDealer
from repro.dag.block import TxBatch
from repro.dag.ledger import check_prefix_consistency
from repro.net.tcp import TcpCluster, _encode_frame, _read_frame, run_tcp_cluster


def build_factories(node_cls, n=4, batch=10):
    system = SystemConfig(n=n, crypto="hmac", seed=1)
    protocol = ProtocolConfig(batch_size=batch)
    chains = TrustedDealer(system).deal()

    def payload_source(now):
        return TxBatch(count=batch, tx_size=128, submit_time_sum=batch * now,
                       sample=(now,))

    def factory(i):
        return lambda net: node_cls(
            net, system, protocol, chains[i], payload_source=payload_source
        )

    return [factory(i) for i in range(n)]


class TestFraming:
    def test_frame_roundtrip(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(_encode_frame(b"hello world"))
            reader.feed_eof()
            return await _read_frame(reader)

        assert asyncio.run(scenario()) == b"hello world"

    def test_empty_frame(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(_encode_frame(b""))
            reader.feed_eof()
            return await _read_frame(reader)

        assert asyncio.run(scenario()) == b""

    def test_large_frame(self):
        payload = bytes(200_000)

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(_encode_frame(payload))
            reader.feed_eof()
            return await _read_frame(reader)

        assert asyncio.run(scenario()) == payload


class TestTcpConsensus:
    def test_lightdag2_commits_over_tcp(self):
        cluster = run_tcp_cluster(build_factories(LightDag2Node), duration=3.0)
        ledgers = [node.ledger for node in cluster.nodes]
        check_prefix_consistency(ledgers)
        assert all(len(ledger) > 0 for ledger in ledgers)
        assert cluster.frames_sent > 0
        assert cluster.frames_received > 0
        assert cluster.decode_errors == 0

    def test_lightdag1_commits_over_tcp(self):
        cluster = run_tcp_cluster(build_factories(LightDag1Node), duration=3.0)
        ledgers = [node.ledger for node in cluster.nodes]
        check_prefix_consistency(ledgers)
        assert all(len(ledger) > 0 for ledger in ledgers)

    def test_payload_survives_the_wire(self):
        cluster = run_tcp_cluster(build_factories(LightDag2Node, batch=7), duration=3.0)
        committed = [r.block.payload.count for r in cluster.nodes[0].ledger
                     if r.block.payload.count]
        assert committed and all(c == 7 for c in committed)
