"""Exporters for the :mod:`repro.obs` instrumentation layer.

Three output formats, one source of truth (the registry + journal of an
instrumented run):

* :func:`journal_to_jsonl` — one JSON object per line, in event order.
  ``grep``-able, ``jq``-able, and the determinism witness (same seed →
  byte-identical dump).
* :func:`registry_to_prometheus` — a Prometheus text-format snapshot
  (``# TYPE`` headers, labeled series, cumulative histogram buckets), so
  run telemetry can be diffed or fed to any Prometheus-speaking tool.
* :func:`journal_to_chrome_trace` — Chrome ``trace_event`` JSON that opens
  directly in ``about:tracing`` / `Perfetto <https://ui.perfetto.dev>`_.
  Replicas become processes; per-author lanes carry **dissemination**
  spans (block proposed → delivered here) and **ordering** spans (block
  delivered here → committed here) — the paper's two latency terms,
  visible per block.  Cross-replica *flow* arrows link each proposal to
  its remote deliveries, and lifecycle (``trace.*``) / watchdog
  (``health.*``) events land as categorized instants.

:func:`registry_summary_rows` backs the ``repro report`` CLI table.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..obs import EventJournal, Histogram, MetricsRegistry

PathLike = Optional[Union[str, Path]]


def _maybe_write(text: str, path: PathLike) -> str:
    if path is not None:
        Path(path).write_text(text)
    return text


# -- JSONL journal dump ------------------------------------------------------


def journal_to_jsonl(journal: EventJournal, path: PathLike = None) -> str:
    """Serialize the journal as one compact JSON object per line."""
    lines = [
        json.dumps(event.as_dict(), sort_keys=True, separators=(",", ":"))
        for event in journal
    ]
    return _maybe_write("\n".join(lines) + ("\n" if lines else ""), path)


def load_journal_jsonl(path: Union[str, Path]) -> List[dict]:
    """Read back a JSONL journal dump as a list of event dicts."""
    return [
        json.loads(line)
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]


# -- Prometheus text snapshot ------------------------------------------------


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _prom_number(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def registry_to_prometheus(registry: MetricsRegistry, path: PathLike = None) -> str:
    """Render the registry in the Prometheus exposition text format."""
    lines: List[str] = []
    seen_types: set = set()
    for name, kind, labels, inst in registry.series():
        pname = _prom_name(name)
        if pname not in seen_types:
            seen_types.add(pname)
            lines.append(f"# TYPE {pname} {kind}")
        if isinstance(inst, Histogram):
            cumulative = 0
            for upper, count in zip(inst.buckets, inst.bucket_counts):
                cumulative += count
                bucket_labels = dict(labels, le=_prom_number(upper))
                lines.append(
                    f"{pname}_bucket{_prom_labels(bucket_labels)} {cumulative}"
                )
            lines.append(
                f"{pname}_bucket{_prom_labels(dict(labels, le='+Inf'))} {inst.count}"
            )
            lines.append(f"{pname}_sum{_prom_labels(labels)} {_prom_number(inst.total)}")
            lines.append(f"{pname}_count{_prom_labels(labels)} {inst.count}")
        else:
            lines.append(f"{pname}{_prom_labels(labels)} {_prom_number(inst.value)}")
    return _maybe_write("\n".join(lines) + ("\n" if lines else ""), path)


# -- Chrome trace_event JSON -------------------------------------------------

#: Journal event types the trace exporter pairs into spans.
_PROPOSE, _DELIVER, _COMMIT = "block.propose", "block.deliver", "block.commit"

#: Event types rendered as instants on the acting replica's main lane.
_INSTANT_TYPES = {
    "coin.reveal": "coin",
    "coin.recover_request": "coin",
    "wave.commit": "commit",
    "retrieval.request": "retrieval",
    "stall.rebroadcast": "recovery",
    "adversary.drop": "adversary",
    "adversary.delay": "adversary",
    # Lifecycle trace spans (repro.obs.trace) and health alerts land as
    # categorized instants so Perfetto can filter them per category.
    "trace.batch": "workload",
    "trace.quorum": "lifecycle",
    "trace.unblocked": "lifecycle",
    "trace.ordered": "lifecycle",
    "trace.execute": "smr",
    "trace.cpu_wait": "cpu",
    "trace.repropose": "lifecycle",
    "health.commit_stall": "health",
    "health.retrieval_storm": "health",
    "health.quorum_inflation": "health",
}

#: tid of the per-replica instant lane (author lanes are 1 + author).
_MAIN_LANE = 0


def _us(t: float) -> float:
    return t * 1e6


def journal_to_chrome_trace(journal: EventJournal, path: PathLike = None) -> str:
    """Render the journal as Chrome ``trace_event`` JSON.

    Layout: one *process* per replica; inside it, lane 0 carries instant
    events (coin reveals, wave commits, retrievals, adversary actions) and
    lane ``1 + author`` carries the block spans originating from that
    author — a **dissemination** span from the author's proposal to the
    local delivery, and an **ordering** span from local delivery to local
    commitment.  Open the file in ``about:tracing`` or Perfetto.
    """
    events: List[dict] = []
    nodes: set = set()
    proposed_at: Dict[str, float] = {}
    delivered_at: Dict[tuple, float] = {}
    next_flow_id = 1

    for event in journal:
        nodes.add(event.node)
        data = event.data
        if event.type == _PROPOSE:
            digest = data.get("digest")
            if digest is not None and digest not in proposed_at:
                proposed_at[digest] = event.t
        elif event.type == _DELIVER:
            digest = data.get("digest")
            author = data.get("author", 0)
            delivered_at[(event.node, digest)] = event.t
            start = proposed_at.get(digest)
            if start is not None:
                events.append({
                    "name": f"disseminate r{data.get('round')}/a{author}",
                    "cat": "dissemination",
                    "ph": "X",
                    "ts": _us(start),
                    "dur": max(_us(event.t - start), 0.0),
                    "pid": event.node,
                    "tid": 1 + int(author),
                    "args": {"digest": digest},
                })
                if event.node != author:
                    # Perfetto flow arrow: the author's proposal → this
                    # replica's delivery.  One flow per (digest, dst); the
                    # start binds inside the author's own dissemination
                    # slice, the finish (bp="e") to this replica's.
                    flow = {
                        "name": "propagate",
                        "cat": "flow",
                        "id": next_flow_id,
                        "args": {"digest": digest},
                    }
                    next_flow_id += 1
                    events.append(dict(
                        flow, ph="s", ts=_us(start),
                        pid=int(author), tid=1 + int(author),
                    ))
                    events.append(dict(
                        flow, ph="f", bp="e", ts=_us(event.t),
                        pid=event.node, tid=1 + int(author),
                    ))
        elif event.type == _COMMIT:
            digest = data.get("digest")
            author = data.get("author", 0)
            start = delivered_at.get((event.node, digest))
            if start is not None:
                events.append({
                    "name": f"order r{data.get('round')}/a{author}",
                    "cat": "ordering",
                    "ph": "X",
                    "ts": _us(start),
                    "dur": max(_us(event.t - start), 0.0),
                    "pid": event.node,
                    "tid": 1 + int(author),
                    "args": {"digest": digest, "wave": data.get("wave")},
                })
        else:
            cat = _INSTANT_TYPES.get(event.type)
            if cat is not None:
                events.append({
                    "name": event.type,
                    "cat": cat,
                    "ph": "i",
                    "s": "t",
                    "ts": _us(event.t),
                    "pid": event.node,
                    "tid": _MAIN_LANE,
                    "args": {
                        k: v for k, v in data.items() if not isinstance(v, dict)
                    },
                })

    metadata: List[dict] = []
    for node in sorted(nodes):
        label = f"replica {node}" if node >= 0 else "network"
        metadata.append({
            "name": "process_name", "ph": "M", "pid": node, "tid": _MAIN_LANE,
            "args": {"name": label},
        })
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": node, "tid": _MAIN_LANE,
            "args": {"name": "events"},
        })
    named_lanes: set = set()
    for event in events:
        key = (event["pid"], event["tid"])
        if event["tid"] != _MAIN_LANE and key not in named_lanes:
            named_lanes.add(key)
            metadata.append({
                "name": "thread_name", "ph": "M",
                "pid": event["pid"], "tid": event["tid"],
                "args": {"name": f"blocks from author {event['tid'] - 1}"},
            })

    trace = {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "time_unit": "sim-seconds -> us"},
    }
    return _maybe_write(json.dumps(trace, indent=1, sort_keys=True), path)


# -- summary table (repro report) -------------------------------------------


def registry_summary_rows(registry: MetricsRegistry) -> List[Dict[str, object]]:
    """One table row per series: name, labels, and a value summary."""
    rows: List[Dict[str, object]] = []
    for name, kind, labels, inst in registry.series():
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        if isinstance(inst, Histogram):
            if not inst.count:
                continue
            rows.append({
                "metric": name, "labels": label_text, "kind": kind,
                "count": inst.count,
                "value": round(inst.total, 6),
                "mean": round(inst.mean, 6),
                "p95": round(inst.quantile(0.95), 6),
                "max": round(inst.max, 6),
            })
        else:
            value = float(inst.value)
            rows.append({
                "metric": name, "labels": label_text, "kind": kind,
                "count": "",
                "value": int(value) if value.is_integer() else round(value, 6),
                "mean": "", "p95": "", "max": "",
            })
    return rows
