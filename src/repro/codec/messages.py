"""Codec for the full protocol message set.

Every :class:`~repro.net.interfaces.Message` subclass used on the wire
gets a one-byte kind tag; :func:`encode_message` / :func:`decode_message`
are the single entry points the TCP transport uses.  Unknown tags raise
:class:`~repro.codec.primitives.CodecError` — forward compatibility is a
framing concern, not a silent-skip concern, in a BFT setting.
"""

from __future__ import annotations

from ..broadcast.messages import (
    MAX_REQUEST_DIGESTS,
    BlockEcho,
    BlockReady,
    BlockVal,
    ByzantineProofMsg,
    CoinShareMsg,
    CoinShareRequest,
    ContradictionNotice,
    RetrievalRequest,
    RetrievalResponse,
)
from ..crypto.coin import CoinShare
from ..crypto.hashing import intern_digest
from ..crypto.threshold import DleqProof, PartialEval
from ..net.interfaces import Message
from .blocks import decode_block, encode_block
from .primitives import CodecError, Reader, Writer

_KIND_VAL = 1
_KIND_ECHO = 2
_KIND_READY = 3
_KIND_RETR_REQ = 4
_KIND_RETR_RESP = 5
_KIND_COIN = 6
_KIND_CONTRADICTION = 7
_KIND_BYZ_PROOF = 8
_KIND_COIN_REQ = 9

_COIN_TOKEN = 0
_COIN_PARTIAL = 1


def _encode_coin_share(w: Writer, share: CoinShare) -> None:
    w.uvarint(share.wave)
    w.uvarint(share.replica)
    payload = share.payload
    if isinstance(payload, bytes):
        w.byte(_COIN_TOKEN)
        w.lp_bytes(payload)
    elif isinstance(payload, PartialEval):
        w.byte(_COIN_PARTIAL)
        w.uvarint(payload.index)
        w.bigint(payload.value)
        w.bigint(payload.proof.c)
        w.bigint(payload.proof.s)
    else:
        raise CodecError(f"unknown coin payload {type(payload).__name__}")


def _decode_coin_share(r: Reader) -> CoinShare:
    wave = r.uvarint()
    replica = r.uvarint()
    tag = r.byte()
    if tag == _COIN_TOKEN:
        payload: object = r.lp_bytes()
    elif tag == _COIN_PARTIAL:
        payload = PartialEval(
            index=r.uvarint(),
            value=r.bigint(),
            proof=DleqProof(c=r.bigint(), s=r.bigint()),
        )
    else:
        raise CodecError(f"unknown coin payload tag {tag}")
    return CoinShare(wave=wave, replica=replica, payload=payload)


def encode_message(msg: Message) -> bytes:
    """Encode any wire message to bytes (kind tag + body)."""
    w = Writer()
    if isinstance(msg, BlockVal):
        w.byte(_KIND_VAL)
        encode_block(w, msg.block)
    elif isinstance(msg, BlockEcho):
        w.byte(_KIND_ECHO)
        w.uvarint(msg.round)
        w.uvarint(msg.author)
        w.lp_bytes(msg.digest)
    elif isinstance(msg, BlockReady):
        w.byte(_KIND_READY)
        w.uvarint(msg.round)
        w.uvarint(msg.author)
        w.lp_bytes(msg.digest)
    elif isinstance(msg, RetrievalRequest):
        w.byte(_KIND_RETR_REQ)
        w.uvarint(len(msg.digests))
        for digest in msg.digests:
            w.lp_bytes(digest)
    elif isinstance(msg, RetrievalResponse):
        w.byte(_KIND_RETR_RESP)
        w.uvarint(len(msg.blocks))
        for block in msg.blocks:
            encode_block(w, block)
    elif isinstance(msg, CoinShareMsg):
        w.byte(_KIND_COIN)
        _encode_coin_share(w, msg.share)
    elif isinstance(msg, CoinShareRequest):
        w.byte(_KIND_COIN_REQ)
        w.uvarint(msg.wave)
    elif isinstance(msg, ContradictionNotice):
        w.byte(_KIND_CONTRADICTION)
        w.lp_bytes(msg.objected)
        encode_block(w, msg.conflicting_block)
    elif isinstance(msg, ByzantineProofMsg):
        w.byte(_KIND_BYZ_PROOF)
        w.uvarint(msg.culprit)
        encode_block(w, msg.block_a)
        encode_block(w, msg.block_b)
        w.lp_bytes(msg.objected)
    else:
        raise CodecError(f"cannot encode message type {type(msg).__name__}")
    return w.getvalue()


def encoded_wire_bytes(msg: Message) -> bytes:
    """Encode ``msg`` once and memoize the bytes on the instance.

    The transports fan every message out to ``n-1`` peers; the payload
    bytes are identical per recipient, so serializing per send is Θ(n)
    redundant work per broadcast.  Message dataclasses are frozen, which
    makes the memo impossible to invalidate — the bytes can never go
    stale.  Falls back to a plain encode for slotted/foreign messages.
    """
    try:
        cached = msg.__dict__.get("_wire_bytes")
    except AttributeError:  # __slots__-style message: nowhere to memoize
        return encode_message(msg)
    if cached is None:
        cached = encode_message(msg)
        object.__setattr__(msg, "_wire_bytes", cached)
    return cached


def decode_message(data: bytes) -> Message:
    """Decode one message; rejects unknown kinds and trailing bytes."""
    r = Reader(data)
    kind = r.byte()
    msg: Message
    if kind == _KIND_VAL:
        msg = BlockVal(decode_block(r))
    elif kind == _KIND_ECHO:
        msg = BlockEcho(
            round=r.uvarint(), author=r.uvarint(),
            digest=intern_digest(r.lp_bytes()),
        )
    elif kind == _KIND_READY:
        msg = BlockReady(
            round=r.uvarint(), author=r.uvarint(),
            digest=intern_digest(r.lp_bytes()),
        )
    elif kind == _KIND_RETR_REQ:
        count = r.uvarint()
        # Bound claimed element counts before looping: a malicious frame
        # announcing 2^60 digests must fail fast, not drain the reader.
        if count > MAX_REQUEST_DIGESTS:
            raise CodecError(f"retrieval request claims {count} digests")
        msg = RetrievalRequest(
            tuple(intern_digest(r.lp_bytes()) for _ in range(count))
        )
    elif kind == _KIND_RETR_RESP:
        count = r.uvarint()
        if count > MAX_REQUEST_DIGESTS:
            raise CodecError(f"retrieval response claims {count} blocks")
        msg = RetrievalResponse(tuple(decode_block(r) for _ in range(count)))
    elif kind == _KIND_COIN:
        msg = CoinShareMsg(_decode_coin_share(r))
    elif kind == _KIND_COIN_REQ:
        msg = CoinShareRequest(wave=r.uvarint())
    elif kind == _KIND_CONTRADICTION:
        msg = ContradictionNotice(objected=r.lp_bytes(), conflicting_block=decode_block(r))
    elif kind == _KIND_BYZ_PROOF:
        msg = ByzantineProofMsg(
            culprit=r.uvarint(),
            block_a=decode_block(r),
            block_b=decode_block(r),
            objected=r.lp_bytes(),
        )
    else:
        raise CodecError(f"unknown message kind {kind}")
    r.expect_eof()
    return msg
