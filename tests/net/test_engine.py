"""Engine-equivalence tests for the simulator's broadcast fast paths.

The simulator has three delivery engines (``Simulation(engine=...)``):

* ``"generic"`` — the per-copy ``latency.delay()`` path (the reference).
* ``"flat"`` — inlines the factored-latency row on the fan-out.
* ``"numpy"`` — additionally vectorizes fan-outs of 32+ destinations into
  one batched heap entry (pure-python fallback when numpy is missing).

The contract is **bit-identity**: same deliveries, same times, same RNG
trajectory, same stats — the engines are representations, not semantics.
These tests drive a 40-replica broadcast storm (fan-out 39, above the
vectorization threshold) through all three and diff everything.
"""

from dataclasses import dataclass

import pytest

from repro.errors import SimulationError
from repro.net.interfaces import Message, Node
from repro.net.latency import TopologyLatency, UniformLatency, WanLatency
from repro.net.simulator import _NUMPY_MIN_FANOUT, Simulation, _numpy

N_STORM = 40  # fan-out 39 >= _NUMPY_MIN_FANOUT, so batches engage
ROUNDS = 4


@dataclass(frozen=True)
class Gossip(Message):
    origin: int
    round: int
    size: int = 700

    def wire_size(self) -> int:
        return self.size


class Storm(Node):
    """Broadcasts one message per round for ROUNDS rounds, records all."""

    def __init__(self, net):
        super().__init__(net)
        self.received = []

    def on_start(self):
        self.net.broadcast(Gossip(origin=self.net.node_id, round=0))
        self.net.set_timer(0.25, "next", 1)

    def on_message(self, src, msg):
        self.received.append((self.net.now(), src, msg.origin, msg.round))

    def on_timer(self, tag, data=None):
        if data < ROUNDS:
            self.net.broadcast(Gossip(origin=self.net.node_id, round=data))
            self.net.set_timer(0.25, "next", data + 1)


def run_storm(engine, latency=None, bandwidth=None, n=N_STORM):
    sim = Simulation(
        [Storm for _ in range(n)],
        latency_model=latency or WanLatency(jitter_frac=0.1),
        bandwidth_bps=bandwidth,
        seed=11,
        engine=engine,
    )
    sim.start()
    sim.run(until=3.0)
    return sim


def trace(sim):
    """Everything that must be engine-invariant, in one comparable blob."""
    return {
        "received": [node.received for node in sim.nodes],
        "rng": sim.rng.getstate(),
        "now": sim.now,
        "events": sim.stats.events_processed,
        "sent": sim.stats.messages_sent,
        "delivered": sim.stats.messages_delivered,
        "bytes": sim.stats.bytes_sent,
        "per_node_bytes": list(sim.stats.per_node_bytes),
    }


class TestEngineEquivalence:
    @pytest.mark.parametrize("engine", ["flat", "numpy", "auto"])
    def test_bit_identical_to_generic(self, engine):
        reference = trace(run_storm("generic"))
        assert trace(run_storm(engine)) == reference
        # Sanity: every broadcast reached the full mesh (self included).
        assert reference["delivered"] == N_STORM * ROUNDS * N_STORM

    @pytest.mark.parametrize("engine", ["flat", "numpy"])
    def test_bit_identical_with_bandwidth(self, engine):
        reference = trace(run_storm("generic", bandwidth=50_000_000))
        assert trace(run_storm(engine, bandwidth=50_000_000)) == reference

    @pytest.mark.parametrize("engine", ["flat", "numpy"])
    def test_bit_identical_on_topology_model(self, engine):
        latency = TopologyLatency(clusters=8, jitter_frac=0.1, link_spread=0.2)
        reference = trace(run_storm("generic", latency=latency))
        fresh = TopologyLatency(clusters=8, jitter_frac=0.1, link_spread=0.2)
        assert trace(run_storm(engine, latency=fresh)) == reference

    @pytest.mark.parametrize("engine", ["flat", "numpy"])
    def test_bit_identical_below_vector_threshold(self, engine):
        """Small fan-outs take the scalar path in every engine — still
        identical (this is the n<=16 regime every existing test runs in)."""
        reference = trace(run_storm("generic", n=8))
        assert trace(run_storm(engine, n=8)) == reference

    def test_numpy_batch_path_exercised(self):
        """The vectorized path must actually engage at fan-out 39 —
        otherwise the equivalence tests above prove nothing about it."""
        if _numpy() is None:
            pytest.skip("numpy not available; pure-python fallback in use")
        sim = run_storm("numpy")
        assert sim._np_rows, "no vectorized rows were ever built"
        assert N_STORM - 1 >= _NUMPY_MIN_FANOUT

    def test_lossy_model_forces_per_copy_sampling(self):
        """Loss decisions are per copy, so lossy models disable the flat
        rows in every engine — and drops actually happen."""
        latency = TopologyLatency(clusters=4, loss=0.3)
        sim = run_storm("auto", latency=latency)
        assert sim._flat_rows is None
        assert sim.stats.messages_dropped > 0
        # Conservation: every wire copy is delivered or dropped; the
        # N * ROUNDS self-deliveries are never wire copies.
        assert (
            sim.stats.messages_delivered + sim.stats.messages_dropped
            == sim.stats.messages_sent + N_STORM * ROUNDS
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError, match="unknown engine"):
            run_storm("turbo")

    def test_env_var_selects_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "generic")
        sim = Simulation([Storm], latency_model=WanLatency())
        assert sim.engine == "generic"
        assert sim._flat_rows is None


class TestBatchBookkeeping:
    def test_pending_events_counts_batch_remainders(self):
        """A batched fan-out is one heap entry but n-1 pending deliveries;
        pending_events must report the logical count."""
        if _numpy() is None:
            pytest.skip("numpy not available; pure-python fallback in use")
        sim = Simulation(
            [Storm for _ in range(N_STORM)],
            latency_model=WanLatency(jitter_frac=0.1),
            seed=3,
            engine="numpy",
        )
        sim.start()
        drained = Simulation(
            [Storm for _ in range(N_STORM)],
            latency_model=WanLatency(jitter_frac=0.1),
            seed=3,
            engine="generic",
        )
        drained.start()
        assert sim.pending_events == drained.pending_events
        assert len(sim._queue) < len(drained._queue)  # ...in fewer entries

    def test_repeated_run_calls_resume_cleanly(self):
        """run(until=...) leaves batch entries half-delivered on the heap;
        a second run() must pick them up exactly where they stopped."""
        split = Simulation(
            [Storm for _ in range(N_STORM)],
            latency_model=WanLatency(jitter_frac=0.1),
            seed=5,
            engine="numpy",
        )
        split.start()
        split.run(until=0.04)  # mid-flight: WAN links take 0.045s+
        split.run(until=3.0)
        whole = run_storm("numpy")
        # seeds differ between helpers; rebuild the reference with seed 5
        whole = Simulation(
            [Storm for _ in range(N_STORM)],
            latency_model=WanLatency(jitter_frac=0.1),
            seed=5,
            engine="generic",
        )
        whole.start()
        whole.run(until=3.0)
        assert trace(split) == trace(whole)


class Quiet(Node):
    """Records deliveries; never initiates traffic of its own."""

    def __init__(self, net):
        super().__init__(net)
        self.received = []

    def on_start(self):
        pass

    def on_message(self, src, msg):
        self.received.append((self.net.now(), src, msg.origin, msg.round))

    def on_timer(self, tag, data=None):
        pass


class TestPerNodeBandwidth:
    def test_slow_nic_delays_arrivals(self):
        """Replica 0 gets a 10x slower NIC than replica 1; its copy of
        the same-size message must land strictly later."""
        sim = Simulation(
            [Quiet for _ in range(3)],
            latency_model=UniformLatency(0.01, 0.01),
            bandwidth_bps=[1_000_000, 10_000_000, 10_000_000],
            seed=2,
        )
        sim.start()
        sim.nodes[0].net.send(2, Gossip(origin=0, round=0))
        sim.nodes[1].net.send(2, Gossip(origin=1, round=0))
        sim.run(until=1.0)
        arrivals = {origin: when for when, _, origin, _ in sim.nodes[2].received}
        serialization_slow = Gossip(0, 0).wire_size() * 8 / 1_000_000
        serialization_fast = Gossip(0, 0).wire_size() * 8 / 10_000_000
        assert arrivals[0] == pytest.approx(serialization_slow + 0.01)
        assert arrivals[1] == pytest.approx(serialization_fast + 0.01)

    def test_length_mismatch_rejected(self):
        with pytest.raises(SimulationError, match="entries for"):
            Simulation(
                [Storm, Storm],
                latency_model=UniformLatency(),
                bandwidth_bps=[1_000_000],
            )

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(SimulationError, match="positive"):
            Simulation(
                [Storm, Storm],
                latency_model=UniformLatency(),
                bandwidth_bps=[1_000_000, 0.0],
            )


class TestChurnThroughSimulator:
    def test_down_replica_receives_nothing_inside_window(self):
        latency = TopologyLatency(
            clusters=4, jitter_frac=0.0, churn=((1, 0.0, 0.9),)
        )
        sim = Simulation(
            [Storm for _ in range(6)],
            latency_model=latency,
            seed=4,
        )
        sim.start()
        sim.run(until=0.8)  # all ROUNDS broadcasts happen before t=0.8
        # Self-deliveries are not wire copies, so replica 1 still hears
        # itself — but nothing crosses the wire in either direction.
        assert {src for _, src, _, _ in sim.nodes[1].received} == {1}
        for i, node in enumerate(sim.nodes):
            if i == 1:
                continue
            froms = {src for _, src, _, _ in node.received}
            assert froms == {0, 2, 3, 4, 5}  # everyone but the down replica
