#!/usr/bin/env python3
"""A replicated key-value store on top of LightDAG2 (asyncio runtime).

Demonstrates the library as an application substrate, not just a
measurement rig: each replica accepts ``SET key value`` commands into its
mempool, LightDAG2 orders them across the cluster, and every replica
applies the committed sequence to a local dict.  Because commitment is a
total order (Theorem 6), all replicas end with identical stores — even
though commands entered at different replicas concurrently.

This is state-machine replication in ~100 lines over the public API:
``payload_source`` feeds real bytes in, ``on_commit`` streams the ordered
bytes out.

Run:  python examples/kv_store.py
"""

import asyncio
from typing import Dict, List

from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag2 import LightDag2Node
from repro.crypto.keys import TrustedDealer
from repro.dag.block import TxBatch
from repro.net.asyncnet import AsyncCluster
from repro.net.latency import FixedLatency


class KvReplica:
    """One replica: a command queue in, an ordered state machine out."""

    def __init__(self, replica_id: int) -> None:
        self.replica_id = replica_id
        self.pending: List[bytes] = []
        self.state: Dict[str, str] = {}
        self.applied: List[bytes] = []

    def submit(self, key: str, value: str) -> None:
        """Client-facing write: enqueue a SET command."""
        self.pending.append(f"SET {key} {value}".encode())

    def payload_source(self, now: float) -> TxBatch:
        """Drain pending commands into the next block (protocol hook)."""
        if not self.pending:
            return TxBatch(count=0, tx_size=0)
        items = tuple(self.pending)
        self.pending = []
        return TxBatch(
            count=len(items),
            tx_size=max(len(i) for i in items),
            submit_time_sum=len(items) * now,
            items=items,
        )

    def on_commit(self, record) -> None:
        """Apply committed commands in ledger order (protocol hook)."""
        for command in record.block.payload.items:
            self.applied.append(command)
            op, key, value = command.decode().split(" ", 2)
            assert op == "SET"
            self.state[key] = value


async def main_async() -> None:
    system = SystemConfig(n=4)
    protocol = ProtocolConfig(batch_size=16)
    chains = TrustedDealer(system).deal()
    replicas = [KvReplica(i) for i in range(system.n)]

    def factory(i: int):
        def make(net):
            return LightDag2Node(
                net,
                system,
                protocol,
                chains[i],
                payload_source=replicas[i].payload_source,
                on_commit=replicas[i].on_commit,
            )

        return make

    cluster = AsyncCluster(
        [factory(i) for i in range(system.n)],
        latency_model=FixedLatency(0.005),
    )

    # Concurrent writes landing at different replicas — including two
    # conflicting writes to the same key at replicas 1 and 2.
    replicas[0].submit("alice", "100")
    replicas[1].submit("bob", "250")
    replicas[2].submit("bob", "300")
    replicas[3].submit("carol", "50")

    run = asyncio.create_task(cluster.run(3.0))
    await asyncio.sleep(1.0)
    replicas[1].submit("alice", "175")  # a later write mid-run
    await run

    print("Final replicated state per replica:")
    for replica in replicas:
        print(f"  replica {replica.replica_id}: {dict(sorted(replica.state.items()))}")

    states = {tuple(sorted(r.state.items())) for r in replicas}
    orders = {tuple(r.applied) for r in replicas}
    assert len(states) == 1, "replicas diverged!"
    assert len(orders) == 1, "command orders diverged!"
    print("\nAll replicas applied the same commands in the same order ✓")
    print(f"(conflicting writes to 'bob' resolved identically everywhere: "
          f"bob={replicas[0].state['bob']})")


if __name__ == "__main__":
    asyncio.run(main_async())
