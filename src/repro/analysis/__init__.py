"""Result analysis: repetition statistics, export, DAG visualization.

* :mod:`repro.analysis.stats` — multi-seed repetition (§VI-A: "each group
  of experiments is repeated five times to reduce experimental errors")
  with mean/stdev/CI aggregation.
* :mod:`repro.analysis.export` — JSON and CSV persistence of experiment
  results, for plotting outside this repository.
* :mod:`repro.analysis.dagviz` — render a replica's DAG as ASCII art or
  Graphviz DOT (committed blocks, leaders, equivocations highlighted).
* :mod:`repro.analysis.trace` — commit-pipeline breakdown: how much of
  the latency is broadcast dissemination vs wave ordering.
"""

from .dagviz import dag_to_ascii, dag_to_dot
from .export import results_to_csv, results_to_json
from .stats import RepeatedResult, repeat_experiment
from .trace import PipelineTrace

__all__ = [
    "PipelineTrace",
    "RepeatedResult",
    "dag_to_ascii",
    "dag_to_dot",
    "repeat_experiment",
    "results_to_csv",
    "results_to_json",
]
