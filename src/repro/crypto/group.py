"""Schnorr group arithmetic over an embedded safe prime.

A *Schnorr group* is the order-``q`` subgroup of quadratic residues of
``Z_p^*`` where ``p = 2q + 1`` is a safe prime.  Every non-trivial element
generates the subgroup, discrete logs live in ``Z_q``, and membership is
cheap to test (``x^q == 1 mod p``).  This single structure backs:

* Schnorr signatures (:mod:`repro.crypto.schnorr`),
* the threshold PRF / Global Perfect Coin (:mod:`repro.crypto.threshold`),
* Chaum-Pedersen DLEQ proofs for coin-share verification.

The group is a value object; all operations take plain ints and return
plain ints so there is no per-element wrapper overhead in hot loops.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CryptoError
from .hashing import hash_to_int
from .primes import SAFE_PRIMES, SafePrime


@dataclass(frozen=True)
class SchnorrGroup:
    """The quadratic-residue subgroup of ``Z_p^*`` for a safe prime ``p``."""

    p: int
    q: int
    g: int

    @classmethod
    def from_safe_prime(cls, sp: SafePrime) -> "SchnorrGroup":
        return cls(p=sp.p, q=sp.q, g=sp.g)

    # -- element operations -------------------------------------------------

    def exp(self, base: int, e: int) -> int:
        """``base ** e mod p`` with the exponent reduced mod ``q``."""
        return pow(base, e % self.q, self.p)

    def mul(self, a: int, b: int) -> int:
        """Group multiplication."""
        return a * b % self.p

    def inv(self, a: int) -> int:
        """Multiplicative inverse in ``Z_p^*``."""
        return pow(a, -1, self.p)

    def is_member(self, x: int) -> bool:
        """Subgroup membership test: ``x in (0, p)`` and ``x^q == 1``."""
        return 0 < x < self.p and pow(x, self.q, self.p) == 1

    # -- scalars and encodings ----------------------------------------------

    def random_scalar(self, rng) -> int:
        """Uniform exponent in ``[1, q)`` from a ``random.Random``-like rng."""
        return rng.randrange(1, self.q)

    def scalar_from_hash(self, *fields) -> int:
        """Map arbitrary fields to a nonzero scalar in ``[1, q)``.

        Used for Fiat-Shamir challenges and deterministic nonces.  The
        modular reduction bias is negligible for q near a power of two and
        irrelevant at simulation-grade security.
        """
        return hash_to_int("scalar", *fields) % (self.q - 1) + 1

    def hash_to_group(self, *fields) -> int:
        """Map arbitrary fields to a subgroup element (square of a hash).

        Squaring lands the value in the quadratic-residue subgroup; a zero
        preimage (probability ~2^-256) is remapped by re-hashing.
        """
        counter = 0
        while True:
            x = hash_to_int("h2g", counter, *fields) % self.p
            if x not in (0, 1, self.p - 1):
                return x * x % self.p
            counter += 1

    def element_to_bytes(self, x: int) -> bytes:
        """Fixed-width big-endian encoding of a group element."""
        width = (self.p.bit_length() + 7) // 8
        return x.to_bytes(width, "big")

    def ensure_member(self, x: int, what: str = "element") -> int:
        """Return ``x`` if it is a subgroup member, else raise."""
        if not self.is_member(x):
            raise CryptoError(f"{what} {x!r} is not a member of the Schnorr group")
        return x


_DEFAULT_CACHE: dict[int, SchnorrGroup] = {}


def default_group(bits: int = 256) -> SchnorrGroup:
    """The library-wide default group for the given modulus size."""
    if bits not in _DEFAULT_CACHE:
        try:
            sp = SAFE_PRIMES[bits]
        except KeyError:
            raise CryptoError(
                f"no embedded safe prime of {bits} bits; available: "
                f"{sorted(SAFE_PRIMES)}"
            ) from None
        _DEFAULT_CACHE[bits] = SchnorrGroup.from_safe_prime(sp)
    return _DEFAULT_CACHE[bits]
