"""Shared fixtures and test doubles for the repro test suite."""

from __future__ import annotations

from typing import Any, List, Tuple

import pytest

from repro.config import ProtocolConfig, SystemConfig
from repro.crypto.keys import KeyChain, TrustedDealer
from repro.net.interfaces import Message, NetworkAPI


class FakeNet(NetworkAPI):
    """A NetworkAPI that records effects instead of delivering them.

    Unit tests for broadcast managers and protocol nodes inspect
    ``sent`` / ``timers`` directly; ``advance(dt)`` moves the fake clock.
    """

    def __init__(self, node_id: int = 0, n: int = 4) -> None:
        self._node_id = node_id
        self._n = n
        self._now = 0.0
        self.sent: List[Tuple[int, Message]] = []
        self.timers: List[Tuple[float, str, Any]] = []

    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def n(self) -> int:
        return self._n

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        self._now += dt

    def send(self, dst: int, msg: Message) -> None:
        self.sent.append((dst, msg))

    def set_timer(self, delay: float, tag: str, data: Any = None) -> None:
        self.timers.append((self._now + delay, tag, data))

    # -- assertion helpers ---------------------------------------------------

    def sent_to(self, dst: int) -> List[Message]:
        return [m for d, m in self.sent if d == dst]

    def broadcasts_of(self, msg_type: type) -> List[Message]:
        """Messages of a type sent to every replica (one copy per dst)."""
        by_msg: dict = {}
        for dst, msg in self.sent:
            if isinstance(msg, msg_type):
                by_msg.setdefault(id(msg), (msg, set()))[1].add(dst)
        return [m for m, dsts in by_msg.values() if len(dsts) == self._n]

    def clear(self) -> None:
        self.sent.clear()
        self.timers.clear()


@pytest.fixture
def fake_net() -> FakeNet:
    return FakeNet(node_id=0, n=4)


@pytest.fixture
def system4() -> SystemConfig:
    """The smallest Byzantine-tolerant system: n=4, f=1."""
    return SystemConfig(n=4, crypto="hmac", seed=0)


@pytest.fixture
def system7() -> SystemConfig:
    return SystemConfig(n=7, crypto="hmac", seed=0)


@pytest.fixture
def protocol_cfg() -> ProtocolConfig:
    return ProtocolConfig(batch_size=10)


@pytest.fixture
def chains4(system4) -> List[KeyChain]:
    return TrustedDealer(system4).deal()


@pytest.fixture
def chains7(system7) -> List[KeyChain]:
    return TrustedDealer(system7).deal()
