"""The deterministic state-machine interface.

SMR's contract: if every replica applies the same command sequence to the
same initial state through a *deterministic* ``apply``, all replicas hold
identical state forever.  Consensus (Theorem 2/6) supplies the identical
sequence; this module defines what the application must supply.

Commands carry a globally unique ``command_id`` so the replication layer
can guarantee exactly-once application even when consensus legitimately
commits the same payload twice (LightDAG2 reproposals, client retries).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..crypto.hashing import Digest, hash_fields


@dataclass(frozen=True)
class Command:
    """One client command: an id, the submitting client, opaque payload."""

    command_id: Digest
    client: str
    payload: bytes

    @classmethod
    def create(cls, client: str, payload: bytes, nonce: int) -> "Command":
        """Build a command with a collision-resistant id."""
        return cls(
            command_id=hash_fields("cmd", client, nonce, payload),
            client=client,
            payload=payload,
        )

    def to_bytes(self) -> bytes:
        """Encoding used inside block payload items."""
        from ..codec.primitives import Writer

        w = Writer()
        w.lp_bytes(self.command_id)
        w.lp_str(self.client)
        w.lp_bytes(self.payload)
        return w.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Command":
        from ..codec.primitives import Reader

        r = Reader(data)
        command = cls(
            command_id=r.lp_bytes(), client=r.lp_str(), payload=r.lp_bytes()
        )
        r.expect_eof()
        return command


class StateMachine(ABC):
    """Deterministic application logic replicated across the cluster.

    Implementations must be pure functions of (state, command): no clocks,
    no randomness, no I/O — anything nondeterministic diverges replicas.
    """

    @abstractmethod
    def apply(self, command: Command) -> bytes:
        """Apply one committed command; return the client-visible result."""

    @abstractmethod
    def snapshot(self) -> bytes:
        """Serialize the current state (for divergence checks / catch-up)."""

    def state_digest(self) -> Digest:
        """Hash of the snapshot — the cheap cross-replica equality check."""
        return hash_fields("sm-state", self.snapshot())
