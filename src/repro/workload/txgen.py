"""Transaction arrival modeling and the replica mempool.

The paper's clients submit 128-byte transactions to every replica (§VI-A);
the batch size (transactions per block) is the swept variable of Figs. 12
and 14.  Simulating tens of thousands of per-transaction events per second
would drown the event queue, so the mempool models arrivals *analytically*:

* **Saturating mode** (``rate = 0``): there is always a full batch
  available, stamped at proposal time.  Latency then measures the pure
  consensus path — appropriate for the favorable-case figures, where the
  paper ramps offered load to whatever the system absorbs.
* **Open-loop mode** (``rate > 0``): transactions accrue continuously at
  ``rate`` tx/s; a proposal drains the *oldest* ``batch_size`` of them.
  Arrival windows are tracked as (start, end, count) chunks, so queueing
  delay — the thing that blows up past saturation (Fig. 14's hockey
  stick) — is captured exactly, in O(1) per proposal.

Accounting is exact: chunk counts are integers (the float is only the
*position* of arrivals in time, never how many there are), and the
conservation law ``accrued_total == taken_total + backlog + dropped_total``
holds to the last transaction over arbitrarily long runs — property-tested
in ``tests/workload/test_txgen.py``.

Past saturation an unbounded open-loop queue is a memory leak wearing a
latency costume.  ``max_backlog`` bounds it: arrivals that would overflow
are shed at the door (newest-dropped, FIFO preserved) and counted in
``dropped_total`` — the admission-control behaviour of a real mempool,
mirrored from :mod:`repro.workload.admission`.

Both modes produce :class:`~repro.dag.block.TxBatch` payloads carrying the
exact submit-time sum (for mean latency) and a small sample (percentiles).
For end-to-end client populations (per-command tracking, closed loops) see
:mod:`repro.workload.clients`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from ..config import ProtocolConfig
from ..dag.block import TxBatch
from ..errors import ConfigError


class Mempool:
    """Per-replica transaction queue feeding block proposals.

    Parameters
    ----------
    batch_size:
        Maximum transactions per block (the paper's swept knob).
    tx_size:
        Bytes per transaction (128 in §VI-A).
    rate:
        Offered load in tx/s for this replica; 0 means saturating.
    max_backlog:
        Queue-depth cap in transactions; 0 means unbounded.  With a cap,
        arrivals past the cap are dropped (``dropped_total``) instead of
        queued — backlog memory and queueing delay both stay bounded no
        matter how far past saturation the offered rate runs.
    """

    def __init__(
        self,
        batch_size: int,
        tx_size: int,
        rate: float = 0.0,
        max_backlog: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ConfigError("batch_size must be positive")
        if rate < 0:
            raise ConfigError("rate cannot be negative")
        if max_backlog < 0:
            raise ConfigError("max_backlog cannot be negative")
        self.batch_size = batch_size
        self.tx_size = tx_size
        self.rate = rate
        self.max_backlog = max_backlog
        self._chunks: Deque[Tuple[float, float, int]] = deque()
        self._accrued_until = 0.0
        self._carry = 0.0
        self._backlog = 0
        self.accrued_total = 0
        self.taken_total = 0
        self.dropped_total = 0
        self._trace = None
        self._trace_node = -1
        self._ctr_dropped = None

    def bind_trace(self, trace, node_id: int) -> None:
        """Attach a tracer so drains emit ``trace.batch`` spans — the
        tx-enqueued → batched-into-block milestone.  The span's timestamp
        equals the proposing block's ``block.propose`` time, which is how
        the analysis layer pairs the two."""
        self._trace = trace
        self._trace_node = node_id

    def bind_obs(self, obs, node_id: int) -> None:
        """Attach a metrics registry so shed arrivals are counted as
        ``mempool.dropped{node=...}`` (the admission-control signal the
        saturation figures plot)."""
        if obs is not None and obs.metrics.enabled:
            self._ctr_dropped = obs.metrics.counter("mempool.dropped", node=node_id)

    @classmethod
    def from_config(
        cls, protocol: ProtocolConfig, rate: float = 0.0, max_backlog: int = 0
    ) -> "Mempool":
        return cls(
            batch_size=protocol.batch_size,
            tx_size=protocol.tx_size,
            rate=rate,
            max_backlog=max_backlog,
        )

    # -- arrival accrual ---------------------------------------------------------

    def _accrue(self, now: float) -> None:
        if now <= self._accrued_until:
            return
        span = now - self._accrued_until
        arrivals = self.rate * span + self._carry
        count = int(arrivals)
        self._carry = arrivals - count
        if count > 0:
            self.accrued_total += count
            admitted = count
            if self.max_backlog:
                room = self.max_backlog - self._backlog
                admitted = min(count, max(0, room))
            dropped = count - admitted
            if dropped:
                # The *newest* arrivals are shed: the admitted prefix of
                # the window keeps FIFO order and honest submit times.
                self.dropped_total += dropped
                if self._ctr_dropped is not None:
                    self._ctr_dropped.inc(dropped)
            if admitted > 0:
                split = self._accrued_until + span * (admitted / count)
                self._chunks.append((self._accrued_until, split, admitted))
                self._backlog += admitted
        self._accrued_until = now

    def backlog(self, now: float) -> int:
        """Transactions currently queued (open-loop mode)."""
        self._accrue(now)
        return self._backlog

    # -- draining ------------------------------------------------------------------

    def take(self, now: float) -> TxBatch:
        """Drain up to ``batch_size`` transactions for a block proposed now."""
        if self.rate == 0.0:
            self.taken_total += self.batch_size
            if self._trace is not None:
                self._trace.emit(
                    now, "trace.batch", self._trace_node,
                    count=self.batch_size, mean_submit=now, oldest=now,
                )
            return TxBatch(
                count=self.batch_size,
                tx_size=self.tx_size,
                submit_time_sum=self.batch_size * now,
                sample=(now,),
            )
        self._accrue(now)
        want = self.batch_size
        taken = 0
        submit_sum = 0.0
        samples: List[float] = []
        while want > 0 and self._chunks:
            t0, t1, count = self._chunks[0]
            if count <= want:
                # Whole chunk: uniform arrivals → mean submit time = midpoint.
                self._chunks.popleft()
                taken += count
                want -= count
                submit_sum += count * (t0 + t1) / 2
                samples.append((t0 + t1) / 2)
            else:
                # Partial: take the oldest `want` of `count` — they occupy
                # the leading fraction of the window.
                frac = want / count
                split = t0 + (t1 - t0) * frac
                submit_sum += want * (t0 + split) / 2
                samples.append((t0 + split) / 2)
                self._chunks[0] = (split, t1, count - want)
                taken += want
                want = 0
        self.taken_total += taken
        self._backlog -= taken
        if taken == 0:
            return TxBatch(count=0, tx_size=self.tx_size)
        if self._trace is not None:
            self._trace.emit(
                now, "trace.batch", self._trace_node,
                count=taken, mean_submit=submit_sum / taken,
                oldest=samples[0] if samples else now,
            )
        return TxBatch(
            count=taken,
            tx_size=self.tx_size,
            submit_time_sum=submit_sum,
            sample=tuple(samples[:16]),
        )

    def payload_source(self):
        """Adapter matching the node's ``payload_source(now)`` hook."""
        return self.take
