"""Tusk baseline ([10], Danezis et al., EuroSys 2022).

Wave = **three RBC rounds** (Table I).  The wave's leader block (round
⟨w,1⟩, named by the GPC revealed with round-⟨w,3⟩ shares) commits directly
when ``f + 1`` round-⟨w,2⟩ blocks *directly* reference it — Tusk's
"f+1 support stamps" rule.  Cascade as usual.

Latency accounting (Table I): 3 RBC rounds × 3 steps = 9 best case (7 when
the reveal is counted at the first step of the third RBC — our coin shares
travel with the round-3 VALs, so the simulator exhibits the 7-step figure).
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from typing import Set

from ..broadcast.rbc import RbcManager
from ..crypto.hashing import Digest
from ..dag.block import Block
from ..core.base import BaseDagNode


class TuskNode(BaseDagNode):
    """One Tusk replica."""

    WAVE_LENGTH = 3
    WAVE_OVERLAP = False
    SUPPORT_DEPTH = 1
    STRICT_STORE = True

    def _make_managers(self) -> None:
        self.rbc = RbcManager(
            self.net,
            quorum=self.system.quorum,
            amplify_threshold=self.system.validity_quorum,
            on_deliver=self._on_deliver,
            obs=self.obs,
        )

    def _manager_for_round(self, round_: int) -> RbcManager:
        return self.rbc

    def _broadcast_managers(self) -> tuple:
        return (self.rbc,)

    def _commit_threshold_value(self) -> int:
        return self.system.f + 1

    def _participate(self, block: Block, src: int) -> None:
        self.rbc.echo(block)

    def _holders_of(self, digest: Digest) -> AbstractSet:
        return self.rbc.echoers_of(digest)
