"""Build and run one configured experiment.

:func:`run_experiment` is the single entry point the benchmarks, examples
and integration tests share: given an :class:`~repro.config.ExperimentConfig`
it deals keys, wires mempools and metrics to one node per replica, installs
the requested adversary, runs the discrete-event simulation, verifies
cross-replica ledger safety, and returns the measurements.

Adversary names (``ExperimentConfig.adversary_name``):

=================  ============================================================
``none``           favorable situation (no interference)
``crash``          crash ``f`` replicas at t=0 (§VI-A attack on Tusk/LightDAG1)
``leader-delay``   delay predefined Bullshark leaders' blocks (§VI-A)
``equivocate``     ``f`` staggered equivocating replicas (§VI-A vs LightDAG2)
``random-sched``   unstructured random delays (property tests)
``withhold``       ``f`` replicas ignore retrieval requests (§IV-A attack)
``withhold-garbage``  same, but answering with mislabeled junk bodies
``worst``          the §VI-A per-protocol strongest attack, resolved from the
                   protocol name — what Fig. 15 plots
``schedule:SPEC``  a composed, timed multi-phase fault schedule in the
                   :mod:`repro.adversary.schedule` grammar (fuzzer cases)
=================  ============================================================

``ExperimentConfig.check_level`` (overridable per call) decides how hard
the run is checked: ``prefix`` keeps the historical digest-prefix check,
``final`` adds the post-run deep audit, and ``full`` also installs the
mid-run :class:`~repro.check.InvariantMonitor` on every honest replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Type

from ..adversary.base import Adversary
from ..adversary.byzantine import EquivocatingLightDag2Node, stagger_start_waves
from ..adversary.crash import CrashAdversary
from ..adversary.delay import BullsharkLeaderDelayAdversary
from ..adversary.schedule import FaultSchedule
from ..adversary.scheduler import RandomSchedulingAdversary
from ..adversary.withhold import withholding_node_class
from ..baselines.bullshark import BullsharkNode
from ..baselines.dagrider import DagRiderNode
from ..baselines.tusk import TuskNode
from ..check import InvariantMonitor, deep_audit
from ..config import ExperimentConfig
from ..core.base import BaseDagNode
from ..core.lightdag1 import LightDag1NoMergeNode, LightDag1Node
from ..core.lightdag2 import LightDag2Node
from ..crypto.keys import TrustedDealer
from ..dag.ledger import check_prefix_consistency
from ..errors import ConfigError
from ..net.latency import make_latency_model
from ..net.simulator import CpuCost, Simulation
from ..obs import NULL_OBS, HealthMonitor, Observability
from ..workload.metrics import MetricsCollector
from ..workload.txgen import Mempool

#: Protocol-name → node class.
PROTOCOL_REGISTRY: Dict[str, Type[BaseDagNode]] = {
    "lightdag1": LightDag1Node,
    "lightdag1-nomerge": LightDag1NoMergeNode,
    "lightdag2": LightDag2Node,
    "dagrider": DagRiderNode,
    "tusk": TuskNode,
    "bullshark": BullsharkNode,
}

#: The §VI-A strongest attack per protocol (Fig. 15's x-axis).
WORST_ATTACK: Dict[str, str] = {
    "lightdag1": "crash",
    "lightdag1-nomerge": "crash",
    "lightdag2": "equivocate",
    "dagrider": "crash",
    "tusk": "crash",
    "bullshark": "leader-delay",
}


@dataclass
class ExperimentResult:
    """Everything one run measures."""

    config: ExperimentConfig
    throughput_tps: float
    mean_latency: float
    p50_latency: float
    p95_latency: float
    committed_txs: int
    rounds_reached: int
    events: int
    messages_sent: int
    bytes_sent: int
    extras: Dict[str, float] = field(default_factory=dict)
    #: attached when the run was instrumented (``run_experiment(cfg, obs=...)``)
    obs: Optional[Observability] = None
    #: run-end health verdict (``run_experiment(..., health=True)``)
    health: Optional[Dict[str, object]] = None
    #: per-stage commit-latency decomposition (attached for traced runs)
    latency_report: Optional[Dict[str, object]] = None

    def row(self) -> Dict[str, object]:
        """Flat dict for tabular reports."""
        row: Dict[str, object] = {
            "protocol": self.config.protocol_name,
            "n": self.config.system.n,
            "batch": self.config.protocol.batch_size,
            "adversary": self.config.adversary_name,
            "tps": round(self.throughput_tps, 1),
            "latency_s": round(self.mean_latency, 4),
            "p95_s": round(self.p95_latency, 4),
            "rounds": self.rounds_reached,
        }
        if self.obs is not None:
            row.update({k: int(v) for k, v in self.obs.summary().items()})
        return row


def build_adversary(
    cfg: ExperimentConfig,
    node_cls: Optional[Type[BaseDagNode]] = None,
) -> Tuple[Optional[Adversary], Dict[int, Callable]]:
    """Resolve the adversary name into a message-level adversary and a map
    of replica-index → Byzantine node-factory override.

    ``node_cls`` is the protocol class the run uses, needed by adversaries
    that subclass it (withholding, schedules); defaults to the registry
    entry for ``cfg.protocol_name``.
    """
    name = cfg.adversary_name
    system = cfg.system
    if node_cls is None:
        node_cls = PROTOCOL_REGISTRY.get(cfg.protocol_name)
    if name.startswith("schedule:"):
        schedule = FaultSchedule.from_spec(name[len("schedule:"):])
        schedule.validate(system, cfg.protocol_name)
        if node_cls is None:
            raise ConfigError(
                f"unknown protocol {cfg.protocol_name!r} for fault schedule"
            )
        return (
            schedule.adversary(cfg.seed),
            schedule.node_overrides(node_cls, system),
        )
    if name == "worst":
        name = WORST_ATTACK[cfg.protocol_name]
    if name == "none":
        return None, {}
    if name == "crash":
        return CrashAdversary.crash_f(system.n, system.f), {}
    if name == "leader-delay":
        return BullsharkLeaderDelayAdversary(system, delay=1.0, seed=cfg.seed), {}
    if name == "random-sched":
        return RandomSchedulingAdversary(max_delay=0.2, seed=cfg.seed), {}
    if name == "equivocate":
        if cfg.protocol_name != "lightdag2":
            raise ConfigError("the equivocation attack targets lightdag2 only")
        byzantine = list(range(system.n - system.f, system.n))
        starts = stagger_start_waves(byzantine)

        def override_for(replica: int) -> Callable:
            start = starts[replica]

            def build(net, *, _start=start, **kwargs):
                return EquivocatingLightDag2Node(net, start_wave=_start, **kwargs)

            return build

        return None, {b: override_for(b) for b in byzantine}
    if name in ("withhold", "withhold-garbage"):
        if node_cls is None:
            raise ConfigError(
                f"unknown protocol {cfg.protocol_name!r} for withhold attack"
            )
        mode = "garbage" if name == "withhold-garbage" else "ignore"
        wh_cls = withholding_node_class(node_cls, mode=mode)
        byzantine = list(range(system.n - system.f, system.n))

        def wh_build(net, **kwargs):
            return wh_cls(net, **kwargs)

        return None, {b: wh_build for b in byzantine}
    raise ConfigError(f"unknown adversary {name!r}")


def run_experiment(
    cfg: ExperimentConfig,
    obs: Optional[Observability] = None,
    check_level: Optional[str] = None,
    registry: Optional[Dict[str, Type[BaseDagNode]]] = None,
    health: bool = False,
) -> ExperimentResult:
    """Run one experiment to completion and collect its measurements.

    Pass an :class:`~repro.obs.Observability` to instrument the run: the
    registry and journal are threaded through the simulator, every node,
    and all broadcast/retrieval managers, and come back attached to the
    result (``result.obs``) for export via :mod:`repro.analysis.obs_export`.
    When its tracer is enabled, the per-stage commit-latency decomposition
    of :mod:`repro.analysis.latency` is attached as
    ``result.latency_report``.

    ``health=True`` (requires an enabled journal) installs the
    :class:`~repro.obs.health.HealthMonitor` watchdog: ``health.*``
    events land in the journal and the run-end verdict is attached as
    ``result.health``.

    ``check_level`` overrides ``cfg.check_level`` for this run;
    ``registry`` replaces :data:`PROTOCOL_REGISTRY` for protocol lookup
    (the oracle self-tests merge deliberately broken mutants in).
    """
    system = cfg.system
    level = check_level if check_level is not None else cfg.check_level
    if level not in ("off", "prefix", "final", "full"):
        raise ConfigError(f"unknown check level {level!r}")
    protocols = PROTOCOL_REGISTRY if registry is None else registry
    node_cls = protocols.get(cfg.protocol_name)
    if node_cls is None:
        raise ConfigError(
            f"unknown protocol {cfg.protocol_name!r}; "
            f"choose from {sorted(protocols)}"
        )
    dealer = TrustedDealer(
        system, coin_threshold=cfg.protocol.resolve_coin_threshold(system)
    )
    chains = dealer.deal()
    obs = obs if obs is not None else NULL_OBS
    collector = MetricsCollector(warmup=cfg.warmup, measure_until=cfg.duration)
    adversary, byz_overrides = build_adversary(cfg, node_cls)
    monitor = InvariantMonitor(obs=obs) if level == "full" else None
    watchdog = None
    if health and obs.journal.enabled:
        # Listener installation swaps journal.emit — must happen before
        # node construction, which pre-binds that method for hot paths.
        watchdog = HealthMonitor(system.n)
        watchdog.install(obs.journal)

    mempools = [
        Mempool.from_config(
            cfg.protocol, rate=cfg.tx_rate_per_replica,
            max_backlog=cfg.mempool_cap,
        )
        for _ in range(system.n)
    ]
    if obs.trace.enabled:
        for i, mempool in enumerate(mempools):
            mempool.bind_trace(obs.trace, i)
    if cfg.mempool_cap and obs.metrics.enabled:
        for i, mempool in enumerate(mempools):
            mempool.bind_obs(obs, i)

    def factory_for(i: int):
        def make(net):
            kwargs = dict(
                system=system,
                protocol=cfg.protocol,
                keychain=chains[i],
                payload_source=mempools[i].take,
                on_commit=collector.callback_for(i),
                obs=obs,
            )
            if i in byz_overrides:
                return byz_overrides[i](net, **kwargs)
            if monitor is not None:
                kwargs["on_commit"] = monitor.wrap_commit(i, kwargs["on_commit"])
                kwargs["on_deliver"] = monitor.deliver_hook(i)
            return node_cls(net, **kwargs)

        return make

    latency = make_latency_model(cfg.latency_model)
    cpu = None
    if cfg.cpu_fixed_us > 0 or cfg.cpu_per_byte_ns > 0:
        cpu = CpuCost(
            fixed_s=cfg.cpu_fixed_us * 1e-6,
            per_byte_s=cfg.cpu_per_byte_ns * 1e-9,
        )
    # Topology models expose per-replica NIC heterogeneity as a scale
    # factor on the configured egress rate (TopologyLatency's
    # bandwidth_spread); homogeneous models keep the scalar.
    bandwidth = cfg.bandwidth_bps
    bw_scale = getattr(latency, "node_bandwidth_scale", None)
    if bandwidth and bw_scale is not None:
        bandwidth = [bandwidth * bw_scale(i) for i in range(system.n)]
    peak_mem_mb = None
    if cfg.track_memory:
        import tracemalloc

        tracemalloc.start()
    sim = Simulation(
        [factory_for(i) for i in range(system.n)],
        latency_model=latency,
        bandwidth_bps=bandwidth,
        adversary=adversary,
        cpu=cpu,
        seed=cfg.seed,
        obs=obs,
    )
    if monitor is not None:
        monitor.bind(sim.nodes)
    try:
        sim.run(until=cfg.duration)
    finally:
        if cfg.track_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            peak_mem_mb = peak / (1024 * 1024)

    honest_ids = [
        i
        for i in range(system.n)
        if i not in byz_overrides and i not in sim.crashed
    ]
    honest = [sim.nodes[i] for i in honest_ids]
    if level != "off":
        check_prefix_consistency([node.ledger for node in honest])
    if level in ("final", "full"):
        deep_audit(honest, labels=honest_ids, obs=obs, now=sim.now)

    window = cfg.duration - cfg.warmup
    extras: Dict[str, float] = {}
    for node in honest:
        if hasattr(node, "reproposals"):
            extras["reproposals"] = extras.get("reproposals", 0) + node.reproposals
    extras["retrieval_requests"] = sum(n.retrieval.requests_sent for n in honest)
    if peak_mem_mb is not None:
        extras["peak_mem_mb"] = peak_mem_mb
    if cfg.mempool_cap:
        extras["mempool_dropped"] = sum(m.dropped_total for m in mempools)

    latency_report = None
    if obs.trace.enabled:
        from ..analysis.latency import explain_report

        latency_report = explain_report(
            obs.journal, protocol=cfg.protocol_name, n=system.n
        )
        if watchdog is not None:
            latency_report["health"] = watchdog.summary(now=sim.now)

    return ExperimentResult(
        config=cfg,
        throughput_tps=collector.throughput(window),
        mean_latency=collector.mean_latency(),
        p50_latency=collector.latency_quantile(0.5),
        p95_latency=collector.latency_quantile(0.95),
        committed_txs=collector.total_committed_txs(),
        rounds_reached=max(node.current_round for node in honest),
        events=sim.stats.events_processed,
        messages_sent=sim.stats.messages_sent,
        bytes_sent=sim.stats.bytes_sent,
        extras=extras,
        obs=obs if obs.enabled else None,
        health=watchdog.summary(now=sim.now) if watchdog is not None else None,
        latency_report=latency_report,
    )
