"""Rendering for end-to-end load tests: summary, sweep table, ASCII figure.

The single-run summary follows the lightDAG benchmark harness's output
shape — a ``SUMMARY`` block with a CONFIG section and a RESULTS section
that prints **Consensus TPS / Consensus latency** and **End-to-end TPS /
End-to-end latency** side by side.  The two pairs answer different
questions: consensus latency is proposal→commit (what the protocol
figures plot); end-to-end latency is client submit→committed result,
which additionally pays the admission-queue wait.  Their divergence *is*
the saturation signal.

The saturation figure is ASCII (this environment has no plotting
dependency) plus a JSON export carrying every number the chart rounds
away; both go wherever ``repro loadtest --sweep`` points them.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Sequence

__all__ = [
    "format_load_summary",
    "loadtest_rows",
    "format_sweep_table",
    "render_saturation_figure",
    "loadtest_results_to_json",
]


def _fmt_tps(x: float) -> str:
    return f"{x:,.0f} tx/s" if math.isfinite(x) else "n/a"


def _fmt_ms(x: float) -> str:
    return f"{x * 1000:,.0f} ms" if math.isfinite(x) else "n/a"


def format_load_summary(result) -> str:
    """One run, rendered as the benchmark-harness SUMMARY block."""
    cfg = result.config
    wl = cfg.workload
    adm = cfg.admission
    if wl.mode == "open":
        load_line = f" Input rate: {wl.rate:,.0f} tx/s ({wl.arrival})"
    else:
        load_line = (
            f" Closed loop: {wl.outstanding} outstanding/client, "
            f"think {wl.think_s * 1000:.0f} ms"
        )
    policy = (
        f"{adm.policy}, max_pending={adm.max_pending}"
        + (f", per_client_cap={adm.per_client_cap}" if adm.per_client_cap else "")
        if (adm.max_pending or adm.per_client_cap)
        else "unbounded"
    )
    lines = [
        "-----------------------------------------",
        " SUMMARY:",
        "-----------------------------------------",
        " + CONFIG:",
        f" Protocol: {cfg.protocol_name}",
        f" Committee size: {cfg.n} nodes",
        f" Clients: {wl.clients} ({wl.mode} loop)",
        load_line,
        f" Op mix SET/GET/DEL/CAS: {'/'.join(f'{w:g}' for w in wl.mix)}",
        f" Keyspace: {wl.keys} keys, zipf {wl.zipf:g}"
        + (" (shared)" if wl.shared_keys else " (per-client)"),
        f" Admission: {policy}",
        f" Batch size: {cfg.batch_size} tx/block",
        f" Execution time: {cfg.duration:g} s (warmup {cfg.warmup:g} s)",
        "",
        " + RESULTS:",
        f" Consensus TPS: {_fmt_tps(result.consensus_tps)}",
        f" Consensus latency: {_fmt_ms(result.consensus_mean_s)}"
        f" (p50 {_fmt_ms(result.consensus_p50_s)},"
        f" p95 {_fmt_ms(result.consensus_p95_s)})",
        "",
        f" End-to-end TPS: {_fmt_tps(result.e2e_tps)}",
        f" End-to-end latency: {_fmt_ms(result.e2e_mean_s)}"
        f" (p50 {_fmt_ms(result.e2e_p50_s)},"
        f" p99 {_fmt_ms(result.e2e_p99_s)},"
        f" p999 {_fmt_ms(result.e2e_p999_s)})",
        "",
        f" Submitted: {result.submitted:,}   Completed: {result.completed:,}"
        f"   Rejected: {result.rejected:,}   Shed: {result.shed:,}"
        f"   Retries: {result.retries:,}",
        f" Peak admission queue depth: {result.max_pending_depth:,}",
    ]
    if result.verified:
        lines.append(
            f" Verified responses: {result.verified:,}"
            f" ({result.verify_failures} mismatches)"
        )
    lines.append("-----------------------------------------")
    return "\n".join(lines)


def loadtest_rows(results: Sequence) -> List[Dict[str, object]]:
    return [r.row() for r in results]


def format_sweep_table(results: Sequence) -> str:
    """Fixed-width offered-rate table (one loadtest per row)."""
    from ..harness.report import format_table

    return format_table(
        loadtest_rows(results),
        [
            "offered_tps", "e2e_tps", "consensus_tps",
            "consensus_s", "e2e_p50_s", "e2e_p99_s", "e2e_p999_s",
            "rejected", "shed", "max_depth",
        ],
    )


def render_saturation_figure(
    results: Sequence, width: int = 60, height: int = 16
) -> str:
    """ASCII chart: offered rate (x) vs latency (y, log scale).

    Plots three series — consensus mean (``c``), end-to-end p50 (``*``),
    end-to-end p99 (``#``) — so the knee is visible as the point where the
    client-side curves peel away from the flat consensus line.  Rates
    where admission control dropped work are flagged ``!`` on the x-axis:
    past the knee the queue bound converts overload into visible sheds
    instead of unbounded latency/memory.
    """
    points = []
    for r in results:
        series = {
            "c": r.consensus_mean_s,
            "*": r.e2e_p50_s,
            "#": r.e2e_p99_s,
        }
        points.append((r.offered_rate, series, (r.rejected + r.shed) > 0))
    points.sort(key=lambda p: p[0])
    values = [
        v for _, series, _ in points for v in series.values()
        if math.isfinite(v) and v > 0
    ]
    if not points or not values:
        return "(no finite latency samples to plot)"
    lo, hi = min(values), max(values)
    if hi <= lo:
        hi = lo * 10
    log_lo, log_hi = math.log10(lo), math.log10(hi)
    span = log_hi - log_lo

    def row_of(v: float) -> int:
        frac = (math.log10(v) - log_lo) / span
        return min(height - 1, max(0, round(frac * (height - 1))))

    def col_of(i: int) -> int:
        if len(points) == 1:
            return 0
        return round(i * (width - 1) / (len(points) - 1))

    grid = [[" "] * width for _ in range(height)]
    drops = [" "] * width
    for i, (_, series, dropped) in enumerate(points):
        col = col_of(i)
        if dropped:
            drops[col] = "!"
        # Draw c under * under # so overlapping cells show the worst series.
        for marker in ("c", "*", "#"):
            v = series[marker]
            if math.isfinite(v) and v > 0:
                grid[row_of(v)][col] = marker

    lines = ["latency (log scale)    c=consensus mean  *=e2e p50  #=e2e p99"]
    for row in range(height - 1, -1, -1):
        frac = row / (height - 1)
        label = 10 ** (log_lo + frac * span)
        lines.append(f"{label * 1000:>9.1f}ms |{''.join(grid[row])}")
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + "".join(drops))
    first, last = points[0][0], points[-1][0]
    tail = f"{last:,.0f} tx/s offered"
    lines.append(
        " " * 12 + f"{first:,.0f}".ljust(max(1, width - len(tail))) + tail
    )
    if any(d == "!" for d in drops):
        lines.append(" " * 12 + "! = admission control dropped work (bounded queue)")
    return "\n".join(lines)


def loadtest_results_to_json(results: Sequence, indent: int = 2) -> str:
    """Sweep points with full config context, ready for external plotting."""
    payload = []
    for r in results:
        cfg = r.config
        wl = cfg.workload
        payload.append(
            {
                "config": {
                    "protocol": cfg.protocol_name,
                    "n": cfg.n,
                    "batch_size": cfg.batch_size,
                    "latency_model": cfg.latency_model,
                    "duration_s": cfg.duration,
                    "warmup_s": cfg.warmup,
                    "seed": cfg.seed,
                    "mode": wl.mode,
                    "clients": wl.clients,
                    "arrival": wl.arrival,
                    "rate_tps": wl.rate,
                    "outstanding": wl.outstanding,
                    "think_s": wl.think_s,
                    "keys": wl.keys,
                    "zipf": wl.zipf,
                    "mix": list(wl.mix),
                    "shared_keys": wl.shared_keys,
                    "admission": {
                        "max_pending": cfg.admission.max_pending,
                        "policy": cfg.admission.policy,
                        "per_client_cap": cfg.admission.per_client_cap,
                    },
                },
                "offered_tps": r.offered_rate,
                "consensus": {
                    "tps": r.consensus_tps,
                    "mean_s": r.consensus_mean_s,
                    "p50_s": r.consensus_p50_s,
                    "p95_s": r.consensus_p95_s,
                },
                "e2e": {
                    "tps": r.e2e_tps,
                    "mean_s": r.e2e_mean_s,
                    "p50_s": r.e2e_p50_s,
                    "p99_s": r.e2e_p99_s,
                    "p999_s": r.e2e_p999_s,
                },
                "traffic": {
                    "submitted": r.submitted,
                    "completed": r.completed,
                    "rejected": r.rejected,
                    "shed": r.shed,
                    "retries": r.retries,
                    "verified": r.verified,
                    "verify_failures": r.verify_failures,
                    "max_pending_depth": r.max_pending_depth,
                },
                "admission_totals": r.admission,
            }
        )

    def _scrub(obj):
        # NaN is not valid JSON; emit null for empty-sample statistics.
        if isinstance(obj, float) and not math.isfinite(obj):
            return None
        if isinstance(obj, dict):
            return {k: _scrub(v) for k, v in obj.items()}
        if isinstance(obj, list):
            return [_scrub(v) for v in obj]
        return obj

    return json.dumps(_scrub(payload), indent=indent)
