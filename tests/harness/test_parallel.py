"""The parallel sweep harness (`repro.harness.parallel`).

The two load-bearing promises:

* ``jobs=N`` is **bit-identical** to ``jobs=1`` — a simulated run is
  deterministic per seed and workers share nothing, so the only thing
  parallelism may change is wall-clock.
* one poisoned config never kills the sweep or loses its neighbours'
  results.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ExperimentConfig, ProtocolConfig, SystemConfig
from repro.errors import SweepError
from repro.harness.parallel import (
    NOT_RUN,
    RunFailure,
    SweepResult,
    default_jobs,
    parallel_map,
    run_sweep,
)


def quick_config(seed: int = 0, n: int = 4, protocol: str = "lightdag2",
                 duration: float = 1.5) -> ExperimentConfig:
    """A sub-second run: tiny batches, no CPU model, short horizon."""
    return ExperimentConfig(
        system=SystemConfig(n=n, crypto="hmac", seed=seed),
        protocol=ProtocolConfig(batch_size=8),
        protocol_name=protocol,
        duration=duration,
        warmup=0.5,
        cpu_fixed_us=0.0,
        cpu_per_byte_ns=0.0,
        seed=seed,
    )


def poisoned_config(seed: int = 0) -> ExperimentConfig:
    """Constructs fine, fails inside the worker (unknown protocol)."""
    return dataclasses.replace(quick_config(seed), protocol_name="no-such-protocol")


class TestDefaultJobs:
    def test_positive(self):
        assert default_jobs() >= 1


class TestParallelMap:
    def test_empty(self):
        results, timed_out = parallel_map(_square, [], jobs=4)
        assert results == [] and not timed_out

    def test_ordering_preserved(self):
        results, timed_out = parallel_map(_square, list(range(20)), jobs=4)
        assert results == [i * i for i in range(20)]
        assert not timed_out

    def test_time_box_zero_runs_nothing(self):
        results, timed_out = parallel_map(_square, [1, 2, 3], jobs=1, time_box=0.0)
        assert timed_out
        assert all(r is NOT_RUN for r in results)

    def test_registry_reaches_workers(self):
        results, _ = parallel_map(
            _registry_lookup, ["x", "y"], jobs=2, registry={"x": 10, "y": 20}
        )
        assert results == [10, 20]


class TestRunSweep:
    def test_serial_equals_parallel(self):
        configs = [quick_config(seed=s) for s in range(3)]
        serial = run_sweep(configs, jobs=1)
        parallel = run_sweep(configs, jobs=3)
        assert serial.ok and parallel.ok
        assert serial.results == parallel.results

    @settings(deadline=None, max_examples=3)
    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=2, max_size=4, unique=True,
        ),
        protocol=st.sampled_from(["lightdag1", "lightdag2"]),
    )
    def test_equivalence_property(self, seeds, protocol):
        """jobs=4 is bit-identical to jobs=1 for arbitrary seed sets.

        Compared by repr: a seed whose tiny run commits nothing in-window
        has NaN latency, and NaN != NaN would fail dataclass equality even
        for genuinely identical results.
        """
        configs = [quick_config(seed=s, protocol=protocol) for s in seeds]
        serial = run_sweep(configs, jobs=1)
        parallel = run_sweep(configs, jobs=4)
        assert repr(serial.results) == repr(parallel.results)

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_poisoned_config_does_not_lose_neighbours(self, jobs):
        configs = [quick_config(seed=1), poisoned_config(), quick_config(seed=2)]
        sweep = run_sweep(configs, jobs=jobs)
        assert not sweep.ok
        assert [r is not None for r in sweep.results] == [True, False, True]
        # The healthy results equal what a clean sweep produces.
        clean = run_sweep([configs[0], configs[2]], jobs=1).require()
        assert sweep.results[0] == clean[0]
        assert sweep.results[2] == clean[1]
        (failure,) = sweep.failures
        assert failure.index == 1
        assert failure.error_type == "ConfigError"
        assert "no-such-protocol" in failure.error
        assert "Traceback" in failure.traceback

    def test_replay_command_shape(self):
        sweep = run_sweep([poisoned_config(seed=9)], jobs=1)
        (failure,) = sweep.failures
        command = failure.replay_command()
        assert command.startswith("python -m repro run ")
        assert "--protocol no-such-protocol" in command
        assert "--seed 9" in command
        assert "-n 4" in command

    def test_require_raises_with_failures_attached(self):
        sweep = run_sweep([quick_config(seed=1), poisoned_config()], jobs=1)
        with pytest.raises(SweepError) as excinfo:
            sweep.require()
        assert len(excinfo.value.failures) == 1
        assert isinstance(excinfo.value.failures[0], RunFailure)

    def test_require_passthrough_when_clean(self):
        sweep = run_sweep([quick_config(seed=1)], jobs=1)
        assert sweep.require() == sweep.results

    def test_progress_callback(self):
        seen = []
        run_sweep(
            [quick_config(seed=1), quick_config(seed=2)],
            jobs=1,
            progress=lambda done, total, cfg, ok: seen.append((done, total, ok)),
        )
        assert seen == [(1, 2, True), (2, 2, True)]

    def test_obs_journal_records_runs(self):
        from repro.obs import Observability
        from repro.obs.journal import EventJournal
        from repro.obs.registry import MetricsRegistry

        obs = Observability(MetricsRegistry(), EventJournal())
        run_sweep([quick_config(seed=1), poisoned_config()], jobs=1, obs=obs)
        events = [e for e in obs.journal if e.type == "sweep.run"]
        assert len(events) == 2
        assert obs.metrics.counter_total("sweep.runs_completed") == 1
        assert obs.metrics.counter_total("sweep.runs_failed") == 1

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_collect_obs_merges_worker_state(self, jobs):
        from repro.obs import Observability
        from repro.obs.journal import EventJournal
        from repro.obs.registry import MetricsRegistry

        obs = Observability(MetricsRegistry(), EventJournal())
        configs = [quick_config(seed=1), quick_config(seed=2)]
        sweep = run_sweep(configs, jobs=jobs, obs=obs, collect_obs=True)
        assert sweep.ok
        # Per-run telemetry crossed the pool boundary and was folded in.
        assert obs.metrics.counter_total("net.messages_sent") > 0
        assert obs.metrics.counter_total("core.wave_commits") > 0
        run_obs = [e for e in obs.journal if e.type == "sweep.run_obs"]
        assert len(run_obs) == 2
        assert all(e.data["journal_events"] > 0 for e in run_obs)

    def test_collect_obs_merge_is_jobcount_invariant(self):
        from repro.obs import Observability
        from repro.obs.journal import EventJournal
        from repro.obs.registry import MetricsRegistry

        configs = [quick_config(seed=3), quick_config(seed=4)]
        snapshots = []
        for jobs in (1, 2):
            obs = Observability(MetricsRegistry(), EventJournal())
            run_sweep(configs, jobs=jobs, obs=obs, collect_obs=True)
            snapshots.append([
                row for row in obs.metrics.snapshot()
                if not row["name"].startswith("sweep.")
            ])
        assert snapshots[0] == snapshots[1]

    def test_collect_obs_without_parent_obs_is_safe(self):
        # No parent registry to merge into: must not corrupt NULL_OBS.
        from repro.obs import NULL_OBS

        sweep = run_sweep([quick_config(seed=1)], jobs=1, collect_obs=True)
        assert sweep.ok
        assert len(NULL_OBS.metrics) == 0

    def test_jobs_clamped_to_sweep_size(self):
        sweep = run_sweep([quick_config(seed=1)], jobs=8)
        assert sweep.jobs == 1

    def test_empty_sweep(self):
        sweep = run_sweep([], jobs=4)
        assert sweep.ok and sweep.results == []


class TestSweepResultShape:
    def test_defaults(self):
        empty = SweepResult(results=[])
        assert empty.ok and empty.require() == []


# Module-level workers: the pool pickles them by reference.


def _square(x, registry):
    return x * x


def _registry_lookup(key, registry):
    return registry[key]
