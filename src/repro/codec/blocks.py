"""Codec for blocks and their nested structures.

Encodes :class:`~repro.dag.block.Block` (with payload, signature, embedded
Byzantine proofs and Rule-4 determinations) and verifies on decode that
the transported digest matches a recomputation — a peer cannot ship a
block whose identity disagrees with its content.
"""

from __future__ import annotations

from ..core.proofs import ByzantineProof
from ..crypto.hashing import intern_digest
from ..crypto.schnorr import SchnorrSignature
from ..dag.block import Block, TxBatch, compute_block_digest
from .primitives import CodecError, Reader, Writer

_SIG_NONE = 0
_SIG_BYTES = 1
_SIG_SCHNORR = 2


def encode_signature(w: Writer, signature: object) -> None:
    """Write the tagged signature union (none / MAC bytes / Schnorr)."""
    if signature is None:
        w.byte(_SIG_NONE)
    elif isinstance(signature, bytes):
        w.byte(_SIG_BYTES)
        w.lp_bytes(signature)
    elif isinstance(signature, SchnorrSignature):
        w.byte(_SIG_SCHNORR)
        w.bigint(signature.R)
        w.bigint(signature.s)
    else:
        raise CodecError(f"unknown signature type {type(signature).__name__}")


def decode_signature(r: Reader) -> object:
    """Read the tagged signature union written by :func:`encode_signature`."""
    tag = r.byte()
    if tag == _SIG_NONE:
        return None
    if tag == _SIG_BYTES:
        return r.lp_bytes()
    if tag == _SIG_SCHNORR:
        return SchnorrSignature(R=r.bigint(), s=r.bigint())
    raise CodecError(f"unknown signature tag {tag}")


def encode_batch(w: Writer, batch: TxBatch) -> None:
    """Write a TxBatch (counts, timing summary, optional real items)."""
    w.uvarint(batch.count)
    w.uvarint(batch.tx_size)
    w.double(batch.submit_time_sum)
    w.uvarint(len(batch.sample))
    for t in batch.sample:
        w.double(t)
    w.uvarint(len(batch.items))
    for item in batch.items:
        w.lp_bytes(item)


def decode_batch(r: Reader) -> TxBatch:
    """Read a TxBatch written by :func:`encode_batch`."""
    count = r.uvarint()
    tx_size = r.uvarint()
    submit_sum = r.double()
    sample = tuple(r.double() for _ in range(r.uvarint()))
    items = tuple(r.lp_bytes() for _ in range(r.uvarint()))
    return TxBatch(
        count=count, tx_size=tx_size, submit_time_sum=submit_sum,
        sample=sample, items=items,
    )


def encode_block(w: Writer, block: Block) -> None:
    """Write a full block (parents, payload, proofs, determinations, sig)."""
    w.uvarint(block.round)
    w.uvarint(block.author)
    w.uvarint(len(block.parents))
    for parent in block.parents:
        w.lp_bytes(parent)
    encode_batch(w, block.payload)
    w.uvarint(block.repropose_index)
    w.uvarint(len(block.byz_proofs))
    for proof in block.byz_proofs:
        encode_proof(w, proof)
    w.uvarint(len(block.determinations))
    for round_, author, digest in block.determinations:
        w.uvarint(round_)
        w.uvarint(author)
        w.lp_bytes(digest)
    encode_signature(w, block.signature)


def decode_block(r: Reader) -> Block:
    """Read a block and *recompute* its digest from the decoded content."""
    round_ = r.uvarint()
    author = r.uvarint()
    # Digest references are interned: at scale the same parent digest
    # arrives from up to n peers, and one canonical bytes object per
    # digest keeps the decoded DAG's reference graph from duplicating
    # 32-byte strings n times over.
    parents = tuple(intern_digest(r.lp_bytes()) for _ in range(r.uvarint()))
    payload = decode_batch(r)
    repropose_index = r.uvarint()
    proofs = tuple(decode_proof(r) for _ in range(r.uvarint()))
    determinations = tuple(
        (r.uvarint(), r.uvarint(), intern_digest(r.lp_bytes()))
        for _ in range(r.uvarint())
    )
    signature = decode_signature(r)
    digest = intern_digest(
        compute_block_digest(
            round_, author, parents, payload, repropose_index, proofs,
            determinations,
        )
    )
    return Block(
        round=round_,
        author=author,
        parents=parents,
        payload=payload,
        repropose_index=repropose_index,
        byz_proofs=proofs,
        determinations=determinations,
        digest=digest,
        signature=signature,
    )


def encode_proof(w: Writer, proof: ByzantineProof) -> None:
    """Write a Byzantine proof (culprit id + both conflicting blocks)."""
    if not isinstance(proof, ByzantineProof):
        raise CodecError(f"cannot encode proof of type {type(proof).__name__}")
    w.uvarint(proof.culprit)
    encode_block(w, proof.block_a)
    encode_block(w, proof.block_b)


def decode_proof(r: Reader) -> ByzantineProof:
    """Read a Byzantine proof written by :func:`encode_proof`."""
    culprit = r.uvarint()
    block_a = decode_block(r)
    block_b = decode_block(r)
    return ByzantineProof(culprit=culprit, block_a=block_a, block_b=block_b)


def block_to_bytes(block: Block) -> bytes:
    """Standalone block encoding (tests, storage)."""
    w = Writer()
    encode_block(w, block)
    return w.getvalue()


def block_from_bytes(data: bytes) -> Block:
    """Standalone block decoding; rejects trailing bytes."""
    r = Reader(data)
    block = decode_block(r)
    r.expect_eof()
    return block
