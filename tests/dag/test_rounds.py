"""Tests for repro.dag.rounds: wave/round arithmetic for every protocol shape."""

import pytest
from hypothesis import given, strategies as st

from repro.dag.rounds import WaveStructure
from repro.errors import ConfigError


class TestLightDag1Shape:
    """Overlapping 3-round waves: ⟨w,3⟩ = ⟨w+1,1⟩ (§III-C)."""

    wave = WaveStructure(3, overlap=True)

    def test_stride(self):
        assert self.wave.stride == 2

    def test_wave1_rounds(self):
        assert [self.wave.round_of(1, e) for e in (1, 2, 3)] == [1, 2, 3]

    def test_boundary_shared(self):
        assert self.wave.round_of(1, 3) == self.wave.round_of(2, 1) == 3

    def test_paper_formula(self):
        # §III-C: "the one-dimensional round number r is given by 2w + e"
        # (up to the constant offset of the paper's numbering origin);
        # consecutive first rounds differ by 2.
        assert self.wave.first_round(5) - self.wave.first_round(4) == 2

    def test_waves_containing_boundary(self):
        assert self.wave.waves_containing(3) == [(1, 3), (2, 1)]

    def test_waves_containing_middle(self):
        assert self.wave.waves_containing(4) == [(2, 2)]

    def test_wave_of_first_round(self):
        assert self.wave.wave_of_first_round(1) == 1
        assert self.wave.wave_of_first_round(3) == 2
        assert self.wave.wave_of_first_round(2) is None

    def test_wave_of_last_round(self):
        assert self.wave.wave_of_last_round(3) == 1
        assert self.wave.wave_of_last_round(5) == 2
        assert self.wave.wave_of_last_round(2) is None


class TestLightDag2Shape:
    """Non-overlapping 3-round waves (PBC, CBC, PBC)."""

    wave = WaveStructure(3, overlap=False)

    def test_wave_rounds(self):
        assert [self.wave.round_of(1, e) for e in (1, 2, 3)] == [1, 2, 3]
        assert [self.wave.round_of(2, e) for e in (1, 2, 3)] == [4, 5, 6]

    def test_no_shared_rounds(self):
        for r in range(1, 30):
            assert len(self.wave.waves_containing(r)) == 1

    def test_first_last(self):
        assert self.wave.first_round(3) == 7
        assert self.wave.last_round(3) == 9


class TestBaselineShapes:
    def test_dagrider_four_rounds(self):
        wave = WaveStructure(4)
        assert wave.first_round(2) == 5
        assert wave.last_round(2) == 8

    def test_bullshark_two_rounds(self):
        wave = WaveStructure(2)
        assert [wave.first_round(w) for w in (1, 2, 3)] == [1, 3, 5]

    def test_position_in_wave(self):
        wave = WaveStructure(4)
        assert wave.position_in_wave(6, 2) == 2
        with pytest.raises(ConfigError):
            wave.position_in_wave(6, 1)


class TestValidation:
    def test_too_short_wave(self):
        with pytest.raises(ConfigError):
            WaveStructure(1)

    def test_overlap_needs_three(self):
        with pytest.raises(ConfigError):
            WaveStructure(2, overlap=True)

    def test_invalid_positions(self):
        wave = WaveStructure(3)
        with pytest.raises(ConfigError):
            wave.round_of(0, 1)
        with pytest.raises(ConfigError):
            wave.round_of(1, 4)
        with pytest.raises(ConfigError):
            wave.rounds_to_commit(0)

    def test_round_zero_in_no_wave(self):
        assert WaveStructure(3).waves_containing(0) == []
        assert WaveStructure(3, overlap=True).waves_containing(-2) == []


@given(
    length=st.integers(min_value=2, max_value=6),
    overlap=st.booleans(),
    wave_num=st.integers(min_value=1, max_value=50),
)
def test_property_roundtrip(length, overlap, wave_num):
    """round_of and waves_containing are mutually consistent."""
    if overlap and length < 3:
        return
    wave = WaveStructure(length, overlap=overlap)
    for e in range(1, length + 1):
        r = wave.round_of(wave_num, e)
        assert (wave_num, e) in wave.waves_containing(r)


@given(
    length=st.integers(min_value=2, max_value=6),
    overlap=st.booleans(),
    round_=st.integers(min_value=1, max_value=200),
)
def test_property_every_round_has_a_wave(length, overlap, round_):
    """No round is orphaned from the wave structure."""
    if overlap and length < 3:
        return
    wave = WaveStructure(length, overlap=overlap)
    memberships = wave.waves_containing(round_)
    assert 1 <= len(memberships) <= 2
    for w, e in memberships:
        assert wave.round_of(w, e) == round_
