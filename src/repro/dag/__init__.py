"""DAG substrate: blocks, rounds/waves, the block store, and the ledger.

Shared by LightDAG1, LightDAG2 and all three baselines.  The vocabulary
follows §III-A of the paper:

* a **slot** is a position ``(round, replica)`` in the DAG;
* a block **directly references** its *parents* (blocks from the previous
  round whose hashes it includes) and transitively references *ancestors*
  (a block is an ancestor of itself);
* rounds are grouped into **waves**; LightDAG1 overlaps the last round of a
  wave with the first round of the next (⟨w,3⟩ = ⟨w+1,1⟩).

The store supports both the strict one-block-per-slot regime (CBC/RBC
consistency) and the permissive multi-block regime LightDAG2 needs for
PBC equivocation.
"""

from .block import Block, GENESIS_ROUND, TxBatch, genesis_block, make_block
from .ledger import CommitRecord, Ledger
from .rounds import WaveStructure
from .store import DagStore
from .traversal import ancestors_of, is_ancestor, uncommitted_ancestors
from .validation import validate_block_structure

__all__ = [
    "Block",
    "CommitRecord",
    "DagStore",
    "GENESIS_ROUND",
    "Ledger",
    "TxBatch",
    "WaveStructure",
    "ancestors_of",
    "genesis_block",
    "is_ancestor",
    "make_block",
    "uncommitted_ancestors",
    "validate_block_structure",
]
