"""Adversary base class (message-schedule control).

The asynchronous model (§III-A) lets the adversary "delay messages by an
arbitrary but finite period".  The simulator consults the adversary on
every non-local send; the verdict is either an extra delay in seconds
(0.0 = deliver normally) or ``None`` = drop.  Drops model crashed senders
and receivers only — dropping an honest-to-honest message forever would
exceed the paper's adversary, so concrete subclasses stick to finite
delays unless a crash is involved.
"""

from __future__ import annotations

import random
from typing import Optional

from ..net.interfaces import Message


class Adversary:
    """Base adversary: no interference."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(f"adversary:{seed}")
        self.sim = None

    def attach(self, sim) -> None:
        """Called by the simulator after nodes exist; override to crash
        replicas or inspect the topology."""
        self.sim = sim

    def on_send(self, src: int, dst: int, msg: Message, now: float) -> Optional[float]:
        """Extra delay in seconds for this message, or None to drop it."""
        return 0.0


class PassiveAdversary(Adversary):
    """Explicit no-op adversary (the favorable-situation setting)."""
