"""End-to-end load testing: client populations against a replicated KV.

:func:`run_loadtest` is the missing measurement loop the consensus-only
harness (:mod:`repro.harness.runner`) never had: real clients submit real
commands to the :mod:`repro.smr` application, wait for committed results,
and the run reports **consensus-side and client-side TPS/latency side by
side** — the two-row summary shape the lightDAG benchmark harness prints
(Consensus TPS / Consensus latency / End-to-end TPS / End-to-end
latency).  The gap between the two rows *is* the queueing story: end-to-end
latency includes time spent in the replica's admission queue before a
block drained the command, so it is ≥ consensus latency by construction,
and the difference explodes exactly at the saturation knee.

Results are plain picklable dataclasses so saturation sweeps fan out over
the PR 5 process pool unchanged (see
:func:`repro.harness.experiments.saturation_sweep`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..config import ProtocolConfig, SystemConfig
from ..errors import ConfigError, SweepError
from ..net.latency import make_latency_model
from ..obs import MetricsRegistry, NullJournal, Observability
from ..smr.kv import KvStateMachine
from ..smr.replica import SmrCluster
from ..workload.admission import AdmissionConfig
from ..workload.clients import ClientPopulation, WorkloadSpec
from ..workload.metrics import MetricsCollector

__all__ = [
    "LoadtestConfig",
    "LoadtestResult",
    "run_loadtest",
    "run_loadtest_sweep",
]


@dataclass(frozen=True)
class LoadtestConfig:
    """One end-to-end load test: cluster + workload + admission policy."""

    n: int = 4
    protocol_name: str = "lightdag2"
    batch_size: int = 64
    crypto: str = "hmac"
    latency_model: str = "uniform"
    duration: float = 10.0
    warmup: float = 2.0
    seed: int = 0
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    admission: AdmissionConfig = field(
        default_factory=lambda: AdmissionConfig(max_pending=4096, policy="reject")
    )

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigError("duration must be positive")
        if not 0 <= self.warmup < self.duration:
            raise ConfigError("warmup must be in [0, duration)")

    def with_updates(self, **kwargs: Any) -> "LoadtestConfig":
        return replace(self, **kwargs)

    def with_rate(self, rate: float) -> "LoadtestConfig":
        """Copy with the workload's offered rate replaced (sweep helper)."""
        return replace(self, workload=replace(self.workload, rate=rate))


@dataclass
class LoadtestResult:
    """Consensus-side and client-side measurements of one load test."""

    config: LoadtestConfig
    offered_rate: float
    # consensus side (block proposal -> commit), from MetricsCollector
    consensus_tps: float
    consensus_mean_s: float
    consensus_p50_s: float
    consensus_p95_s: float
    # client side (submit -> committed result), from ClientStats
    e2e_tps: float
    e2e_mean_s: float
    e2e_p50_s: float
    e2e_p99_s: float
    e2e_p999_s: float
    # traffic accounting
    submitted: int
    completed: int
    rejected: int
    shed: int
    retries: int
    verified: int
    verify_failures: int
    max_pending_depth: int
    admission: Dict[str, int] = field(default_factory=dict)
    obs_counters: Dict[str, float] = field(default_factory=dict)

    def row(self) -> Dict[str, object]:
        """Flat dict for tables / JSON export."""
        def r(x: float, digits: int = 4) -> float:
            return round(x, digits) if math.isfinite(x) else x

        return {
            "protocol": self.config.protocol_name,
            "n": self.config.n,
            "mode": self.config.workload.mode,
            "clients": self.config.workload.clients,
            "offered_tps": r(self.offered_rate, 1),
            "consensus_tps": r(self.consensus_tps, 1),
            "consensus_s": r(self.consensus_mean_s),
            "e2e_tps": r(self.e2e_tps, 1),
            "e2e_p50_s": r(self.e2e_p50_s),
            "e2e_p99_s": r(self.e2e_p99_s),
            "e2e_p999_s": r(self.e2e_p999_s),
            "rejected": self.rejected,
            "shed": self.shed,
            "max_depth": self.max_pending_depth,
            "verify_failures": self.verify_failures,
        }


def run_loadtest(cfg: LoadtestConfig, obs: Optional[Observability] = None) -> LoadtestResult:
    """Run one client population against a fresh cluster and measure both
    sides of the pipeline.

    Raises :class:`~repro.errors.ProtocolError` if the replicas diverged
    (the run always ends with the convergence audit) and asserts that no
    closed-loop read-your-writes verification failed.
    """
    if obs is None:
        # Metrics on (admission/drop counters are part of the contract),
        # journal off (long overload runs would hoard events).
        obs = Observability(MetricsRegistry(), NullJournal())
    system = SystemConfig(n=cfg.n, crypto=cfg.crypto, seed=cfg.seed)
    protocol = ProtocolConfig(batch_size=cfg.batch_size)
    collector = MetricsCollector(warmup=cfg.warmup, measure_until=cfg.duration)
    cluster = SmrCluster.build(
        system,
        machine_factory=KvStateMachine,
        protocol=protocol,
        protocol_name=cfg.protocol_name,
        latency_model=(
            None if cfg.latency_model == "uniform"
            else make_latency_model(cfg.latency_model)
        ),
        seed=cfg.seed,
        obs=obs,
        admission=cfg.admission,
        collector=collector,
    )
    population = ClientPopulation(
        cfg.workload, cluster, duration=cfg.duration, warmup=cfg.warmup
    )
    population.install()
    cluster.run(until=cfg.duration)
    cluster.verify_convergence()

    stats = population.stats
    window = cfg.duration - cfg.warmup
    admission_totals: Dict[str, int] = {}
    max_depth = 0
    for replica in cluster.replicas:
        ctl = replica.admission
        if ctl is None:
            max_depth = max(max_depth, replica.pending_count())
            continue
        for key, value in ctl.summary().items():
            admission_totals[key] = admission_totals.get(key, 0) + value
        max_depth = max(max_depth, ctl.max_depth)

    counters = {}
    if obs.metrics.enabled:
        counters = {
            "smr.admitted": obs.metrics.counter_total("smr.admitted"),
            "smr.rejected": obs.metrics.counter_total("smr.rejected"),
            "smr.shed": obs.metrics.counter_total("smr.shed"),
        }

    offered = cfg.workload.rate if cfg.workload.mode == "open" else stats.e2e_tps()
    return LoadtestResult(
        config=cfg,
        offered_rate=offered,
        consensus_tps=collector.throughput(window),
        consensus_mean_s=collector.mean_latency(),
        consensus_p50_s=collector.latency_quantile(0.5),
        consensus_p95_s=collector.latency_quantile(0.95),
        e2e_tps=stats.e2e_tps(),
        e2e_mean_s=stats.mean_latency(),
        e2e_p50_s=stats.quantile(0.5),
        e2e_p99_s=stats.quantile(0.99),
        e2e_p999_s=stats.quantile(0.999),
        submitted=stats.submitted,
        completed=stats.completed,
        rejected=stats.rejected,
        shed=stats.shed,
        retries=stats.retries,
        verified=stats.verified,
        verify_failures=stats.verify_failures,
        max_pending_depth=max_depth,
        admission=admission_totals,
        obs_counters=counters,
    )


# ------------------------------------------------------------- sweep worker


def _loadtest_worker(cfg: LoadtestConfig, registry) -> Tuple[bool, Any]:
    """Pool worker: (ok, LoadtestResult | error description)."""
    try:
        return True, run_loadtest(cfg)
    except Exception as exc:  # noqa: BLE001 — captured for the parent
        import traceback

        return False, f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"


def run_loadtest_sweep(
    configs: List[LoadtestConfig], jobs: Optional[int] = None
) -> List[LoadtestResult]:
    """Ordered loadtests over the PR 5 process pool; raises
    :class:`~repro.errors.SweepError` listing every failed point."""
    from .parallel import parallel_map

    outcomes, _ = parallel_map(_loadtest_worker, configs, jobs=jobs)
    failures = [
        f"rate={cfg.workload.rate}: {payload}"
        for cfg, (ok, payload) in zip(configs, outcomes)
        if not ok
    ]
    if failures:
        raise SweepError(
            f"{len(failures)} loadtest point(s) failed:\n" + "\n".join(failures)
        )
    return [payload for _, payload in outcomes]
