"""Micro-benchmarks: instrumentation overhead (the off-by-default-cheap guard).

The obs layer's contract is that nobody pays for telemetry they did not
ask for.  Three guards, from strictest to loosest:

* **no-op mode** (the default ``NULL_OBS`` path) must be within noise of
  an uninstrumented build — the hot loops only pay an ``enabled`` branch
  and some inert attribute reads;
* **engine hot loop** (instrumenting the simulator's event loop alone:
  per-type message counters, queue-wait histograms) must cost <5%.  The
  loop stages plain ints/lists keyed by message class, counts broadcast
  fan-out once per batch, derives delivered counts by conservation at
  flush time, and bulk-folds wait samples into histograms once per
  ``run()`` — measured 2-4% here;
* **full stack** (simulator + every node's metrics *and* journal) gets a
  generous regression bound rather than a tight budget.  Each journal
  record allocates a dict and an Event, and on this workload a baseline
  event is only a few microseconds of pure-Python work (payloads are
  synthetic counts, crypto is HMAC), so full tracing measures 10-20% —
  a worst case by construction.  The bound exists to catch accidental
  hot-path regressions (say, re-resolving labeled series per event),
  not to promise free tracing.

Methodology — chosen after fighting a noisy box, in decreasing order of
importance:

* ``time.process_time`` (CPU time), so scheduler preemption and VM steal
  don't land in either variant's account;
* min-of-N over fresh simulations, round-robin interleaved so frequency
  drift hits every variant equally (min is the robust estimator for
  "how fast can this go"; means smear in whatever noise remains);
* GC parked during the timed region — the ``timeit`` convention, because
  collection cost scales with total heap, a property of the workload,
  not of the loop under test;
* a failed budget triggers one deeper re-measurement before the test
  fails: a genuine regression fails twice, a noise spike does not.

The pytest-benchmark fixtures report the same numbers for the records.
"""

import gc
import time

from repro.config import ProtocolConfig, SystemConfig
from repro.crypto.keys import TrustedDealer
from repro.harness.runner import PROTOCOL_REGISTRY
from repro.net.latency import FixedLatency
from repro.net.simulator import Simulation
from repro.obs import EventJournal, MetricsRegistry, Observability, Tracer


def make_obs(trace=False):
    journal = EventJournal()
    return Observability(
        MetricsRegistry(), journal,
        trace=Tracer(journal) if trace else None,
    )


def build_sim(protocol_name="lightdag1", n=4, batch=50, seed=1,
              obs=None, obs_sim=None):
    """A small but realistic run: 4 replicas, CBC broadcast, bandwidth on.

    ``obs`` instruments everything; ``obs_sim`` instruments only the
    simulator's event loop (the engine-hot-loop guard).
    """
    system = SystemConfig(n=n, crypto="hmac", seed=seed)
    protocol = ProtocolConfig(batch_size=batch)
    chains = TrustedDealer(
        system, coin_threshold=protocol.resolve_coin_threshold(system)
    ).deal()
    node_cls = PROTOCOL_REGISTRY[protocol_name]
    kwargs = {} if obs is None else {"obs": obs}

    def factory(i):
        return lambda net: node_cls(net, system=system, protocol=protocol,
                                    keychain=chains[i], **kwargs)

    sim_obs = obs if obs is not None else obs_sim
    sim_kwargs = {} if sim_obs is None else {"obs": sim_obs}
    return Simulation(
        [factory(i) for i in range(n)],
        latency_model=FixedLatency(0.05),
        bandwidth_bps=100_000_000,
        seed=seed,
        **sim_kwargs,
    )


def timed_run(make_sim, until=2.0):
    """CPU time for one fresh simulation, GC parked during the loop."""
    sim = make_sim()
    gc.collect()
    gc.disable()
    try:
        start = time.process_time()
        sim.run(until=until)
        return time.process_time() - start
    finally:
        gc.enable()


def measured_overhead(make_baseline, make_variant, rounds=10, until=2.0):
    """Relative slowdown of variant vs baseline, interleaved min-of-N."""
    best_base = best_var = float("inf")
    for _ in range(rounds):
        best_base = min(best_base, timed_run(make_baseline, until=until))
        best_var = min(best_var, timed_run(make_variant, until=until))
    return best_var / best_base - 1.0


def assert_overhead_under(make_baseline, make_variant, budget, what):
    """Budget check with one deeper retry, so noise spikes don't flake."""
    overhead = measured_overhead(make_baseline, make_variant)
    if overhead >= budget:
        overhead = min(
            overhead,
            measured_overhead(make_baseline, make_variant, rounds=16),
        )
    assert overhead < budget, (
        f"{what} obs costs {overhead:.1%} (budget {budget:.0%})"
    )


class TestObsOverhead:
    def test_engine_loop_overhead_under_5_percent(self):
        """The simulator event loop with per-type counters + wait
        histograms enabled: the <5% budget (measured 2-4%)."""
        assert_overhead_under(
            lambda: build_sim(),
            lambda: build_sim(obs_sim=make_obs()),
            budget=0.05,
            what="engine-loop",
        )

    def test_noop_overhead_is_noise(self):
        # Explicit NULL_OBS vs defaulted: the same code path, so the only
        # honest assertion is "indistinguishable", with generous slack.
        from repro.obs import NULL_OBS

        assert_overhead_under(
            lambda: build_sim(),
            lambda: build_sim(obs=NULL_OBS),
            budget=0.10,
            what="no-op",
        )

    def test_full_stack_overhead_bounded(self):
        """Regression bound, not a budget: full metrics + journal on a
        workload whose baseline events are only a few microseconds each
        (see module docstring).  Measured 10-20%; a jump past 35% means
        someone put allocation or label resolution back on a per-event
        path."""
        assert_overhead_under(
            lambda: build_sim(),
            lambda: build_sim(obs=make_obs()),
            budget=0.35,
            what="full-stack",
        )

    def test_traced_stack_overhead_bounded(self):
        """Full stack *plus* lifecycle tracing (``repro explain``'s
        configuration).  Each block adds a handful of trace.* milestone
        events on top of the baseline journal volume, so this sits a few
        points above the full-stack number.  Regression bound, not a
        budget — the promise that matters is the engine-loop <5% with
        tracing compiled in but disabled, which the first test enforces
        against exactly this build."""
        assert_overhead_under(
            lambda: build_sim(),
            lambda: build_sim(obs=make_obs(trace=True)),
            budget=0.45,
            what="traced-stack",
        )

    def test_instrumented_run_actually_records(self):
        obs = make_obs()
        sim = build_sim(obs=obs)
        sim.run(until=1.0)
        assert obs.metrics.counter_total("net.messages_sent") > 0
        assert len(obs.journal) > 0

    def test_engine_only_records_net_metrics(self):
        obs = make_obs()
        sim = build_sim(obs_sim=obs)
        sim.run(until=1.0)
        assert obs.metrics.counter_total("net.messages_sent") > 0
        assert obs.metrics.counter_total("broadcast.vals_sent") == 0


def test_bench_instrumented_protocol_second(benchmark):
    """Wall-clock cost of one fully instrumented protocol-second."""

    def run():
        sim = build_sim(obs=make_obs())
        sim.run(until=1.0)
        return sim.stats.messages_delivered

    assert benchmark(run) > 0


def test_bench_registry_hot_path(benchmark):
    """Raw cost of the cached-counter idiom the simulator uses."""
    registry = MetricsRegistry()
    counter = registry.counter("net.messages_sent", type="BlockVal")
    histogram = registry.histogram("net.egress_wait_seconds")

    def pump():
        for i in range(10_000):
            counter.inc()
            histogram.observe(i * 1e-6)
        return counter.value

    assert benchmark(pump) > 0
