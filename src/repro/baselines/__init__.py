"""Baseline protocols the paper compares against (Table I, §VI).

All three are implemented over the same engine, broadcast substrate, and
network model as LightDAG — the paper's own methodology ("we implement all
of LightDAG, Tusk, and BullShark in Golang using a common framework to
ensure a fair and consistent comparison", §VI-A):

* :mod:`repro.baselines.dagrider` — DAG-Rider [8]: 4 RBC rounds per wave,
  leader committed on 2f+1 wave-end references.  Best latency 12 steps.
* :mod:`repro.baselines.tusk` — Tusk [10]: 3 RBC rounds per wave, leader
  committed on f+1 second-round references.  Best latency 9 (7) steps.
* :mod:`repro.baselines.bullshark` — Bullshark [9] (partially-synchronous
  steady state): predefined leaders every other RBC round, committed on
  2f+1 next-round references; a leader-wait timeout keeps honest replicas
  referencing slow leaders, which is exactly the surface the Fig. 15
  leader-delay attack exploits.  Best latency 6 steps.
"""

from .bullshark import BullsharkNode
from .dagrider import DagRiderNode
from .tusk import TuskNode

__all__ = ["BullsharkNode", "DagRiderNode", "TuskNode"]
