"""Tests for repro.dag.ledger: total order, positions, safety checking."""

import pytest

from repro.dag.block import TxBatch, make_block
from repro.dag.ledger import Ledger, check_prefix_consistency
from repro.errors import ProtocolError


def block_at(round_, author, txs=0):
    return make_block(round_, author, [], payload=TxBatch(txs, 128))


class TestAppend:
    def test_positions_increment(self):
        ledger = Ledger()
        k = ledger.begin_leader()
        r0 = ledger.append(block_at(1, 0), 1.0, b"L", k)
        r1 = ledger.append(block_at(1, 1), 1.0, b"L", k)
        assert (r0.position, r1.position) == (0, 1)

    def test_double_commit_rejected(self):
        ledger = Ledger()
        k = ledger.begin_leader()
        block = block_at(1, 0)
        ledger.append(block, 1.0, b"L", k)
        with pytest.raises(ProtocolError):
            ledger.append(block, 2.0, b"L", k)

    def test_membership(self):
        ledger = Ledger()
        block = block_at(1, 0)
        assert block.digest not in ledger
        ledger.append(block, 1.0, b"L", ledger.begin_leader())
        assert block.digest in ledger

    def test_leader_indices(self):
        ledger = Ledger()
        assert ledger.begin_leader() == 0
        assert ledger.begin_leader() == 1
        assert ledger.leader_count == 2

    def test_record_metadata(self):
        ledger = Ledger()
        k = ledger.begin_leader()
        record = ledger.append(block_at(2, 3), 5.5, b"LEAD", k)
        assert record.commit_time == 5.5
        assert record.via_leader == b"LEAD"
        assert record.leader_index == k


class TestQueries:
    def test_iteration_and_len(self):
        ledger = Ledger()
        k = ledger.begin_leader()
        for i in range(3):
            ledger.append(block_at(1, i), 1.0, b"L", k)
        assert len(ledger) == 3
        assert [r.position for r in ledger] == [0, 1, 2]

    def test_record_at_and_last(self):
        ledger = Ledger()
        k = ledger.begin_leader()
        assert ledger.last() is None
        ledger.append(block_at(1, 0), 1.0, b"L", k)
        rec = ledger.append(block_at(1, 1), 2.0, b"L", k)
        assert ledger.last() is rec
        assert ledger.record_at(0).block.author == 0

    def test_total_transactions(self):
        ledger = Ledger()
        k = ledger.begin_leader()
        ledger.append(block_at(1, 0, txs=10), 1.0, b"L", k)
        ledger.append(block_at(1, 1, txs=5), 1.0, b"L", k)
        assert ledger.total_transactions() == 15

    def test_digest_sequence(self):
        ledger = Ledger()
        k = ledger.begin_leader()
        blocks = [block_at(1, i) for i in range(3)]
        for b in blocks:
            ledger.append(b, 1.0, b"L", k)
        assert ledger.digest_sequence() == [b.digest for b in blocks]


class TestPrefixConsistency:
    def make_ledger(self, blocks):
        ledger = Ledger()
        k = ledger.begin_leader()
        for b in blocks:
            ledger.append(b, 1.0, b"L", k)
        return ledger

    def test_identical_ledgers_pass(self):
        blocks = [block_at(1, i) for i in range(3)]
        check_prefix_consistency([self.make_ledger(blocks), self.make_ledger(blocks)])

    def test_prefix_relationship_passes(self):
        blocks = [block_at(1, i) for i in range(4)]
        check_prefix_consistency(
            [self.make_ledger(blocks), self.make_ledger(blocks[:2])]
        )

    def test_divergence_detected(self):
        a = self.make_ledger([block_at(1, 0), block_at(1, 1)])
        b = self.make_ledger([block_at(1, 0), block_at(1, 2)])
        with pytest.raises(ProtocolError, match="position 1"):
            check_prefix_consistency([a, b])

    def test_empty_ledgers_pass(self):
        check_prefix_consistency([Ledger(), Ledger()])

    def test_three_way_divergence_located(self):
        a = self.make_ledger([block_at(1, 0)])
        b = self.make_ledger([block_at(1, 0)])
        c = self.make_ledger([block_at(1, 3)])
        with pytest.raises(ProtocolError):
            check_prefix_consistency([a, b, c])

    def test_matches_all_pairs_reference(self):
        """The O(R·L) longest-reference check must accept/reject exactly the
        same ledger families as the naive O(R²·L) all-pairs scan it
        replaced."""
        import random

        def pairwise_consistent(ledgers):
            seqs = [l.digest_sequence() for l in ledgers]
            for i in range(len(seqs)):
                for j in range(i + 1, len(seqs)):
                    shared = min(len(seqs[i]), len(seqs[j]))
                    if seqs[i][:shared] != seqs[j][:shared]:
                        return False
            return True

        rng = random.Random(42)
        pool = [block_at(1, a) for a in range(4)] + [
            block_at(r, a) for r in (2, 3) for a in range(4)
        ]
        for trial in range(60):
            canonical = rng.sample(pool, rng.randint(0, len(pool)))
            family = []
            for _ in range(rng.randint(2, 5)):
                cut = rng.randint(0, len(canonical))
                blocks = list(canonical[:cut])
                if rng.random() < 0.3:  # sometimes fork the tail
                    extra = [b for b in pool if b not in blocks]
                    rng.shuffle(extra)
                    blocks += extra[: rng.randint(0, 2)]
                family.append(self.make_ledger(blocks))
            expected_ok = pairwise_consistent(family)
            if expected_ok:
                check_prefix_consistency(family)
            else:
                with pytest.raises(ProtocolError):
                    check_prefix_consistency(family)
