"""Experiment harness: one entry point per paper table/figure.

* :mod:`repro.harness.runner` — build-and-run one configured simulation,
  returning an :class:`~repro.harness.runner.ExperimentResult`.
* :mod:`repro.harness.experiments` — the sweeps behind Figs. 12-15.
* :mod:`repro.harness.parallel` — process-pool sweep execution
  (:func:`~repro.harness.parallel.run_sweep`, the ``--jobs`` flag).
* :mod:`repro.harness.steps` — the Table I communication-step measurements.
* :mod:`repro.harness.report` — plain-text table rendering for benches and
  EXPERIMENTS.md.
"""

from .experiments import (
    batch_size_sweep,
    headline_comparison,
    peak_throughput,
    scalability_sweep,
    tradeoff_curve,
    unfavorable_curve,
)
from .parallel import (
    RunFailure,
    SweepResult,
    default_jobs,
    run_sweep,
)
from .runner import (
    PROTOCOL_REGISTRY,
    ExperimentResult,
    build_adversary,
    run_experiment,
)
from .steps import measure_commit_steps, table1_rows

__all__ = [
    "ExperimentResult",
    "PROTOCOL_REGISTRY",
    "RunFailure",
    "SweepResult",
    "batch_size_sweep",
    "build_adversary",
    "default_jobs",
    "headline_comparison",
    "run_sweep",
    "measure_commit_steps",
    "peak_throughput",
    "run_experiment",
    "scalability_sweep",
    "table1_rows",
    "tradeoff_curve",
    "unfavorable_curve",
]
