"""Shared benchmark configuration.

Scale selection: set ``REPRO_BENCH_SCALE`` to

* ``smoke`` — minutes-long CI sanity (tiny systems, short horizons);
* ``small`` — the default: the paper's qualitative shape at reduced
  replica counts / durations (completes in ~10 minutes);
* ``full``  — the paper's exact axes (n up to 61, batch up to 1000;
  expect a long run).

Every figure bench writes its rendered table to ``benchmarks/results/`` so
the numbers survive pytest's output capture (EXPERIMENTS.md quotes them).

``REPRO_BENCH_JOBS`` sets the worker-process count the figure sweeps run
under (the ``--jobs`` flag of the CLI; see ``repro.harness.parallel``).
Default 1 — in-process, so single-run timings stay comparable across
machines; CI sets 2 to exercise the pool path.  Results are identical at
any job count, only wall-clock changes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

RESULTS_DIR = Path(__file__).parent / "results"

#: Per-scale experiment axes.
AXES = {
    "smoke": dict(
        replica_counts=(4,),
        batch_sizes=(100, 400),
        scalability_replicas=(4, 7),
        batch_ramp=(100, 800),
        duration=8.0,
        tradeoff_replicas=(4,),
        scale_out_replicas=(100,),
    ),
    "small": dict(
        replica_counts=(7, 22),
        batch_sizes=(100, 400, 1000),
        scalability_replicas=(7, 13, 22, 31),
        batch_ramp=(100, 400, 1000, 2000),
        duration=10.0,
        tradeoff_replicas=(7, 22),
        scale_out_replicas=(100,),
    ),
    "full": dict(
        replica_counts=(7, 22),
        batch_sizes=(100, 200, 400, 600, 800, 1000),
        scalability_replicas=(7, 13, 22, 31, 43, 61),
        batch_ramp=(50, 100, 200, 400, 800, 1200, 1600, 2000),
        duration=20.0,
        tradeoff_replicas=(7, 22),
        scale_out_replicas=(100, 300),
    ),
}


@pytest.fixture(scope="session")
def axes():
    if SCALE not in AXES:
        raise RuntimeError(f"REPRO_BENCH_SCALE must be one of {sorted(AXES)}")
    return AXES[SCALE]


@pytest.fixture(scope="session")
def jobs():
    return JOBS


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_report(results_dir: Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} (scale={SCALE}) ===\n{text}\n[saved to {path}]")
