"""Table I: latency in communication steps (paper vs measured).

Regenerates the paper's protocol-comparison table: wave length, broadcast
primitive, best-case latency in communication steps — measured on a
unit-latency network — against the analytic values the paper states.

Expected outcome (see EXPERIMENTS.md):

===========  =====  =========  ==========  =========
protocol     waves  broadcast  paper best  measured
===========  =====  =========  ==========  =========
dagrider     4      RBC        12 (10)     12
tusk         3      RBC        9 (7)       7
bullshark    4      RBC        6           6
lightdag1    3      CBC        6 (5)       5
lightdag2    3      CBC & PBC  4           4
===========  =====  =========  ==========  =========
"""

import pytest

from repro.harness.report import format_table
from repro.harness.steps import table1_rows

from .conftest import save_report


def test_table1_communication_steps(benchmark, results_dir):
    rows = benchmark.pedantic(table1_rows, kwargs=dict(n=4, seed=0),
                              rounds=1, iterations=1)
    text = format_table(
        rows,
        [
            "protocol", "wave_length", "broadcast",
            "paper_best", "paper_best_early", "paper_worst",
            "measured_best", "measured_mean",
        ],
    )
    save_report(results_dir, "table1_steps", text)

    by_name = {row["protocol"]: row for row in rows}
    assert by_name["lightdag2"]["measured_best"] == 4
    assert by_name["lightdag1"]["measured_best"] == 5
    assert by_name["bullshark"]["measured_best"] == 6
    assert by_name["tusk"]["measured_best"] == 7
    assert by_name["dagrider"]["measured_best"] == 12
