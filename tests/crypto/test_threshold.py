"""Tests for repro.crypto.threshold: threshold PRF and DLEQ proofs."""

import random

import pytest

from repro.crypto.group import default_group
from repro.crypto.hashing import hash_fields
from repro.crypto.shamir import split_secret
from repro.crypto.threshold import (
    DleqProof,
    PartialEval,
    ThresholdPRF,
    dleq_prove,
    dleq_verify,
    prf_output_to_int,
)
from repro.errors import ThresholdError


@pytest.fixture(scope="module")
def group():
    return default_group(256)


def build_prfs(group, n=4, threshold=3, seed=0):
    rng = random.Random(seed)
    secret = group.random_scalar(rng)
    shares = split_secret(secret, threshold, n, group.q, rng)
    vks = {s.x - 1: group.exp(group.g, s.y) for s in shares}
    prfs = [ThresholdPRF(group, threshold, shares[i], vks) for i in range(n)]
    return secret, prfs


class TestDleq:
    def test_roundtrip(self, group):
        g2 = group.hash_to_group("base2")
        h1, h2, proof = dleq_prove(group, 12345, group.g, g2)
        assert dleq_verify(group, group.g, h1, g2, h2, proof)

    def test_wrong_statement_rejected(self, group):
        g2 = group.hash_to_group("base2")
        h1, h2, proof = dleq_prove(group, 12345, group.g, g2)
        assert not dleq_verify(group, group.g, h1, g2, group.mul(h2, group.g), proof)

    def test_tampered_proof_rejected(self, group):
        g2 = group.hash_to_group("base2")
        h1, h2, proof = dleq_prove(group, 999, group.g, g2)
        bad = DleqProof(c=proof.c, s=(proof.s + 1) % group.q)
        assert not dleq_verify(group, group.g, h1, g2, h2, bad)

    def test_non_member_rejected(self, group):
        g2 = group.hash_to_group("base2")
        h1, h2, proof = dleq_prove(group, 55, group.g, g2)
        assert not dleq_verify(group, group.g, 0, g2, h2, proof)


class TestThresholdPRF:
    def test_combine_equals_direct_evaluation(self, group):
        secret, prfs = build_prfs(group)
        msg = hash_fields("wave", 1)
        partials = [prf.partial_eval(msg) for prf in prfs]
        combined = prfs[0].combine(msg, partials)
        h = prfs[0].input_element(msg)
        assert combined == group.exp(h, secret)

    def test_any_threshold_subset_combines_identically(self, group):
        _, prfs = build_prfs(group, n=5, threshold=3)
        msg = hash_fields("wave", 2)
        partials = [prf.partial_eval(msg) for prf in prfs]
        a = prfs[0].combine(msg, partials[:3])
        b = prfs[0].combine(msg, partials[2:])
        assert a == b

    def test_partials_verify(self, group):
        _, prfs = build_prfs(group)
        msg = hash_fields("m")
        for prf in prfs:
            partial = prf.partial_eval(msg)
            assert prfs[0].verify_partial(msg, partial)

    def test_forged_partial_rejected(self, group):
        _, prfs = build_prfs(group)
        msg = hash_fields("m")
        partial = prfs[1].partial_eval(msg)
        forged = PartialEval(index=2, value=partial.value, proof=partial.proof)
        assert not prfs[0].verify_partial(msg, forged)

    def test_unknown_index_rejected(self, group):
        _, prfs = build_prfs(group)
        msg = hash_fields("m")
        partial = prfs[0].partial_eval(msg)
        alien = PartialEval(index=99, value=partial.value, proof=partial.proof)
        assert not prfs[0].verify_partial(msg, alien)

    def test_combine_with_bad_partial_raises(self, group):
        _, prfs = build_prfs(group)
        msg = hash_fields("m")
        partials = [prf.partial_eval(msg) for prf in prfs[:3]]
        partials[1] = PartialEval(
            index=partials[1].index,
            value=group.mul(partials[1].value, group.g),
            proof=partials[1].proof,
        )
        with pytest.raises(ThresholdError, match="DLEQ"):
            prfs[0].combine(msg, partials)

    def test_combine_insufficient_raises(self, group):
        _, prfs = build_prfs(group)
        msg = hash_fields("m")
        with pytest.raises(ThresholdError, match="distinct"):
            prfs[0].combine(msg, [prfs[0].partial_eval(msg)])

    def test_duplicate_partials_not_double_counted(self, group):
        _, prfs = build_prfs(group)
        msg = hash_fields("m")
        p0 = prfs[0].partial_eval(msg)
        with pytest.raises(ThresholdError):
            prfs[0].combine(msg, [p0, p0, p0])

    def test_verifier_only_cannot_evaluate(self, group):
        _, prfs = build_prfs(group)
        observer = ThresholdPRF(group, 3, None, prfs[0].verification_keys)
        with pytest.raises(ThresholdError):
            observer.partial_eval(hash_fields("m"))

    def test_observer_can_combine(self, group):
        _, prfs = build_prfs(group)
        observer = ThresholdPRF(group, 3, None, prfs[0].verification_keys)
        msg = hash_fields("m")
        partials = [prf.partial_eval(msg) for prf in prfs[:3]]
        assert observer.combine(msg, partials) == prfs[0].combine(msg, partials)

    def test_distinct_messages_distinct_outputs(self, group):
        _, prfs = build_prfs(group)
        m1, m2 = hash_fields("a"), hash_fields("b")
        p1 = [prf.partial_eval(m1) for prf in prfs[:3]]
        p2 = [prf.partial_eval(m2) for prf in prfs[:3]]
        assert prfs[0].combine(m1, p1) != prfs[0].combine(m2, p2)

    def test_invalid_threshold_rejected(self, group):
        with pytest.raises(ThresholdError):
            ThresholdPRF(group, 0, None, {})


class TestOutputMapping:
    def test_uniform_int_mapping_deterministic(self, group):
        x = group.exp(group.g, 7)
        assert prf_output_to_int(group, x) == prf_output_to_int(group, x)

    def test_distinct_elements_distinct_ints(self, group):
        a = group.exp(group.g, 7)
        b = group.exp(group.g, 8)
        assert prf_output_to_int(group, a) != prf_output_to_int(group, b)
