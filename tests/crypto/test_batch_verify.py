"""Property tests for batch signature verification and the verify memos.

The three guarantees the hot-path overhaul must not bend:

* ``verify_batch`` accepts exactly when every individual verify accepts;
* bisection (``schnorr_batch_invalid`` / ``invalid_in_batch``) pinpoints
  *exactly* the forged entries — Byzantine attribution is unchanged;
* the verify-once memo never caches a negative result and never answers
  across signers, messages, or signature bytes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.crypto.backend import SchnorrBackend
from repro.crypto.group import default_group
from repro.crypto.hashing import hash_fields
from repro.crypto.keys import TrustedDealer
from repro.crypto.memo import VerifiedMemo
from repro.crypto.schnorr import (
    SchnorrSignature,
    _challenge,
    schnorr_batch_invalid,
    schnorr_sign,
    schnorr_verify,
    schnorr_verify_batch,
)

N = 7
GROUP = default_group(256)
CHAINS = TrustedDealer(SystemConfig(n=N, crypto="schnorr", seed=3)).deal()
KEYPAIRS = [chain.keypair for chain in CHAINS]


def _claims(count: int, label: str = "batch"):
    """(pk, digest, signature) claims signed by round-robin replicas."""
    out = []
    for i in range(count):
        kp = KEYPAIRS[i % N]
        digest = hash_fields(label, i)
        out.append((kp.pk, digest, schnorr_sign(GROUP, kp, digest)))
    return out


def _forge(claim, mode=0):
    """Two forgery shapes: a tampered response scalar (mode 0) and a
    negated commitment with the *genuine* response (mode 1).  Mode 1 is
    the small-order attack surface: each such signature fails individual
    verification, but pairs of them cancel in the batch product unless
    the batch subgroup-checks every commitment."""
    pk, digest, sig = claim
    if mode == 0:
        return (pk, digest, SchnorrSignature(R=sig.R, s=(sig.s + 1) % GROUP.q))
    return (pk, digest, SchnorrSignature(R=GROUP.p - sig.R, s=sig.s))


class TestBatchAgainstIndividual:
    @settings(max_examples=25, deadline=None)
    @given(
        count=st.integers(min_value=0, max_value=12),
        forged=st.dictionaries(
            st.integers(min_value=0, max_value=11),
            st.integers(min_value=0, max_value=1),
        ),
    )
    def test_accepts_iff_every_individual_accepts(self, count, forged):
        claims = _claims(count)
        for i, mode in sorted(forged.items()):
            if i < count:
                claims[i] = _forge(claims[i], mode)
        individual = all(schnorr_verify(GROUP, *c) for c in claims)
        assert schnorr_verify_batch(GROUP, claims) == individual

    @settings(max_examples=25, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=12),
        forged=st.dictionaries(
            st.integers(min_value=0, max_value=11),
            st.integers(min_value=0, max_value=1),
        ),
    )
    def test_bisection_pinpoints_exactly_the_forged(self, count, forged):
        claims = _claims(count, "bisect")
        expected = sorted(i for i in forged if i < count)
        for i in expected:
            claims[i] = _forge(claims[i], forged[i])
        assert schnorr_batch_invalid(GROUP, claims) == expected

    def test_empty_batch_is_vacuously_valid(self):
        assert schnorr_verify_batch(GROUP, [])
        assert schnorr_batch_invalid(GROUP, []) == []

    def test_repeated_signer_batches(self):
        kp = KEYPAIRS[0]
        claims = []
        for i in range(6):
            digest = hash_fields("same-signer", i)
            claims.append((kp.pk, digest, schnorr_sign(GROUP, kp, digest)))
        assert schnorr_verify_batch(GROUP, claims)
        claims[4] = _forge(claims[4])
        assert not schnorr_verify_batch(GROUP, claims)
        assert schnorr_batch_invalid(GROUP, claims) == [4]


def _negated_commitment_pair(label):
    """A Byzantine signer's paired forgery: for each message it picks a
    nonce ``k``, publishes the *non-residue* commitment ``R = -g^k``, and
    computes the response against that R with its own secret key.  Each
    signature fails :func:`schnorr_verify` (the equation forces R into the
    subgroup), but because batch coefficients are odd, the two sign flips
    cancel in ``Π R_i^{z_i}`` — so a batch verifier that skips commitment
    membership would accept the pair and attribute nothing."""
    kp = KEYPAIRS[0]
    claims = []
    for i in range(2):
        digest = hash_fields(label, i)
        k = GROUP.scalar_from_hash("attack-nonce", label, i)
        commitment = GROUP.p - GROUP.exp_reduced(GROUP.g, k)  # -g^k
        c = _challenge(GROUP, commitment, kp.pk, digest)
        s = (k + c * kp.sk) % GROUP.q
        claims.append((kp.pk, digest, SchnorrSignature(R=commitment, s=s)))
    return claims


class TestCommitmentMembership:
    """Regression: batch == individual must hold for non-residue commitments."""

    def test_each_half_of_the_pair_fails_individually(self):
        for claim in _negated_commitment_pair("nr-individual"):
            assert not schnorr_verify(GROUP, *claim)

    def test_batch_rejects_the_cancelling_pair(self):
        claims = _negated_commitment_pair("nr-pair")
        assert not schnorr_verify_batch(GROUP, claims)
        assert schnorr_batch_invalid(GROUP, claims) == [0, 1]

    def test_pair_buried_in_valid_claims_is_localized(self):
        claims = _claims(5, "nr-mix") + _negated_commitment_pair("nr-mix")
        assert not schnorr_verify_batch(GROUP, claims)
        assert schnorr_batch_invalid(GROUP, claims) == [5, 6]

    def test_backend_rejects_pair_and_never_poisons_the_memo(self):
        backend = SchnorrBackend(CHAINS[0])
        items = [
            (0, digest, sig)
            for _pk, digest, sig in _negated_commitment_pair("nr-memo")
        ]
        assert not backend.verify_batch(items)
        assert backend.invalid_in_batch(items) == [0, 1]
        # Neither forged claim was cached as verified, so the single-verify
        # path keeps rejecting them — acceptance is not path-dependent.
        for signer, digest, sig in items:
            assert (signer, digest, sig) not in backend._verified
            assert not backend.verify(signer, digest, sig)

    def test_out_of_range_commitment_rejected_without_arithmetic(self):
        backend = SchnorrBackend(CHAINS[0])
        digest = hash_fields("nr-range")
        genuine = schnorr_sign(GROUP, KEYPAIRS[0], digest)
        for bad in (
            SchnorrSignature(R=0, s=genuine.s),
            SchnorrSignature(R=GROUP.p, s=genuine.s),
            SchnorrSignature(R=genuine.R, s=GROUP.q),
        ):
            assert not backend.verify_batch([(0, digest, bad)])
            assert backend.invalid_in_batch([(0, digest, bad)]) == [0]


class TestBackendBatch:
    def _backend(self):
        return SchnorrBackend(CHAINS[0])

    def _items(self, count, label="items"):
        out = []
        for i in range(count):
            signer = i % N
            digest = hash_fields(label, i)
            sig = schnorr_sign(GROUP, KEYPAIRS[signer], digest)
            out.append((signer, digest, sig))
        return out

    def test_verify_batch_true_seeds_memo(self):
        backend = self._backend()
        items = self._items(8)
        assert backend.verify_batch(items)
        for signer, digest, sig in items:
            assert (signer, digest, sig) in backend._verified

    def test_verify_batch_false_on_any_forgery(self):
        backend = self._backend()
        items = self._items(8, "forged")
        signer, digest, sig = items[2]
        items[2] = (signer, digest, SchnorrSignature(R=sig.R, s=(sig.s + 3) % GROUP.q))
        assert not backend.verify_batch(items)
        # The forged claim must not be cached.
        assert (items[2][0], items[2][1], items[2][2]) not in backend._verified

    def test_invalid_in_batch_matches_individual_sweep(self):
        backend = self._backend()
        items = self._items(9, "sweep")
        signer, digest, sig = items[1]
        items[1] = (signer, digest, SchnorrSignature(R=sig.R, s=(sig.s + 1) % GROUP.q))
        items[5] = (99, items[5][1], items[5][2])  # unknown signer
        items[7] = (items[7][0], items[7][1], b"mac-bytes")  # wrong type
        reference = SchnorrBackend(CHAINS[1])
        expected = [
            i for i, it in enumerate(items) if not reference.verify(*it)
        ]
        assert backend.invalid_in_batch(items) == expected == [1, 5, 7]

    def test_batch_with_all_items_cached_short_circuits(self):
        backend = self._backend()
        items = self._items(5, "cached")
        assert backend.verify_batch(items)
        # Second call: everything is memoized; still True.
        assert backend.verify_batch(items)


class TestVerifyOnceMemoSafety:
    def test_negative_results_never_cached(self):
        backend = SchnorrBackend(CHAINS[0])
        digest = hash_fields("neg")
        sig = schnorr_sign(GROUP, KEYPAIRS[1], digest)
        bad = SchnorrSignature(R=sig.R, s=(sig.s + 1) % GROUP.q)
        for _ in range(3):
            assert not backend.verify(1, digest, bad)
        assert len(backend._verified) == 0

    def test_hit_requires_exact_signer(self):
        backend = SchnorrBackend(CHAINS[0])
        digest = hash_fields("cross-signer")
        sig = schnorr_sign(GROUP, KEYPAIRS[1], digest)
        assert backend.verify(1, digest, sig)
        # Same digest+signature claimed by a different signer: a fresh
        # verification (which fails) — never a cache hit.
        assert not backend.verify(2, digest, sig)

    def test_hit_requires_exact_message_and_signature(self):
        backend = SchnorrBackend(CHAINS[0])
        digest = hash_fields("exact")
        sig = schnorr_sign(GROUP, KEYPAIRS[1], digest)
        assert backend.verify(1, digest, sig)
        assert not backend.verify(1, hash_fields("other"), sig)
        assert not backend.verify(
            1, digest, SchnorrSignature(R=sig.R, s=(sig.s + 1) % GROUP.q)
        )

    @settings(max_examples=15, deadline=None)
    @given(tamper=st.integers(min_value=1, max_value=2**31))
    def test_memo_never_flips_a_rejection(self, tamper):
        backend = SchnorrBackend(CHAINS[0])
        digest = hash_fields("flip")
        sig = schnorr_sign(GROUP, KEYPAIRS[1], digest)
        assert backend.verify(1, digest, sig)  # cache the genuine claim
        bad = SchnorrSignature(R=sig.R, s=(sig.s + tamper) % GROUP.q)
        if bad != sig:
            assert not backend.verify(1, digest, bad)

    def test_memo_capacity_bounds_and_fifo_eviction(self):
        memo = VerifiedMemo(capacity=3)
        for key in ("a", "b", "c"):
            memo.add(key)
        assert len(memo) == 3
        memo.add("d")  # evicts "a"
        assert len(memo) == 3
        assert "a" not in memo and "d" in memo and "b" in memo

    def test_memo_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            VerifiedMemo(capacity=0)

    def test_eviction_only_costs_a_reverify(self):
        backend = SchnorrBackend(CHAINS[0], memo_capacity=2)
        digests = [hash_fields("evict", i) for i in range(4)]
        sigs = [schnorr_sign(GROUP, KEYPAIRS[1], d) for d in digests]
        for d, s in zip(digests, sigs):
            assert backend.verify(1, d, s)
        # The oldest claims were evicted; they still verify (slow path).
        for d, s in zip(digests, sigs):
            assert backend.verify(1, d, s)


class TestCoinDedupBeforeVerify:
    def test_duplicate_share_skips_verification(self, monkeypatch):
        from repro.crypto.coin import ThresholdCoin

        coins = [ThresholdCoin(chain) for chain in CHAINS]
        share = coins[1].make_share(7)
        calls = []
        real_verify = ThresholdCoin.verify_share

        def counting_verify(self, s):
            calls.append(1)
            return real_verify(self, s)

        monkeypatch.setattr(ThresholdCoin, "verify_share", counting_verify)
        coins[0].add_share(share)
        assert len(calls) == 1
        coins[0].add_share(share)  # duplicate: dict lookup, no DLEQ check
        assert len(calls) == 1


class TestThresholdVerifyMemo:
    def test_verify_partial_memoized_positive_only(self):
        from repro.crypto.coin import ThresholdCoin

        coins = [ThresholdCoin(chain) for chain in CHAINS]
        share = coins[1].make_share(4)
        prf = coins[0].prf
        message = coins[0]._coin_input(4)
        assert prf.verify_partial(message, share.payload)
        key = (
            share.payload.index,
            message,
            share.payload.value,
            share.payload.proof,
        )
        assert key in prf._verified
        # A tampered proof is rejected and stays out of the memo.
        from repro.crypto.threshold import DleqProof, PartialEval

        forged = PartialEval(
            index=share.payload.index,
            value=share.payload.value,
            proof=DleqProof(
                c=share.payload.proof.c,
                s=(share.payload.proof.s + 1) % GROUP.q,
            ),
        )
        before = len(prf._verified)
        assert not prf.verify_partial(message, forged)
        assert len(prf._verified) == before
