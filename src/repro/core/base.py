"""The shared DAG-consensus engine.

Every protocol in this repository — LightDAG1, LightDAG2, DAG-Rider, Tusk,
Bullshark — is an instance of the same skeleton (§II-B):

1. advance through rounds, proposing one block per round once ``n - f``
   distinct slots of the previous round have been delivered;
2. broadcast each block with some broadcast primitive (the paper's whole
   point is *which* primitive);
3. carry Global-Perfect-Coin shares in each wave's last round; the coin
   names a leader slot in the wave's first round;
4. directly commit a leader once enough later-round blocks reference it,
   then run Algorithm 1's cascade: commit skipped-but-referenced earlier
   leaders, then each leader's uncommitted ancestors in (round, author)
   order.

:class:`BaseDagNode` implements all of that plus the §IV-A retrieval
integration, leaving protocol-specific policy to a small set of hooks
(class attributes for wave shape and commit thresholds; methods for vote
policy, parent filtering, and extra proposal conditions).

Correctness note on cascade determinism: replicas may *directly* commit
different subsets of leaders (support observation is local), but Lemma 1
guarantees directly-committable leaders are totally ordered by ancestry,
so the "walk back to the last committed leader, commit every delivered
leader that is an ancestor" cascade yields the same leader sequence — and
hence the same ledger — everywhere.  After committing wave ``v`` the engine
marks waves ``≤ v`` *settled* and never direct-commits them later (their
leaders were either cascaded in or provably non-committable).
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from typing import Callable, Dict, List, Optional, Set

from ..broadcast.messages import (
    BlockEcho,
    BlockReady,
    BlockVal,
    CoinShareMsg,
    CoinShareRequest,
    RetrievalRequest,
    RetrievalResponse,
)
from ..config import ProtocolConfig, SystemConfig
from ..crypto.backend import CryptoBackend, make_backend
from ..crypto.coin import GlobalPerfectCoin, make_coin
from ..crypto.hashing import Digest, short_hex
from ..crypto.keys import KeyChain
from ..dag.block import Block, EMPTY_BATCH, TxBatch, make_block
from ..dag.ledger import CommitRecord, Ledger
from ..dag.rounds import WaveStructure
from ..dag.store import DagStore
from ..dag.traversal import is_ancestor, uncommitted_ancestors
from ..dag.validation import validate_block_structure
from ..errors import InvalidBlockError, UnknownBlockError
from ..net.interfaces import Message, NetworkAPI, Node
from ..obs import NULL_OBS, Observability
from .retrieval import RETRY_TAG, RetrievalManager

#: Signature of the payload hook: ``payload_source(now) -> TxBatch``.
PayloadSource = Callable[[float], TxBatch]
#: Signature of the commit hook: ``on_commit(record) -> None``.
CommitCallback = Callable[[CommitRecord], None]

#: Timer tag for the deferred-proposal tick (see ``_schedule_advance``).
ADVANCE_TAG = "__advance__"

#: Timer tag for the periodic coin-share recovery check.
COIN_SYNC_TAG = "__coin_sync__"

#: Period of the coin-share recovery check (seconds).
COIN_SYNC_PERIOD = 0.5

#: Silence (no delivery/proposal progress) before a stall re-broadcast,
#: once at least one block has ever been delivered.
STALL_AFTER = 2 * COIN_SYNC_PERIOD

#: More patient threshold before the *first* delivery: a slow first wave
#: (high-latency models, large-n CPU queues) is startup, not a stall, and
#: must not trigger re-broadcast storms at every sync tick.
STALL_STARTUP_GRACE = 8 * COIN_SYNC_PERIOD


class BaseDagNode(Node):
    """Common engine; subclasses define the wave shape and broadcast kind.

    Subclass contract (class attributes)
    ------------------------------------
    WAVE_LENGTH / WAVE_OVERLAP:
        The :class:`~repro.dag.rounds.WaveStructure` parameters.
    SUPPORT_DEPTH:
        Rounds between a wave's first round (the leader round) and the
        round whose references directly commit the leader (1 for
        LightDAG1/Tusk, 3 for DAG-Rider).
    STRICT_STORE:
        Whether a second block in a slot is a fatal violation (True for
        every CBC/RBC protocol; LightDAG2 sets False).

    Subclass contract (methods)
    ---------------------------
    ``_make_managers`` (required), ``_participate`` (required),
    ``_commit_threshold_value``, ``_parent_allowed``,
    ``_can_propose_extra``, ``_after_deliver``, ``_on_other_message``.
    """

    WAVE_LENGTH = 3
    WAVE_OVERLAP = False
    SUPPORT_DEPTH = 1
    STRICT_STORE = True

    #: Attributes the model-checking explorer (:mod:`repro.check.explorer`)
    #: excludes when fingerprinting a replica's state: the immutable
    #: environment (configs, wave geometry, crypto backend, network facade)
    #: and the harness callbacks.  Everything else on the instance is
    #: protocol state and *must* participate in the canonical state hash —
    #: adding an attribute here hides it from revisit pruning, so only list
    #: things that provably cannot influence future behaviour.
    FINGERPRINT_SKIP = frozenset({
        "net", "obs", "system", "protocol", "wave", "backend",
        "payload_source", "on_commit", "on_deliver_hook", "_obs_emit",
    })

    def __init__(
        self,
        net: NetworkAPI,
        system: SystemConfig,
        protocol: ProtocolConfig,
        keychain: KeyChain,
        payload_source: Optional[PayloadSource] = None,
        on_commit: Optional[CommitCallback] = None,
        on_deliver: Optional[Callable[[Block, float], None]] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(net)
        #: optional observation hook fired on every delivery (tracing)
        self.on_deliver_hook = on_deliver
        self.system = system
        self.protocol = protocol
        self.obs = obs if obs is not None else NULL_OBS
        #: pre-bound journal emit for hot paths (None when disabled), so
        #: per-delivery sites pay one attribute read + branch, not three.
        self._obs_emit = self.obs.journal.emit if self.obs.enabled else None
        #: causal tracer (None unless tracing was requested) — same idiom:
        #: span sites pay one attribute read + branch when tracing is off.
        self._trace = self.obs.trace if self.obs.trace.enabled else None
        metrics = self.obs.metrics
        self._ctr_rounds = metrics.counter("core.rounds_advanced")
        self._ctr_delivered = metrics.counter("core.blocks_delivered")
        self._ctr_committed = metrics.counter("core.blocks_committed")
        self._ctr_coin_reveals = metrics.counter("core.coin_reveals")
        self._ctr_coin_requests = metrics.counter("core.coin_share_requests")
        self._ctr_stall_rebroadcasts = metrics.counter("core.stall_rebroadcasts")
        self._ctr_commit_kind = {
            "direct": metrics.counter("core.wave_commits", kind="direct"),
            "cascade": metrics.counter("core.wave_commits", kind="cascade"),
        }
        self.wave = WaveStructure(self.WAVE_LENGTH, overlap=self.WAVE_OVERLAP)
        self.backend: CryptoBackend = make_backend(
            system.crypto, net.node_id, system, keychain
        )
        self.coin: GlobalPerfectCoin = make_coin(system.crypto, keychain, system.seed)
        self.store = DagStore(system.n, strict=self.STRICT_STORE)
        self.ledger = Ledger()
        if self._trace is not None:
            self.ledger.bind_trace(self._trace, net.node_id)
        self.retrieval = RetrievalManager(
            net,
            self.store,
            seed=system.seed,
            enabled=protocol.retrieval_enabled,
            obs=self.obs,
            retry_base=system.retry_base,
            retry_cap=system.retry_cap,
            fanout_after=system.fanout_after,
            fanout_width=system.validity_quorum,
            max_response_blocks=system.max_response_blocks,
        )
        self.payload_source = payload_source or (lambda now: EMPTY_BATCH)
        self.on_commit = on_commit

        self.next_round = 1
        #: Stall-detection clock: time of the last forward progress
        #: (delivery, own proposal, or stall re-broadcast).  ``None`` until
        #: armed — sim start is not a delivery, so the clock only starts
        #: once we have something of our own worth re-broadcasting.
        self._stall_clock: Optional[float] = None
        self._delivered_any = False
        self._my_latest_block: Optional[Block] = None
        self.revealed_leaders: Dict[int, int] = {}
        self.committed_leader_waves: Set[int] = set()
        self.last_settled_wave = 0
        self._deferred_cascades: Set[int] = set()
        #: digest -> round for every authenticated body seen (dedup gate)
        #: and every rejected digest.  Round-stamped so :meth:`_gc_state`
        #: can drop entries below the commit horizon — as plain sets these
        #: grow with total blocks ever seen, which unbounds long runs.
        self._known: Dict[Digest, int] = {}
        self._invalid: Dict[Digest, int] = {}
        self._advance_scheduled = False
        self._sent_share_waves: Set[int] = set()
        #: Highest wave whose coin share we legitimately broadcast; rounds
        #: never skip, so every wave up to here has been sent.  Lets the
        #: share-request responder keep answering for waves whose
        #: ``_sent_share_waves`` entry was garbage-collected.
        self._max_share_wave = 0
        self._quorum = system.quorum
        self._commit_support = self._commit_threshold_value()
        #: per-wave timestamp of the last coin-share recovery request
        self._coin_requested: Dict[int, float] = {}

        # Weak-link bookkeeping (ProtocolConfig.weak_links): blocks already
        # inside our own proposals' ancestry ("covered") vs delivered blocks
        # our chain has never referenced — the weak-reference candidates.
        # Both sets update incrementally: each block enters `_covered` once.
        self._covered: Set[Digest] = {
            self.store.block_in_slot(0, a).digest for a in range(system.n)
        }
        self._uncovered: Dict[Digest, Block] = {}
        if protocol.weak_links and not self.STRICT_STORE:
            from ..errors import ConfigError

            raise ConfigError(
                "weak links require a strict-store protocol (LightDAG2's "
                "Rule 2 assumes previous-round parents)"
            )

        self._make_managers()

    # ------------------------------------------------------------------ hooks

    def _make_managers(self) -> None:
        """Create broadcast manager(s); subclasses must set them up and make
        :meth:`_manager_for_round` resolve correctly."""
        raise NotImplementedError

    def _manager_for_round(self, round_: int):
        """The broadcast manager handling blocks of ``round_``."""
        raise NotImplementedError

    def _broadcast_managers(self) -> tuple:
        """Every broadcast manager this node owns (for GC sweeps).

        Subclasses must return all managers `_manager_for_round` can
        resolve to; the default keeps manager state forever.
        """
        return ()

    def _broadcast_block(self, block: Block) -> None:
        self._manager_for_round(block.round).broadcast(block)

    def _participate(self, block: Block, src: int) -> None:
        """Vote/echo policy, called once a block is structurally valid and
        all its ancestors are delivered (§IV-A gate already passed)."""
        raise NotImplementedError

    def _commit_threshold_value(self) -> int:
        """Support needed in the support round for a direct commit."""
        return self.protocol.resolve_commit_threshold(self.system)

    def _parent_allowed(self, block: Block) -> bool:
        """May ``block`` be chosen as a parent of our next proposal?"""
        return True

    def _can_propose_extra(self, round_: int) -> bool:
        """Additional proposal preconditions (Bullshark's leader wait,
        LightDAG2's coin-reveal wait at wave boundaries)."""
        return True

    def _min_parents(self, block: Block) -> int:
        return self._quorum

    def _after_deliver(self, block: Block) -> None:
        """Protocol-specific reaction to a delivery (before commit checks)."""

    def _on_other_message(self, src: int, msg: Message) -> None:
        """Protocol-specific messages (LightDAG2 notices)."""

    def _build_block(self, round_: int, parents: List[Digest], payload: TxBatch) -> Block:
        """Assemble the outgoing block (LightDAG2 adds proofs/determinations)."""
        return make_block(round_, self.node_id, parents, payload, signer=self.backend)

    # -------------------------------------------------------------- lifecycle

    def on_start(self) -> None:
        self._coin_requested.clear()
        self._stall_clock = None  # disarmed until our first own proposal
        self.net.set_timer(COIN_SYNC_PERIOD, COIN_SYNC_TAG)
        self._try_advance()

    def on_message(self, src: int, msg: Message) -> None:
        if isinstance(msg, BlockVal):
            self._on_block_body(src, msg.block)
        elif isinstance(msg, BlockEcho):
            self._manager_for_round(msg.round).on_echo(src, msg)
        elif isinstance(msg, BlockReady):
            manager = self._manager_for_round(msg.round)
            if hasattr(manager, "on_ready"):  # CBC/PBC protocols ignore READYs
                manager.on_ready(src, msg)
        elif isinstance(msg, CoinShareMsg):
            self._on_coin_share(src, msg)
        elif isinstance(msg, CoinShareRequest):
            # Shares are deterministic per (replica, wave): recompute and
            # answer.  Only waves we have legitimately reached are served —
            # revealing a future wave's share early would hand the
            # adversary coin foreknowledge.  (Past waves stay servable even
            # after their _sent_share_waves entry is pruned — a straggler
            # may still need them.)
            if msg.wave <= self._max_share_wave:
                self.net.send(src, CoinShareMsg(self.coin.make_share(msg.wave)))
        elif isinstance(msg, RetrievalRequest):
            self.retrieval.on_request(src, msg)
        elif isinstance(msg, RetrievalResponse):
            deliveries = list(self.retrieval.on_response(src, msg))
            if len(deliveries) > 1:
                # A chunked response carries many author signatures at
                # once: one randomized batch verification seeds the
                # backend's verify-once memo, so the per-block check in
                # _on_block_body is a set lookup.  A failed batch is
                # simply not cached — the per-block path then localizes
                # and attributes the forgery exactly as without batching.
                self.backend.verify_batch(
                    [
                        (block.author, block.digest, block.signature)
                        for block, _origin in deliveries
                        if block.digest not in self._known
                        and block.digest not in self._invalid
                    ]
                )
            for block, origin in deliveries:
                self._on_block_body(origin, block, retrieved=True)
        else:
            self._on_other_message(src, msg)

    def on_timer(self, tag: str, data=None) -> None:
        if tag == RETRY_TAG:
            self.retrieval.on_retry_timer(data, self._holders_of(data))
        elif tag == ADVANCE_TAG:
            self._advance_scheduled = False
            self._try_advance()
        elif tag == COIN_SYNC_TAG:
            self._coin_sync_check()
            self.net.set_timer(COIN_SYNC_PERIOD, COIN_SYNC_TAG)

    def _schedule_advance(self) -> None:
        """Defer proposing to a zero-delay timer so every delivery arriving
        at the *same simulated instant* is incorporated as a parent before
        the proposal goes out (otherwise the quorum-completing delivery
        systematically orphans its same-timestamp siblings)."""
        if not self._advance_scheduled:
            self._advance_scheduled = True
            self.net.set_timer(0.0, ADVANCE_TAG)

    def _holders_of(self, digest: Digest) -> AbstractSet:
        """Replicas believed to hold a block body (echoers of its digest).

        Implementations return a live read-only view (see
        ``InstanceTracker.echoers_of``) — never mutate the result."""
        return frozenset()

    # -------------------------------------------------------------- accepting

    def _on_block_body(self, src: int, block: Block, retrieved: bool = False) -> None:
        """Entry point for every block body (VAL or digest-pinned retrieval)."""
        if block.digest in self._invalid:
            return
        if block.digest in self._known:
            manager = self._manager_for_round(block.round)
            if not manager.is_delivered(block.digest):
                if retrieved:
                    # A body we saw as a VAL but could not deliver (echo
                    # quorum missing at us) arriving again as a retrieval
                    # response is digest-pinned: deliverable directly (§IV-A).
                    self._try_accept(block, src, retrieved=True)
                else:
                    # Duplicate VAL = a peer's stall-recovery re-broadcast;
                    # refresh our endorsement so lost echoes are replaced,
                    # and treat it as fresh evidence for any abandoned
                    # parent retrievals of this still-parked block.
                    manager.refresh_vote(block)
                    if self.retrieval.is_pending(block.digest):
                        self.retrieval.revive(block.digest)
            return
        if not 0 <= block.author < self.system.n or block.round < 1:
            self._invalid[block.digest] = block.round
            return
        if not self.backend.verify(block.author, block.digest, block.signature):
            self._invalid[block.digest] = block.round
            return
        self._known[block.digest] = block.round
        if self._trace is not None:
            # Carry the parent digests so the analysis layer can walk a
            # committed block's causal ancestry from the journal alone.
            self._trace.emit(
                self.net.now(), "trace.body", self.node_id,
                round=block.round, author=block.author,
                digest=short_hex(block.digest), src=src,
                retrieved=retrieved,
                parents=[short_hex(p) for p in block.parents],
            )
        self._inspect_body(block)
        self._manager_for_round(block.round).on_val(src, block)
        self._try_accept(block, src, retrieved=retrieved)

    def _inspect_body(self, block: Block) -> None:
        """Hook run on every authenticated body before acceptance —
        LightDAG2 harvests embedded Byzantine proofs here."""

    def _try_accept(self, block: Block, src: int, retrieved: bool = False) -> None:
        missing = self.store.missing(block.parents)
        # note_pending returns False when nothing is actually missing (the
        # manager re-filters against the store): fall through and accept —
        # an empty registration could never become ready.
        if missing and self.retrieval.note_pending(
            block, src, missing, retrieved=retrieved
        ):
            return
        self._finish_accept(block, src, retrieved=retrieved)

    def _finish_accept(self, block: Block, src: int, retrieved: bool = False) -> None:
        """All parents delivered: validate structure, then participate."""
        try:
            validate_block_structure(
                block,
                self.store,
                self.system,
                min_parents=self._min_parents(block),
                allow_weak=self.protocol.weak_links,
                max_weak=self.protocol.max_weak_refs,
            )
        except UnknownBlockError:
            # Race: a parent disappeared between checks — re-queue.
            self._try_accept(block, src, retrieved=retrieved)
            return
        except InvalidBlockError:
            self._invalid[block.digest] = block.round
            self.retrieval.drop_pending(block.digest)
            return
        self._participate(block, src)
        manager = self._manager_for_round(block.round)
        if retrieved:
            # Digest-pinned retrieval response: deliver directly, without
            # waiting for an echo/ready quorum we may have missed entirely
            # (the §IV-A catch-up path; see CbcManager.deliver_retrieved).
            manager.deliver_retrieved(block.digest)
        else:
            manager.mark_ready(block.digest)

    # -------------------------------------------------------------- delivery

    def _on_deliver(self, block: Block) -> None:
        """Broadcast-manager callback: the block is delivered (§II-B sense)."""
        if not self.store.add(block):
            return
        now = self.net.now()
        self._stall_clock = now
        self._delivered_any = True
        self._ctr_delivered.inc()
        if self._obs_emit is not None:
            self._obs_emit(
                now, "block.deliver", self.node_id,
                round=block.round, author=block.author,
                digest=short_hex(block.digest),
            )
        if self.on_deliver_hook is not None:
            self.on_deliver_hook(block, now)
        if self.protocol.weak_links and block.digest not in self._covered:
            self._uncovered[block.digest] = block
        self.retrieval.drop_pending(block.digest)
        for dep, src, was_retrieved in self.retrieval.satisfied_by(block.digest):
            if self._trace is not None:
                self._trace.emit(
                    now, "trace.unblocked", self.node_id,
                    digest=short_hex(dep.digest), round=dep.round,
                    author=dep.author, by=short_hex(block.digest),
                )
            self._finish_accept(dep, src, retrieved=was_retrieved)
        self._after_deliver(block)
        self._recheck_commits_for(block)
        self._schedule_advance()

    # -------------------------------------------------------------- proposing

    def _try_advance(self) -> None:
        while self._can_propose(self.next_round):
            self._propose(self.next_round)
            self.next_round += 1

    def _can_propose(self, round_: int) -> bool:
        ready = 0
        for author in self.store.authors_in_round(round_ - 1):
            candidate = self.store.block_in_slot(round_ - 1, author)
            if candidate is not None and self._parent_allowed(candidate):
                ready += 1
        if ready < self._quorum:
            return False
        return self._can_propose_extra(round_)

    def _choose_parents(self, round_: int) -> List[Digest]:
        parents = []
        for author in sorted(self.store.authors_in_round(round_ - 1)):
            candidate = self._parent_in_slot(round_ - 1, author)
            if candidate is not None and self._parent_allowed(candidate):
                parents.append(candidate.digest)
        return parents

    def _parent_in_slot(self, round_: int, author: int) -> Optional[Block]:
        """Which block of a slot to reference (LightDAG2 overrides for its
        Rule-4 determinations)."""
        return self.store.block_in_slot(round_, author)

    def _propose(self, round_: int) -> None:
        parents = self._choose_parents(round_)
        if self.protocol.weak_links:
            parents.extend(self._pick_weak_refs(round_, parents))
            self._mark_covered(parents)
        payload = self.payload_source(self.net.now())
        block = self._build_block(round_, parents, payload)
        self._my_latest_block = block
        # Proposing is forward progress too: (re-)arm the stall clock so
        # detection counts from our first own proposal, never from t=0.
        self._stall_clock = self.net.now()
        self._ctr_rounds.inc()
        if self._obs_emit is not None:
            self._obs_emit(
                self.net.now(), "block.propose", self.node_id,
                round=round_, author=self.node_id,
                digest=short_hex(block.digest), txs=payload.count,
            )
        self._broadcast_block(block)
        self._broadcast_coin_shares(round_)

    def _pick_weak_refs(self, round_: int, strong_parents: List[Digest]) -> List[Digest]:
        """Orphan pickup: reference delivered blocks our chain has never
        covered, oldest first (DAG-Rider weak links)."""
        strong_slots = set()
        for digest in strong_parents:
            parent = self.store.get_optional(digest)
            if parent is not None:
                strong_slots.add(parent.slot)
        candidates = [
            block
            for block in self._uncovered.values()
            if block.round < round_ - 1 and block.slot not in strong_slots
        ]
        candidates.sort(key=lambda b: (b.round, b.author))
        return [b.digest for b in candidates[: self.protocol.max_weak_refs]]

    def _mark_covered(self, parents: List[Digest]) -> None:
        """Fold the new parents' ancestry into the covered set (each block
        is walked exactly once across the node's lifetime)."""
        stack = [d for d in parents if d not in self._covered]
        while stack:
            digest = stack.pop()
            if digest in self._covered:
                continue
            self._covered.add(digest)
            self._uncovered.pop(digest, None)
            block = self.store.get_optional(digest)
            if block is not None:
                stack.extend(
                    p for p in block.parents if p not in self._covered
                )

    def _broadcast_coin_shares(self, round_: int) -> None:
        """Ship the GPC share for every wave whose *last* round this is."""
        for wave_num, e in self.wave.waves_containing(round_):
            if e == self.WAVE_LENGTH and wave_num not in self._sent_share_waves:
                self._sent_share_waves.add(wave_num)
                self._max_share_wave = max(self._max_share_wave, wave_num)
                self.net.broadcast(CoinShareMsg(self.coin.make_share(wave_num)))

    # -------------------------------------------------------------- the coin

    def _on_coin_share(self, src: int, msg: CoinShareMsg) -> None:
        if msg.wave in self.revealed_leaders:
            return
        leader = self.coin.add_share(msg.share)
        if leader is not None:
            self.revealed_leaders[msg.wave] = leader
            self._ctr_coin_reveals.inc()
            if self._obs_emit is not None:
                self._obs_emit(
                    self.net.now(), "coin.reveal", self.node_id,
                    wave=msg.wave, leader=leader,
                )
            self._on_leader_revealed(msg.wave, leader)

    def _coin_sync_check(self) -> None:
        """Coin-share recovery: if blocks prove a wave completed at other
        replicas but we never revealed its coin (missed shares — partition,
        crash window, dropped messages), ask peers to resend theirs.

        Without this, a straggler's commit cascade defers forever on the
        missing reveal (the paper avoids the problem by embedding shares in
        blocks, which retrieval then recovers — see DESIGN.md §3)."""
        horizon = self.store.highest_round()
        now = self.net.now()
        wave_num = self.last_settled_wave + 1
        requested = 0
        while self.wave.last_round(wave_num) <= horizon and requested < 8:
            if wave_num not in self.revealed_leaders:
                last = self._coin_requested.get(wave_num, -1e9)
                if now - last >= 2 * COIN_SYNC_PERIOD:
                    self._coin_requested[wave_num] = now
                    self._ctr_coin_requests.inc()
                    if self._obs_emit is not None:
                        self._obs_emit(
                            now, "coin.recover_request", self.node_id, wave=wave_num
                        )
                    self.net.broadcast(
                        CoinShareRequest(wave_num), include_self=False
                    )
                    requested += 1
            wave_num += 1

        # Stall recovery: if nothing has progressed for a while, some of
        # our outbound traffic may have been lost (partition, drops) —
        # re-broadcast the latest proposal.  Receivers that have it refresh
        # their echoes; receivers that missed it join its broadcast now.
        # The clock arms at our first own proposal (never at sim start),
        # uses a generous grace period until the first-ever delivery, and
        # resets on each re-broadcast so a genuine stall costs one
        # re-broadcast per window, not one per sync tick.
        if self._my_latest_block is not None and self._stall_clock is not None:
            threshold = STALL_AFTER if self._delivered_any else STALL_STARTUP_GRACE
            if now - self._stall_clock > threshold:
                self._stall_clock = now
                self._ctr_stall_rebroadcasts.inc()
                if self._obs_emit is not None:
                    self._obs_emit(
                        now, "stall.rebroadcast", self.node_id,
                        round=self._my_latest_block.round,
                    )
                self._broadcast_block(self._my_latest_block)

    def _on_leader_revealed(self, wave_num: int, leader: int) -> None:
        self._try_direct_commit(wave_num)
        for deferred in sorted(self._deferred_cascades):
            self._try_direct_commit(deferred)
        self._schedule_advance()

    # -------------------------------------------------------------- committing

    def leader_block_of(self, wave_num: int) -> Optional[Block]:
        """The (unique, in strict mode) delivered block in a wave's leader
        slot, or None."""
        leader = self.revealed_leaders.get(wave_num)
        if leader is None:
            return None
        return self.store.block_in_slot(self.wave.first_round(wave_num), leader)

    def _support_round(self, wave_num: int) -> int:
        return self.wave.first_round(wave_num) + self.SUPPORT_DEPTH

    def _recheck_commits_for(self, block: Block) -> None:
        for wave_num, e in self.wave.waves_containing(block.round):
            if e == 1 or e == 1 + self.SUPPORT_DEPTH:
                if wave_num in self.revealed_leaders:
                    self._try_direct_commit(wave_num)

    def _support_count(self, wave_num: int, leader_block: Block) -> int:
        """Distinct-slot blocks in the support round referencing the leader
        within SUPPORT_DEPTH parent hops."""
        count = 0
        for author in self.store.authors_in_round(self._support_round(wave_num)):
            supporter = self.store.block_in_slot(self._support_round(wave_num), author)
            if supporter is not None and self._references_within(
                supporter, leader_block.digest, self.SUPPORT_DEPTH
            ):
                count += 1
        return count

    def _references_within(self, block: Block, target: Digest, depth: int) -> bool:
        """Does ``block`` reach ``target`` in at most ``depth`` parent hops?"""
        frontier = {block.digest}
        for _ in range(depth):
            next_frontier: Set[Digest] = set()
            for digest in frontier:
                holder = self.store.get_optional(digest)
                if holder is None:
                    continue
                for parent in holder.parents:
                    if parent == target:
                        return True
                    next_frontier.add(parent)
            frontier = next_frontier
        return False

    def _try_direct_commit(self, wave_num: int) -> None:
        if (
            wave_num <= self.last_settled_wave
            or wave_num in self.committed_leader_waves
        ):
            self._deferred_cascades.discard(wave_num)
            return
        leader_block = self.leader_block_of(wave_num)
        if leader_block is None:
            return
        if self._support_count(wave_num, leader_block) < self._commit_support:
            return
        self._commit_cascade(wave_num, leader_block)

    def _commit_cascade(self, v: int, leader_v: Block) -> None:
        """Algorithm 1: walk back to the last committed leader, then commit
        every delivered, referenced leader in wave order, then wave ``v``."""
        u = max((w for w in self.committed_leader_waves if w < v), default=0)
        for w in range(u + 1, v):
            if w not in self.revealed_leaders:
                # Cannot yet decide whether wave w's leader must be cascaded
                # in; defer the whole cascade until its coin reveals.
                self._deferred_cascades.add(v)
                return
        self._deferred_cascades.discard(v)
        for w in range(u + 1, v):
            candidate = self._cascade_candidate(w, leader_v)
            if candidate is not None:
                self._commit_leader(candidate, w, kind="cascade")
        self._commit_leader(leader_v, v, kind="direct")
        self.last_settled_wave = max(self.last_settled_wave, v)
        self._maybe_prune()

    def _cascade_candidate(self, w: int, leader_v: Block) -> Optional[Block]:
        """The wave-``w`` leader block to commit indirectly through
        ``leader_v``, or None if the wave must stay skipped (Fig. 5/6)."""
        candidate = self.leader_block_of(w)
        if candidate is not None and is_ancestor(candidate.digest, leader_v, self.store):
            return candidate
        return None

    def _commit_leader(self, leader: Block, wave_num: int, kind: str = "direct") -> None:
        if wave_num in self.committed_leader_waves:
            return
        self.committed_leader_waves.add(wave_num)
        k = self.ledger.begin_leader()
        now = self.net.now()
        journal = self.obs.journal if self.obs.enabled else None
        committed = 0
        for block in self._commit_scope(leader):
            record = self.ledger.append(block, now, leader.digest, k)
            committed += 1
            if journal is not None:
                journal.emit(
                    now, "block.commit", self.node_id,
                    round=block.round, author=block.author,
                    digest=short_hex(block.digest), wave=wave_num,
                )
            if self.on_commit is not None:
                self.on_commit(record)
        self._ctr_commit_kind[kind].inc()
        self._ctr_committed.inc(committed)
        if journal is not None:
            journal.emit(
                now, "wave.commit", self.node_id,
                wave=wave_num, kind=kind, leader=leader.author, blocks=committed,
            )

    def _commit_scope(self, leader: Block) -> List[Block]:
        """The blocks this leader commits: uncommitted ancestors, bounded
        below by the deterministic GC horizon when one is configured.

        The horizon depends only on the leader's round, so every replica
        commits the identical set regardless of local pruning state."""
        gc_depth = self.protocol.gc_depth
        committed = self.ledger.committed_digests
        if gc_depth is None:
            return uncommitted_ancestors(leader, self.store, committed)
        floor = leader.round - gc_depth
        from ..dag.traversal import ancestors_of

        scope = [
            block
            for block in ancestors_of(
                leader,
                self.store,
                stop=lambda b: b.digest in committed or b.round < floor,
            )
            if not block.is_genesis
        ]
        scope.sort(key=lambda b: (b.round, b.author, b.repropose_index))
        return scope

    def _maybe_prune(self) -> None:
        """Physically drop history far below the settled frontier."""
        gc_depth = self.protocol.gc_depth
        if gc_depth is None or self.last_settled_wave < 1:
            return
        horizon = (
            self.wave.first_round(self.last_settled_wave)
            - gc_depth
            - self.WAVE_LENGTH
        )
        if horizon > 1:
            self.store.prune_below(horizon)
            # Retrieval state below the horizon is equally dead: a pending
            # block whose round is being pruned can never be accepted.
            self.retrieval.gc_below(horizon)
            self._gc_state(horizon)

    def _gc_state(self, horizon: int) -> None:
        """Prune per-node bookkeeping below the GC horizon.

        Subclass hook (extensions must call ``super()``): runs right after
        the store/retrieval prune, so anything keyed by a round below
        ``horizon`` — or by a digest no longer in the store — refers to
        history that can never be validated, voted on, or committed again.
        Without this, round-/digest-keyed maps grow without bound on long
        runs even with ``gc_depth`` set.
        """
        # Broadcast-layer state (instance trackers, vote bookkeeping) and
        # the body dedup/reject maps: everything below the horizon belongs
        # to settled waves and can never deliver or vote again.  A
        # straggler message for a pruned digest re-enters through the
        # normal paths (re-verify, empty instance stub) and is re-pruned
        # on the next sweep.
        for manager in self._broadcast_managers():
            manager.gc_below(horizon)
        for mapping in (self._known, self._invalid):
            for digest in [d for d, r in mapping.items() if r < horizon]:
                del mapping[digest]
        if self.protocol.weak_links:
            if self._uncovered:
                stale = [
                    d for d, b in self._uncovered.items() if b.round < horizon
                ]
                for digest in stale:
                    del self._uncovered[digest]
            # _covered holds bare digests (rounds unknown): intersect with
            # the freshly pruned store.  Genesis stays (round 0 is kept).
            self._covered = {d for d in self._covered if d in self.store}
        # Wave-keyed coin/commit bookkeeping: waves strictly below the
        # settled frontier are decided forever.  The frontier wave itself
        # must survive — the cascade anchors on max(committed < v) and the
        # sync check starts at last_settled_wave + 1.
        floor_wave = self.last_settled_wave
        for mapping in (self.revealed_leaders, self._coin_requested):
            for wave_num in [w for w in mapping if w < floor_wave]:
                del mapping[wave_num]
        for wave_set in (self.committed_leader_waves, self._sent_share_waves):
            for wave_num in [w for w in wave_set if w < floor_wave]:
                wave_set.discard(wave_num)
        self._deferred_cascades = {
            w for w in self._deferred_cascades if w >= floor_wave
        }

    # -------------------------------------------------------------- metrics

    @property
    def committed_blocks(self) -> int:
        return len(self.ledger)

    @property
    def current_round(self) -> int:
        return self.next_round - 1
