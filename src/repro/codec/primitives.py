"""Primitive binary encoders/decoders.

A tiny, allocation-conscious writer/reader pair.  All multi-byte integers
that have natural bounds use unsigned LEB128 varints; cryptographic
integers (group elements, scalars) are length-prefixed big-endian so the
encoding is modulus-agnostic; floats are fixed 8-byte IEEE-754.

Decoding is *strict*: any truncation, overlong varint, or trailing
garbage raises :class:`CodecError` — a remote peer must never be able to
desynchronize the stream parser silently.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from ..errors import ReproError

#: Upper bound on any length field (64 MiB) — a malformed or malicious
#: length prefix must not trigger a giant allocation.
MAX_LENGTH = 64 * 1024 * 1024

_DOUBLE = struct.Struct("!d")


class CodecError(ReproError):
    """Malformed wire data."""


class Writer:
    """Append-only binary writer."""

    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

    # -- primitives --------------------------------------------------------

    def byte(self, value: int) -> "Writer":
        if not 0 <= value <= 0xFF:
            raise CodecError(f"byte out of range: {value}")
        self._parts.append(bytes((value,)))
        return self

    def uvarint(self, value: int) -> "Writer":
        if value < 0:
            raise CodecError(f"uvarint cannot encode negative {value}")
        if value >= 1 << 64:
            raise CodecError("uvarint is capped at 64 bits; use bigint")
        out = bytearray()
        while True:
            chunk = value & 0x7F
            value >>= 7
            if value:
                out.append(chunk | 0x80)
            else:
                out.append(chunk)
                break
        self._parts.append(bytes(out))
        return self

    def svarint(self, value: int) -> "Writer":
        """Zigzag-encoded signed varint."""
        zigzag = (value << 1) if value >= 0 else ((-value) << 1) - 1
        return self.uvarint(zigzag)

    def lp_bytes(self, value: bytes) -> "Writer":
        if len(value) > MAX_LENGTH:
            raise CodecError(f"byte string too long: {len(value)}")
        self.uvarint(len(value))
        self._parts.append(value)
        return self

    def lp_str(self, value: str) -> "Writer":
        return self.lp_bytes(value.encode("utf-8"))

    def bigint(self, value: int) -> "Writer":
        """Length-prefixed big-endian unsigned integer (0 encodes as empty)."""
        if value < 0:
            raise CodecError("bigint must be non-negative")
        raw = value.to_bytes((value.bit_length() + 7) // 8, "big") if value else b""
        return self.lp_bytes(raw)

    def double(self, value: float) -> "Writer":
        self._parts.append(_DOUBLE.pack(value))
        return self

    def boolean(self, value: bool) -> "Writer":
        return self.byte(1 if value else 0)

    def optional_bytes(self, value: Optional[bytes]) -> "Writer":
        if value is None:
            return self.byte(0)
        self.byte(1)
        return self.lp_bytes(value)


class Reader:
    """Strict sequential binary reader."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def expect_eof(self) -> None:
        if self.remaining:
            raise CodecError(f"{self.remaining} trailing bytes after message")

    def _take(self, n: int) -> bytes:
        if n > self.remaining:
            raise CodecError(
                f"truncated input: wanted {n} bytes, have {self.remaining}"
            )
        out = self._data[self._pos:self._pos + n]
        self._pos += n
        return out

    # -- primitives --------------------------------------------------------

    def byte(self) -> int:
        return self._take(1)[0]

    def uvarint(self) -> int:
        shift = 0
        result = 0
        while True:
            if shift > 70:
                raise CodecError("varint too long")
            b = self.byte()
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                return result
            shift += 7

    def svarint(self) -> int:
        raw = self.uvarint()
        return (raw >> 1) ^ -(raw & 1)

    def lp_bytes(self) -> bytes:
        length = self.uvarint()
        if length > MAX_LENGTH:
            raise CodecError(f"length prefix too large: {length}")
        return self._take(length)

    def lp_str(self) -> str:
        try:
            return self.lp_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid utf-8: {exc}") from None

    def bigint(self) -> int:
        raw = self.lp_bytes()
        return int.from_bytes(raw, "big") if raw else 0

    def double(self) -> float:
        return _DOUBLE.unpack(self._take(8))[0]

    def boolean(self) -> bool:
        value = self.byte()
        if value not in (0, 1):
            raise CodecError(f"invalid boolean byte {value}")
        return bool(value)

    def optional_bytes(self) -> Optional[bytes]:
        present = self.byte()
        if present == 0:
            return None
        if present != 1:
            raise CodecError(f"invalid optional tag {present}")
        return self.lp_bytes()
