"""Parallel sweep execution: a process-pool harness over ``run_experiment``.

Every evaluation figure (Figs. 12–15), the §VI-B headline comparison, and
the ``repro fuzz`` oracle sweep are dozens-to-hundreds of *independent*
simulated runs; a single CPython process leaves every other core idle.
This module fans a list of :class:`~repro.config.ExperimentConfig`\\ s out
over a pool of **shared-nothing workers**: a config goes in (pickled), an
:class:`~repro.harness.runner.ExperimentResult` comes back, and nothing
else crosses the process boundary.  The generic layer
(:func:`parallel_map`) also backs ``repro explore --jobs``: the explorer
ships choice-prefix subtrees (and hunt-grid cells) to workers the same
shared-nothing way, which is why its sharded state counts are identical
at any job count.

Guarantees:

* **Deterministic ordering** — results come back in input order, whatever
  the completion order was.
* **Seed-for-seed equivalence** — a worker executes the very same
  ``run_experiment(cfg)`` call the serial path would, so ``jobs=N`` output
  is bit-identical to ``jobs=1`` for the same configs
  (``tests/harness/test_parallel.py`` pins this).
* **Failure isolation** — a run that raises is captured as a
  :class:`RunFailure` (traceback + a replay command line) without killing
  the sweep; if a worker *process* dies outright (OOM, segfault), the
  unfinished configs are re-run serially in the parent so no result is
  lost.
* **Live progress** — pass an :class:`~repro.obs.Observability` and each
  completed run is journalled (``sweep.run``) and counted
  (``sweep.runs_completed`` / ``sweep.runs_failed``); a plain callback
  hook serves CLI progress lines.
* **Aggregated telemetry** — ``collect_obs=True`` instruments every run
  inside its worker and merges the per-run metric state and journal
  counts back into the parent's registry/journal
  (:meth:`~repro.obs.MetricsRegistry.merge_state`), so ``--jobs N``
  sweeps report the same aggregate telemetry a serial instrumented loop
  would instead of dropping it.

``jobs=1`` bypasses multiprocessing entirely (same process, same thread),
which keeps ``pdb``, coverage tooling, and full per-run obs
instrumentation (live journals, tracing) working; across the pool
boundary only the compact snapshots travel.

The pool uses the ``fork`` start method when the platform offers it: forked
workers inherit the parent's module state, which lets a *registry* of
protocol-class overrides (e.g. the fuzzer's mutants, or dynamically built
subclasses) reach workers without being picklable.  Where only ``spawn``
exists the registry must be picklable (module-level classes).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..config import ExperimentConfig
from ..errors import SweepError
from ..obs import NULL_OBS, BoundedJournal, MetricsRegistry, Observability
from .runner import ExperimentResult, run_experiment

#: Sentinel for items a time-boxed map never ran (distinct from ``None``).
NOT_RUN = object()


def default_jobs() -> int:
    """CPUs available to this process (the ``--jobs`` default).

    Prefers :func:`os.process_cpu_count` (Python 3.13+, respects CPU
    affinity) and falls back to :func:`os.cpu_count`.
    """
    counter = getattr(os, "process_cpu_count", None)
    count = counter() if counter is not None else os.cpu_count()
    return count or 1


def _pool_context():
    """The multiprocessing context the sweep pool uses (fork-preferred)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# One registry per worker process.  Under ``fork`` it is inherited from the
# parent (set just before the pool is created); under ``spawn`` it arrives
# through the pool initializer (and must therefore be picklable).
_WORKER_REGISTRY: Optional[Dict] = None


def _init_worker(registry: Optional[Dict]) -> None:
    global _WORKER_REGISTRY
    _WORKER_REGISTRY = registry


def _call_worker(payload: Tuple[int, Callable, Any]) -> Tuple[int, Any]:
    """Pool trampoline: apply ``worker(item, registry)`` and tag the index.

    The worker contract is *never raise* — errors are data in the return
    value — so anything escaping here means the worker function itself is
    broken, and the traceback is worth propagating verbatim.
    """
    index, worker, item = payload
    return index, worker(item, _WORKER_REGISTRY)


def parallel_map(
    worker: Callable[[Any, Optional[Dict]], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
    *,
    registry: Optional[Dict] = None,
    time_box: Optional[float] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> Tuple[List[Any], bool]:
    """Ordered ``[worker(item, registry) for item in items]`` over a pool.

    ``worker`` must be a module-level function (picklable by reference)
    that catches its own exceptions and returns a picklable value.
    ``jobs=None`` means :func:`default_jobs`; ``jobs=1`` runs in-process.
    ``time_box`` bounds wall-clock seconds; expired items are left as
    :data:`NOT_RUN` and the returned flag is True.  ``on_result`` fires in
    the parent as each result lands (completion order).

    A dead worker process (the pool's ``BrokenProcessPool``) does not lose
    work: every unfinished item is re-run serially in the parent.
    """
    items = list(items)
    total = len(items)
    results: List[Any] = [NOT_RUN] * total
    if total == 0:
        return results, False
    n_jobs = default_jobs() if jobs is None or jobs <= 0 else jobs
    n_jobs = min(n_jobs, total)
    deadline = None if time_box is None else time.monotonic() + time_box

    def expired() -> bool:
        return deadline is not None and time.monotonic() >= deadline

    if n_jobs <= 1:
        for i, item in enumerate(items):
            if expired():
                return results, True
            results[i] = worker(item, registry)
            if on_result is not None:
                on_result(i, results[i])
        return results, False

    global _WORKER_REGISTRY
    _WORKER_REGISTRY = registry  # inherited by forked workers
    timed_out = False
    try:
        executor = ProcessPoolExecutor(
            max_workers=n_jobs,
            mp_context=_pool_context(),
            initializer=_init_worker,
            initargs=(registry,),
        )
        try:
            pending = {
                executor.submit(_call_worker, (i, worker, item))
                for i, item in enumerate(items)
            }
            broken = None
            while pending:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    timed_out = True
                    break
                done, pending = wait(
                    pending, timeout=remaining, return_when=FIRST_COMPLETED
                )
                if not done:
                    timed_out = True
                    break
                for future in done:
                    try:
                        index, value = future.result()
                    except Exception as exc:  # worker process died
                        broken = exc
                        continue
                    results[index] = value
                    if on_result is not None:
                        on_result(index, value)
                if broken is not None:
                    break
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
    finally:
        _WORKER_REGISTRY = None

    if not timed_out:
        # Pool died mid-sweep (or results were lost with it): finish the
        # stragglers in-process so one bad run cannot eat its neighbours.
        for i, item in enumerate(items):
            if results[i] is NOT_RUN:
                if expired():
                    timed_out = True
                    break
                results[i] = worker(item, registry)
                if on_result is not None:
                    on_result(i, results[i])
    return results, timed_out


# --------------------------------------------------------------- sweep layer


@dataclass(frozen=True)
class RunFailure:
    """One failed run of a sweep, with everything needed to replay it."""

    index: int
    config: ExperimentConfig
    error_type: str
    error: str
    traceback: str

    def replay_command(self) -> str:
        """A CLI invocation reproducing this run exactly."""
        cfg = self.config
        parts = [
            "python -m repro run",
            f"--protocol {cfg.protocol_name}",
            f"-n {cfg.system.n}",
            f"--batch {cfg.protocol.batch_size}",
            f"--duration {cfg.duration:g}",
            f"--warmup {cfg.warmup:g}",
            f"--seed {cfg.seed}",
            f"--crypto {cfg.system.crypto}",
            f"--check-level {cfg.check_level}",
        ]
        if cfg.adversary_name != "none":
            parts.append(f"--adversary '{cfg.adversary_name}'")
        return " ".join(parts)

    def describe(self) -> str:
        return f"{self.error_type}: {self.error}\n  replay: {self.replay_command()}"


@dataclass
class SweepResult:
    """Outcome of :func:`run_sweep`: ordered results plus captured failures."""

    results: List[Optional[ExperimentResult]]
    failures: List[RunFailure] = field(default_factory=list)
    jobs: int = 1
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def require(self) -> List[ExperimentResult]:
        """All results, or :class:`~repro.errors.SweepError` if any failed."""
        if self.failures:
            summary = "; ".join(
                f"run {f.index} ({f.config.protocol_name}, n={f.config.system.n}, "
                f"seed={f.config.seed}): {f.error_type}: {f.error}"
                for f in self.failures[:3]
            )
            more = len(self.failures) - 3
            if more > 0:
                summary += f"; … and {more} more"
            raise SweepError(
                f"{len(self.failures)} of {len(self.results)} sweep runs "
                f"failed: {summary}",
                failures=self.failures,
            )
        return list(self.results)


def _experiment_worker(
    item: Tuple[Any, ...], registry: Optional[Dict]
) -> Tuple[Any, ...]:
    """Shared-nothing unit of sweep work: config in, result (or error) out.

    ``item`` is ``(config, check_level)`` or ``(config, check_level,
    collect_obs)``.  With ``collect_obs`` true the run is instrumented in
    the worker and a compact, picklable obs snapshot (full metric state +
    journal event counts) travels back as a third tuple element — the
    parent folds it into the sweep-level registry via
    :meth:`~repro.obs.MetricsRegistry.merge_state`, which is what makes
    ``--jobs N`` sweeps aggregate per-run telemetry instead of dropping
    it.
    """
    cfg, check_level = item[0], item[1]
    collect = bool(item[2]) if len(item) > 2 else False
    try:
        if not collect:
            return True, run_experiment(
                cfg, check_level=check_level, registry=registry
            )
        # A 1-slot ring still counts every event incrementally — per-run
        # journal *counts* cross the pool boundary, not the event bodies.
        run_obs = Observability(MetricsRegistry(), BoundedJournal(max_events=1))
        result = run_experiment(
            cfg, obs=run_obs, check_level=check_level, registry=registry
        )
        result.obs = None  # the snapshot below crosses the boundary instead
        snapshot = {
            "metrics": run_obs.metrics.dump_state(),
            "journal_counts": run_obs.journal.counts_by_type(),
            "journal_events": run_obs.journal.emitted_total,
        }
        return True, result, snapshot
    except Exception as exc:
        return False, (type(exc).__name__, str(exc), traceback.format_exc())


def run_sweep(
    configs: Sequence[ExperimentConfig],
    jobs: Optional[int] = None,
    *,
    check_level: Optional[str] = None,
    registry: Optional[Dict] = None,
    obs: Optional[Observability] = None,
    collect_obs: bool = False,
    progress: Optional[Callable[[int, int, ExperimentConfig, bool], None]] = None,
) -> SweepResult:
    """Run every config (``jobs`` at a time) and collect ordered results.

    ``check_level`` / ``registry`` are forwarded to every
    :func:`~repro.harness.runner.run_experiment` call.  ``obs`` instruments
    the *sweep* (progress journal + completion counters).  With
    ``collect_obs=True`` each worker additionally instruments its *run*
    and ships a metrics/journal snapshot back; the parent merges every
    run's metric state into ``obs.metrics`` (counters add, histograms
    fold bucket-wise — see :meth:`~repro.obs.MetricsRegistry.merge_state`)
    and journals one ``sweep.run_obs`` event per run with its journal
    event counts, so ``--jobs N`` aggregates the same telemetry a serial
    instrumented loop would.
    ``progress(done, total, config, ok)`` fires per completed run.

    Failures never kill the sweep: each is captured as a
    :class:`RunFailure` and the corresponding results slot stays ``None``.
    Call :meth:`SweepResult.require` to turn failures into a
    :class:`~repro.errors.SweepError`.
    """
    configs = list(configs)
    obs = obs if obs is not None else NULL_OBS
    n_jobs = default_jobs() if jobs is None or jobs <= 0 else jobs
    n_jobs = min(n_jobs, len(configs)) if configs else 1
    started = time.perf_counter()
    done_count = 0

    completed_c = obs.metrics.counter("sweep.runs_completed")
    failed_c = obs.metrics.counter("sweep.runs_failed")

    def note(index: int, outcome: Tuple[bool, Any]) -> None:
        nonlocal done_count
        done_count += 1
        ok = outcome[0]
        cfg = configs[index]
        if obs.enabled:
            (completed_c if ok else failed_c).inc()
            obs.journal.emit(
                time.perf_counter() - started, "sweep.run", -1,
                index=index, protocol=cfg.protocol_name, n=cfg.system.n,
                seed=cfg.seed, ok=ok, done=done_count, total=len(configs),
            )
        if progress is not None:
            progress(done_count, len(configs), cfg, ok)

    outcomes, _ = parallel_map(
        _experiment_worker,
        [(cfg, check_level, collect_obs) for cfg in configs],
        n_jobs,
        registry=registry,
        on_result=note,
    )

    results: List[Optional[ExperimentResult]] = []
    failures: List[RunFailure] = []
    merge_metrics = collect_obs and obs.metrics.enabled
    for index, outcome in enumerate(outcomes):
        ok, payload = outcome[0], outcome[1]
        if ok:
            results.append(payload)
            if len(outcome) > 2 and outcome[2] is not None:
                snapshot = outcome[2]
                if merge_metrics:
                    obs.metrics.merge_state(snapshot["metrics"])
                if obs.journal.enabled:
                    obs.journal.emit(
                        time.perf_counter() - started, "sweep.run_obs", -1,
                        index=index,
                        journal_events=snapshot["journal_events"],
                        counts=snapshot["journal_counts"],
                    )
        else:
            results.append(None)
            error_type, error, tb = payload
            failures.append(
                RunFailure(
                    index=index,
                    config=configs[index],
                    error_type=error_type,
                    error=error,
                    traceback=tb,
                )
            )
    return SweepResult(
        results=results,
        failures=failures,
        jobs=n_jobs,
        elapsed=time.perf_counter() - started,
    )
