"""Workload generation and measurement.

* :mod:`repro.workload.txgen` — open-loop transaction arrival modeling and
  the per-replica mempool that turns arrivals into block payloads.
* :mod:`repro.workload.metrics` — commit-side measurement: throughput
  (committed transactions per second) and latency ("the time taken by a
  transaction to be committed from the moment it is proposed", §VI-A).
* :mod:`repro.workload.clients` — end-to-end client populations: open- and
  closed-loop traffic (Poisson/bursty/diurnal arrivals, Zipf-skewed
  SET/GET/DEL/CAS mixes) driving the :mod:`repro.smr` service, with
  client-observed latency percentiles.
* :mod:`repro.workload.admission` — mempool admission control and
  backpressure: bounded queues, reject/shed policies, per-client caps.
"""

from .admission import AdmissionConfig, AdmissionController, make_admission
from .clients import (
    ARRIVAL_KINDS,
    BurstyArrivals,
    ClientPopulation,
    ClientStats,
    DiurnalArrivals,
    OpMix,
    PoissonArrivals,
    WorkloadSpec,
    ZipfKeys,
    make_arrivals,
)
from .metrics import LatencyStats, MetricsCollector
from .txgen import Mempool

__all__ = [
    "ARRIVAL_KINDS",
    "AdmissionConfig",
    "AdmissionController",
    "BurstyArrivals",
    "ClientPopulation",
    "ClientStats",
    "DiurnalArrivals",
    "LatencyStats",
    "Mempool",
    "MetricsCollector",
    "OpMix",
    "PoissonArrivals",
    "WorkloadSpec",
    "ZipfKeys",
    "make_admission",
    "make_arrivals",
]
