"""Tests for the DAG-Rider / Tusk / Bullshark baselines.

Each baseline must (a) make progress and commit, (b) keep all replicas'
ledgers prefix-consistent, (c) exhibit its Table I wave shape, and
(d) survive crash-f.  Bullshark additionally has the leader-wait path.
"""

import pytest

from repro.baselines.bullshark import BullsharkNode
from repro.baselines.dagrider import DagRiderNode
from repro.baselines.tusk import TuskNode
from repro.config import ProtocolConfig, SystemConfig
from repro.crypto.keys import TrustedDealer
from repro.dag.ledger import check_prefix_consistency
from repro.net.latency import FixedLatency, UniformLatency
from repro.net.simulator import Simulation

ALL = [DagRiderNode, TuskNode, BullsharkNode]


def build_sim(node_cls, n=4, latency=None, seed=1, adversary=None):
    system = SystemConfig(n=n, crypto="hmac", seed=seed)
    protocol = ProtocolConfig(batch_size=10)
    chains = TrustedDealer(
        system, coin_threshold=protocol.resolve_coin_threshold(system)
    ).deal()

    def factory(i):
        return lambda net: node_cls(net, system, protocol, chains[i])

    return Simulation(
        [factory(i) for i in range(n)],
        latency_model=latency or FixedLatency(0.05),
        adversary=adversary,
        seed=seed,
    )


@pytest.mark.parametrize("node_cls", ALL)
class TestCommonBehaviour:
    def test_progress_and_safety(self, node_cls):
        sim = build_sim(node_cls)
        sim.run(until=4.0)
        check_prefix_consistency([n.ledger for n in sim.nodes])
        assert all(len(n.ledger) > 10 for n in sim.nodes)

    def test_jittered_network(self, node_cls):
        sim = build_sim(node_cls, latency=UniformLatency(0.01, 0.1), seed=3)
        sim.run(until=5.0)
        check_prefix_consistency([n.ledger for n in sim.nodes])
        assert all(len(n.ledger) > 0 for n in sim.nodes)

    def test_crash_f_liveness(self, node_cls):
        sim = build_sim(node_cls, seed=2)
        sim.crash(3)
        sim.run(until=6.0)
        alive = sim.nodes[:3]
        check_prefix_consistency([n.ledger for n in alive])
        assert all(len(n.ledger) > 5 for n in alive)

    def test_deterministic(self, node_cls):
        a = build_sim(node_cls, seed=4)
        a.run(until=2.0)
        b = build_sim(node_cls, seed=4)
        b.run(until=2.0)
        assert a.nodes[0].ledger.digest_sequence() == b.nodes[0].ledger.digest_sequence()


class TestWaveShapes:
    def test_dagrider_four_round_waves(self):
        sim = build_sim(DagRiderNode)
        node = sim.nodes[0]
        assert node.WAVE_LENGTH == 4 and not node.WAVE_OVERLAP
        assert node.SUPPORT_DEPTH == 3
        assert node._commit_support == 3  # 2f+1

    def test_tusk_three_round_waves(self):
        sim = build_sim(TuskNode)
        node = sim.nodes[0]
        assert node.WAVE_LENGTH == 3 and node.SUPPORT_DEPTH == 1
        assert node._commit_support == 2  # f+1

    def test_bullshark_two_round_units(self):
        sim = build_sim(BullsharkNode)
        node = sim.nodes[0]
        assert node.WAVE_LENGTH == 2 and node.SUPPORT_DEPTH == 1
        assert node._commit_support == 3  # 2f+1

    def test_rbc_rounds_slower_than_cbc(self):
        """3 steps per round: at 0.05s latency, ~6-7 rounds/s."""
        sim = build_sim(TuskNode)
        sim.run(until=3.0)
        assert 15 <= sim.nodes[0].current_round <= 22


class TestBullsharkSpecifics:
    def test_leaders_predefined_and_shared(self):
        a = build_sim(BullsharkNode, seed=5)
        a.run(until=2.0)
        b = build_sim(BullsharkNode, seed=5)
        b.run(until=2.0)
        assert a.nodes[0].revealed_leaders == b.nodes[0].revealed_leaders
        assert a.nodes[0].revealed_leaders == a.nodes[1].revealed_leaders

    def test_no_coin_messages(self):
        from repro.broadcast.messages import CoinShareMsg

        system = SystemConfig(n=4, crypto="hmac", seed=1)
        protocol = ProtocolConfig(batch_size=10)
        chains = TrustedDealer(system).deal()
        seen = []

        class Spy(BullsharkNode):
            def on_message(self, src, msg):
                if isinstance(msg, CoinShareMsg):
                    seen.append(msg)
                super().on_message(src, msg)

        sim = Simulation(
            [lambda net, i=i: Spy(net, system, protocol, chains[i]) for i in range(4)],
            latency_model=FixedLatency(0.05),
            seed=1,
        )
        sim.run(until=2.0)
        assert seen == []

    def test_leader_wait_timer_on_missing_leader(self):
        """With the perpetual leader crashed, replicas burn the timeout
        each wave but still advance (the pessimistic path)."""
        sim = build_sim(BullsharkNode, seed=2)
        victim = sim.nodes[0].predefined_leader(1)
        sim.crash(victim)
        sim.run(until=6.0)
        alive = [n for i, n in enumerate(sim.nodes) if i != victim]
        assert all(n.current_round >= 3 for n in alive)
        check_prefix_consistency([n.ledger for n in alive])

    def test_commits_every_two_rounds_in_synchrony(self):
        sim = build_sim(BullsharkNode)
        sim.run(until=4.0)
        node = sim.nodes[0]
        committed = node.committed_leader_waves
        # Nearly every 2-round wave commits when the network is friendly.
        assert len(committed) >= node.current_round // 2 - 3
