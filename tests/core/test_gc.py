"""Tests for DAG garbage collection (ProtocolConfig.gc_depth)."""

import pytest

from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag1 import LightDag1Node
from repro.core.lightdag2 import LightDag2Node
from repro.crypto.keys import TrustedDealer
from repro.dag.ledger import check_prefix_consistency
from repro.dag.store import DagStore
from repro.errors import ConfigError
from repro.net.latency import FixedLatency, UniformLatency
from repro.net.simulator import Simulation

from ..dag.helpers import grow_chain


def build_sim(node_cls=LightDag1Node, gc_depth=None, n=4, seed=1, latency=None):
    system = SystemConfig(n=n, crypto="hmac", seed=seed)
    protocol = ProtocolConfig(batch_size=5, gc_depth=gc_depth)
    chains = TrustedDealer(
        system, coin_threshold=protocol.resolve_coin_threshold(system)
    ).deal()
    return Simulation(
        [
            (lambda net, i=i: node_cls(net, system, protocol, chains[i]))
            for i in range(n)
        ],
        latency_model=latency or FixedLatency(0.05),
        seed=seed,
    )


class TestStorePrune:
    def test_prune_removes_old_rounds(self):
        store = DagStore(n=4)
        grow_chain(store, rounds=10, n=4)
        removed = store.prune_below(6)
        assert removed == 5 * 4
        assert store.lowest_retained_round() == 6
        assert store.round_author_count(5) == 0
        assert store.round_author_count(6) == 4

    def test_genesis_survives(self):
        store = DagStore(n=4)
        grow_chain(store, rounds=3, n=4)
        store.prune_below(10)
        assert store.round_author_count(0) == 4

    def test_prune_idempotent(self):
        store = DagStore(n=4)
        grow_chain(store, rounds=5, n=4)
        store.prune_below(4)
        assert store.prune_below(4) == 0

    def test_traversal_tolerates_pruned_parents(self):
        from repro.dag.traversal import ancestors_of

        store = DagStore(n=4)
        grow_chain(store, rounds=6, n=4)
        tip = store.block_in_slot(6, 0)
        store.prune_below(4)
        reachable = list(ancestors_of(tip, store))
        assert all(b.round >= 4 for b in reachable if not b.is_genesis)


class TestGcConfig:
    def test_too_small_depth_rejected(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(gc_depth=2)

    def test_none_keeps_everything(self):
        sim = build_sim(gc_depth=None)
        sim.run(until=4.0)
        node = sim.nodes[0]
        assert node.store.lowest_retained_round() == 1


class TestGcEndToEnd:
    @pytest.mark.parametrize("node_cls", [LightDag1Node, LightDag2Node])
    def test_store_bounded(self, node_cls):
        sim = build_sim(node_cls=node_cls, gc_depth=10)
        sim.run(until=8.0)
        node = sim.nodes[0]
        rounds_reached = node.current_round
        assert rounds_reached > 40
        retained = rounds_reached - node.store.lowest_retained_round()
        assert retained < 30  # bounded window, not full history
        assert len(node.store) < 30 * 5

    def test_gc_preserves_safety(self):
        sim = build_sim(gc_depth=10, latency=UniformLatency(0.02, 0.08), seed=5)
        sim.run(until=8.0)
        check_prefix_consistency([n.ledger for n in sim.nodes])
        assert all(len(n.ledger) > 50 for n in sim.nodes)

    def test_gc_and_no_gc_commit_identically_in_steady_state(self):
        """With a generous depth nothing is ever actually cut — the ledgers
        must be byte-identical to a run without GC."""
        with_gc = build_sim(gc_depth=50, seed=3)
        with_gc.run(until=5.0)
        without = build_sim(gc_depth=None, seed=3)
        without.run(until=5.0)
        assert (
            with_gc.nodes[0].ledger.digest_sequence()
            == without.nodes[0].ledger.digest_sequence()
        )

    def test_gc_safety_with_laggard(self):
        """A replica whose messages crawl still agrees on the prefix — the
        deterministic commit horizon keeps commit sets identical even when
        pruning states differ."""
        from repro.adversary.delay import TargetedDelayAdversary
        from repro.net.simulator import Simulation
        from repro.crypto.keys import TrustedDealer

        system = SystemConfig(n=4, crypto="hmac", seed=2)
        protocol = ProtocolConfig(batch_size=5, gc_depth=12)
        chains = TrustedDealer(system).deal()
        slow_to_3 = TargetedDelayAdversary(
            predicate=lambda s, d, m: d == 3, delay=0.4, seed=2
        )
        sim = Simulation(
            [
                (lambda net, i=i: LightDag1Node(net, system, protocol, chains[i]))
                for i in range(4)
            ],
            latency_model=FixedLatency(0.05),
            adversary=slow_to_3,
            seed=2,
        )
        sim.run(until=10.0)
        check_prefix_consistency([n.ledger for n in sim.nodes])
        assert len(sim.nodes[3].ledger) > 0
