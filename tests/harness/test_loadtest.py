"""Tests for repro.harness.loadtest: the end-to-end load measurement loop."""

import json
import math

import pytest

from repro.errors import ConfigError
from repro.harness.loadtest import LoadtestConfig, run_loadtest, run_loadtest_sweep
from repro.workload.admission import AdmissionConfig
from repro.workload.clients import WorkloadSpec


def _cfg(**kwargs):
    defaults = dict(
        n=4,
        batch_size=16,
        duration=5.0,
        warmup=1.0,
        seed=2,
        workload=WorkloadSpec(clients=10, mode="closed", seed=2),
        admission=AdmissionConfig(max_pending=256),
    )
    defaults.update(kwargs)
    return LoadtestConfig(**defaults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            _cfg(duration=0.0)
        with pytest.raises(ConfigError):
            _cfg(warmup=5.0)  # == duration

    def test_with_rate_replaces_workload_rate(self):
        cfg = _cfg(workload=WorkloadSpec(mode="open", rate=100.0))
        assert cfg.with_rate(250.0).workload.rate == 250.0
        assert cfg.workload.rate == 100.0  # original untouched


class TestRunLoadtest:
    def test_closed_loop_end_to_end(self):
        result = run_loadtest(_cfg())
        assert result.completed > 0
        assert result.verify_failures == 0
        # The headline invariant the summary prints side by side: client
        # latency pays admission queueing on top of the consensus path.
        assert result.e2e_mean_s >= result.consensus_mean_s - 1e-9
        assert result.e2e_tps > 0 and result.consensus_tps > 0

    def test_deterministic(self):
        a = run_loadtest(_cfg())
        b = run_loadtest(_cfg())
        assert a.row() == b.row()
        assert a.e2e_p999_s == b.e2e_p999_s

    def test_overload_shows_knee_with_bounded_queue(self):
        """Offered load far past capacity: latency rises, the queue stays
        pinned at the admission cap, and the overflow is counted."""
        under = run_loadtest(_cfg(
            workload=WorkloadSpec(clients=20, mode="open", rate=100.0, seed=3),
            admission=AdmissionConfig(max_pending=256),
            duration=6.0,
        ))
        over = run_loadtest(_cfg(
            workload=WorkloadSpec(clients=20, mode="open", rate=4000.0, seed=3),
            admission=AdmissionConfig(max_pending=256),
            duration=6.0,
        ))
        assert under.rejected == 0
        assert over.rejected > 0                       # drops are visible
        assert over.max_pending_depth <= 256           # memory bounded
        assert over.e2e_p50_s > 2 * under.e2e_p50_s    # the knee
        # Consensus-side latency stays flat: the pile-up is in the queue.
        assert over.consensus_mean_s < 2 * under.consensus_mean_s

    def test_admission_obs_counters_populated(self):
        result = run_loadtest(_cfg(
            workload=WorkloadSpec(clients=20, mode="open", rate=4000.0, seed=4),
            admission=AdmissionConfig(max_pending=64),
        ))
        assert result.obs_counters["smr.admitted"] > 0
        assert result.obs_counters["smr.rejected"] == result.rejected
        assert result.admission["max_depth"] >= result.max_pending_depth

    def test_unbounded_admission_still_runs(self):
        result = run_loadtest(_cfg(admission=AdmissionConfig()))
        assert result.completed > 0
        assert result.rejected == 0


class TestSweep:
    def test_sweep_orders_results_and_serial_parallel_agree(self):
        base = _cfg(
            workload=WorkloadSpec(clients=10, mode="open", rate=1.0, seed=5),
            duration=4.0,
        )
        configs = [base.with_rate(r) for r in (100.0, 300.0)]
        serial = run_loadtest_sweep(configs, jobs=1)
        parallel = run_loadtest_sweep(configs, jobs=2)
        assert [r.offered_rate for r in serial] == [100.0, 300.0]
        assert [r.row() for r in serial] == [r.row() for r in parallel]


class TestReporting:
    def test_summary_prints_both_planes(self):
        from repro.analysis.loadreport import format_load_summary

        result = run_loadtest(_cfg())
        text = format_load_summary(result)
        assert "Consensus TPS:" in text
        assert "Consensus latency:" in text
        assert "End-to-end TPS:" in text
        assert "End-to-end latency:" in text
        assert "p999" in text

    def test_json_round_trips_without_nan(self):
        from repro.analysis.loadreport import loadtest_results_to_json

        result = run_loadtest(_cfg())
        payload = json.loads(loadtest_results_to_json([result]))
        assert payload[0]["e2e"]["p99_s"] == pytest.approx(result.e2e_p99_s)
        assert payload[0]["config"]["protocol"] == "lightdag2"
        # NaN (empty-sample stats) must serialize as null, not break JSON.
        empty = run_loadtest(_cfg(duration=0.5, warmup=0.0))
        json.loads(loadtest_results_to_json([empty]))

    def test_figure_marks_dropping_points(self):
        from repro.analysis.loadreport import render_saturation_figure

        results = [
            run_loadtest(_cfg(
                workload=WorkloadSpec(clients=10, mode="open", rate=r, seed=6),
                admission=AdmissionConfig(max_pending=32),
                duration=4.0,
            ))
            for r in (100.0, 4000.0)
        ]
        figure = render_saturation_figure(results)
        assert "#" in figure and "*" in figure and "c" in figure
        assert "!" in figure  # the overloaded point dropped work

    def test_figure_handles_empty_results(self):
        from repro.analysis.loadreport import render_saturation_figure

        assert "no finite latency" in render_saturation_figure([])


def test_saturation_sweep_wrapper():
    from repro.harness.experiments import saturation_sweep

    results = saturation_sweep(
        rates=(150.0,), clients=10, duration=4.0, warmup=1.0,
        batch_size=16, seed=7, jobs=1,
    )
    assert len(results) == 1
    assert results[0].offered_rate == 150.0
    assert math.isfinite(results[0].e2e_p50_s)
