"""Tests for repro.crypto.shamir: secret sharing and Lagrange interpolation."""

import random
from itertools import combinations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.shamir import (
    ShamirShare,
    lagrange_at_zero,
    recover_secret,
    split_secret,
    verify_share_consistency,
)
from repro.errors import ThresholdError

MODULUS = 0x6DCA0D4AB919E36C1DEF7710F6AC5EEC304A4C9E8391F14EC30842C47672A86D


class TestSplitRecover:
    def test_roundtrip(self):
        rng = random.Random(1)
        secret = 123456789
        shares = split_secret(secret, threshold=3, num_shares=5, modulus=MODULUS, rng=rng)
        assert recover_secret(shares[:3], MODULUS) == secret

    def test_any_threshold_subset_recovers(self):
        rng = random.Random(2)
        secret = 42
        shares = split_secret(secret, 3, 6, MODULUS, rng)
        for combo in combinations(shares, 3):
            assert recover_secret(combo, MODULUS) == secret

    def test_share_points_are_one_based(self):
        rng = random.Random(3)
        shares = split_secret(9, 2, 4, MODULUS, rng)
        assert [s.x for s in shares] == [1, 2, 3, 4]

    def test_threshold_one_means_every_share_is_secret(self):
        rng = random.Random(4)
        shares = split_secret(77, 1, 3, MODULUS, rng)
        for share in shares:
            assert share.y == 77

    def test_fewer_than_threshold_does_not_recover(self):
        # Not a secrecy proof, just a sanity check that t-1 points give a
        # different polynomial evaluation than the real secret.
        rng = random.Random(5)
        secret = 31337
        shares = split_secret(secret, 3, 5, MODULUS, rng)
        assert recover_secret(shares[:2], MODULUS) != secret

    def test_zero_secret(self):
        rng = random.Random(6)
        shares = split_secret(0, 2, 4, MODULUS, rng)
        assert recover_secret(shares[-2:], MODULUS) == 0

    def test_invalid_threshold_rejected(self):
        rng = random.Random(7)
        with pytest.raises(ThresholdError):
            split_secret(1, 0, 4, MODULUS, rng)
        with pytest.raises(ThresholdError):
            split_secret(1, 5, 4, MODULUS, rng)

    def test_unreduced_secret_rejected(self):
        rng = random.Random(8)
        with pytest.raises(ThresholdError):
            split_secret(MODULUS, 2, 4, MODULUS, rng)


class TestLagrange:
    def test_coefficients_sum_property(self):
        # For the constant polynomial P(x)=c, sum of lambda_j * c must be c,
        # hence sum of coefficients must be 1.
        lam = lagrange_at_zero([1, 2, 3], MODULUS)
        assert sum(lam.values()) % MODULUS == 1

    def test_duplicate_points_rejected(self):
        with pytest.raises(ThresholdError):
            lagrange_at_zero([1, 1, 2], MODULUS)

    def test_zero_point_rejected(self):
        with pytest.raises(ThresholdError):
            lagrange_at_zero([0, 1], MODULUS)

    def test_interpolates_known_polynomial(self):
        # P(x) = 5 + 2x over the modulus; P(0) = 5.
        points = [2, 7]
        lam = lagrange_at_zero(points, MODULUS)
        total = sum(lam[x] * ((5 + 2 * x) % MODULUS) for x in points) % MODULUS
        assert total == 5


class TestConsistencyAudit:
    def test_consistent_shares_pass(self):
        rng = random.Random(9)
        shares = split_secret(11, 2, 4, MODULUS, rng)
        mapping = {s.x: s for s in shares}
        assert verify_share_consistency(mapping, 2, MODULUS)

    def test_corrupted_share_detected(self):
        rng = random.Random(10)
        shares = split_secret(11, 2, 4, MODULUS, rng)
        shares[1] = ShamirShare(x=shares[1].x, y=(shares[1].y + 1) % MODULUS)
        mapping = {s.x: s for s in shares}
        assert not verify_share_consistency(mapping, 2, MODULUS)

    def test_not_enough_shares_raises(self):
        with pytest.raises(ThresholdError):
            verify_share_consistency({1: ShamirShare(1, 1)}, 2, MODULUS)


@settings(max_examples=30)
@given(
    secret=st.integers(min_value=0, max_value=MODULUS - 1),
    threshold=st.integers(min_value=1, max_value=5),
    extra=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_any_threshold_subset_recovers(secret, threshold, extra, seed):
    """The defining Shamir property, for arbitrary secrets and shapes."""
    num_shares = threshold + extra
    rng = random.Random(seed)
    shares = split_secret(secret, threshold, num_shares, MODULUS, rng)
    rng.shuffle(shares)
    assert recover_secret(shares[:threshold], MODULUS) == secret
