"""Replica runtime: assembling deployable nodes for the asyncio prototype.

The harness (:mod:`repro.harness`) wires protocol nodes into the
discrete-event simulator for measurement; this package does the same
wiring for the :mod:`repro.net.asyncnet` runtime — the mode a downstream
user embeds in an application (see ``examples/wan_prototype.py`` and
``examples/kv_store.py``).
"""

from .runtime import AsyncExperiment, run_async_experiment

__all__ = ["AsyncExperiment", "run_async_experiment"]
