"""Structured event journal: append-only, sim-time-stamped records.

Where the registry answers "how many / how long", the journal answers
"what happened, in order": one :class:`Event` per protocol-level
occurrence (block proposed, delivered, committed; coin revealed; wave
committed; retrieval issued; adversary interference), each carrying the
simulated timestamp, the acting replica, an event type, and a small
payload dict.

The journal is the source every exporter reads — JSONL dumps for ad-hoc
grepping, Chrome ``trace_event`` JSON for Perfetto timelines (see
:mod:`repro.analysis.obs_export`).  Because the simulator is
deterministic, the journal is too: same seed → identical event sequence,
which the test suite asserts.

Two capacity modes:

* :class:`EventJournal` — unbounded in-memory list, the default for
  short runs and tests.
* :class:`BoundedJournal` — a ``deque(maxlen=...)`` ring that keeps only
  the newest events in memory, optionally spilling every event to a
  JSONL file as it is emitted.  Long ``n >= 100`` runs with ``--journal``
  use this so memory stays flat while nothing is lost on disk.

Listeners (:meth:`EventJournal.add_listener`) let online consumers — the
health watchdog — observe every event as it is emitted.  The hook is
installed by swapping the instance's ``emit`` attribute, so a journal
with no listeners pays nothing; callers that pre-bind ``journal.emit``
must therefore bind *after* listeners are installed (the harness installs
the watchdog before constructing nodes).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Dict, Iterator, List, NamedTuple, Optional


class Event(NamedTuple):
    """One journal record."""

    t: float  #: simulated seconds
    node: int  #: acting replica (-1 = the network/simulator itself)
    type: str  #: dotted event type, e.g. ``"block.deliver"``
    data: Dict[str, object]  #: small, JSON-able payload

    def as_dict(self) -> Dict[str, object]:
        return {"t": self.t, "node": self.node, "type": self.type, **self.data}


class EventJournal:
    """Append-only event log for one run."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[Event] = []
        self._listeners: List[Callable[[Event], None]] = []

    # Journals are shared sinks: simulator snapshots must keep every
    # emitter pointed at the one live journal (see ``_SharedSink`` in
    # :mod:`repro.obs.registry`), not fork the event log per branch.
    def __copy__(self) -> "EventJournal":
        return self

    def __deepcopy__(self, memo) -> "EventJournal":
        return self

    def emit(self, t: float, type_: str, node: int = -1, **data: object) -> None:
        self.events.append(Event(t, node, type_, data))

    def _emit_listened(
        self, t: float, type_: str, node: int = -1, **data: object
    ) -> None:
        event = Event(t, node, type_, data)
        self._record(event)
        for listener in self._listeners:
            listener(event)

    def _record(self, event: Event) -> None:
        self.events.append(event)

    def add_listener(self, listener: Callable[[Event], None]) -> None:
        """Invoke ``listener(event)`` for every subsequent emit.

        Implemented by swapping the instance's ``emit`` attribute onto the
        listener-aware path, so journals without listeners keep the plain
        one-append fast path.  Install listeners *before* handing the
        journal to components that pre-bind ``journal.emit``.
        """
        self._listeners.append(listener)
        self.emit = self._emit_listened  # type: ignore[method-assign]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def counts_by_type(self) -> Dict[str, int]:
        """Event-type histogram (for summaries and sanity tests)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.type] = counts.get(event.type, 0) + 1
        return dict(sorted(counts.items()))


class BoundedJournal(EventJournal):
    """Ring-buffered journal: keeps the newest ``max_events`` in memory.

    ``emitted_total`` and :meth:`counts_by_type` still cover *every* event
    ever emitted (counts are folded incrementally as old events fall off
    the ring), so summaries stay exact even after eviction.  With
    ``spill_path`` set, every event is also streamed to a JSONL file as
    it is emitted — the full log survives on disk at O(ring) memory.
    """

    def __init__(self, max_events: int, spill_path: Optional[str] = None) -> None:
        super().__init__()
        if max_events < 1:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self.events = deque(maxlen=max_events)  # type: ignore[assignment]
        self.emitted_total = 0
        self._counts: Dict[str, int] = {}
        self.spill_path = spill_path
        self._spill_file = open(spill_path, "w") if spill_path else None

    def emit(self, t: float, type_: str, node: int = -1, **data: object) -> None:
        self._record(Event(t, node, type_, data))

    def _record(self, event: Event) -> None:
        self.emitted_total += 1
        self._counts[event.type] = self._counts.get(event.type, 0) + 1
        if self._spill_file is not None:
            json.dump(event.as_dict(), self._spill_file, separators=(",", ":"))
            self._spill_file.write("\n")
        self.events.append(event)

    def counts_by_type(self) -> Dict[str, int]:
        return dict(sorted(self._counts.items()))

    def close(self) -> None:
        """Flush and close the spill file (idempotent)."""
        if self._spill_file is not None:
            self._spill_file.close()
            self._spill_file = None

    def __del__(self) -> None:  # pragma: no cover — GC-order dependent
        try:
            self.close()
        except Exception:
            pass


class NullJournal(EventJournal):
    """Do-nothing journal (the off-by-default path)."""

    enabled = False

    def emit(self, t: float, type_: str, node: int = -1, **data: object) -> None:
        pass

    def add_listener(self, listener: Callable[[Event], None]) -> None:
        pass
