"""Propagation-latency models.

The simulator separates *propagation* (distance, modeled here) from
*serialization* (bandwidth, modeled by the egress queue in the simulator).
Three models cover every experiment:

* :class:`FixedLatency` — identical delay on every link.  Used by the
  Table I step-count experiments, where one "communication step" must take
  exactly one time unit.
* :class:`UniformLatency` — i.i.d. uniform delay per message; handy for
  property tests that need schedule diversity.
* :class:`WanLatency` — the paper's deployment: replicas spread round-robin
  across four continental regions with realistic one-way delays and
  multiplicative jitter.

All models draw from the ``random.Random`` instance the simulator passes
in, keeping runs fully deterministic per seed.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..errors import ConfigError

#: One-way propagation delays between the four modeled regions, in seconds.
#: Regions: 0 = North America, 1 = Europe, 2 = Asia, 3 = South America.
#: Values approximate public inter-continent RTT/2 measurements.
WAN_REGION_DELAYS = (
    (0.001, 0.045, 0.075, 0.065),
    (0.045, 0.001, 0.100, 0.095),
    (0.075, 0.100, 0.001, 0.135),
    (0.065, 0.095, 0.135, 0.001),
)


class LatencyModel(ABC):
    """Maps a (src, dst) pair to a per-message propagation delay."""

    @abstractmethod
    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        """One-way propagation delay in seconds for this message."""

    def mean_delay(self, src: int, dst: int) -> float:
        """Expected delay (used by analytic step-latency conversions)."""
        probe = random.Random(0)
        return sum(self.delay(src, dst, probe) for _ in range(64)) / 64


class FixedLatency(LatencyModel):
    """Every message takes exactly ``delay_s`` seconds (self-sends 0)."""

    def __init__(self, delay_s: float = 0.05) -> None:
        if delay_s < 0:
            raise ConfigError("latency cannot be negative")
        self.delay_s = delay_s

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        return 0.0 if src == dst else self.delay_s

    def mean_delay(self, src: int, dst: int) -> float:
        return 0.0 if src == dst else self.delay_s


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]`` per message."""

    def __init__(self, low: float = 0.01, high: float = 0.1) -> None:
        if not 0 <= low <= high:
            raise ConfigError(f"invalid uniform latency range [{low}, {high}]")
        self.low = low
        self.high = high

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        return 0.0 if src == dst else rng.uniform(self.low, self.high)

    def mean_delay(self, src: int, dst: int) -> float:
        return 0.0 if src == dst else (self.low + self.high) / 2


class WanLatency(LatencyModel):
    """Four-region WAN matrix with multiplicative jitter.

    Replica ``i`` lives in region ``i % 4`` (round-robin placement, the
    natural reading of "deployed on four continents").  Per-message delay is
    the matrix entry scaled by ``1 + jitter`` with jitter drawn uniformly
    from ``[-jitter_frac, +jitter_frac]``.
    """

    def __init__(self, jitter_frac: float = 0.1, num_regions: int = 4) -> None:
        if not 0 <= jitter_frac < 1:
            raise ConfigError("jitter fraction must be in [0, 1)")
        if not 1 <= num_regions <= len(WAN_REGION_DELAYS):
            raise ConfigError(
                f"num_regions must be in 1..{len(WAN_REGION_DELAYS)}"
            )
        self.jitter_frac = jitter_frac
        self.num_regions = num_regions

    def region_of(self, replica: int) -> int:
        return replica % self.num_regions

    def base_delay(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        return WAN_REGION_DELAYS[self.region_of(src)][self.region_of(dst)]

    def delay(self, src: int, dst: int, rng: random.Random) -> float:
        base = self.base_delay(src, dst)
        if base == 0.0:
            return 0.0
        return base * (1.0 + rng.uniform(-self.jitter_frac, self.jitter_frac))

    def mean_delay(self, src: int, dst: int) -> float:
        return self.base_delay(src, dst)


def make_latency_model(name: str, **kwargs) -> LatencyModel:
    """Factory matching :attr:`ExperimentConfig.latency_model` names.

    Accepted names: ``"fixed"``, ``"uniform"``, ``"wan4"`` (the default
    four-region matrix), ``"lan"`` (fixed 1 ms).
    """
    if name == "fixed":
        return FixedLatency(**kwargs)
    if name == "uniform":
        return UniformLatency(**kwargs)
    if name == "wan4":
        return WanLatency(**kwargs)
    if name == "lan":
        return FixedLatency(delay_s=kwargs.pop("delay_s", 0.001), **kwargs)
    raise ConfigError(f"unknown latency model {name!r}")
