"""Micro-benchmarks: explorer throughput (states/second) and its parts.

The explorer's usable bound is set by three costs per explored state:
snapshot capture, snapshot restore, and the canonical fingerprint.
These benches time each in isolation plus the end-to-end DFS rate, so a
regression in any one (e.g. the pickle fast path losing its per-type
persistent-id cache) shows up as a named number instead of a slower CI
explore-smoke job.  Measured figures live in BENCH_PR7.json.
"""

import pytest

from repro.check.explorer import (
    ExploreConfig,
    _candidates,
    _execute,
    build_world,
    explore,
    state_fingerprint,
)


def advanced_world(cfg):
    """A mid-exploration state: deeper object graphs than the initial one."""
    world = build_world(cfg, None)
    for _ in range(12):
        actions = _candidates(world.sim, cfg)
        if not actions:
            break
        _execute(world.sim, actions[0][1])
    return world


CFG = ExploreConfig(protocol="lightdag1", max_rounds=2, max_inflight=2)


def test_snapshot_capture(benchmark):
    """One World.snapshot() on a mid-exploration state."""
    world = advanced_world(CFG)
    snap = benchmark(world.snapshot)
    assert snap is not None


def test_snapshot_restore(benchmark):
    """One restore() back to a captured mid-exploration state."""
    world = advanced_world(CFG)
    snap = world.snapshot()
    benchmark(snap.restore)
    assert _candidates(world.sim, CFG)


def test_state_fingerprint(benchmark):
    """Canonical hash of the full world state (all replicas + queue)."""
    world = advanced_world(CFG)
    digest = benchmark(state_fingerprint, world.sim)
    assert len(digest) == 32


def test_explore_states_per_second(benchmark):
    """End-to-end DFS rate over the single-window chain configuration."""
    cfg = ExploreConfig(protocol="lightdag1", max_rounds=3, max_inflight=1)

    def run():
        report = explore(cfg)
        assert report.complete and report.ok
        return report.states_explored

    states = benchmark(run)
    assert states > 100


@pytest.mark.parametrize("por", [True, False], ids=["por", "no-por"])
def test_explore_branchy_window(benchmark, por):
    """The branchy window, with and without sleep-set reduction — the
    gap between the two is what POR buys at this size."""
    cfg = ExploreConfig(
        protocol="lightdag1", max_rounds=1, max_inflight=2, por=por
    )

    def run():
        report = explore(cfg)
        assert report.complete and report.ok
        return report.states_explored

    assert benchmark(run) > 100
