"""Fig. 12: throughput (a) and latency (b) vs batch size, favorable case.

Paper setting: n ∈ {7, 22}, batch size 100 → 1000, 128-byte transactions.
Headline claims under reproduction (§VI-B):

* both LightDAG variants beat Tusk and Bullshark at every point;
* at n=22, batch=1000: LightDAG1/LightDAG2 ≈ 1.69×/1.91× Tusk's
  throughput and 41%/45% lower latency;
* throughput rises then saturates with batch size; latency keeps rising.
"""

import pytest

from repro.harness.experiments import batch_size_sweep
from repro.harness.report import render_series, series_by_protocol

from .conftest import save_report


def test_fig12_batch_size_sweep(benchmark, axes, results_dir, jobs):
    results = benchmark.pedantic(
        batch_size_sweep,
        kwargs=dict(
            replica_counts=axes["replica_counts"],
            batch_sizes=axes["batch_sizes"],
            duration=axes["duration"],
            seed=12,
            jobs=jobs,
        ),
        rounds=1,
        iterations=1,
    )
    series = series_by_protocol(results, x_field="batch")
    save_report(results_dir, "fig12_batch_sweep", render_series(series, "batch"))

    # Shape assertions at every (n, batch) grid point.
    grid = {}
    for r in results:
        grid[(r.config.protocol_name, r.config.system.n,
              r.config.protocol.batch_size)] = r
    for n in axes["replica_counts"]:
        for batch in axes["batch_sizes"]:
            tusk = grid[("tusk", n, batch)]
            ld1 = grid[("lightdag1", n, batch)]
            ld2 = grid[("lightdag2", n, batch)]
            assert ld1.throughput_tps > tusk.throughput_tps
            assert ld2.throughput_tps > tusk.throughput_tps
            assert ld1.mean_latency < tusk.mean_latency
            assert ld2.mean_latency < tusk.mean_latency

    # Headline ratios at the largest configured point.
    n = max(axes["replica_counts"])
    batch = max(axes["batch_sizes"])
    tusk = grid[("tusk", n, batch)]
    ld1 = grid[("lightdag1", n, batch)]
    ld2 = grid[("lightdag2", n, batch)]
    print(
        f"\nheadline @ n={n}, batch={batch}: "
        f"LD1/Tusk tps={ld1.throughput_tps / tusk.throughput_tps:.2f}x "
        f"(paper 1.69x), LD2/Tusk tps={ld2.throughput_tps / tusk.throughput_tps:.2f}x "
        f"(paper 1.91x); latency cut LD1={1 - ld1.mean_latency / tusk.mean_latency:.0%} "
        f"(paper 41%), LD2={1 - ld2.mean_latency / tusk.mean_latency:.0%} (paper 45%)"
    )
    assert ld2.throughput_tps / tusk.throughput_tps > 1.4
    assert 1 - ld2.mean_latency / tusk.mean_latency > 0.25
