"""SimulatorSnapshot: copy-on-branch state capture must be bit-exact.

The explorer's soundness rests on one property: after snapshot → run a
divergent branch → restore, continuing the run is *bit-identical* to an
execution that never branched.  Any state the snapshot misses (RNG
position, sequence counters, memo caches, dict iteration order leaking
into delivery order) shows up here as a probe mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.explorer import (
    ExploreConfig,
    _candidates,
    _execute,
    build_world,
    state_fingerprint,
)
from repro.net.interfaces import Message, Node
from repro.net.latency import UniformLatency
from repro.net.simulator import Simulation


@dataclass(frozen=True)
class Tick(Message):
    seq: int

    def wire_size(self) -> int:
        return 64


class Chatter(Node):
    """Broadcasts on a repeating timer; logs every arrival with its time.

    Keeps the event queue and the latency RNG busy forever, so any state
    the snapshot failed to capture diverges the continuation quickly.
    """

    def __init__(self, net):
        super().__init__(net)
        self.sent = 0
        self.received = []

    def on_start(self):
        self.net.set_timer(0.01 * (self.net.node_id + 1), "tick")

    def on_message(self, src, msg):
        self.received.append((self.net.now(), src, msg.seq))

    def on_timer(self, tag, data=None):
        self.net.broadcast(Tick(seq=self.sent), include_self=False)
        self.sent += 1
        self.net.set_timer(0.05, "tick")


def make_timed_sim(seed=7):
    factories = [Chatter for _ in range(4)]
    return Simulation(
        factories, latency_model=UniformLatency(0.01, 0.09), seed=seed
    )


def timed_probe(sim):
    return (
        sim.now,
        sim._seq,
        sim.rng.getstate(),
        [node.sent for node in sim.nodes],
        [node.received for node in sim.nodes],
        sorted(repr(ev) for ev in sim._queue),
    )


class TestTimedSnapshot:
    def test_restore_rewinds_rng_and_queue_exactly(self):
        control = make_timed_sim()
        control.start()
        control.run(until=0.6)

        sim = make_timed_sim()
        sim.start()
        sim.run(until=0.2)
        snap = sim.snapshot()
        sim.run(until=0.45)  # divergent branch: consumes RNG, mutates all
        branched = timed_probe(sim)
        snap.restore()
        sim.run(until=0.6)

        assert timed_probe(sim) == timed_probe(control)
        assert branched != timed_probe(sim)

    def test_restore_is_repeatable(self):
        sim = make_timed_sim()
        sim.start()
        sim.run(until=0.2)
        snap = sim.snapshot()
        probes = []
        for _ in range(3):
            snap.restore()
            sim.run(until=0.4)
            probes.append(timed_probe(sim))
        assert probes[0] == probes[1] == probes[2]


# --------------------------------------------------- protocol-world property

CFG = ExploreConfig(protocol="lightdag1", n=4, max_rounds=2, max_inflight=0)


def walk(world, picks):
    """Apply picks (mod the candidate count) and return the choices taken."""
    taken = []
    for pick in picks:
        actions = _candidates(world.sim, CFG)
        if not actions:
            break
        choice = pick % len(actions)
        taken.append(choice)
        _execute(world.sim, actions[choice][1])
    return taken


def replay(world, choices):
    for choice in choices:
        actions = _candidates(world.sim, CFG)
        assert choice < len(actions), "replay ran off the candidate list"
        _execute(world.sim, actions[choice][1])


def protocol_probe(world):
    sim = world.sim
    monitor = world.monitor
    return (
        state_fingerprint(sim),
        sim._seq,
        [node.next_round for node in sim.nodes],
        [node.ledger.digest_sequence() for node in sim.nodes],
        sorted(repr(ev) for ev in sim._queue),
        monitor.commits_checked,
        monitor.deliveries_checked,
        sorted(monitor._next_position.items()),
        sorted(monitor._positions.items()),
    )


picks = st.lists(st.integers(min_value=0, max_value=11), max_size=10)


class TestProtocolSnapshotProperty:
    @settings(max_examples=20, deadline=None)
    @given(prefix=picks, branch=picks, suffix=picks)
    def test_branch_restore_replay_matches_straight_line(
        self, prefix, branch, suffix
    ):
        world = build_world(CFG, None)
        taken_prefix = walk(world, prefix)
        snap = world.snapshot()
        walk(world, branch)
        snap.restore()
        taken_suffix = walk(world, suffix)

        straight = build_world(CFG, None)
        replay(straight, taken_prefix + taken_suffix)

        assert protocol_probe(world) == protocol_probe(straight)
