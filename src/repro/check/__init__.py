"""Protocol invariant oracles and the fault-schedule fuzzer.

Two halves:

* **Oracles** — executable forms of the paper's correctness claims, run
  mid-flight (:class:`~repro.check.monitor.InvariantMonitor`, wired through
  the node ``on_commit``/``on_deliver`` hooks) and as a post-run deep audit
  (:func:`~repro.check.oracles.deep_audit`).  Per-node: committed
  signatures valid, ledger ancestry closed, positions dense, leader index
  monotone, retrieval state consistent with the store, LightDAG2 Rule 2/3
  bookkeeping sound.  Cross-replica: committed-leader sequence agreement
  and per-position commit-metadata agreement on top of the digest-prefix
  check (Theorems 2 and 6).

* **Fuzzer** — a seed-deterministic generator of timed multi-phase fault
  schedules (:mod:`repro.adversary.schedule`) plus a driver that sweeps N
  seeds across every registered protocol with the oracles enabled, and a
  greedy shrinker that minimizes failing schedules before reporting them
  (:mod:`repro.check.fuzzer`, surfaced as ``python -m repro fuzz``).

``repro.check.fuzzer`` is imported lazily by the CLI — it depends on the
harness, which in turn imports this package for the oracle wiring.
"""

from .monitor import InvariantMonitor
from .oracles import (
    audit_cross_replica,
    audit_ledger,
    audit_lightdag2,
    audit_retrieval,
    deep_audit,
)

__all__ = [
    "InvariantMonitor",
    "audit_cross_replica",
    "audit_ledger",
    "audit_lightdag2",
    "audit_retrieval",
    "deep_audit",
]
