"""Feature-combination tests: GC + weak links + faults together.

Individual features are tested in isolation; deployments turn several on
at once.  These runs exercise the interactions (a weak reference must not
point below the GC horizon; recovery machinery must coexist with pruning).
"""

import pytest

from repro.adversary.delay import TargetedDelayAdversary
from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag1 import LightDag1Node
from repro.crypto.keys import TrustedDealer
from repro.dag.ledger import check_prefix_consistency
from repro.net.latency import UniformLatency
from repro.net.simulator import Simulation


def build_sim(protocol_kwargs, n=4, seed=1, adversary=None, crash=None):
    system = SystemConfig(n=n, crypto="hmac", seed=seed)
    protocol = ProtocolConfig(batch_size=5, **protocol_kwargs)
    chains = TrustedDealer(
        system, coin_threshold=protocol.resolve_coin_threshold(system)
    ).deal()
    sim = Simulation(
        [
            (lambda net, i=i: LightDag1Node(net, system, protocol, chains[i]))
            for i in range(n)
        ],
        latency_model=UniformLatency(0.02, 0.08),
        adversary=adversary,
        seed=seed,
    )
    if crash is not None:
        sim.crash(crash)
    return sim


class TestGcPlusWeakLinks:
    def test_combined_run_safe_and_bounded(self):
        sim = build_sim({"gc_depth": 12, "weak_links": True}, seed=3)
        sim.run(until=10.0)
        check_prefix_consistency([n.ledger for n in sim.nodes])
        node = sim.nodes[0]
        assert len(node.ledger) > 50
        # Memory actually bounded despite the weak-link bookkeeping.
        assert node.store.lowest_retained_round() > 1

    def test_combined_with_slow_replica(self):
        slow = TargetedDelayAdversary(
            predicate=lambda s, d, m: s == 2, delay=0.12, seed=4
        )
        sim = build_sim({"gc_depth": 16, "weak_links": True}, seed=4, adversary=slow)
        sim.run(until=10.0)
        check_prefix_consistency([n.ledger for n in sim.nodes])

    def test_combined_with_crash(self):
        sim = build_sim({"gc_depth": 12, "weak_links": True}, seed=5, crash=3)
        sim.run(until=10.0)
        alive = sim.nodes[:3]
        check_prefix_consistency([n.ledger for n in alive])
        assert all(len(n.ledger) > 30 for n in alive)


class TestGcPlusRecovery:
    def test_gc_node_can_still_serve_recent_retrieval(self):
        """A pruning node keeps enough history (gc_depth + wave margin) to
        answer retrieval for anything a live replica can still need."""
        from repro.adversary.partition import PartitionAdversary

        adversary = PartitionAdversary(group_a=[3], start=0.5, end=2.5)
        system = SystemConfig(n=4, crypto="hmac", seed=6)
        protocol = ProtocolConfig(batch_size=5, gc_depth=40)
        chains = TrustedDealer(system).deal()
        sim = Simulation(
            [
                (lambda net, i=i: LightDag1Node(net, system, protocol, chains[i]))
                for i in range(4)
            ],
            latency_model=UniformLatency(0.02, 0.06),
            adversary=adversary,
            seed=6,
        )
        sim.run(until=10.0)
        check_prefix_consistency([n.ledger for n in sim.nodes])
        # The straggler caught up through retrieval served by pruning peers.
        assert len(sim.nodes[3].ledger) > 0.6 * len(sim.nodes[0].ledger)
