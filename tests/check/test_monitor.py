"""Mid-run InvariantMonitor tests: fabricated commit/deliver streams."""

import pytest

from repro.check import InvariantMonitor
from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag2 import LightDag2Node
from repro.crypto.keys import TrustedDealer
from repro.dag.block import TxBatch, make_block
from repro.dag.ledger import CommitRecord
from repro.errors import InvariantViolation
from repro.harness.runner import run_experiment
from repro.net.latency import UniformLatency
from repro.net.simulator import Simulation
from repro.obs import EventJournal, MetricsRegistry, Observability


def record(position, block, leader_index=0, via=b"L" * 32, t=1.0):
    return CommitRecord(
        position=position, block=block, commit_time=t,
        via_leader=via, leader_index=leader_index,
    )


def block_at(round_, author, j=0):
    return make_block(round_, author, [], TxBatch(0, 64), repropose_index=j)


class TestPerNodeChecks:
    def test_dense_positions_enforced(self):
        monitor = InvariantMonitor()
        hook = monitor.wrap_commit(0)
        hook(record(0, block_at(1, 0)))
        with pytest.raises(InvariantViolation, match="ledger-dense"):
            hook(record(2, block_at(1, 1)))

    def test_leader_index_monotone(self):
        monitor = InvariantMonitor()
        hook = monitor.wrap_commit(0)
        hook(record(0, block_at(1, 0), leader_index=3))
        with pytest.raises(InvariantViolation, match="leader-index-monotone"):
            hook(record(1, block_at(1, 1), leader_index=2))

    def test_via_leader_constant_per_index(self):
        monitor = InvariantMonitor()
        hook = monitor.wrap_commit(0)
        hook(record(0, block_at(1, 0), via=b"A" * 32))
        with pytest.raises(InvariantViolation, match="via-leader-consistent"):
            hook(record(1, block_at(1, 1), via=b"B" * 32))

    def test_inner_callback_forwarded(self):
        seen = []
        monitor = InvariantMonitor()
        hook = monitor.wrap_commit(0, seen.append)
        rec = record(0, block_at(1, 0))
        hook(rec)
        assert seen == [rec]
        assert monitor.commits_checked == 1


class TestCrossReplicaChecks:
    def test_position_agreement(self):
        monitor = InvariantMonitor()
        monitor.wrap_commit(0)(record(0, block_at(1, 0)))
        with pytest.raises(InvariantViolation, match="position-agreement"):
            monitor.wrap_commit(1)(record(0, block_at(1, 1)))

    def test_metadata_agreement(self):
        monitor = InvariantMonitor()
        block = block_at(1, 0)
        monitor.wrap_commit(0)(record(0, block, leader_index=0))
        with pytest.raises(InvariantViolation, match="commit-metadata-agreement"):
            monitor.wrap_commit(1)(record(0, block, leader_index=1))

    def test_agreement_passes_for_identical_streams(self):
        monitor = InvariantMonitor()
        blocks = [block_at(1, i) for i in range(3)]
        for node_id in (0, 1, 2):
            hook = monitor.wrap_commit(node_id)
            for pos, block in enumerate(blocks):
                hook(record(pos, block))
        assert monitor.commits_checked == 9

    def test_violation_journaled_before_raise(self):
        obs = Observability(MetricsRegistry(), EventJournal())
        monitor = InvariantMonitor(obs=obs)
        monitor.wrap_commit(0)(record(0, block_at(1, 0)))
        with pytest.raises(InvariantViolation):
            monitor.wrap_commit(1)(record(0, block_at(1, 1)))
        events = [e for e in obs.journal if e.type == "oracle.violation"]
        assert len(events) == 1
        assert events[0].data["oracle"] == "position-agreement"


class TestLiveWiring:
    def test_full_level_monitors_a_real_run(self):
        from repro.config import ExperimentConfig

        cfg = ExperimentConfig(
            system=SystemConfig(n=4, crypto="hmac", seed=1),
            protocol=ProtocolConfig(batch_size=5),
            protocol_name="lightdag2",
            duration=3.0,
            warmup=0.5,
            cpu_fixed_us=0.0,
            cpu_per_byte_ns=0.0,
            check_level="full",
        )
        result = run_experiment(cfg)
        assert result.committed_txs > 0  # callbacks still reach the collector

    def test_deliver_hook_counts(self):
        system = SystemConfig(n=4, crypto="hmac", seed=2)
        protocol = ProtocolConfig(batch_size=5)
        chains = TrustedDealer(
            system, coin_threshold=protocol.resolve_coin_threshold(system)
        ).deal()
        monitor = InvariantMonitor()
        sim = Simulation(
            [
                (lambda net, i=i: LightDag2Node(
                    net, system, protocol, chains[i],
                    on_deliver=monitor.deliver_hook(i),
                    on_commit=monitor.wrap_commit(i),
                ))
                for i in range(4)
            ],
            latency_model=UniformLatency(0.02, 0.06),
            seed=2,
        )
        monitor.bind(sim.nodes)
        sim.run(until=3.0)
        assert monitor.deliveries_checked > 0
        assert monitor.commits_checked > 0
