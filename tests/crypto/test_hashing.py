"""Tests for repro.crypto.hashing: canonical field hashing and Merkle roots."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashing import (
    DIGEST_SIZE,
    hash_bytes,
    hash_fields,
    hash_to_int,
    merkle_root,
    short_hex,
)


class TestHashFields:
    def test_digest_size(self):
        assert len(hash_fields(1, "a")) == DIGEST_SIZE

    def test_deterministic(self):
        assert hash_fields(1, b"x", "y") == hash_fields(1, b"x", "y")

    def test_order_sensitive(self):
        assert hash_fields(1, 2) != hash_fields(2, 1)

    def test_type_tagging_int_vs_str(self):
        assert hash_fields(1) != hash_fields("1")

    def test_type_tagging_bytes_vs_str(self):
        assert hash_fields(b"abc") != hash_fields("abc")

    def test_bool_is_not_int(self):
        assert hash_fields(True) != hash_fields(1)
        assert hash_fields(False) != hash_fields(0)

    def test_none_is_distinct(self):
        assert hash_fields(None) != hash_fields(0)
        assert hash_fields(None) != hash_fields(b"")

    def test_nesting_is_not_flattening(self):
        assert hash_fields((1, 2), 3) != hash_fields(1, (2, 3))
        assert hash_fields((1,), (2,)) != hash_fields((1, 2))

    def test_empty_containers(self):
        assert hash_fields(()) != hash_fields(("",))

    def test_negative_ints(self):
        assert hash_fields(-1) != hash_fields(1)
        assert hash_fields(-256) != hash_fields(-255)

    def test_lists_and_tuples_equivalent(self):
        assert hash_fields([1, 2]) == hash_fields((1, 2))

    def test_unhashable_type_raises(self):
        with pytest.raises(TypeError):
            hash_fields(object())

    @given(st.integers(), st.integers())
    def test_injective_on_int_pairs(self, a, b):
        if a != b:
            assert hash_fields(a) != hash_fields(b)

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_concatenation_ambiguity_resolved(self, a, b):
        # ("ab","c") must differ from ("a","bc") — length prefixing at work.
        if a != b:
            assert hash_fields(a, b) != hash_fields(b, a) or a == b


class TestHashToInt:
    def test_range(self):
        value = hash_to_int("x")
        assert 0 <= value < 2**256

    def test_matches_fields(self):
        assert hash_to_int(5) == int.from_bytes(hash_fields(5), "big")


class TestMerkleRoot:
    def test_empty(self):
        assert merkle_root([]) == bytes(DIGEST_SIZE)

    def test_single_leaf(self):
        leaf = hash_bytes(b"tx")
        assert merkle_root([leaf]) != leaf  # leaf-prefixed, not identity

    def test_order_sensitive(self):
        a, b = hash_bytes(b"a"), hash_bytes(b"b")
        assert merkle_root([a, b]) != merkle_root([b, a])

    def test_odd_leaf_count(self):
        leaves = [hash_bytes(bytes([i])) for i in range(3)]
        assert len(merkle_root(leaves)) == DIGEST_SIZE

    def test_deterministic(self):
        leaves = [hash_bytes(bytes([i])) for i in range(7)]
        assert merkle_root(leaves) == merkle_root(leaves)

    def test_second_preimage_guard(self):
        # A two-leaf tree differs from the single leaf equal to their parent.
        a, b = hash_bytes(b"a"), hash_bytes(b"b")
        two = merkle_root([a, b])
        assert merkle_root([two]) != two


class TestShortHex:
    def test_prefix(self):
        d = hash_bytes(b"z")
        assert d.hex().startswith(short_hex(d))
        assert len(short_hex(d, 12)) == 12


class TestInternDigest:
    def test_canonicalizes_equal_digests(self):
        from repro.crypto.hashing import intern_digest

        a = hash_bytes(b"block")
        b = bytes(bytearray(a))  # equal value, distinct object
        assert a is not b
        assert intern_digest(a) is intern_digest(b)

    def test_value_unchanged(self):
        from repro.crypto.hashing import intern_digest

        d = hash_bytes(b"x")
        assert intern_digest(d) == d

    def test_cap_clears_wholesale(self):
        """When the table fills it is cleared, not grown — interning is a
        best-effort space optimization, never an unbounded cache."""
        from repro.crypto import hashing

        saved = dict(hashing._intern_table)
        try:
            hashing._intern_table.clear()
            hashing._intern_table.update(
                {bytes([i % 256, i // 256]) * 16: bytes(32)
                 for i in range(hashing._INTERN_CAP)}
            )
            fresh = hash_bytes(b"overflow")
            assert hashing.intern_digest(fresh) is fresh
            assert len(hashing._intern_table) == 1  # cleared, then re-seeded
        finally:
            hashing._intern_table.clear()
            hashing._intern_table.update(saved)

    def test_decoded_blocks_share_parent_digests(self):
        """The codec routes parents through the intern table: decoding the
        same block twice yields identical (not merely equal) parent refs."""
        from repro.codec.blocks import block_from_bytes, block_to_bytes
        from repro.dag.block import genesis_block, make_block

        parents = [genesis_block(a).digest for a in range(4)]
        wire = block_to_bytes(make_block(1, 0, parents))
        first = block_from_bytes(wire)
        second = block_from_bytes(wire)
        for p, q in zip(first.parents, second.parents):
            assert p is q
        assert first.digest is second.digest
