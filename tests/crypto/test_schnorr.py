"""Tests for repro.crypto.schnorr: signature correctness and rejection."""

import random

import pytest

from repro.crypto.group import default_group
from repro.crypto.hashing import hash_fields
from repro.crypto.schnorr import (
    SchnorrKeyPair,
    SchnorrSignature,
    require_valid,
    schnorr_sign,
    schnorr_verify,
    signature_digest,
)
from repro.errors import SignatureError


@pytest.fixture(scope="module")
def group():
    return default_group(256)


@pytest.fixture(scope="module")
def keypair(group):
    return SchnorrKeyPair.generate(group, random.Random(1))


class TestSignVerify:
    def test_roundtrip(self, group, keypair):
        msg = hash_fields("hello")
        sig = schnorr_sign(group, keypair, msg)
        assert schnorr_verify(group, keypair.pk, msg, sig)

    def test_deterministic_signing(self, group, keypair):
        msg = hash_fields("same")
        assert schnorr_sign(group, keypair, msg) == schnorr_sign(group, keypair, msg)

    def test_distinct_messages_distinct_sigs(self, group, keypair):
        s1 = schnorr_sign(group, keypair, hash_fields("a"))
        s2 = schnorr_sign(group, keypair, hash_fields("b"))
        assert s1 != s2

    def test_wrong_message_rejected(self, group, keypair):
        sig = schnorr_sign(group, keypair, hash_fields("a"))
        assert not schnorr_verify(group, keypair.pk, hash_fields("b"), sig)

    def test_wrong_key_rejected(self, group, keypair):
        other = SchnorrKeyPair.generate(group, random.Random(2))
        msg = hash_fields("m")
        sig = schnorr_sign(group, keypair, msg)
        assert not schnorr_verify(group, other.pk, msg, sig)

    def test_tampered_commitment_rejected(self, group, keypair):
        msg = hash_fields("m")
        sig = schnorr_sign(group, keypair, msg)
        bad = SchnorrSignature(R=group.mul(sig.R, group.g), s=sig.s)
        assert not schnorr_verify(group, keypair.pk, msg, bad)

    def test_tampered_s_rejected(self, group, keypair):
        msg = hash_fields("m")
        sig = schnorr_sign(group, keypair, msg)
        bad = SchnorrSignature(R=sig.R, s=(sig.s + 1) % group.q)
        assert not schnorr_verify(group, keypair.pk, msg, bad)

    def test_out_of_range_values_rejected(self, group, keypair):
        msg = hash_fields("m")
        sig = schnorr_sign(group, keypair, msg)
        assert not schnorr_verify(group, keypair.pk, msg, SchnorrSignature(0, 0))
        assert not schnorr_verify(
            group, keypair.pk, msg, SchnorrSignature(R=group.p, s=sig.s)
        )
        assert not schnorr_verify(
            group, keypair.pk, msg, SchnorrSignature(R=sig.R, s=group.q)
        )
        assert not schnorr_verify(
            group, keypair.pk, msg, SchnorrSignature(R=sig.R, s=-1)
        )

    def test_invalid_pk_rejected(self, group, keypair):
        msg = hash_fields("m")
        sig = schnorr_sign(group, keypair, msg)
        assert not schnorr_verify(group, 0, msg, sig)
        assert not schnorr_verify(group, group.p - 1, msg, sig)


class TestKeyDerivation:
    def test_from_seed_deterministic(self, group):
        k1 = SchnorrKeyPair.from_seed(group, 7, "sig", 0)
        k2 = SchnorrKeyPair.from_seed(group, 7, "sig", 0)
        assert k1 == k2

    def test_from_seed_distinct_replicas(self, group):
        k0 = SchnorrKeyPair.from_seed(group, 7, "sig", 0)
        k1 = SchnorrKeyPair.from_seed(group, 7, "sig", 1)
        assert k0.pk != k1.pk

    def test_pk_matches_sk(self, group):
        kp = SchnorrKeyPair.from_seed(group, 1, "x")
        assert kp.pk == group.exp(group.g, kp.sk)


class TestHelpers:
    def test_require_valid_raises_with_context(self, group, keypair):
        msg = hash_fields("m")
        sig = schnorr_sign(group, keypair, msg)
        require_valid(group, keypair.pk, msg, sig, "test message")  # no raise
        with pytest.raises(SignatureError, match="block 42"):
            require_valid(group, keypair.pk, hash_fields("n"), sig, "block 42")

    def test_signature_digest_stable(self, group, keypair):
        sig = schnorr_sign(group, keypair, hash_fields("m"))
        assert signature_digest(sig) == signature_digest(sig)
        other = schnorr_sign(group, keypair, hash_fields("o"))
        assert signature_digest(sig) != signature_digest(other)
