"""Tests for the CLI (invoked in-process through main())."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "pbft"])

    def test_fig_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "99"])


class TestCommands:
    def test_protocols(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "lightdag2" in out and "worst_attack" in out

    def test_run_prints_result(self, capsys):
        assert main(["run", "--protocol", "lightdag1", "-n", "4",
                     "--batch", "20", "--duration", "3"]) == 0
        out = capsys.readouterr().out
        assert "lightdag1" in out and "tps" in out

    def test_run_with_adversary(self, capsys):
        assert main(["run", "--protocol", "tusk", "-n", "4", "--batch", "20",
                     "--duration", "4", "--adversary", "worst"]) == 0
        assert "tusk" in capsys.readouterr().out

    def test_run_exports(self, capsys, tmp_path):
        json_path = tmp_path / "r.json"
        csv_path = tmp_path / "r.csv"
        assert main(["run", "-n", "4", "--batch", "20", "--duration", "3",
                     "--json", str(json_path), "--csv", str(csv_path)]) == 0
        rows = json.loads(json_path.read_text())
        assert rows[0]["protocol"] == "lightdag2"
        assert csv_path.read_text().startswith("adversary")

    def test_run_repeats(self, capsys):
        assert main(["run", "-n", "4", "--batch", "20", "--duration", "3",
                     "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "tps_mean" in out and "tps_ci95" in out

    def test_run_obs_exports(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        prom = tmp_path / "m.prom"
        journal = tmp_path / "j.jsonl"
        assert main(["run", "--protocol", "lightdag1", "-n", "4",
                     "--batch", "20", "--duration", "3",
                     "--trace", str(trace), "--metrics", str(prom),
                     "--journal", str(journal)]) == 0
        parsed = json.loads(trace.read_text())
        assert any(e["ph"] == "X" for e in parsed["traceEvents"])
        assert "# TYPE repro_net_messages_sent counter" in prom.read_text()
        first = json.loads(journal.read_text().splitlines()[0])
        assert first["type"] == "block.propose"

    def test_run_obs_ignored_with_repeats(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        assert main(["run", "-n", "4", "--batch", "20", "--duration", "3",
                     "--repeats", "2", "--trace", str(trace)]) == 0
        assert not trace.exists()
        assert "ignoring" in capsys.readouterr().err

    def test_run_bounded_journal_streams(self, capsys, tmp_path):
        journal = tmp_path / "j.jsonl"
        assert main(["run", "--protocol", "lightdag1", "-n", "4",
                     "--batch", "20", "--duration", "3",
                     "--journal", str(journal),
                     "--journal-max-events", "16"]) == 0
        assert "streamed" in capsys.readouterr().out
        lines = journal.read_text().splitlines()
        # Far more events streamed to disk than the 16-slot ring holds.
        assert len(lines) > 16
        assert json.loads(lines[0])["type"] == "block.propose"

    def test_explain_prints_breakdown(self, capsys, tmp_path):
        report_path = tmp_path / "explain.json"
        assert main(["explain", "-n", "4", "--batch", "20",
                     "--duration", "3", "--warmup", "1",
                     "--json", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "end-to-end commit latency" in out
        assert "broadcast" in out and "ordering" in out
        assert "reconciles with end-to-end mean" in out
        assert "health: healthy" in out
        report = json.loads(report_path.read_text())
        assert report["blocks"] > 0
        assert report["reconciliation_max_abs_error"] < 1e-9

    def test_explain_trace_export_has_flows(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        assert main(["explain", "-n", "4", "--batch", "20",
                     "--duration", "3", "--trace", str(trace)]) == 0
        parsed = json.loads(trace.read_text())
        phases = {e["ph"] for e in parsed["traceEvents"]}
        assert {"s", "f"} <= phases  # Perfetto flow arrows present
        cats = {e.get("cat") for e in parsed["traceEvents"]}
        assert "lifecycle" in cats

    def test_report(self, capsys):
        assert main(["report", "--protocol", "lightdag2", "-n", "4",
                     "--batch", "20", "--duration", "3"]) == 0
        out = capsys.readouterr().out
        assert "broadcast.steps" in out
        assert "wave.commit" in out
        assert "journal events" in out

    def test_steps(self, capsys):
        assert main(["steps", "--protocol", "lightdag2"]) == 0
        assert "best=4" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "dagrider" in out and "measured_best" in out

    def test_viz(self, capsys):
        assert main(["viz", "-n", "4", "--duration", "2"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out and "#" in out

    def test_fig_small(self, capsys):
        assert main(["fig", "12", "--small", "--duration", "4"]) == 0
        out = capsys.readouterr().out
        assert "tusk@n=4" in out and "lightdag2@n=7" in out

    def test_fig_small_parallel(self, capsys):
        assert main(["fig", "12", "--small", "--duration", "4",
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "tusk@n=4" in out and "lightdag2@n=7" in out

    def test_fuzz_parallel_summary(self, capsys):
        assert main(["fuzz", "--seeds", "2", "--duration", "4",
                     "--protocol", "lightdag2", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 runs in" in out
        assert "runs/s" in out
        assert "0 failure(s)" in out
