"""Mid-run invariant monitor.

Wired through the hooks every node already exposes — ``on_commit`` (one
call per :class:`~repro.dag.ledger.CommitRecord`) and ``on_deliver`` — so
a violation surfaces *at the simulated instant it happens*, with the
replica and timestamp in the exception, instead of as an end-of-run diff.
The checks are O(1) dictionary work per event (plus one memoized signature
verification per commit), cheap enough for the fuzzer to leave on for
every run.

Per-commit, per-node: positions dense, ``leader_index`` monotone, one
``via_leader`` per leader index, committed signature valid.  Cross-replica:
a first-writer-wins map position → (digest, leader index, committing
leader); the first replica to disagree with it is the earliest observable
safety violation (Theorems 2/6).  Per-delivery: parents must be present in
the store (the §IV-A gate) unless GC already pruned below round 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..crypto.hashing import Digest, short_hex
from ..dag.ledger import CommitRecord
from ..errors import InvariantViolation
from ..obs import NULL_OBS, Observability


class InvariantMonitor:
    """Incremental oracle over the honest replicas of one run.

    Usage (the harness does this when ``check_level="full"``)::

        monitor = InvariantMonitor(obs=obs)
        # per honest replica i:
        #   on_commit  = monitor.wrap_commit(i, inner_callback)
        #   on_deliver = monitor.deliver_hook(i)
        sim = Simulation(...)
        monitor.bind(sim.nodes)
        sim.run(...)
    """

    def __init__(self, obs: Optional[Observability] = None) -> None:
        self.obs = obs if obs is not None else NULL_OBS
        self._nodes: Optional[List] = None
        #: per-node next expected ledger position
        self._next_position: Dict[int, int] = {}
        #: per-node highest leader_index seen
        self._last_leader_index: Dict[int, int] = {}
        #: per-(node, leader_index) committing leader digest
        self._via_of: Dict[Tuple[int, int], Digest] = {}
        #: global position map — first writer wins, everyone must agree
        self._positions: Dict[int, Tuple[Digest, int, Digest, int]] = {}
        self.commits_checked = 0
        self.deliveries_checked = 0

    def bind(self, nodes) -> None:
        """Give the monitor the node objects (for backends/stores); call
        after the simulation constructs them, before running."""
        self._nodes = list(nodes)

    # ------------------------------------------------------------------ hooks

    def wrap_commit(self, node_id: int, inner=None):
        """An ``on_commit`` callback that checks, then forwards to ``inner``."""

        def on_commit(record: CommitRecord) -> None:
            self._check_commit(node_id, record)
            if inner is not None:
                inner(record)

        return on_commit

    def deliver_hook(self, node_id: int):
        """An ``on_deliver`` hook for the same replica."""

        def on_deliver(block, now: float) -> None:
            self._check_deliver(node_id, block, now)

        return on_deliver

    # ----------------------------------------------------------------- checks

    def _fail(self, node_id: int, now: float, oracle: str, detail: str) -> None:
        if self.obs.enabled:
            self.obs.journal.emit(
                now, "oracle.violation", node_id, oracle=oracle, detail=detail
            )
        raise InvariantViolation(
            f"[t={now:.3f}s] replica {node_id}: {oracle}: {detail}"
        )

    def _check_commit(self, node_id: int, record: CommitRecord) -> None:
        self.commits_checked += 1
        now = record.commit_time
        expected = self._next_position.get(node_id, 0)
        if record.position != expected:
            self._fail(
                node_id, now, "ledger-dense",
                f"committed position {record.position}, expected {expected}",
            )
        self._next_position[node_id] = expected + 1

        last = self._last_leader_index.get(node_id, -1)
        if record.leader_index < last:
            self._fail(
                node_id, now, "leader-index-monotone",
                f"leader_index {record.leader_index} after {last}",
            )
        self._last_leader_index[node_id] = record.leader_index

        via_key = (node_id, record.leader_index)
        seen_via = self._via_of.setdefault(via_key, record.via_leader)
        if seen_via != record.via_leader:
            self._fail(
                node_id, now, "via-leader-consistent",
                f"leader index {record.leader_index} used by two leaders "
                f"{short_hex(seen_via)} and {short_hex(record.via_leader)}",
            )

        if self._nodes is not None:
            block = record.block
            backend = self._nodes[node_id].backend
            if not backend.verify(block.author, block.digest, block.signature):
                self._fail(
                    node_id, now, "commit-signature",
                    f"block {short_hex(block.digest)} by {block.author} has "
                    f"an invalid signature",
                )

        entry = self._positions.get(record.position)
        if entry is None:
            self._positions[record.position] = (
                record.block.digest, record.leader_index,
                record.via_leader, node_id,
            )
        else:
            digest, leader_index, via_leader, first_node = entry
            if digest != record.block.digest:
                self._fail(
                    node_id, now, "position-agreement",
                    f"position {record.position} holds "
                    f"{short_hex(record.block.digest)} here but "
                    f"{short_hex(digest)} at replica {first_node}",
                )
            if leader_index != record.leader_index or via_leader != record.via_leader:
                self._fail(
                    node_id, now, "commit-metadata-agreement",
                    f"position {record.position} committed with leader index "
                    f"{record.leader_index} via {short_hex(record.via_leader)}"
                    f" here but leader index {leader_index} via "
                    f"{short_hex(via_leader)} at replica {first_node}",
                )

    def _check_deliver(self, node_id: int, block, now: float) -> None:
        self.deliveries_checked += 1
        if block.round < 1:
            self._fail(
                node_id, now, "deliver-round",
                f"delivered block in round {block.round}",
            )
        if self._nodes is None:
            return
        store = self._nodes[node_id].store
        missing = [p for p in block.parents if p not in store]
        # The §IV-A gate promises parents-before-participation; absence is
        # only explainable once GC has actually pruned rounds away.
        if missing and store.lowest_retained_round() <= 1:
            self._fail(
                node_id, now, "deliver-ancestry",
                f"delivered block {short_hex(block.digest)} (round "
                f"{block.round}) with parents missing from the store: "
                f"{[short_hex(d) for d in missing]}",
            )
