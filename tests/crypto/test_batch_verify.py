"""Property tests for batch signature verification and the verify memos.

The three guarantees the hot-path overhaul must not bend:

* ``verify_batch`` accepts exactly when every individual verify accepts;
* bisection (``schnorr_batch_invalid`` / ``invalid_in_batch``) pinpoints
  *exactly* the forged entries — Byzantine attribution is unchanged;
* the verify-once memo never caches a negative result and never answers
  across signers, messages, or signature bytes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.crypto.backend import SchnorrBackend
from repro.crypto.group import default_group
from repro.crypto.hashing import hash_fields
from repro.crypto.keys import TrustedDealer
from repro.crypto.memo import VerifiedMemo
from repro.crypto.schnorr import (
    SchnorrSignature,
    schnorr_batch_invalid,
    schnorr_sign,
    schnorr_verify,
    schnorr_verify_batch,
)

N = 7
GROUP = default_group(256)
CHAINS = TrustedDealer(SystemConfig(n=N, crypto="schnorr", seed=3)).deal()
KEYPAIRS = [chain.keypair for chain in CHAINS]


def _claims(count: int, label: str = "batch"):
    """(pk, digest, signature) claims signed by round-robin replicas."""
    out = []
    for i in range(count):
        kp = KEYPAIRS[i % N]
        digest = hash_fields(label, i)
        out.append((kp.pk, digest, schnorr_sign(GROUP, kp, digest)))
    return out


def _forge(claim):
    pk, digest, sig = claim
    return (pk, digest, SchnorrSignature(R=sig.R, s=(sig.s + 1) % GROUP.q))


class TestBatchAgainstIndividual:
    @settings(max_examples=20, deadline=None)
    @given(
        count=st.integers(min_value=0, max_value=12),
        forged=st.sets(st.integers(min_value=0, max_value=11)),
    )
    def test_accepts_iff_every_individual_accepts(self, count, forged):
        claims = _claims(count)
        for i in sorted(forged):
            if i < count:
                claims[i] = _forge(claims[i])
        individual = all(schnorr_verify(GROUP, *c) for c in claims)
        assert schnorr_verify_batch(GROUP, claims) == individual

    @settings(max_examples=20, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=12),
        forged=st.sets(st.integers(min_value=0, max_value=11)),
    )
    def test_bisection_pinpoints_exactly_the_forged(self, count, forged):
        claims = _claims(count, "bisect")
        expected = sorted(i for i in forged if i < count)
        for i in expected:
            claims[i] = _forge(claims[i])
        assert schnorr_batch_invalid(GROUP, claims) == expected

    def test_empty_batch_is_vacuously_valid(self):
        assert schnorr_verify_batch(GROUP, [])
        assert schnorr_batch_invalid(GROUP, []) == []

    def test_repeated_signer_batches(self):
        kp = KEYPAIRS[0]
        claims = []
        for i in range(6):
            digest = hash_fields("same-signer", i)
            claims.append((kp.pk, digest, schnorr_sign(GROUP, kp, digest)))
        assert schnorr_verify_batch(GROUP, claims)
        claims[4] = _forge(claims[4])
        assert not schnorr_verify_batch(GROUP, claims)
        assert schnorr_batch_invalid(GROUP, claims) == [4]


class TestBackendBatch:
    def _backend(self):
        return SchnorrBackend(CHAINS[0])

    def _items(self, count, label="items"):
        out = []
        for i in range(count):
            signer = i % N
            digest = hash_fields(label, i)
            sig = schnorr_sign(GROUP, KEYPAIRS[signer], digest)
            out.append((signer, digest, sig))
        return out

    def test_verify_batch_true_seeds_memo(self):
        backend = self._backend()
        items = self._items(8)
        assert backend.verify_batch(items)
        for signer, digest, sig in items:
            assert (signer, digest, sig) in backend._verified

    def test_verify_batch_false_on_any_forgery(self):
        backend = self._backend()
        items = self._items(8, "forged")
        signer, digest, sig = items[2]
        items[2] = (signer, digest, SchnorrSignature(R=sig.R, s=(sig.s + 3) % GROUP.q))
        assert not backend.verify_batch(items)
        # The forged claim must not be cached.
        assert (items[2][0], items[2][1], items[2][2]) not in backend._verified

    def test_invalid_in_batch_matches_individual_sweep(self):
        backend = self._backend()
        items = self._items(9, "sweep")
        signer, digest, sig = items[1]
        items[1] = (signer, digest, SchnorrSignature(R=sig.R, s=(sig.s + 1) % GROUP.q))
        items[5] = (99, items[5][1], items[5][2])  # unknown signer
        items[7] = (items[7][0], items[7][1], b"mac-bytes")  # wrong type
        reference = SchnorrBackend(CHAINS[1])
        expected = [
            i for i, it in enumerate(items) if not reference.verify(*it)
        ]
        assert backend.invalid_in_batch(items) == expected == [1, 5, 7]

    def test_batch_with_all_items_cached_short_circuits(self):
        backend = self._backend()
        items = self._items(5, "cached")
        assert backend.verify_batch(items)
        # Second call: everything is memoized; still True.
        assert backend.verify_batch(items)


class TestVerifyOnceMemoSafety:
    def test_negative_results_never_cached(self):
        backend = SchnorrBackend(CHAINS[0])
        digest = hash_fields("neg")
        sig = schnorr_sign(GROUP, KEYPAIRS[1], digest)
        bad = SchnorrSignature(R=sig.R, s=(sig.s + 1) % GROUP.q)
        for _ in range(3):
            assert not backend.verify(1, digest, bad)
        assert len(backend._verified) == 0

    def test_hit_requires_exact_signer(self):
        backend = SchnorrBackend(CHAINS[0])
        digest = hash_fields("cross-signer")
        sig = schnorr_sign(GROUP, KEYPAIRS[1], digest)
        assert backend.verify(1, digest, sig)
        # Same digest+signature claimed by a different signer: a fresh
        # verification (which fails) — never a cache hit.
        assert not backend.verify(2, digest, sig)

    def test_hit_requires_exact_message_and_signature(self):
        backend = SchnorrBackend(CHAINS[0])
        digest = hash_fields("exact")
        sig = schnorr_sign(GROUP, KEYPAIRS[1], digest)
        assert backend.verify(1, digest, sig)
        assert not backend.verify(1, hash_fields("other"), sig)
        assert not backend.verify(
            1, digest, SchnorrSignature(R=sig.R, s=(sig.s + 1) % GROUP.q)
        )

    @settings(max_examples=15, deadline=None)
    @given(tamper=st.integers(min_value=1, max_value=2**31))
    def test_memo_never_flips_a_rejection(self, tamper):
        backend = SchnorrBackend(CHAINS[0])
        digest = hash_fields("flip")
        sig = schnorr_sign(GROUP, KEYPAIRS[1], digest)
        assert backend.verify(1, digest, sig)  # cache the genuine claim
        bad = SchnorrSignature(R=sig.R, s=(sig.s + tamper) % GROUP.q)
        if bad != sig:
            assert not backend.verify(1, digest, bad)

    def test_memo_capacity_bounds_and_fifo_eviction(self):
        memo = VerifiedMemo(capacity=3)
        for key in ("a", "b", "c"):
            memo.add(key)
        assert len(memo) == 3
        memo.add("d")  # evicts "a"
        assert len(memo) == 3
        assert "a" not in memo and "d" in memo and "b" in memo

    def test_memo_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            VerifiedMemo(capacity=0)

    def test_eviction_only_costs_a_reverify(self):
        backend = SchnorrBackend(CHAINS[0], memo_capacity=2)
        digests = [hash_fields("evict", i) for i in range(4)]
        sigs = [schnorr_sign(GROUP, KEYPAIRS[1], d) for d in digests]
        for d, s in zip(digests, sigs):
            assert backend.verify(1, d, s)
        # The oldest claims were evicted; they still verify (slow path).
        for d, s in zip(digests, sigs):
            assert backend.verify(1, d, s)


class TestCoinDedupBeforeVerify:
    def test_duplicate_share_skips_verification(self, monkeypatch):
        from repro.crypto.coin import ThresholdCoin

        coins = [ThresholdCoin(chain) for chain in CHAINS]
        share = coins[1].make_share(7)
        calls = []
        real_verify = ThresholdCoin.verify_share

        def counting_verify(self, s):
            calls.append(1)
            return real_verify(self, s)

        monkeypatch.setattr(ThresholdCoin, "verify_share", counting_verify)
        coins[0].add_share(share)
        assert len(calls) == 1
        coins[0].add_share(share)  # duplicate: dict lookup, no DLEQ check
        assert len(calls) == 1


class TestThresholdVerifyMemo:
    def test_verify_partial_memoized_positive_only(self):
        from repro.crypto.coin import ThresholdCoin

        coins = [ThresholdCoin(chain) for chain in CHAINS]
        share = coins[1].make_share(4)
        prf = coins[0].prf
        message = coins[0]._coin_input(4)
        assert prf.verify_partial(message, share.payload)
        key = (
            share.payload.index,
            message,
            share.payload.value,
            share.payload.proof,
        )
        assert key in prf._verified
        # A tampered proof is rejected and stays out of the memo.
        from repro.crypto.threshold import DleqProof, PartialEval

        forged = PartialEval(
            index=share.payload.index,
            value=share.payload.value,
            proof=DleqProof(
                c=share.payload.proof.c,
                s=(share.payload.proof.s + 1) % GROUP.q,
            ),
        )
        before = len(prf._verified)
        assert not prf.verify_partial(message, forged)
        assert len(prf._verified) == before
