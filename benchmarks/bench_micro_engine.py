"""Micro-benchmarks: simulator event throughput and protocol hot paths.

The profiling-first rule (optimization guide): know where the simulated
seconds go.  These benches time (a) the raw event loop, (b) one full
protocol round trip per protocol, normalizing by processed events —
the number that bounds how big a Fig. 13 sweep can get.
"""

import pytest

from repro.config import ProtocolConfig, SystemConfig
from repro.crypto.keys import TrustedDealer
from repro.harness.runner import PROTOCOL_REGISTRY
from repro.net.latency import FixedLatency
from repro.net.simulator import Simulation


def build_sim(protocol_name, n=7, batch=100, seed=1):
    system = SystemConfig(n=n, crypto="hmac", seed=seed)
    protocol = ProtocolConfig(batch_size=batch)
    chains = TrustedDealer(
        system, coin_threshold=protocol.resolve_coin_threshold(system)
    ).deal()
    node_cls = PROTOCOL_REGISTRY[protocol_name]

    def factory(i):
        return lambda net: node_cls(net, system=system, protocol=protocol,
                                    keychain=chains[i])

    return Simulation(
        [factory(i) for i in range(n)],
        latency_model=FixedLatency(0.05),
        bandwidth_bps=100_000_000,
        seed=seed,
    )


@pytest.mark.parametrize("protocol", ["lightdag1", "lightdag2", "tusk"])
def test_protocol_simulated_second(benchmark, protocol):
    """Wall-clock cost of simulating one protocol-second at n=7."""

    def run_one_second():
        sim = build_sim(protocol)
        sim.run(until=1.0)
        return sim.stats.events_processed

    events = benchmark(run_one_second)
    assert events > 100


def test_event_loop_overhead(benchmark):
    """Pure event-queue throughput with trivial handlers."""
    from dataclasses import dataclass

    from repro.net.interfaces import Message, Node

    @dataclass(frozen=True)
    class Tick(Message):
        def wire_size(self) -> int:
            return 16

    class Bouncer(Node):
        count = 0

        def on_message(self, src, msg):
            self.count += 1
            if self.count < 2000:
                self.net.send((self.node_id + 1) % self.net.n, msg)

    def run():
        sim = Simulation(
            [lambda net: Bouncer(net) for _ in range(4)],
            latency_model=FixedLatency(0.001),
            bandwidth_bps=None,
        )
        sim.start()
        sim.nodes[0].net.send(1, Tick())
        sim.run()
        return sim.stats.events_processed

    events = benchmark(run)
    assert events >= 2000


def test_broadcast_fanout(benchmark):
    """The broadcast fast path: each delivery triggers a full n−1 fan-out.

    This is the shape of real protocol traffic (every block/vote/echo is a
    broadcast), and the case the batched ``_enqueue_broadcast`` path exists
    for: one crashed check and one stats update per broadcast instead of
    per copy.
    """
    from dataclasses import dataclass

    from repro.net.interfaces import Message, Node

    @dataclass(frozen=True)
    class Wave(Message):
        def wire_size(self) -> int:
            return 64

    class Echoer(Node):
        count = 0

        def on_message(self, src, msg):
            self.count += 1
            if self.count < 400:
                self.net.broadcast(msg)

    def run():
        sim = Simulation(
            [lambda net: Echoer(net) for _ in range(10)],
            latency_model=FixedLatency(0.001),
            bandwidth_bps=100_000_000,
        )
        sim.start()
        sim.nodes[0].net.broadcast(Wave())
        sim.run()
        return sim.stats.events_processed

    events = benchmark(run)
    assert events >= 400 * 9
