"""Post-run deep audit: per-node and cross-replica invariant oracles.

Each ``audit_*`` function inspects one node (or the honest set) after a
run and returns a list of human-readable violation strings — empty when
the invariant holds.  :func:`deep_audit` composes them all, journals the
verdict, and raises :class:`~repro.errors.InvariantViolation` on failure.

The oracles only state facts a correct replica must satisfy under *any*
message schedule and any tolerated fault pattern, so the fuzzer can run
them against arbitrary generated schedules without false positives:

==========================  ==================================================
oracle                      paper claim it checks
==========================  ==================================================
ledger positions dense,     the ledger is a totally ordered sequence (§II-A)
leader_index monotone
committed signatures        only authenticated blocks commit (integrity)
ancestry closure            a commit carries its causal history (Algorithm 1)
retrieval/store coherence   §IV-A state machine converges (no zombie state)
LightDAG2 Rule 2            one endorsement per slot, consistent with store
LightDAG2 Rule 3            blacklist ⊆ verified proofs; own blocks never
                            pair a culprit's proof with the culprit's block
leader-sequence agreement   Lemma 1 / Theorem 2: one leader sequence
commit-metadata agreement   same position ⇒ same block, same leader index,
                            same committing leader (Theorems 2 and 6)
==========================  ==================================================
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..crypto.hashing import short_hex
from ..dag.ledger import check_prefix_consistency
from ..errors import InvariantViolation, ProtocolError
from ..obs import NULL_OBS, Observability

# ------------------------------------------------------------------ per-node


def audit_ledger(node, label: str) -> List[str]:
    """Ledger shape + signatures + ancestry closure for one node."""
    violations: List[str] = []
    records = list(node.ledger)
    positions = {}
    last_leader_index = -1
    via_by_index = {}
    for idx, rec in enumerate(records):
        if rec.position != idx:
            violations.append(
                f"{label}: ledger positions not dense — record {idx} "
                f"claims position {rec.position}"
            )
        positions[rec.block.digest] = idx
        if rec.leader_index < last_leader_index:
            violations.append(
                f"{label}: leader_index decreases at position {idx} "
                f"({last_leader_index} -> {rec.leader_index})"
            )
        last_leader_index = max(last_leader_index, rec.leader_index)
        seen_via = via_by_index.setdefault(rec.leader_index, rec.via_leader)
        if seen_via != rec.via_leader:
            violations.append(
                f"{label}: two via_leader digests under leader index "
                f"{rec.leader_index}"
            )
        if not node.backend.verify(
            rec.block.author, rec.block.digest, rec.block.signature
        ):
            violations.append(
                f"{label}: committed block {short_hex(rec.block.digest)} "
                f"at position {idx} has an invalid signature"
            )

    # Ancestry closure: every parent of a committed block is committed at a
    # smaller position, is genesis, or is provably below the committing
    # leader's deterministic GC floor.  Parents absent from both the ledger
    # and the (pruned) store are exempt only when GC is configured — the
    # conservative reading that avoids false positives after pruning.
    gc_depth = node.protocol.gc_depth
    for idx, rec in enumerate(records):
        leader_pos = positions.get(rec.via_leader)
        if leader_pos is None:
            violations.append(
                f"{label}: position {idx} committed via leader "
                f"{short_hex(rec.via_leader)} which is not in the ledger"
            )
            continue
        floor: Optional[int] = None
        if gc_depth is not None:
            floor = records[leader_pos].block.round - gc_depth
        for parent_digest in rec.block.parents:
            parent_pos = positions.get(parent_digest)
            if parent_pos is not None:
                if parent_pos >= idx:
                    violations.append(
                        f"{label}: position {idx} references a parent "
                        f"committed later (position {parent_pos})"
                    )
                continue
            parent = node.store.get_optional(parent_digest)
            if parent is not None and parent.is_genesis:
                continue
            if gc_depth is None:
                violations.append(
                    f"{label}: committed block at position {idx} references "
                    f"uncommitted parent {short_hex(parent_digest)}"
                )
            elif parent is not None and floor is not None and parent.round >= floor:
                violations.append(
                    f"{label}: committed block at position {idx} references "
                    f"uncommitted parent {short_hex(parent_digest)} at round "
                    f"{parent.round}, inside the leader's GC window "
                    f"(floor {floor})"
                )
    return violations


def audit_retrieval(node, label: str) -> List[str]:
    """§IV-A retrieval state machine coherence against the store."""
    violations: List[str] = []
    state = node.retrieval.audit_state()
    store = node.store
    pending = state["pending"]
    dependents = state["dependents"]
    inflight = state["inflight"]
    requested = state["requested"]
    abandoned = state["abandoned"]

    if not inflight <= requested:
        extra = [short_hex(d) for d in inflight - requested]
        violations.append(f"{label}: in-flight requests not ⊆ requested: {extra}")
    for digest in requested:
        if digest in store:
            violations.append(
                f"{label}: digest {short_hex(digest)} still requested but "
                f"already delivered to the store"
            )
    if abandoned & inflight:
        violations.append(
            f"{label}: digests both abandoned and in-flight: "
            f"{[short_hex(d) for d in abandoned & inflight]}"
        )

    union_missing = set()
    for digest, (block, missing) in pending.items():
        if digest in store:
            violations.append(
                f"{label}: pending block {short_hex(digest)} is already in "
                f"the store"
            )
        if not missing:
            violations.append(
                f"{label}: pending block {short_hex(digest)} has an empty "
                f"missing set (should have been accepted)"
            )
        for parent in missing:
            union_missing.add(parent)
            if parent in store:
                violations.append(
                    f"{label}: pending block {short_hex(digest)} waits for "
                    f"parent {short_hex(parent)} which is in the store"
                )
            if digest not in dependents.get(parent, ()):
                violations.append(
                    f"{label}: missing parent {short_hex(parent)} lacks the "
                    f"inverse dependents entry for {short_hex(digest)}"
                )
    for parent, deps in dependents.items():
        if parent not in union_missing:
            violations.append(
                f"{label}: dependents tracks {short_hex(parent)} which no "
                f"pending block is missing"
            )
        for dep in deps:
            if dep not in pending:
                violations.append(
                    f"{label}: dependents of {short_hex(parent)} reference "
                    f"unknown pending block {short_hex(dep)}"
                )
    return violations


def audit_lightdag2(node, label: str) -> List[str]:
    """LightDAG2 Rule 2/3 bookkeeping soundness (§V)."""
    violations: List[str] = []
    if node.blacklist != set(node.proofs):
        violations.append(
            f"{label}: blacklist {sorted(node.blacklist)} != proven culprits "
            f"{sorted(node.proofs)}"
        )
    for culprit, proof in node.proofs.items():
        if proof.culprit != culprit:
            violations.append(
                f"{label}: proof filed under culprit {culprit} names "
                f"{proof.culprit}"
            )
        elif not proof.verify(node.backend):
            violations.append(
                f"{label}: stored Byzantine proof against {culprit} does not "
                f"verify"
            )

    # Rule 2: the endorsement map is single-valued by construction; check
    # the endorsements are *consistent* — each names a CBC-parent-round
    # slot and, where the block is still retained, the right slot.
    for slot, digest in node.voted_refs.items():
        round_, author = slot
        if round_ > 0 and node.round_kind(round_) != 1:
            violations.append(
                f"{label}: endorsement for slot {slot} is not a first-PBC-"
                f"round slot (CBC parents live in round ⟨w,1⟩)"
            )
        endorsed = node.store.get_optional(digest)
        if endorsed is not None and endorsed.slot != slot:
            violations.append(
                f"{label}: endorsement for slot {slot} points at block "
                f"{short_hex(digest)} which sits in slot {endorsed.slot}"
            )

    # Rule 3: a block of ours that embeds the proof against a culprit must
    # not simultaneously reference one of the culprit's blocks.
    for digest, block in node.my_blocks.items():
        for proof in block.byz_proofs:
            for parent_digest in block.parents:
                parent = node.store.get_optional(parent_digest)
                if (
                    parent is not None
                    and not parent.is_genesis
                    and parent.author == proof.culprit
                ):
                    violations.append(
                        f"{label}: own block {short_hex(digest)} embeds the "
                        f"proof against {proof.culprit} yet references the "
                        f"culprit's block {short_hex(parent_digest)}"
                    )

    for digest, original in node._pending_repropose.items():
        if original.author != node.node_id:
            violations.append(
                f"{label}: pending reproposal {short_hex(digest)} is not an "
                f"own block (author {original.author})"
            )
        elif node.round_kind(original.round) != node.CBC_E:
            violations.append(
                f"{label}: pending reproposal {short_hex(digest)} is not a "
                f"CBC-round block (round {original.round})"
            )
    return violations


# -------------------------------------------------------------- cross-replica


def audit_cross_replica(nodes: Sequence, labels: Sequence[str]) -> List[str]:
    """Agreement among honest replicas: digest prefix, leader sequence, and
    per-position commit metadata."""
    violations: List[str] = []
    if not nodes:
        return violations
    try:
        check_prefix_consistency([node.ledger for node in nodes])
    except ProtocolError as exc:
        violations.append(str(exc))

    all_records = [list(node.ledger) for node in nodes]
    ref = max(range(len(all_records)), key=lambda i: len(all_records[i]))
    ref_records = all_records[ref]
    for i, records in enumerate(all_records):
        if i == ref:
            continue
        for pos, (mine, theirs) in enumerate(zip(records, ref_records)):
            if (
                mine.leader_index != theirs.leader_index
                or mine.via_leader != theirs.via_leader
            ):
                violations.append(
                    f"commit-metadata disagreement at position {pos} between "
                    f"{labels[i]} and {labels[ref]}: leader_index "
                    f"{mine.leader_index} vs {theirs.leader_index}, "
                    f"via_leader {short_hex(mine.via_leader)} vs "
                    f"{short_hex(theirs.via_leader)}"
                )
                break  # one divergence point per pair is enough signal

    # Committed-leader sequence agreement (Lemma 1 / Theorem 2): the k-th
    # committed leader is the same block everywhere, prefix-wise.
    leader_seqs = []
    for records in all_records:
        seq: List = []
        for rec in records:
            if rec.leader_index == len(seq):
                seq.append(rec.via_leader)
        leader_seqs.append(seq)
    ref_seq = max(leader_seqs, key=len)
    for i, seq in enumerate(leader_seqs):
        if seq != ref_seq[: len(seq)]:
            diverge = next(
                (k for k, (a, b) in enumerate(zip(seq, ref_seq)) if a != b),
                min(len(seq), len(ref_seq)),
            )
            violations.append(
                f"{labels[i]}: committed-leader sequence diverges at leader "
                f"index {diverge}"
            )
    return violations


# ---------------------------------------------------------------- composition


def deep_audit(
    nodes: Sequence,
    labels: Optional[Sequence[str]] = None,
    obs: Optional[Observability] = None,
    raise_on_violation: bool = True,
    now: float = 0.0,
) -> List[str]:
    """Run every applicable oracle over the honest node set.

    Returns the collected violation strings (empty on success); raises
    :class:`~repro.errors.InvariantViolation` carrying all of them when
    ``raise_on_violation`` is set.  The verdict is journaled as
    ``oracle.audit`` (+ one ``oracle.violation`` event per finding) when
    observability is enabled.
    """
    from ..core.lightdag2 import LightDag2Node

    obs = obs if obs is not None else NULL_OBS
    if labels is None:
        labels = [f"replica {getattr(n, 'node_id', i)}" for i, n in enumerate(nodes)]
    violations: List[str] = []
    for node, label in zip(nodes, labels):
        violations.extend(audit_ledger(node, label))
        violations.extend(audit_retrieval(node, label))
        if isinstance(node, LightDag2Node):
            violations.extend(audit_lightdag2(node, label))
    violations.extend(audit_cross_replica(nodes, labels))
    if obs.enabled:
        obs.journal.emit(
            now, "oracle.audit", -1,
            nodes=len(nodes), violations=len(violations),
        )
        for text in violations:
            obs.journal.emit(now, "oracle.violation", -1, detail=text)
    if violations and raise_on_violation:
        raise InvariantViolation(
            "invariant audit failed ({} violation{}):\n  {}".format(
                len(violations), "s" if len(violations) != 1 else "",
                "\n  ".join(violations),
            )
        )
    return violations
