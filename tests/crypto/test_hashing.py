"""Tests for repro.crypto.hashing: canonical field hashing and Merkle roots."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashing import (
    DIGEST_SIZE,
    hash_bytes,
    hash_fields,
    hash_to_int,
    merkle_root,
    short_hex,
)


class TestHashFields:
    def test_digest_size(self):
        assert len(hash_fields(1, "a")) == DIGEST_SIZE

    def test_deterministic(self):
        assert hash_fields(1, b"x", "y") == hash_fields(1, b"x", "y")

    def test_order_sensitive(self):
        assert hash_fields(1, 2) != hash_fields(2, 1)

    def test_type_tagging_int_vs_str(self):
        assert hash_fields(1) != hash_fields("1")

    def test_type_tagging_bytes_vs_str(self):
        assert hash_fields(b"abc") != hash_fields("abc")

    def test_bool_is_not_int(self):
        assert hash_fields(True) != hash_fields(1)
        assert hash_fields(False) != hash_fields(0)

    def test_none_is_distinct(self):
        assert hash_fields(None) != hash_fields(0)
        assert hash_fields(None) != hash_fields(b"")

    def test_nesting_is_not_flattening(self):
        assert hash_fields((1, 2), 3) != hash_fields(1, (2, 3))
        assert hash_fields((1,), (2,)) != hash_fields((1, 2))

    def test_empty_containers(self):
        assert hash_fields(()) != hash_fields(("",))

    def test_negative_ints(self):
        assert hash_fields(-1) != hash_fields(1)
        assert hash_fields(-256) != hash_fields(-255)

    def test_lists_and_tuples_equivalent(self):
        assert hash_fields([1, 2]) == hash_fields((1, 2))

    def test_unhashable_type_raises(self):
        with pytest.raises(TypeError):
            hash_fields(object())

    @given(st.integers(), st.integers())
    def test_injective_on_int_pairs(self, a, b):
        if a != b:
            assert hash_fields(a) != hash_fields(b)

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_concatenation_ambiguity_resolved(self, a, b):
        # ("ab","c") must differ from ("a","bc") — length prefixing at work.
        if a != b:
            assert hash_fields(a, b) != hash_fields(b, a) or a == b


class TestHashToInt:
    def test_range(self):
        value = hash_to_int("x")
        assert 0 <= value < 2**256

    def test_matches_fields(self):
        assert hash_to_int(5) == int.from_bytes(hash_fields(5), "big")


class TestMerkleRoot:
    def test_empty(self):
        assert merkle_root([]) == bytes(DIGEST_SIZE)

    def test_single_leaf(self):
        leaf = hash_bytes(b"tx")
        assert merkle_root([leaf]) != leaf  # leaf-prefixed, not identity

    def test_order_sensitive(self):
        a, b = hash_bytes(b"a"), hash_bytes(b"b")
        assert merkle_root([a, b]) != merkle_root([b, a])

    def test_odd_leaf_count(self):
        leaves = [hash_bytes(bytes([i])) for i in range(3)]
        assert len(merkle_root(leaves)) == DIGEST_SIZE

    def test_deterministic(self):
        leaves = [hash_bytes(bytes([i])) for i in range(7)]
        assert merkle_root(leaves) == merkle_root(leaves)

    def test_second_preimage_guard(self):
        # A two-leaf tree differs from the single leaf equal to their parent.
        a, b = hash_bytes(b"a"), hash_bytes(b"b")
        two = merkle_root([a, b])
        assert merkle_root([two]) != two


class TestShortHex:
    def test_prefix(self):
        d = hash_bytes(b"z")
        assert d.hex().startswith(short_hex(d))
        assert len(short_hex(d, 12)) == 12
