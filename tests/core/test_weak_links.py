"""Tests for the weak-link fairness extension (ProtocolConfig.weak_links)."""

import pytest

from repro.adversary.delay import TargetedDelayAdversary
from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag1 import LightDag1Node
from repro.core.lightdag2 import LightDag2Node
from repro.crypto.keys import TrustedDealer
from repro.dag.ledger import check_prefix_consistency
from repro.errors import ConfigError
from repro.net.latency import FixedLatency, UniformLatency
from repro.net.simulator import Simulation


def build_sim(weak_links, n=4, seed=1, latency=None, adversary=None,
              node_cls=LightDag1Node):
    system = SystemConfig(n=n, crypto="hmac", seed=seed)
    protocol = ProtocolConfig(batch_size=5, weak_links=weak_links)
    chains = TrustedDealer(
        system, coin_threshold=protocol.resolve_coin_threshold(system)
    ).deal()
    return Simulation(
        [
            (lambda net, i=i: node_cls(net, system, protocol, chains[i]))
            for i in range(n)
        ],
        latency_model=latency or UniformLatency(0.01, 0.09),
        adversary=adversary,
        seed=seed,
    )


def orphan_fraction(node, horizon):
    """Fraction of proposed slots in rounds [1, horizon) never committed."""
    committed_slots = {r.block.slot for r in node.ledger}
    total, missing = 0, 0
    for round_ in range(1, horizon):
        for author in range(node.system.n):
            if node.store.block_in_slot(round_, author) is not None:
                total += 1
                if (round_, author) not in committed_slots:
                    missing += 1
    return missing / total if total else 0.0


class TestConfigGuards:
    def test_lightdag2_rejects_weak_links(self):
        with pytest.raises(ConfigError, match="strict-store"):
            build_sim(weak_links=True, node_cls=LightDag2Node)

    def test_negative_cap_rejected(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(max_weak_refs=-1)


class TestFairness:
    def test_orphans_recovered_under_targeted_slowdown(self):
        """Slow down one replica's block dissemination so its blocks keep
        missing parent selection; weak links must pick them up anyway."""
        def slowed(seed):
            return TargetedDelayAdversary(
                predicate=lambda s, d, m: s == 2, delay=0.12, seed=seed
            )

        without = build_sim(weak_links=False, seed=4, adversary=slowed(4))
        without.run(until=8.0)
        with_links = build_sim(weak_links=True, seed=4, adversary=slowed(4))
        with_links.run(until=8.0)

        horizon = min(without.nodes[0].current_round,
                      with_links.nodes[0].current_round) - 6
        frac_without = orphan_fraction(without.nodes[0], horizon)
        frac_with = orphan_fraction(with_links.nodes[0], horizon)
        assert frac_without > 0.0  # the attack really orphans blocks
        assert frac_with < frac_without

    def test_safety_preserved(self):
        sim = build_sim(weak_links=True, seed=6)
        sim.run(until=8.0)
        check_prefix_consistency([n.ledger for n in sim.nodes])
        assert all(len(n.ledger) > 50 for n in sim.nodes)

    def test_no_weak_refs_in_synchrony(self):
        """On a synchronous network nothing is ever orphaned, so weak links
        must add no references (no bandwidth cost when unneeded)."""
        sim = build_sim(weak_links=True, latency=FixedLatency(0.05), seed=7)
        sim.run(until=5.0)
        node = sim.nodes[0]
        for round_ in range(2, node.current_round - 2):
            block = node.store.block_in_slot(round_, 0)
            if block is None:
                continue
            for parent_digest in block.parents:
                parent = node.store.get_optional(parent_digest)
                assert parent is None or parent.round == block.round - 1

    def test_weak_parent_validation(self):
        """A block with weak refs passes validation only when allowed."""
        from repro.dag.block import genesis_block, make_block
        from repro.dag.store import DagStore
        from repro.dag.validation import validate_block_structure
        from repro.errors import InvalidBlockError

        from ..dag.helpers import grow_chain

        system = SystemConfig(n=4)
        store = DagStore(n=4)
        grow_chain(store, rounds=3, n=4)
        strong = [store.block_in_slot(3, a).digest for a in range(4)]
        weak = [store.block_in_slot(1, 0).digest]
        block = make_block(4, 0, strong + weak)
        validate_block_structure(block, store, system, allow_weak=True)
        with pytest.raises(InvalidBlockError):
            validate_block_structure(block, store, system, allow_weak=False)
        with pytest.raises(InvalidBlockError, match="weak"):
            validate_block_structure(block, store, system, allow_weak=True, max_weak=0)

    def test_determinism(self):
        a = build_sim(weak_links=True, seed=9)
        a.run(until=4.0)
        b = build_sim(weak_links=True, seed=9)
        b.run(until=4.0)
        assert a.nodes[0].ledger.digest_sequence() == b.nodes[0].ledger.digest_sequence()
