#!/usr/bin/env python3
"""A replicated key-value service over real TCP sockets.

The deepest end-to-end demo in the repository: the SMR layer
(:mod:`repro.smr`) rides LightDAG2, which rides the binary wire codec
(:mod:`repro.codec`), which rides real loopback TCP connections
(:mod:`repro.net.tcp`).  Four replicas accept concurrent writes —
including two conflicting compare-and-swap operations — order them through
consensus, and converge to byte-identical state.

Run:  python examples/smr_service.py
"""

import asyncio

from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag2 import LightDag2Node
from repro.crypto.keys import TrustedDealer
from repro.net.tcp import TcpCluster
from repro.smr.kv import KvStateMachine
from repro.smr.replica import SmrReplica


async def main_async() -> None:
    system = SystemConfig(n=4)
    protocol = ProtocolConfig(batch_size=32)
    chains = TrustedDealer(system).deal()
    replicas = [SmrReplica(i, KvStateMachine()) for i in range(system.n)]

    def factory(i: int):
        return lambda net: LightDag2Node(
            net, system, protocol, chains[i],
            payload_source=replicas[i].payload_source,
            on_commit=replicas[i].on_commit,
        )

    cluster = TcpCluster([factory(i) for i in range(system.n)])

    print("4 replicas over loopback TCP, LightDAG2, binary wire codec\n")
    replicas[0].submit(b"SET balance 100")
    cas_a = replicas[1].submit(b"CAS balance 100 250")  # two racing CAS ops:
    cas_b = replicas[2].submit(b"CAS balance 100 900")  # exactly one can win
    replicas[3].submit(b"SET owner dana")

    await cluster.run(4.0)

    print("Per-replica state after convergence:")
    for replica in replicas:
        print(f"  replica {replica.replica_id}: "
              f"{dict(sorted(replica.machine.data.items()))} "
              f"(state digest {replica.machine.state_digest().hex()[:12]})")

    digests = {r.machine.state_digest() for r in replicas}
    assert len(digests) == 1, "replicas diverged!"
    result_a = replicas[1].result_of(cas_a)
    result_b = replicas[2].result_of(cas_b)
    print(f"\nracing CAS results: replica1 -> {result_a}, replica2 -> {result_b}")
    assert {result_a, result_b} == {b"OK", b"FAIL"}
    print(f"frames on the wire: {cluster.frames_sent} sent, "
          f"{cluster.frames_received} received, "
          f"{cluster.decode_errors} decode errors")
    print("\nAll replicas agree; exactly one CAS won — everywhere the same one ✓")


if __name__ == "__main__":
    asyncio.run(main_async())
