"""Pluggable signing backends.

Every authenticated protocol message goes through a :class:`CryptoBackend`.
Three implementations trade realism for simulation speed:

* :class:`SchnorrBackend` — real Schnorr signatures; the adversary cannot
  forge them even in principle.  Use for correctness-focused runs.
* :class:`HmacBackend` — keyed SHA-256 MACs derived from a dealer secret.
  Within the simulation's closed world this is sound (simulated Byzantine
  replicas do not exploit the shared derivation), and it is ~50× faster.
  This is the default for benchmarks.
* :class:`NullBackend` — size-accounted no-op for very large sweeps where
  signature bytes must still occupy bandwidth but CPU must not be spent.

All backends expose the same interface, sign/verify 32-byte digests, and
report a modeled wire size so the network simulator charges the same
bandwidth regardless of backend.
"""

from __future__ import annotations

import hashlib
import hmac
from abc import ABC, abstractmethod

from ..config import SystemConfig
from ..errors import CryptoError
from .hashing import Digest
from .keys import KeyChain
from .schnorr import SIGNATURE_SIZE, SchnorrSignature, schnorr_sign, schnorr_verify


class CryptoBackend(ABC):
    """Signs and verifies message digests on behalf of one replica."""

    #: Bytes a signature occupies on the wire (for the bandwidth model).
    signature_size: int = SIGNATURE_SIZE

    @abstractmethod
    def sign(self, message: Digest) -> object:
        """Sign a digest with this replica's key."""

    @abstractmethod
    def verify(self, signer: int, message: Digest, signature: object) -> bool:
        """Verify ``signer``'s signature on ``message``."""


class SchnorrBackend(CryptoBackend):
    """Real Schnorr signatures over the library group."""

    def __init__(self, keychain: KeyChain) -> None:
        self.keychain = keychain
        self.group = keychain.group

    def sign(self, message: Digest) -> SchnorrSignature:
        return schnorr_sign(self.group, self.keychain.keypair, message)

    def verify(self, signer: int, message: Digest, signature: object) -> bool:
        if not isinstance(signature, SchnorrSignature):
            return False
        pk = self.keychain.public_keys.get(signer)
        if pk is None:
            return False
        return schnorr_verify(self.group, pk, message, signature)


class HmacBackend(CryptoBackend):
    """Keyed-MAC stand-in: ``sig = HMAC(H(dealer_secret, signer), message)``.

    Every replica can derive every key, so this is *not* unforgeable against
    a real attacker — it is unforgeable against the simulated adversaries in
    this repository, which never synthesize MACs for other identities.  The
    substitution is documented in DESIGN.md §2.
    """

    def __init__(self, replica_id: int, system: SystemConfig) -> None:
        self.replica_id = replica_id
        self._root = hashlib.sha256(
            f"hmac-root:{system.seed}:{system.n}".encode()
        ).digest()
        self._keys = {
            i: hashlib.sha256(self._root + i.to_bytes(4, "big")).digest()
            for i in range(system.n)
        }

    def _key_for(self, signer: int) -> bytes:
        try:
            return self._keys[signer]
        except KeyError:
            raise CryptoError(f"unknown signer {signer}") from None

    def sign(self, message: Digest) -> bytes:
        return hmac.new(self._key_for(self.replica_id), message, hashlib.sha256).digest()

    def verify(self, signer: int, message: Digest, signature: object) -> bool:
        if not isinstance(signature, bytes) or signer not in self._keys:
            return False
        expected = hmac.new(self._keys[signer], message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature)


class NullBackend(CryptoBackend):
    """No-op backend: empty signatures that always verify.

    Only for throughput sweeps where per-message CPU would distort the
    simulated-time measurements; never use when an adversary that forges is
    part of the experiment.
    """

    def sign(self, message: Digest) -> bytes:
        return b""

    def verify(self, signer: int, message: Digest, signature: object) -> bool:
        return True


def make_backend(
    name: str, replica_id: int, system: SystemConfig, keychain: KeyChain | None = None
) -> CryptoBackend:
    """Factory matching :attr:`SystemConfig.crypto` names to backends."""
    if name == "schnorr":
        if keychain is None:
            raise CryptoError("schnorr backend requires a KeyChain")
        return SchnorrBackend(keychain)
    if name == "hmac":
        return HmacBackend(replica_id, system)
    if name == "null":
        return NullBackend()
    raise CryptoError(f"unknown crypto backend {name!r}")
