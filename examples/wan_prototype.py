#!/usr/bin/env python3
"""The prototype-system mode: LightDAG over asyncio with injected WAN delays.

The paper evaluates a Golang prototype on a 4-continent deployment; the
discrete-event simulator reproduces those *measurements*, while this
example shows the *prototype* side: the identical protocol state machines
running on real wall-clock time over asyncio channels, with the same
4-region latency matrix injected per message.  Useful for interactive
experimentation and as the template for embedding the library in a real
service.

Run:  python examples/wan_prototype.py
"""

from repro.config import ExperimentConfig, ProtocolConfig, SystemConfig
from repro.replica.runtime import run_async_experiment


def main() -> None:
    print("LightDAG2 prototype: 7 asyncio replicas, injected 4-region WAN")
    print("latency, 5 wall-clock seconds...\n")
    cfg = ExperimentConfig(
        system=SystemConfig(n=7),
        protocol=ProtocolConfig(batch_size=200),
        protocol_name="lightdag2",
        duration=5.0,
        warmup=1.0,
        latency_model="wan4",
        seed=2,
    )
    summary = run_async_experiment(cfg)
    print(f"throughput : {summary['throughput_tps']:,.0f} tx/s")
    print(f"latency    : {summary['mean_latency_s'] * 1000:.0f} ms mean")
    print(f"committed  : {summary['committed_txs']:,.0f} transactions")
    print(f"messages   : {summary['messages']:,.0f} delivered")
    print("\nSafety was verified across all replica ledgers on shutdown.")
    print("Note: these are prototype numbers (Python handler cost included);")
    print("the benchmarks use the discrete-event simulator instead.")


if __name__ == "__main__":
    main()
