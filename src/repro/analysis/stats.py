"""Shared statistics: percentiles, aggregates, repetition runs (§VI-A).

Two layers live here:

* **Primitives** — :func:`percentile` (linear interpolation over sorted
  samples; the single implementation shared by
  :mod:`repro.workload.metrics` and :class:`Aggregate`) and
  :class:`Aggregate` (mean/stdev/CI/quantiles over a sample list).
* **Repetition** — a single simulated run is deterministic per seed, so
  "experimental error" in this reproduction means *seed sensitivity*
  (coin outcomes, jitter draws).  :func:`repeat_experiment` runs a config
  across several seeds and aggregates mean, sample standard deviation,
  and a normal-approximation 95% confidence interval — the error bars a
  figure would carry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence

from ..config import ExperimentConfig

if TYPE_CHECKING:  # imported lazily at call time to avoid a cycle with harness
    from ..harness.runner import ExperimentResult


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of pre-sorted data (q in [0, 1])."""
    if not sorted_values:
        return math.nan
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


@dataclass(frozen=True)
class Aggregate:
    """Mean/stdev/CI for one metric across repetitions."""

    mean: float
    stdev: float
    ci95_half_width: float
    samples: tuple

    @classmethod
    def of(cls, values: List[float]) -> "Aggregate":
        n = len(values)
        if n == 0:
            # An empty sample set aggregates to NaN, not a crash — e.g. a
            # PipelineTrace over a run that committed nothing.
            return cls(
                mean=math.nan, stdev=math.nan, ci95_half_width=math.nan, samples=()
            )
        mean = sum(values) / n
        if n > 1:
            variance = sum((v - mean) ** 2 for v in values) / (n - 1)
            stdev = math.sqrt(variance)
            ci = 1.96 * stdev / math.sqrt(n)
        else:
            stdev = 0.0
            ci = 0.0
        return cls(mean=mean, stdev=stdev, ci95_half_width=ci, samples=tuple(values))

    def quantile(self, q: float) -> float:
        """Linear-interpolation quantile over the retained samples."""
        return percentile(sorted(self.samples), q)

    @property
    def p50(self) -> float:
        return self.quantile(0.5)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)


@dataclass(frozen=True)
class RepeatedResult:
    """Aggregated metrics over the repetition set."""

    config: ExperimentConfig
    repeats: int
    throughput: Aggregate
    latency: Aggregate
    runs: tuple

    def row(self) -> Dict[str, object]:
        return {
            "protocol": self.config.protocol_name,
            "n": self.config.system.n,
            "batch": self.config.protocol.batch_size,
            "repeats": self.repeats,
            "tps_mean": round(self.throughput.mean, 1),
            "tps_ci95": round(self.throughput.ci95_half_width, 1),
            "latency_mean_s": round(self.latency.mean, 4),
            "latency_ci95_s": round(self.latency.ci95_half_width, 4),
        }


def seed_variants(cfg: ExperimentConfig, seeds: Sequence[int]) -> List[ExperimentConfig]:
    """``cfg`` re-seeded once per entry of ``seeds`` (both RNG roots moved)."""
    return [
        cfg.with_updates(seed=s, system=cfg.system.with_updates(seed=s))
        for s in seeds
    ]


def aggregate_results(runs: Sequence["ExperimentResult"]) -> "ExperimentResult":
    """Collapse per-seed runs of one sweep point into a single result.

    Float metrics become means; counters become rounded means (so a mean
    over seeds still reads as "txs per run", not a sum that grows with the
    seed count).  Spread lands in ``extras``: ``tps_stddev`` /
    ``latency_stddev`` (sample stddev) and ``seed_count``, which is what
    EXPERIMENTS.md renders as error bars.  The carried config is the first
    run's, so ``result.config.seed`` names the first seed of the set.
    """
    from ..harness.runner import ExperimentResult

    runs = list(runs)
    if not runs:
        raise ValueError("aggregate_results needs at least one run")
    if len(runs) == 1:
        only = runs[0]
        extras = dict(only.extras)
        extras.setdefault("tps_stddev", 0.0)
        extras.setdefault("latency_stddev", 0.0)
        extras.setdefault("seed_count", 1.0)
        return ExperimentResult(
            config=only.config,
            throughput_tps=only.throughput_tps,
            mean_latency=only.mean_latency,
            p50_latency=only.p50_latency,
            p95_latency=only.p95_latency,
            committed_txs=only.committed_txs,
            rounds_reached=only.rounds_reached,
            events=only.events,
            messages_sent=only.messages_sent,
            bytes_sent=only.bytes_sent,
            extras=extras,
        )
    count = len(runs)
    tps = Aggregate.of([r.throughput_tps for r in runs])
    latency = Aggregate.of([r.mean_latency for r in runs])

    def fmean(values: List[float]) -> float:
        return sum(values) / count

    extras: Dict[str, float] = {}
    # Per-run extras that every seed reported are averaged too.
    shared = set(runs[0].extras)
    for r in runs[1:]:
        shared &= set(r.extras)
    for key in sorted(shared):
        extras[key] = fmean([r.extras[key] for r in runs])
    extras["tps_stddev"] = tps.stdev
    extras["latency_stddev"] = latency.stdev
    extras["seed_count"] = float(count)
    return ExperimentResult(
        config=runs[0].config,
        throughput_tps=tps.mean,
        mean_latency=latency.mean,
        p50_latency=fmean([r.p50_latency for r in runs]),
        p95_latency=fmean([r.p95_latency for r in runs]),
        committed_txs=round(fmean([r.committed_txs for r in runs])),
        rounds_reached=round(fmean([r.rounds_reached for r in runs])),
        events=round(fmean([r.events for r in runs])),
        messages_sent=round(fmean([r.messages_sent for r in runs])),
        bytes_sent=round(fmean([r.bytes_sent for r in runs])),
        extras=extras,
    )


def repeat_experiment(
    cfg: ExperimentConfig, repeats: int = 5, jobs: "int | None" = 1
) -> RepeatedResult:
    """Run ``cfg`` under ``repeats`` distinct seeds and aggregate.

    Seeds are derived as ``cfg.seed, cfg.seed+1, …`` so a repetition set is
    itself reproducible.  ``jobs`` fans the repetitions out over the
    parallel harness (``jobs=1``, the default, stays in-process); results
    are identical either way because each run is seed-deterministic.
    """
    from ..harness.parallel import run_sweep

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    seeded = [
        cfg.with_updates(
            seed=cfg.seed + k,
            system=cfg.system.with_updates(seed=cfg.system.seed + k),
        )
        for k in range(repeats)
    ]
    runs = run_sweep(seeded, jobs=jobs).require()
    return RepeatedResult(
        config=cfg,
        repeats=repeats,
        throughput=Aggregate.of([r.throughput_tps for r in runs]),
        latency=Aggregate.of([r.mean_latency for r in runs]),
        runs=tuple(runs),
    )
