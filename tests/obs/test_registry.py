"""Tests for repro.obs.registry: instruments, series, null twin."""

import math

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


class TestCounter:
    def test_inc_default_and_amount(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_summary(self):
        c = Counter()
        c.inc(2)
        assert c.summary() == {"value": 2.0}


class TestGauge:
    def test_set_and_add(self):
        g = Gauge()
        g.set(3.0)
        g.add(-1.0)
        assert g.value == 2.0


class TestHistogram:
    def test_counts_sum_minmax(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.5):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(0.503)
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(0.5)

    def test_bucket_assignment(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(0.5)   # <= 1.0
        h.observe(1.5)   # <= 2.0
        h.observe(99.0)  # overflow
        assert h.bucket_counts == [1, 1, 1]

    def test_boundary_value_is_inclusive(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.bucket_counts == [1, 0, 0]

    def test_empty_quantile_nan(self):
        assert math.isnan(Histogram().quantile(0.5))

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram(buckets=(1.0, 2.0))
        for _ in range(4):
            h.observe(1.5)  # all in the (1.0, 2.0] bucket
        # Median interpolates halfway through the bucket's span.
        assert h.quantile(0.5) == pytest.approx(1.5)

    def test_quantile_overflow_returns_max(self):
        h = Histogram(buckets=(1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == pytest.approx(50.0)

    def test_mean_empty_nan(self):
        assert math.isnan(Histogram().mean)

    def test_summary_keys(self):
        h = Histogram()
        h.observe(0.1)
        summary = h.summary()
        assert set(summary) == {"count", "sum", "mean", "min", "max", "p50", "p95"}

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_labels_split_series(self):
        reg = MetricsRegistry()
        reg.counter("net.sent", type="Val").inc()
        reg.counter("net.sent", type="Echo").inc(2)
        assert reg.counter("net.sent", type="Val").value == 1
        assert reg.counter_total("net.sent") == 3
        assert len(reg) == 2

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.counter("m", a=1, b=2) is reg.counter("m", b=2, a=1)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_series_sorted_by_name_then_labels(self):
        reg = MetricsRegistry()
        reg.counter("b", z=1)
        reg.counter("b", a=1)
        reg.counter("a")
        names = [(name, tuple(labels.items())) for name, _, labels, _ in reg.series()]
        assert names == sorted(names)

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("hits", node=0).inc(7)
        reg.histogram("wait").observe(0.01)
        snap = reg.snapshot()
        assert snap[0] == {
            "name": "hits", "kind": "counter", "labels": {"node": "0"},
            "value": 7.0,
        }
        assert snap[1]["name"] == "wait" and snap[1]["count"] == 1

    def test_counter_total_absent_is_zero(self):
        assert MetricsRegistry().counter_total("nope") == 0.0

    def test_custom_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("steps", buckets=(1.0, 3.0, 9.0))
        assert h.buckets == (1.0, 3.0, 9.0)
        assert reg.histogram("steps") is h

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled is True


class TestNullRegistry:
    def test_disabled(self):
        assert NullRegistry().enabled is False

    def test_instruments_shared_and_inert(self):
        reg = NullRegistry()
        c = reg.counter("a", x=1)
        assert c is reg.counter("b", y=2)
        c.inc(100)
        assert c.value == 0.0
        g = reg.gauge("g")
        g.set(5)
        g.add(5)
        assert g.value == 0.0
        h = reg.histogram("h")
        h.observe(1.0)
        assert h.count == 0

    def test_records_no_series(self):
        reg = NullRegistry()
        reg.counter("a").inc()
        assert len(reg) == 0
        assert reg.snapshot() == []
