"""Wire-size constants for the bandwidth model.

Message classes compute their :meth:`~repro.net.interfaces.Message.wire_size`
from these constants so the simulator charges realistic byte counts without
actually serializing anything.  Values approximate a compact binary codec
(the paper uses go-msgpack):

* digests are SHA-256 (32 B),
* signatures are 64 B (two 32-byte scalars; same as ed25519),
* coin shares carry a group element plus a DLEQ proof (96 B),
* every message pays a small framing overhead.
"""

DIGEST_SIZE = 32
SIGNATURE_SIZE = 64
COIN_SHARE_SIZE = 96
HEADER_OVERHEAD = 16  # type tag, round, author, lengths
INT_SIZE = 8


def block_wire_size(
    num_parents: int,
    num_txs: int,
    tx_size: int,
    num_proofs: int = 0,
    num_determinations: int = 0,
) -> int:
    """Bytes a block occupies: header + parent refs + payload + extras.

    ``num_proofs`` counts embedded Byzantine proofs (LightDAG2 Rule 2/3,
    each two conflicting block headers ≈ 2 × (header + digest + signature));
    ``num_determinations`` counts Rule-4 slot determinations (slot id +
    digest each).
    """
    proofs = num_proofs * 2 * (HEADER_OVERHEAD + DIGEST_SIZE + SIGNATURE_SIZE)
    determinations = num_determinations * (2 * INT_SIZE + DIGEST_SIZE)
    return (
        HEADER_OVERHEAD
        + SIGNATURE_SIZE
        + COIN_SHARE_SIZE  # blocks in coin rounds carry a share; charged always
        + num_parents * DIGEST_SIZE
        + num_txs * tx_size
        + proofs
        + determinations
    )
