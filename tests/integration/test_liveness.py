"""Liveness tests: progress guarantees under each fault model.

The paper's liveness arguments (Theorems 3 and 10) are probabilistic; the
executable form is "within a bounded simulated horizon, commits keep
happening and every submitted-then-referenced transaction eventually
lands".
"""

import pytest

from repro.adversary.byzantine import EquivocatingLightDag2Node
from repro.config import ProtocolConfig, SystemConfig
from repro.core.lightdag1 import LightDag1Node
from repro.core.lightdag2 import LightDag2Node
from repro.crypto.keys import TrustedDealer
from repro.net.latency import UniformLatency
from repro.net.simulator import Simulation


def build(node_cls, n=4, seed=1, byzantine=None, batch=5):
    byzantine = byzantine or {}
    system = SystemConfig(n=n, crypto="hmac", seed=seed)
    protocol = ProtocolConfig(batch_size=batch)
    chains = TrustedDealer(
        system, coin_threshold=protocol.resolve_coin_threshold(system)
    ).deal()

    def factory(i):
        if i in byzantine:
            return lambda net: EquivocatingLightDag2Node(
                net, system, protocol, chains[i], start_wave=byzantine[i]
            )
        return lambda net: node_cls(net, system, protocol, chains[i])

    return Simulation(
        [factory(i) for i in range(n)],
        latency_model=UniformLatency(0.02, 0.08),
        seed=seed,
    )


class TestSteadyProgress:
    @pytest.mark.parametrize("node_cls", [LightDag1Node, LightDag2Node])
    def test_commit_rate_does_not_stall(self, node_cls):
        """Split the horizon in half: the second half must commit too."""
        sim = build(node_cls)
        sim.run(until=4.0)
        mid = len(sim.nodes[0].ledger)
        sim.run(until=8.0)
        end = len(sim.nodes[0].ledger)
        assert mid > 0
        assert end > mid * 1.5

    def test_wave_commit_probability_exceeds_third(self):
        """Theorem 3's bound, measured: the fraction of waves committed
        directly-or-indirectly is far above 1/3 in synchrony."""
        sim = build(LightDag1Node)
        sim.run(until=8.0)
        node = sim.nodes[0]
        revealed = len(node.revealed_leaders)
        committed = len(node.committed_leader_waves)
        assert committed / revealed > 1 / 3

    def test_every_slot_of_settled_rounds_committed_in_synchrony(self):
        """With no faults and a synchronous network, every proposed block
        of a settled round ends up in the ledger (no unexplained drops).
        Under jitter an occasional slow block is legitimately orphaned —
        hence the fixed-latency network here."""
        from repro.net.latency import FixedLatency

        sim = build(LightDag1Node, seed=3)
        sim.latency = FixedLatency(0.05)
        sim.run(until=8.0)
        node = sim.nodes[0]
        horizon = node.wave.first_round(max(node.committed_leader_waves))
        committed_slots = {r.block.slot for r in node.ledger}
        for round_ in range(1, horizon):
            for author in range(4):
                assert (round_, author) in committed_slots, (round_, author)


class TestLivenessUnderFaults:
    def test_lightdag2_waves_to_commit_bounded_under_equivocation(self):
        """Theorem 10's shape: with t=1 equivocator, commits happen within
        a few waves of the attack, and exclusion restores full speed."""
        sim = build(LightDag2Node, byzantine={3: 2}, seed=7)
        sim.run(until=12.0)
        node = sim.nodes[0]
        committed = sorted(node.committed_leader_waves)
        assert committed, "nothing committed at all"
        gaps = [b - a for a, b in zip(committed, committed[1:])]
        # After exclusion, commit cadence returns to normal: mostly gap-1
        # (the occasional 2-3 is ordinary leader luck, not the attack).
        tail = gaps[len(gaps) // 2:]
        assert tail and max(tail) <= 4
        assert tail.count(1) / len(tail) >= 0.5

    def test_crash_f_progress_all_protocols(self):
        for node_cls in (LightDag1Node, LightDag2Node):
            sim = build(node_cls, seed=5)
            sim.crash(3)
            sim.run(until=10.0)
            for node in sim.nodes[:3]:
                assert len(node.ledger) > 20, node_cls.__name__

    def test_lightdag2_two_equivocators_eventually_full_speed(self):
        sim = build(LightDag2Node, n=7, byzantine={5: 1, 6: 3}, seed=9)
        sim.run(until=15.0)
        honest = [sim.nodes[i] for i in range(5)]
        for node in honest:
            committed = sorted(node.committed_leader_waves)
            assert len(committed) > 10
            gaps = [b - a for a, b in zip(committed, committed[1:])]
            tail = gaps[len(gaps) // 2:]
            assert max(tail) <= 4
            assert tail.count(1) / len(tail) >= 0.5


class TestTransactionLevelLiveness:
    def test_submitted_payload_commits(self):
        """A transaction handed to every replica's mempool is committed
        (the §II-A liveness property, client's-eye view)."""
        from repro.dag.block import TxBatch

        system = SystemConfig(n=4, crypto="hmac", seed=1)
        protocol = ProtocolConfig(batch_size=5)
        chains = TrustedDealer(system).deal()
        marker_committed = []

        def payload_source(now):
            return TxBatch(count=1, tx_size=128, submit_time_sum=now,
                           sample=(now,), items=(b"MARKER",))

        def on_commit(record):
            if b"MARKER" in record.block.payload.items:
                marker_committed.append(record)

        def factory(i):
            return lambda net: LightDag2Node(
                net, system, protocol, chains[i],
                payload_source=payload_source,
                on_commit=on_commit if i == 0 else None,
            )

        sim = Simulation(
            [factory(i) for i in range(4)],
            latency_model=UniformLatency(0.02, 0.08),
            seed=1,
        )
        sim.run(until=3.0)
        assert marker_committed
