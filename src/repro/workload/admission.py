"""Mempool admission control and backpressure.

Without admission control an overloaded replica is an unbounded queue:
offered load past the commit capacity accrues pending commands forever,
memory grows without bound, and the measured "latency" is just the age of
an infinite backlog.  Production mempools bound the queue and make the
overflow *visible* — a rejected submission is a signal the client can act
on (back off, retry elsewhere), a silently queued one is not.

:class:`AdmissionController` is the accounting + policy object the SMR
replica consults on every submission:

* a **bounded queue** (``max_pending``): past the cap the policy decides —
  ``reject`` refuses the newcomer, ``shed-oldest`` evicts the oldest
  queued command to make room (freshest-work-first under overload);
* a **per-client fairness cap** (``per_client_cap``): one chatty client
  cannot occupy the whole queue and starve the rest;
* **observability**: admits / rejects (by reason) / sheds are counters,
  queue depth is a gauge, and every decision is available to the
  :mod:`repro.obs` registry when one is bound.

The controller never touches the queue itself — the replica owns the
deque; the controller owns the counts and the verdicts.  That keeps it
reusable (the analytic :class:`~repro.workload.txgen.Mempool` applies the
same cap) and trivially testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigError

#: Decision verdicts returned by :meth:`AdmissionController.decide`.
ADMIT = "admit"
SHED = "shed"
REJECT_FULL = "reject-full"
REJECT_CLIENT = "reject-client-cap"

_POLICIES = ("reject", "shed-oldest")


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs for one replica's admission controller.

    Attributes
    ----------
    max_pending:
        Queue-depth cap; 0 means unbounded (the historical behaviour).
    policy:
        What happens when the queue is full: ``"reject"`` refuses the new
        command, ``"shed-oldest"`` admits it and evicts the oldest queued
        command instead.
    per_client_cap:
        Maximum commands one client may have queued at once; 0 = no cap.
        Checked before the queue bound, so a greedy client is rejected
        even when the queue has room for polite ones.
    """

    max_pending: int = 0
    policy: str = "reject"
    per_client_cap: int = 0

    def __post_init__(self) -> None:
        if self.max_pending < 0:
            raise ConfigError("max_pending cannot be negative")
        if self.per_client_cap < 0:
            raise ConfigError("per_client_cap cannot be negative")
        if self.policy not in _POLICIES:
            raise ConfigError(
                f"unknown admission policy {self.policy!r}; "
                f"choose from {_POLICIES}"
            )


class AdmissionController:
    """Accounting and policy for one replica's pending-command queue."""

    def __init__(self, config: AdmissionConfig, obs=None, replica_id: int = 0) -> None:
        self.config = config
        self.depth = 0
        self.max_depth = 0
        self.admitted = 0
        self.shed = 0
        self.rejected: Dict[str, int] = {REJECT_FULL: 0, REJECT_CLIENT: 0}
        self._per_client: Dict[str, int] = {}
        self._ctr_admit = self._ctr_shed = None
        self._ctr_reject: Dict[str, object] = {}
        self._g_depth = None
        if obs is not None and obs.metrics.enabled:
            metrics = obs.metrics
            self._ctr_admit = metrics.counter("smr.admitted", replica=replica_id)
            self._ctr_shed = metrics.counter("smr.shed", replica=replica_id)
            self._ctr_reject = {
                reason: metrics.counter(
                    "smr.rejected", replica=replica_id, reason=reason
                )
                for reason in (REJECT_FULL, REJECT_CLIENT)
            }
            self._g_depth = metrics.gauge("smr.pending_depth", replica=replica_id)

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    # -- decisions ---------------------------------------------------------------

    def decide(self, client: str) -> str:
        """Verdict for one submission, given the current queue depth.

        Returns one of :data:`ADMIT`, :data:`SHED` (admit, but the caller
        must evict its oldest queued command and report it via
        :meth:`note_shed`), :data:`REJECT_FULL`, :data:`REJECT_CLIENT`.
        Pure decision — the caller applies it and then records the
        outcome through ``note_admitted`` / ``note_shed``.
        """
        cfg = self.config
        if cfg.per_client_cap and self._per_client.get(client, 0) >= cfg.per_client_cap:
            self._count_reject(REJECT_CLIENT)
            return REJECT_CLIENT
        if cfg.max_pending and self.depth >= cfg.max_pending:
            if cfg.policy == "reject":
                self._count_reject(REJECT_FULL)
                return REJECT_FULL
            return SHED
        return ADMIT

    # -- outcome accounting --------------------------------------------------------

    def note_admitted(self, client: str) -> None:
        self.depth += 1
        if self.depth > self.max_depth:
            self.max_depth = self.depth
        self.admitted += 1
        self._per_client[client] = self._per_client.get(client, 0) + 1
        if self._ctr_admit is not None:
            self._ctr_admit.inc()
            self._g_depth.set(self.depth)

    def note_shed(self, client: str) -> None:
        """The caller evicted one queued command of ``client``."""
        self.shed += 1
        self._release(client)
        if self._ctr_shed is not None:
            self._ctr_shed.inc()
            self._g_depth.set(self.depth)

    def note_drained(self, client: str) -> None:
        """One queued command of ``client`` left the queue into a block."""
        self._release(client)
        if self._g_depth is not None:
            self._g_depth.set(self.depth)

    def _release(self, client: str) -> None:
        self.depth -= 1
        remaining = self._per_client.get(client, 0) - 1
        if remaining > 0:
            self._per_client[client] = remaining
        else:
            self._per_client.pop(client, None)

    def _count_reject(self, reason: str) -> None:
        self.rejected[reason] += 1
        ctr = self._ctr_reject.get(reason)
        if ctr is not None:
            ctr.inc()

    def summary(self) -> Dict[str, int]:
        """Flat totals for result rows and reports."""
        return {
            "admitted": self.admitted,
            "rejected": self.rejected_total,
            "shed": self.shed,
            "depth": self.depth,
            "max_depth": self.max_depth,
        }


def make_admission(
    config: Optional[AdmissionConfig], obs=None, replica_id: int = 0
) -> Optional[AdmissionController]:
    """Controller for ``config``, or None when no bounds are configured."""
    if config is None:
        return None
    if not config.max_pending and not config.per_client_cap:
        return None
    return AdmissionController(config, obs=obs, replica_id=replica_id)
