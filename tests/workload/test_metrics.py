"""Tests for repro.workload.metrics: throughput/latency accounting."""

import math

import pytest

from repro.dag.block import TxBatch, make_block
from repro.dag.ledger import CommitRecord
from repro.workload.metrics import LatencyStats, MetricsCollector, percentile


def record(round_, author, commit_time, count=10, submitted_at=0.0, j=0):
    block = make_block(
        round_, author, [],
        payload=TxBatch(count, 128, submit_time_sum=count * submitted_at,
                        sample=(submitted_at,)),
        repropose_index=j,
    )
    return CommitRecord(
        position=0, block=block, commit_time=commit_time, via_leader=b"L",
        leader_index=0,
    )


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 0.5))

    def test_single_value(self):
        assert percentile([3.0], 0.9) == 3.0

    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 0.25) == 2.5

    def test_extremes(self):
        data = [1.0, 5.0, 9.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 9.0


class TestLatencyStats:
    def test_mean(self):
        stats = LatencyStats()
        stats.add(10, 5.0, [0.5])
        stats.add(10, 15.0, [1.5])
        assert stats.mean == pytest.approx(1.0)

    def test_empty_mean_nan(self):
        assert math.isnan(LatencyStats().mean)

    def test_quantile(self):
        stats = LatencyStats()
        stats.add(1, 1.0, [1.0, 2.0, 3.0])
        assert stats.quantile(0.5) == 2.0


class TestCollector:
    def test_basic_accounting(self):
        collector = MetricsCollector(warmup=0.0)
        cb = collector.callback_for(0)
        cb(record(1, 0, commit_time=2.0, count=10, submitted_at=1.0))
        assert collector.total_committed_txs() == 10
        assert collector.mean_latency() == pytest.approx(1.0)

    def test_warmup_excluded(self):
        collector = MetricsCollector(warmup=5.0)
        cb = collector.callback_for(0)
        cb(record(1, 0, commit_time=2.0))
        assert collector.total_committed_txs() == 0
        cb(record(2, 0, commit_time=6.0))
        assert collector.total_committed_txs() == 10

    def test_measure_until_excluded(self):
        collector = MetricsCollector(warmup=0.0, measure_until=10.0)
        cb = collector.callback_for(0)
        cb(record(1, 0, commit_time=11.0))
        assert collector.total_committed_txs() == 0

    def test_slot_dedup_for_reproposals(self):
        """Original + reproposal carry the same payload: count once."""
        collector = MetricsCollector()
        cb = collector.callback_for(0)
        cb(record(2, 0, commit_time=1.0, j=0))
        cb(record(2, 0, commit_time=1.5, j=1))
        assert collector.total_committed_txs() == 10

    def test_warmup_commit_still_marks_slot(self):
        collector = MetricsCollector(warmup=5.0)
        cb = collector.callback_for(0)
        cb(record(2, 0, commit_time=4.0, j=0))   # warmup
        cb(record(2, 0, commit_time=6.0, j=1))   # duplicate after warmup
        assert collector.total_committed_txs() == 0

    def test_empty_payload_blocks_counted_as_blocks_only(self):
        collector = MetricsCollector()
        cb = collector.callback_for(0)
        cb(record(1, 0, commit_time=1.0, count=0))
        assert collector.total_committed_txs() == 0
        assert collector.nodes[0].committed_blocks == 1

    def test_throughput_mean_across_nodes(self):
        collector = MetricsCollector()
        collector.callback_for(0)(record(1, 0, commit_time=1.0, count=100))
        collector.callback_for(1)(record(1, 0, commit_time=1.0, count=100))
        # Each node saw 100 txs over a 10s window: mean is 10 TPS, not 20.
        assert collector.throughput(10.0) == pytest.approx(10.0)

    def test_throughput_zero_duration(self):
        assert MetricsCollector().throughput(0.0) == 0.0

    def test_mean_latency_empty_nan(self):
        assert math.isnan(MetricsCollector().mean_latency())

    def test_quantiles_across_nodes(self):
        collector = MetricsCollector()
        collector.callback_for(0)(record(1, 0, 2.0, submitted_at=1.0))
        collector.callback_for(1)(record(1, 1, 4.0, submitted_at=1.0))
        assert collector.latency_quantile(1.0) == pytest.approx(3.0)

    def test_min_node_committed(self):
        collector = MetricsCollector()
        collector.callback_for(0)(record(1, 0, 1.0, count=50))
        collector.callback_for(1)  # registered but commits nothing
        assert collector.min_node_committed_txs() == 0

    def test_idle_registered_node_drags_throughput_mean(self):
        """A crashed/stalled replica must pull the mean TPS down, not
        silently drop out of the denominator."""
        collector = MetricsCollector()
        collector.callback_for(0)(record(1, 0, 1.0, count=100))
        collector.callback_for(1)  # registered, never commits
        assert collector.throughput(10.0) == pytest.approx(5.0)

    def test_no_nodes_throughput_zero(self):
        assert MetricsCollector().throughput(10.0) == 0.0

    def test_measure_until_straddling_reproposal(self):
        """A commit past the cutoff is ignored entirely — it must not mark
        the slot and shadow an earlier in-window commit... but commits are
        time-ordered, so the real hazard is the reverse: the in-window
        original counts, the post-cutoff reproposal does not."""
        collector = MetricsCollector(warmup=0.0, measure_until=10.0)
        cb = collector.callback_for(0)
        cb(record(2, 0, commit_time=9.0, j=0))
        cb(record(2, 0, commit_time=11.0, j=1))
        assert collector.total_committed_txs() == 10

    def test_callback_for_same_node_accumulates(self):
        collector = MetricsCollector()
        collector.callback_for(0)(record(1, 0, 1.0))
        collector.callback_for(0)(record(2, 0, 2.0))
        assert len(collector.nodes) == 1
        assert collector.nodes[0].committed_blocks == 2

    def test_latency_quantile_empty_nan(self):
        assert math.isnan(MetricsCollector().latency_quantile(0.5))

    def test_first_last_commit_times(self):
        collector = MetricsCollector(warmup=1.0)
        cb = collector.callback_for(0)
        cb(record(1, 0, commit_time=0.5))   # warmup — not recorded
        cb(record(2, 0, commit_time=2.0))
        cb(record(3, 0, commit_time=4.0))
        assert collector.nodes[0].first_commit_time == 2.0
        assert collector.nodes[0].last_commit_time == 4.0
