"""Plain-text rendering of experiment results.

The benches print the same rows/series the paper's figures plot; these
helpers keep that output aligned and diff-friendly (EXPERIMENTS.md embeds
them verbatim).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from .runner import ExperimentResult


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str]) -> str:
    """Fixed-width table of dict rows (only the requested columns)."""
    if not rows:
        return "(no rows)"
    widths = {
        col: max(len(col), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    rule = "  ".join("-" * widths[col] for col in columns)
    lines = [header, rule]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)


def results_table(results: Iterable[ExperimentResult]) -> str:
    """Standard result columns for any sweep."""
    rows = [r.row() for r in results]
    return format_table(
        rows, ["protocol", "n", "batch", "adversary", "tps", "latency_s", "p95_s", "rounds"]
    )


def series_by_protocol(
    results: Iterable[ExperimentResult], x_field: str
) -> Dict[str, List[tuple]]:
    """Group results into per-protocol (x, tps, latency) series — the exact
    shape a figure plots.

    ``x_field`` is one of ``"batch"`` (Fig. 12/14/15) or ``"n"`` (Fig. 13).
    """
    series: Dict[str, List[tuple]] = {}
    for result in results:
        if x_field == "batch":
            x = result.config.protocol.batch_size
        elif x_field == "n":
            x = result.config.system.n
        else:
            raise ValueError(f"unknown x_field {x_field!r}")
        key = f"{result.config.protocol_name}@n={result.config.system.n}"
        if x_field == "n":
            key = result.config.protocol_name
        series.setdefault(key, []).append(
            (x, round(result.throughput_tps, 1), round(result.mean_latency, 4))
        )
    for points in series.values():
        points.sort()
    return series


def render_series(series: Dict[str, List[tuple]], x_name: str) -> str:
    """Human-readable per-protocol series dump."""
    lines = []
    for key in sorted(series):
        lines.append(f"{key}:")
        lines.append(f"  {x_name:>8}  {'tps':>10}  {'latency_s':>10}")
        for x, tps, lat in series[key]:
            lines.append(f"  {x:>8}  {tps:>10}  {lat:>10}")
    return "\n".join(lines)
