"""Tests for repro.harness.runner: experiment assembly and adversaries."""

import pytest

from repro.config import ExperimentConfig, ProtocolConfig, SystemConfig
from repro.errors import ConfigError
from repro.harness.runner import (
    PROTOCOL_REGISTRY,
    WORST_ATTACK,
    build_adversary,
    run_experiment,
)


def config(protocol="lightdag2", n=4, adversary="none", **kw):
    kw.setdefault("duration", 5.0)
    kw.setdefault("warmup", 1.0)
    return ExperimentConfig(
        system=SystemConfig(n=n, crypto="hmac", seed=kw.pop("seed", 1)),
        protocol=ProtocolConfig(batch_size=kw.pop("batch", 20)),
        protocol_name=protocol,
        adversary_name=adversary,
        **kw,
    )


class TestRegistry:
    def test_all_protocols_present(self):
        assert set(PROTOCOL_REGISTRY) == {
            "lightdag1", "lightdag1-nomerge", "lightdag2",
            "dagrider", "tusk", "bullshark",
        }

    def test_worst_attack_covers_every_protocol(self):
        assert set(WORST_ATTACK) == set(PROTOCOL_REGISTRY)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigError, match="unknown protocol"):
            run_experiment(config(protocol="pbft"))


class TestBuildAdversary:
    def test_none(self):
        adversary, overrides = build_adversary(config(adversary="none"))
        assert adversary is None and overrides == {}

    def test_crash(self):
        adversary, overrides = build_adversary(config(adversary="crash"))
        assert adversary.victims == (3,)
        assert overrides == {}

    def test_leader_delay(self):
        adversary, _ = build_adversary(config("bullshark", adversary="leader-delay"))
        assert adversary is not None

    def test_equivocate_lightdag2_only(self):
        _, overrides = build_adversary(config("lightdag2", adversary="equivocate"))
        assert set(overrides) == {3}
        with pytest.raises(ConfigError):
            build_adversary(config("tusk", adversary="equivocate"))

    def test_worst_resolves_per_protocol(self):
        adversary, _ = build_adversary(config("tusk", adversary="worst"))
        from repro.adversary.crash import CrashAdversary

        assert isinstance(adversary, CrashAdversary)

    def test_unknown_adversary(self):
        with pytest.raises(ConfigError):
            build_adversary(config(adversary="gremlins"))


@pytest.mark.parametrize("protocol", sorted(PROTOCOL_REGISTRY))
class TestRunExperimentAllProtocols:
    def test_favorable_run_produces_metrics(self, protocol):
        result = run_experiment(config(protocol))
        assert result.throughput_tps > 0
        assert result.mean_latency > 0
        assert result.committed_txs > 0
        assert result.rounds_reached > 5
        assert result.events > 0

    def test_worst_case_run_stays_safe(self, protocol):
        result = run_experiment(config(protocol, adversary="worst", duration=6.0))
        # Safety is checked inside run_experiment; progress must continue.
        assert result.committed_txs > 0


class TestResultShape:
    def test_row_fields(self):
        result = run_experiment(config("tusk"))
        row = result.row()
        assert row["protocol"] == "tusk"
        assert row["n"] == 4
        assert row["adversary"] == "none"
        assert isinstance(row["tps"], float)

    def test_extras_tracked(self):
        result = run_experiment(config("lightdag2", adversary="equivocate", duration=6.0))
        assert "reproposals" in result.extras
        assert result.extras["reproposals"] >= 0

    def test_seed_reproducibility(self):
        a = run_experiment(config("lightdag1", seed=5))
        b = run_experiment(config("lightdag1", seed=5))
        assert a.throughput_tps == b.throughput_tps
        assert a.mean_latency == b.mean_latency

    def test_different_seeds_differ(self):
        a = run_experiment(config("lightdag1", seed=5))
        b = run_experiment(config("lightdag1", seed=6))
        assert (a.throughput_tps, a.mean_latency) != (b.throughput_tps, b.mean_latency)
