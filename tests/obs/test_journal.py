"""Tests for repro.obs.journal and the Observability bundle."""

from repro.obs import (
    NULL_OBS,
    Event,
    EventJournal,
    MetricsRegistry,
    NullJournal,
    NullRegistry,
    Observability,
)


class TestEventJournal:
    def test_emit_appends_in_order(self):
        journal = EventJournal()
        journal.emit(0.5, "block.propose", node=1, round=1)
        journal.emit(0.7, "block.deliver", node=2, round=1)
        assert len(journal) == 2
        assert [e.type for e in journal] == ["block.propose", "block.deliver"]
        assert journal.events[0] == Event(0.5, 1, "block.propose", {"round": 1})

    def test_default_node_is_network(self):
        journal = EventJournal()
        journal.emit(0.0, "adversary.drop")
        assert journal.events[0].node == -1

    def test_as_dict_flattens_payload(self):
        journal = EventJournal()
        journal.emit(1.0, "wave.commit", node=0, wave=3, kind="direct")
        assert journal.events[0].as_dict() == {
            "t": 1.0, "node": 0, "type": "wave.commit",
            "wave": 3, "kind": "direct",
        }

    def test_counts_by_type_sorted(self):
        journal = EventJournal()
        for type_ in ("b", "a", "b"):
            journal.emit(0.0, type_)
        assert list(journal.counts_by_type().items()) == [("a", 1), ("b", 2)]

    def test_null_journal_inert(self):
        journal = NullJournal()
        journal.emit(0.0, "anything", node=3, x=1)
        assert len(journal) == 0 and journal.enabled is False


class TestObservability:
    def test_enabled_follows_components(self):
        assert Observability(MetricsRegistry(), EventJournal()).enabled
        assert Observability(MetricsRegistry(), NullJournal()).enabled
        assert Observability(NullRegistry(), EventJournal()).enabled
        assert not Observability(NullRegistry(), NullJournal()).enabled

    def test_null_singleton_disabled(self):
        assert NULL_OBS.enabled is False

    def test_summary_keys(self):
        obs = Observability(MetricsRegistry(), EventJournal())
        obs.metrics.counter("net.messages_sent", type="BlockVal").inc(3)
        obs.journal.emit(0.0, "block.propose", node=0)
        summary = obs.summary()
        assert summary["journal_events"] == 1
        assert summary["msgs_sent"] == 3
